//! End-to-end integration tests for the 1D collectives: every algorithm of
//! §4–§6, generated from the model, executed on the fabric simulator, and
//! verified against a serial reference.

use wse_collectives::prelude::*;
use wse_integration_tests::{deterministic_inputs, run_and_verify, session_run_and_verify};
use wse_model::Machine;

fn machine() -> Machine {
    Machine::wse2()
}

#[test]
fn all_reduce_patterns_are_correct_across_shapes() {
    let mut session = Session::new();
    for (p, b) in [(4u32, 1u32), (7, 16), (16, 64), (33, 128), (64, 256)] {
        for pattern in ReducePattern::all() {
            let request = CollectiveRequest::reduce(Topology::line(p), b)
                .with_schedule(Schedule::Reduce1d(pattern));
            session_run_and_verify(&mut session, &request);
        }
    }
    // 25 distinct (shape, pattern) requests, each planned exactly once.
    assert_eq!(session.stats().plan_misses, 25);
}

#[test]
fn all_allreduce_patterns_are_correct_across_shapes() {
    let mut session = Session::new();
    for (p, b) in [(4u32, 8u32), (8, 64), (16, 32)] {
        for pattern in ReducePattern::all() {
            let request = CollectiveRequest::allreduce(Topology::line(p), b)
                .with_schedule(Schedule::AllReduce1d(AllReducePattern::ReduceBroadcast(pattern)));
            session_run_and_verify(&mut session, &request);
        }
        let ring = CollectiveRequest::allreduce(Topology::line(p), b)
            .with_schedule(Schedule::AllReduce1d(AllReducePattern::Ring));
        session_run_and_verify(&mut session, &ring);
    }
}

#[test]
fn broadcast_delivers_to_every_pe_and_costs_one_message() {
    let p = 48u32;
    let b = 96u32;
    let path = LinePath::row(GridDim::row(p), 0);
    let plan = flood_broadcast_plan(&path, b, wse_fabric::wavelet::Color::new(0));
    let inputs = deterministic_inputs(1, b as usize);
    let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
    assert_eq!(outcome.outputs.len(), p as usize);
    for (_, out) in &outcome.outputs {
        assert_eq!(out, &inputs[0]);
    }
    // Energy must equal a single message's energy: B wavelets over P-1 links.
    assert_eq!(outcome.report.energy_hops, (b as u64) * (p as u64 - 1));
}

#[test]
fn measured_contention_matches_the_model_terms() {
    // The model's contention term is the number of wavelets the most loaded
    // PE receives: B(P-1) for the star, B for the chain, ~2B for two-phase.
    let m = machine();
    let p = 16u32;
    let b = 32u32;
    let inputs = deterministic_inputs(p as usize, b as usize);

    let star = reduce_1d_plan(ReducePattern::Star, p, b, ReduceOp::Sum, &m);
    let outcome = run_plan(&star, &inputs, &RunConfig::default()).unwrap();
    assert_eq!(outcome.report.max_received, (b * (p - 1)) as u64);

    let chain = reduce_1d_plan(ReducePattern::Chain, p, b, ReduceOp::Sum, &m);
    let outcome = run_plan(&chain, &inputs, &RunConfig::default()).unwrap();
    assert_eq!(outcome.report.max_received, b as u64);

    let two_phase = reduce_1d_plan(ReducePattern::TwoPhase, p, b, ReduceOp::Sum, &m);
    let outcome = run_plan(&two_phase, &inputs, &RunConfig::default()).unwrap();
    assert_eq!(outcome.report.max_received, 2 * b as u64);
}

#[test]
fn autogen_matches_or_beats_fixed_patterns_on_the_simulator() {
    let m = machine();
    for (p, b) in [(16u32, 4u32), (32, 64), (48, 512)] {
        let auto = run_and_verify(
            &reduce_1d_plan(ReducePattern::AutoGen, p, b, ReduceOp::Sum, &m),
            ReduceOp::Sum,
        );
        for pattern in [
            ReducePattern::Star,
            ReducePattern::Chain,
            ReducePattern::Tree,
            ReducePattern::TwoPhase,
        ] {
            let fixed =
                run_and_verify(&reduce_1d_plan(pattern, p, b, ReduceOp::Sum, &m), ReduceOp::Sum);
            assert!(
                auto as f64 <= fixed as f64 * 1.10 + 24.0,
                "p={p} b={b}: Auto-Gen {auto} should not lose to {} ({fixed})",
                pattern.name()
            );
        }
    }
}

#[test]
fn every_reduce_op_is_supported_end_to_end() {
    let m = machine();
    for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod] {
        let plan = reduce_1d_plan(ReducePattern::TwoPhase, 9, 16, op, &m);
        run_and_verify(&plan, op);
    }
}

#[test]
fn color_budget_stays_within_the_hardware_limit() {
    // 1D plans use at most 3 colors, matching §8.2.
    let m = machine();
    for pattern in ReducePattern::all() {
        let reduce = reduce_1d_plan(pattern, 32, 64, ReduceOp::Sum, &m);
        assert!(reduce.colors_used().len() <= 2);
        let allreduce = allreduce_1d_plan(
            AllReducePattern::ReduceBroadcast(pattern),
            32,
            64,
            ReduceOp::Sum,
            &m,
        );
        assert!(allreduce.colors_used().len() <= 3);
    }
    assert!(
        allreduce_1d_plan(AllReducePattern::Ring, 8, 64, ReduceOp::Sum, &m).colors_used().len()
            <= 3
    );
}
