//! Integration tests for the inference collective suite: the five new
//! request kinds served end to end through `Schedule::Auto`, the shared
//! shard-at-index layout chaining collectives without host-side
//! reshuffling, and the algebraic identity that a ReduceScatter followed by
//! an AllGather *is* an AllReduce — bit for bit, since both are built from
//! the same phase builders with the same accumulation order.

use proptest::prelude::*;

use wse_collectives::prelude::*;
use wse_integration_tests::deterministic_inputs;

/// The reference All-to-All transpose: output of PE `x` holds PE `s`'s
/// chunk `x` at offset `s * chunk`.
fn expected_all_to_all(data: &[Vec<f32>], chunk: usize) -> Vec<Vec<f32>> {
    let p = data.len();
    (0..p)
        .map(|x| (0..p).flat_map(|s| data[s][x * chunk..(x + 1) * chunk].iter().copied()).collect())
        .collect()
}

/// Split a vector into `p` chunk-sized shards (the suite's I/O layout).
fn shards_of(full: &[f32], p: usize) -> Vec<Vec<f32>> {
    let chunk = full.len() / p;
    (0..p).map(|x| full[x * chunk..(x + 1) * chunk].to_vec()).collect()
}

/// Acceptance scenario: every kind of the suite resolves through
/// `Schedule::Auto`, runs through the serving front-end in mixed-kind
/// batches, and produces its kind's reference semantics.
#[test]
fn all_suite_kinds_serve_end_to_end_with_auto_schedules() {
    let (p, b) = (4u32, 16u32);
    let chunk = (b / p) as usize;
    let full = deterministic_inputs(p as usize, b as usize);
    let reduced = expected_reduce(&full, ReduceOp::Sum);
    let shards = shards_of(&full[0], p as usize);

    // (request, inputs, expected outputs in result-PE order)
    type TrafficItem = (CollectiveRequest, Vec<Vec<f32>>, Vec<Vec<f32>>);
    let traffic: Vec<TrafficItem> = vec![
        (
            CollectiveRequest::reduce_scatter(Topology::line(p), b),
            full.clone(),
            shards_of(&reduced, p as usize),
        ),
        (
            CollectiveRequest::allgather(Topology::line(p), b),
            shards.clone(),
            vec![full[0].clone(); p as usize],
        ),
        (CollectiveRequest::gather(Topology::line(p), b), shards.clone(), vec![full[0].clone()]),
        (CollectiveRequest::scatter(Topology::line(p), b), vec![full[0].clone()], shards.clone()),
        (
            CollectiveRequest::all_to_all(Topology::line(p), b),
            full.clone(),
            expected_all_to_all(&full, chunk),
        ),
        // The established kinds ride in the same batches.
        (CollectiveRequest::allreduce(Topology::line(p), b), full.clone(), {
            vec![reduced.clone(); p as usize]
        }),
    ];

    let service = CollectiveService::new();
    let handles: Vec<ResponseHandle> = traffic
        .iter()
        .flat_map(|(request, inputs, _)| {
            // Submit each kind twice so the second hit reuses the cached plan.
            (0..2).map(|_| service.submit(*request, inputs.clone()).unwrap())
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(ResponseHandle::wait).collect();
    let stats = service.shutdown();
    assert_eq!(stats.completed as usize, responses.len());

    for (i, response) in responses.iter().enumerate() {
        let (request, _, expected) = &traffic[i / 2];
        assert_eq!(request.schedule, Schedule::Auto);
        let outcome = response.result.as_ref().unwrap_or_else(|e| {
            panic!("served {:?} failed: {e}", request.kind);
        });
        assert_eq!(outcome.outputs.len(), expected.len(), "{:?}", request.kind);
        for ((_, got), want) in outcome.outputs.iter().zip(expected) {
            assert_eq!(got, want, "{:?}", request.kind);
        }
    }
}

/// The suite's shared layout lets the mlp-style pipeline chain collectives
/// directly: Scatter's outputs feed ReduceScatter-shaped compute, whose
/// outputs feed AllGather, with no host-side reshuffling between calls.
#[test]
fn scatter_reduce_scatter_allgather_chain_without_reshuffling() {
    let (p, b) = (6u32, 24u32);
    let mut session = Session::new();
    let full = deterministic_inputs(p as usize, b as usize);

    let scattered =
        session.run(&CollectiveRequest::scatter(Topology::line(p), b), &full[..1]).unwrap();
    let rs = session.run(&CollectiveRequest::reduce_scatter(Topology::line(p), b), &full).unwrap();
    let gathered_in: Vec<Vec<f32>> = rs.outputs.iter().map(|(_, s)| s.clone()).collect();
    let ag =
        session.run(&CollectiveRequest::allgather(Topology::line(p), b), &gathered_in).unwrap();

    let reduced = expected_reduce(&full, ReduceOp::Sum);
    for (_, out) in &ag.outputs {
        assert_eq!(out, &reduced);
    }
    let scatter_back: Vec<Vec<f32>> = scattered.outputs.iter().map(|(_, s)| s.clone()).collect();
    let back =
        session.run(&CollectiveRequest::gather(Topology::line(p), b), &scatter_back).unwrap();
    assert_eq!(back.outputs[0].1, full[0]);
}

fn op_strategy() -> impl Strategy<Value = ReduceOp> {
    prop_oneof![Just(ReduceOp::Sum), Just(ReduceOp::Max), Just(ReduceOp::Min), Just(ReduceOp::Prod)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Satellite acceptance: a ReduceScatter followed by an AllGather on the
    /// same line is *byte-identical* to a single Ring AllReduce — exactly
    /// equal outputs (same ring, same floating-point accumulation order),
    /// and cycle totals within the phase accounting: the split pays one
    /// extra rotation round (the shard-homing Store rotation) plus one
    /// pipeline start-up per run.
    #[test]
    fn reduce_scatter_then_allgather_is_byte_identical_to_allreduce(
        p in 2u32..12,
        chunk in 1u32..24,
        op in op_strategy(),
        reference_engine in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let b = p * chunk;
        let engine = if reference_engine { EngineKind::Reference } else { EngineKind::Fast };
        let config = RunConfig::default().with_engine(engine);
        let machine = Machine::wse2();
        let inputs: Vec<Vec<f32>> = (0..p as usize)
            .map(|i| {
                (0..b as usize)
                    .map(|j| {
                        let x = seed
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add((i * 4096 + j) as u64);
                        ((x >> 40) as f32) / 65536.0 + 0.5
                    })
                    .collect()
            })
            .collect();

        let rs_request = CollectiveRequest::reduce_scatter(Topology::line(p), b).with_op(op);
        let ag_request = CollectiveRequest::allgather(Topology::line(p), b);
        let ar_request = CollectiveRequest::allreduce(Topology::line(p), b)
            .with_op(op)
            .with_schedule(Schedule::AllReduce1d(AllReducePattern::Ring));

        let rs = run_plan(&rs_request.resolve(&machine).unwrap().plan, &inputs, &config).unwrap();
        // Chain the shards directly — no reshuffling.
        let shards: Vec<Vec<f32>> = rs.outputs.iter().map(|(_, s)| s.clone()).collect();
        let ag = run_plan(&ag_request.resolve(&machine).unwrap().plan, &shards, &config).unwrap();
        let ar = run_plan(&ar_request.resolve(&machine).unwrap().plan, &inputs, &config).unwrap();

        // Outputs: exactly equal, not merely close.
        prop_assert_eq!(ag.outputs.len(), ar.outputs.len());
        for ((at, got), (at_ar, want)) in ag.outputs.iter().zip(&ar.outputs) {
            prop_assert_eq!(at, at_ar);
            let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            prop_assert!(got_bits == want_bits, "p={} b={} op={:?}", p, b, op);
        }

        // Cycles: the split runs 2p - 1 rounds where the fused AllReduce
        // runs 2(p - 1), and pays a second pipeline ramp-up; both effects
        // are bounded by one chunk plus per-PE constants.
        let split = rs.runtime_cycles() + ag.runtime_cycles();
        let fused = ar.runtime_cycles();
        let slack = chunk as u64 + 8 * p as u64 + 64;
        prop_assert!(
            split >= fused && split - fused <= slack,
            "p={} chunk={}: split {} vs fused {} (slack {})",
            p, chunk, split, fused, slack
        );
    }

    /// Every suite kind, on random shapes, through a session with plan-cache
    /// reuse: second runs must be byte-identical to first runs.
    #[test]
    fn suite_kinds_are_deterministic_across_cache_hits(
        p in 2u32..10,
        chunk in 1u32..12,
        kind_code in 0u32..5,
    ) {
        let b = p * chunk;
        let request = match kind_code {
            0 => CollectiveRequest::reduce_scatter(Topology::line(p), b),
            1 => CollectiveRequest::allgather(Topology::line(p), b),
            2 => CollectiveRequest::gather(Topology::line(p), b),
            3 => CollectiveRequest::scatter(Topology::line(p), b),
            _ => CollectiveRequest::all_to_all(Topology::line(p), b),
        };
        let sources = match request.kind {
            CollectiveKind::Scatter => 1,
            CollectiveKind::AllGather | CollectiveKind::Gather => p as usize,
            _ => p as usize,
        };
        let inputs = match request.kind {
            CollectiveKind::AllGather | CollectiveKind::Gather => {
                shards_of(&deterministic_inputs(1, b as usize)[0], p as usize)
            }
            _ => deterministic_inputs(sources, b as usize),
        };
        let mut session = Session::new();
        let first = session.run(&request, &inputs).unwrap();
        let second = session.run(&request, &inputs).unwrap();
        prop_assert_eq!(session.stats().plan_hits, 1);
        prop_assert_eq!(&first.outputs, &second.outputs);
        prop_assert_eq!(&first.report, &second.report);
    }
}
