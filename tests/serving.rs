//! Integration tests for the serving front-end: a `CollectiveService`'s
//! responses must be byte-identical to a sequential `Session` over the same
//! requests in submission order — whatever the batch windows, submission
//! pacing or shutdown timing did to the batching — and the bounded queue
//! must backpressure instead of buffering without limit.

use std::time::Duration;

use proptest::prelude::*;

use wse_collectives::prelude::*;
use wse_collectives::ExecutorConfig;
use wse_fabric::NoiseModel;
use wse_integration_tests::deterministic_inputs;

/// Build one request + inputs from a compact code; some codes produce
/// requests that are rejected (wrong input count, zero-length vectors) so
/// traffic mixes valid and invalid work like a real front-end sees.
fn traffic_item(code: u32, p: u32, b: u32) -> (CollectiveRequest, Vec<Vec<f32>>) {
    let request = match code % 4 {
        0 => CollectiveRequest::reduce(Topology::line(p), b),
        1 => CollectiveRequest::allreduce(Topology::line(p), b),
        2 => CollectiveRequest::reduce(Topology::grid(3, 3), b),
        _ => CollectiveRequest::broadcast(Topology::line(p), b),
    };
    let sources =
        if request.kind == CollectiveKind::Broadcast { 1 } else { request.topology.num_pes() };
    let mut inputs = deterministic_inputs(sources, b as usize);
    let mut request = request;
    match (code / 4) % 4 {
        // Valid item (twice as likely as each corruption).
        0 | 1 => {}
        // Wrong input count: rejected at validation.
        2 => {
            inputs.pop();
        }
        // Invalid request: rejected at plan resolution.
        _ => request.vector_len = 0,
    }
    (request, inputs)
}

fn service_config(
    max_batch: usize,
    max_wait: Duration,
    noise: Option<NoiseModel>,
) -> (ServiceConfig, SessionConfig) {
    let mut session = SessionConfig::default();
    session.run.noise = noise;
    let config = ServiceConfig {
        executor: ExecutorConfig { session: session.clone(), ..ExecutorConfig::default() },
        max_batch,
        max_wait,
        ..ServiceConfig::default()
    };
    (config, session)
}

fn assert_served_matches_session(
    traffic: &[(CollectiveRequest, Vec<Vec<f32>>)],
    served: &[Response],
    session_config: SessionConfig,
) -> Result<(), TestCaseError> {
    let mut session = Session::with_config(session_config);
    prop_assert_eq!(served.len(), traffic.len());
    for (i, ((request, inputs), response)) in traffic.iter().zip(served).enumerate() {
        let expected = session.run(request, inputs);
        match (&response.result, &expected) {
            (Ok(got), Ok(want)) => {
                prop_assert!(got.report == want.report, "item {i}: reports diverge");
                prop_assert!(got.outputs == want.outputs, "item {i}: outputs diverge");
            }
            (Err(got), Err(want)) => prop_assert!(got == want, "item {i}: errors diverge"),
            _ => prop_assert!(false, "item {i}: one path failed, the other did not"),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Acceptance criterion: any interleaving of `submit` pacing, batch
    /// windows and `shutdown` timing yields responses byte-identical to a
    /// sequential `Session` over the same requests — including batches
    /// containing rejected items, and with thermal noise attached (run
    /// indices must align across the service's batch cuts).
    #[test]
    fn service_is_byte_identical_to_sequential_session(
        codes in proptest::collection::vec(0u32..16, 3..14),
        p in 2u32..10,
        b in 2u32..24,
        max_batch in 1usize..7,
        max_wait_us in 0u64..1500,
        pause_every in 1usize..5,
        pause_us in 0u64..400,
        probability in 0.0f64..0.2,
        seed in 0u64..1_000_000,
        shutdown_before_wait in proptest::bool::ANY,
    ) {
        let noise = (probability > 0.0).then(|| NoiseModel::new(probability, seed));
        let (config, session_config) =
            service_config(max_batch, Duration::from_micros(max_wait_us), noise);
        let traffic: Vec<(CollectiveRequest, Vec<Vec<f32>>)> = codes
            .iter()
            .enumerate()
            .map(|(i, &code)| traffic_item(code, p + (i as u32 % 3), b))
            .collect();

        let service = CollectiveService::with_config(config);
        let mut handles = Vec::with_capacity(traffic.len());
        for (i, (request, inputs)) in traffic.iter().enumerate() {
            handles.push(service.submit(*request, inputs.clone()).unwrap());
            // Interleave the submissions with the batcher's clock: pauses
            // let deadlines fire mid-traffic, no pauses exercise size cuts.
            if pause_us > 0 && i % pause_every == pause_every - 1 {
                std::thread::sleep(Duration::from_micros(pause_us));
            }
        }
        if shutdown_before_wait {
            // Shutdown races the in-flight tail: it must drain, not drop.
            service.shutdown();
        }
        let served: Vec<Response> = handles.into_iter().map(ResponseHandle::wait).collect();
        let stats = service.shutdown();
        prop_assert_eq!(stats.completed as usize, traffic.len());
        prop_assert_eq!(stats.submitted as usize, traffic.len());
        // The batch-size histogram accounts for every request.
        prop_assert_eq!(
            stats.batch_size_histogram.iter().enumerate()
                .map(|(s, n)| (s as u64 + 1) * n).sum::<u64>(),
            traffic.len() as u64
        );
        // The default config has admission disabled: the plain PR 6 path,
        // with no admission annotations on any response.
        for response in &served {
            prop_assert!(response.admission.is_none());
        }
        assert_served_matches_session(&traffic, &served, session_config)?;
    }

    /// Acceptance criterion for cost-aware scheduling: with
    /// shortest-predicted-first batches, per-batch cycle caps and (in some
    /// cases) a tenant budget deferring traffic, each response is still
    /// byte-identical to a sequential `Session` replaying the requests in
    /// **admission order** — the order exposed by the stamped run indices.
    #[test]
    fn sjf_service_is_byte_identical_in_admission_order(
        codes in proptest::collection::vec(0u32..16, 3..12),
        p in 2u32..8,
        max_batch in 1usize..6,
        max_wait_us in 0u64..1200,
        pause_every in 1usize..5,
        pause_us in 0u64..400,
        probability in 0.01f64..0.2,
        seed in 0u64..1_000_000,
        // Below 500 means "no cap" (the vendored proptest has no Option
        // strategy); real caps range 500..50_000 predicted cycles.
        cap_cycles in 0u64..50_000,
        metered in proptest::bool::ANY,
        shutdown_before_wait in proptest::bool::ANY,
    ) {
        let (config, session_config) = service_config(
            max_batch,
            Duration::from_micros(max_wait_us),
            Some(NoiseModel::new(probability, seed)),
        );
        let mut admission = AdmissionConfig::disabled()
            .with_order(BatchOrder::ShortestPredictedFirst);
        if cap_cycles >= 500 {
            admission = admission.with_max_batch_cycles(cap_cycles);
        }
        if metered {
            // A fast-refilling budget: deferrals happen (admission order
            // diverges from submission order) but release within
            // milliseconds, so waiting on handles stays bounded.
            admission = admission.with_default_budget(TenantBudget::new(20_000, 50_000_000.0));
        }
        let config = ServiceConfig { admission, ..config };
        // Mix small and large items so SJF actually reorders.
        let traffic: Vec<(CollectiveRequest, Vec<Vec<f32>>)> = codes
            .iter()
            .enumerate()
            .map(|(i, &code)| {
                let b = if i % 2 == 0 { 4 } else { 32 };
                traffic_item(code, p + (i as u32 % 3), b)
            })
            .collect();

        let service = CollectiveService::with_config(config);
        let mut handles = Vec::with_capacity(traffic.len());
        for (i, (request, inputs)) in traffic.iter().enumerate() {
            let tenant = TenantId(i as u32 % 2);
            handles.push(service.submit_as(*request, inputs.clone(), tenant).unwrap());
            if pause_us > 0 && i % pause_every == pause_every - 1 {
                std::thread::sleep(Duration::from_micros(pause_us));
            }
        }
        if shutdown_before_wait {
            service.shutdown();
        }
        let served: Vec<Response> = handles.into_iter().map(ResponseHandle::wait).collect();
        let stats = service.shutdown();
        prop_assert_eq!(stats.completed as usize, traffic.len());

        // Reconstruct admission order from the stamped run indices: valid
        // items hold exactly the indices 0..n in some order.
        let mut executed: Vec<usize> = (0..served.len())
            .filter(|&i| served[i].admission.expect("active admission annotates").run_index.is_some())
            .collect();
        executed.sort_by_key(|&i| served[i].admission.unwrap().run_index.unwrap());
        for (rank, &i) in executed.iter().enumerate() {
            prop_assert_eq!(served[i].admission.unwrap().run_index.unwrap(), rank as u64);
        }

        // Replay sequentially in admission order: executed items must match
        // byte-for-byte; rejected items (no run index consumed on either
        // path) must produce the same typed error.
        let mut session = Session::with_config(session_config);
        for &i in &executed {
            let expected = session.run(&traffic[i].0, &traffic[i].1);
            let expected = expected.as_ref().expect("stamped items execute cleanly");
            let got = served[i].result.as_ref().expect("stamped items execute cleanly");
            prop_assert!(got.report == expected.report, "item {}: reports diverge", i);
            prop_assert!(got.outputs == expected.outputs, "item {}: outputs diverge", i);
        }
        for i in (0..served.len())
            .filter(|&i| served[i].admission.unwrap().run_index.is_none())
        {
            let expected = session.run(&traffic[i].0, &traffic[i].1);
            match (&served[i].result, &expected) {
                (Err(got), Err(want)) => prop_assert!(got == want, "item {}: errors diverge", i),
                _ => prop_assert!(false, "item {}: unstamped item did not error on both paths", i),
            }
        }
    }
}

#[test]
fn try_submit_backpressures_when_saturated() {
    // Saturate the batcher with a slow batch (grid collectives on 144 PEs
    // take milliseconds of simulation), then flood the tiny queue with
    // non-blocking submissions: the bound must reject, not buffer.
    let service = CollectiveService::with_config(ServiceConfig {
        queue_capacity: 2,
        max_batch: 4,
        max_wait: Duration::from_micros(50),
        ..ServiceConfig::default()
    });
    let big = CollectiveRequest::reduce(Topology::grid(12, 12), 64);
    let mut handles: Vec<ResponseHandle> =
        (0..4).map(|_| service.submit(big, deterministic_inputs(144, 64)).unwrap()).collect();

    let small = CollectiveRequest::reduce(Topology::line(4), 4);
    let mut rejections = 0u64;
    for _ in 0..200 {
        match service.try_submit(small, deterministic_inputs(4, 4)) {
            Ok(handle) => handles.push(handle),
            Err(CollectiveError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejections += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(rejections > 0, "a 2-slot queue cannot absorb a 200-request burst");
    assert_eq!(service.stats().rejected, rejections);

    // The blocking path waits for a slot instead of failing.
    handles.push(service.submit(small, deterministic_inputs(4, 4)).unwrap());
    for handle in handles {
        assert!(handle.wait().result.is_ok());
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn tenant_budget_refills_over_time_and_releases_the_deferral() {
    let request = CollectiveRequest::reduce(Topology::line(6), 16);
    let predicted = request.predicted_cycles(&Machine::wse2()).unwrap().ceil() as u64;
    let tenant = TenantId(3);
    // The bucket covers exactly one request and refills it in ~200 ms.
    let service = CollectiveService::with_config(ServiceConfig {
        admission: AdmissionConfig::disabled()
            .with_tenant_budget(tenant, TenantBudget::new(predicted, predicted as f64 * 5.0)),
        max_wait: Duration::from_micros(100),
        ..ServiceConfig::default()
    });
    let first = service.submit_as(request, deterministic_inputs(6, 16), tenant).unwrap();
    let second = service.submit_as(request, deterministic_inputs(6, 16), tenant).unwrap();
    assert!(first.wait().result.is_ok());
    // The deferred request must complete WITHOUT a shutdown drain: the
    // refill alone releases it. The generous timeout only bounds a
    // regression from hanging the suite.
    let response = second
        .wait_timeout(Duration::from_secs(30))
        .expect("the budget refill releases the deferral without shutdown");
    assert!(response.result.is_ok());
    match response.admission.unwrap().outcome {
        AdmissionOutcome::DeferredThenAdmitted { wait } => {
            assert!(wait > Duration::ZERO, "the deferral wait is measured");
        }
        other => panic!("expected a deferred outcome, got {other:?}"),
    }
    let stats = service.shutdown();
    assert_eq!(stats.deferred, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.shutdown_flushes, 0, "the release beat the shutdown drain");
}

#[test]
fn per_request_latency_is_reported_and_aggregated() {
    let service = CollectiveService::with_config(ServiceConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(100),
        ..ServiceConfig::default()
    });
    let request = CollectiveRequest::allreduce(Topology::line(6), 16);
    let handles: Vec<ResponseHandle> =
        (0..24).map(|_| service.submit(request, deterministic_inputs(6, 16)).unwrap()).collect();
    for handle in handles {
        let response = handle.wait();
        assert!(response.result.is_ok());
        assert!(response.latency > Duration::ZERO, "enqueue-to-complete latency is measured");
    }
    let stats = service.shutdown();
    assert_eq!(stats.latency.samples, 24);
    assert!(stats.latency.p50 > Duration::ZERO);
    assert!(stats.latency.p99 >= stats.latency.p50);
    assert!(stats.latency.max >= stats.latency.p99);
    assert!(stats.batches >= 3, "24 requests cannot fit two 8-item batches");
    // The executor behind the service amortised the repeated request.
    let executor = service.executor_stats();
    assert_eq!(executor.runs, 24);
    assert!(executor.plan_hits >= 23, "one shape: at most one plan generation per worker race");
}

#[test]
fn polling_handles_observe_completion() {
    let service = CollectiveService::with_config(ServiceConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(100),
        ..ServiceConfig::default()
    });
    let request = CollectiveRequest::reduce(Topology::line(5), 8);
    let handle = service.submit(request, deterministic_inputs(5, 8)).unwrap();
    // Poll until ready (bounded by the deadline flush + execution time).
    let mut polled = None;
    for _ in 0..10_000 {
        if let Some(response) = handle.try_get() {
            polled = Some(response);
            break;
        }
        std::thread::sleep(Duration::from_micros(50));
    }
    let polled = polled.expect("the deadline flush completes a lone request");
    assert!(polled.result.is_ok());
    assert!(handle.is_ready());
    // try_get does not consume: wait still returns the same response.
    let waited = handle.wait();
    assert_eq!(waited.result.unwrap().outputs, polled.result.unwrap().outputs);
    service.shutdown();
}
