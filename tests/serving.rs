//! Integration tests for the serving front-end: a `CollectiveService`'s
//! responses must be byte-identical to a sequential `Session` over the same
//! requests in submission order — whatever the batch windows, submission
//! pacing or shutdown timing did to the batching — and the bounded queue
//! must backpressure instead of buffering without limit.

use std::time::Duration;

use proptest::prelude::*;

use wse_collectives::prelude::*;
use wse_collectives::ExecutorConfig;
use wse_fabric::NoiseModel;
use wse_integration_tests::deterministic_inputs;

/// Build one request + inputs from a compact code; some codes produce
/// requests that are rejected (wrong input count, zero-length vectors) so
/// traffic mixes valid and invalid work like a real front-end sees.
fn traffic_item(code: u32, p: u32, b: u32) -> (CollectiveRequest, Vec<Vec<f32>>) {
    let request = match code % 4 {
        0 => CollectiveRequest::reduce(Topology::line(p), b),
        1 => CollectiveRequest::allreduce(Topology::line(p), b),
        2 => CollectiveRequest::reduce(Topology::grid(3, 3), b),
        _ => CollectiveRequest::broadcast(Topology::line(p), b),
    };
    let sources =
        if request.kind == CollectiveKind::Broadcast { 1 } else { request.topology.num_pes() };
    let mut inputs = deterministic_inputs(sources, b as usize);
    let mut request = request;
    match (code / 4) % 4 {
        // Valid item (twice as likely as each corruption).
        0 | 1 => {}
        // Wrong input count: rejected at validation.
        2 => {
            inputs.pop();
        }
        // Invalid request: rejected at plan resolution.
        _ => request.vector_len = 0,
    }
    (request, inputs)
}

fn service_config(
    max_batch: usize,
    max_wait: Duration,
    noise: Option<NoiseModel>,
) -> (ServiceConfig, SessionConfig) {
    let mut session = SessionConfig::default();
    session.run.noise = noise;
    let config = ServiceConfig {
        executor: ExecutorConfig { session: session.clone(), ..ExecutorConfig::default() },
        max_batch,
        max_wait,
        ..ServiceConfig::default()
    };
    (config, session)
}

fn assert_served_matches_session(
    traffic: &[(CollectiveRequest, Vec<Vec<f32>>)],
    served: &[Response],
    session_config: SessionConfig,
) -> Result<(), TestCaseError> {
    let mut session = Session::with_config(session_config);
    prop_assert_eq!(served.len(), traffic.len());
    for (i, ((request, inputs), response)) in traffic.iter().zip(served).enumerate() {
        let expected = session.run(request, inputs);
        match (&response.result, &expected) {
            (Ok(got), Ok(want)) => {
                prop_assert!(got.report == want.report, "item {i}: reports diverge");
                prop_assert!(got.outputs == want.outputs, "item {i}: outputs diverge");
            }
            (Err(got), Err(want)) => prop_assert!(got == want, "item {i}: errors diverge"),
            _ => prop_assert!(false, "item {i}: one path failed, the other did not"),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Acceptance criterion: any interleaving of `submit` pacing, batch
    /// windows and `shutdown` timing yields responses byte-identical to a
    /// sequential `Session` over the same requests — including batches
    /// containing rejected items, and with thermal noise attached (run
    /// indices must align across the service's batch cuts).
    #[test]
    fn service_is_byte_identical_to_sequential_session(
        codes in proptest::collection::vec(0u32..16, 3..14),
        p in 2u32..10,
        b in 2u32..24,
        max_batch in 1usize..7,
        max_wait_us in 0u64..1500,
        pause_every in 1usize..5,
        pause_us in 0u64..400,
        probability in 0.0f64..0.2,
        seed in 0u64..1_000_000,
        shutdown_before_wait in proptest::bool::ANY,
    ) {
        let noise = (probability > 0.0).then(|| NoiseModel::new(probability, seed));
        let (config, session_config) =
            service_config(max_batch, Duration::from_micros(max_wait_us), noise);
        let traffic: Vec<(CollectiveRequest, Vec<Vec<f32>>)> = codes
            .iter()
            .enumerate()
            .map(|(i, &code)| traffic_item(code, p + (i as u32 % 3), b))
            .collect();

        let service = CollectiveService::with_config(config);
        let mut handles = Vec::with_capacity(traffic.len());
        for (i, (request, inputs)) in traffic.iter().enumerate() {
            handles.push(service.submit(*request, inputs.clone()).unwrap());
            // Interleave the submissions with the batcher's clock: pauses
            // let deadlines fire mid-traffic, no pauses exercise size cuts.
            if pause_us > 0 && i % pause_every == pause_every - 1 {
                std::thread::sleep(Duration::from_micros(pause_us));
            }
        }
        if shutdown_before_wait {
            // Shutdown races the in-flight tail: it must drain, not drop.
            service.shutdown();
        }
        let served: Vec<Response> = handles.into_iter().map(ResponseHandle::wait).collect();
        let stats = service.shutdown();
        prop_assert_eq!(stats.completed as usize, traffic.len());
        prop_assert_eq!(stats.submitted as usize, traffic.len());
        // The batch-size histogram accounts for every request.
        prop_assert_eq!(
            stats.batch_size_histogram.iter().enumerate()
                .map(|(s, n)| (s as u64 + 1) * n).sum::<u64>(),
            traffic.len() as u64
        );
        assert_served_matches_session(&traffic, &served, session_config)?;
    }
}

#[test]
fn try_submit_backpressures_when_saturated() {
    // Saturate the batcher with a slow batch (grid collectives on 144 PEs
    // take milliseconds of simulation), then flood the tiny queue with
    // non-blocking submissions: the bound must reject, not buffer.
    let service = CollectiveService::with_config(ServiceConfig {
        queue_capacity: 2,
        max_batch: 4,
        max_wait: Duration::from_micros(50),
        ..ServiceConfig::default()
    });
    let big = CollectiveRequest::reduce(Topology::grid(12, 12), 64);
    let mut handles: Vec<ResponseHandle> =
        (0..4).map(|_| service.submit(big, deterministic_inputs(144, 64)).unwrap()).collect();

    let small = CollectiveRequest::reduce(Topology::line(4), 4);
    let mut rejections = 0u64;
    for _ in 0..200 {
        match service.try_submit(small, deterministic_inputs(4, 4)) {
            Ok(handle) => handles.push(handle),
            Err(CollectiveError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejections += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(rejections > 0, "a 2-slot queue cannot absorb a 200-request burst");
    assert_eq!(service.stats().rejected, rejections);

    // The blocking path waits for a slot instead of failing.
    handles.push(service.submit(small, deterministic_inputs(4, 4)).unwrap());
    for handle in handles {
        assert!(handle.wait().result.is_ok());
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn per_request_latency_is_reported_and_aggregated() {
    let service = CollectiveService::with_config(ServiceConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(100),
        ..ServiceConfig::default()
    });
    let request = CollectiveRequest::allreduce(Topology::line(6), 16);
    let handles: Vec<ResponseHandle> =
        (0..24).map(|_| service.submit(request, deterministic_inputs(6, 16)).unwrap()).collect();
    for handle in handles {
        let response = handle.wait();
        assert!(response.result.is_ok());
        assert!(response.latency > Duration::ZERO, "enqueue-to-complete latency is measured");
    }
    let stats = service.shutdown();
    assert_eq!(stats.latency.samples, 24);
    assert!(stats.latency.p50 > Duration::ZERO);
    assert!(stats.latency.p99 >= stats.latency.p50);
    assert!(stats.latency.max >= stats.latency.p99);
    assert!(stats.batches >= 3, "24 requests cannot fit two 8-item batches");
    // The executor behind the service amortised the repeated request.
    let executor = service.executor_stats();
    assert_eq!(executor.runs, 24);
    assert!(executor.plan_hits >= 23, "one shape: at most one plan generation per worker race");
}

#[test]
fn polling_handles_observe_completion() {
    let service = CollectiveService::with_config(ServiceConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(100),
        ..ServiceConfig::default()
    });
    let request = CollectiveRequest::reduce(Topology::line(5), 8);
    let handle = service.submit(request, deterministic_inputs(5, 8)).unwrap();
    // Poll until ready (bounded by the deadline flush + execution time).
    let mut polled = None;
    for _ in 0..10_000 {
        if let Some(response) = handle.try_get() {
            polled = Some(response);
            break;
        }
        std::thread::sleep(Duration::from_micros(50));
    }
    let polled = polled.expect("the deadline flush completes a lone request");
    assert!(polled.result.is_ok());
    assert!(handle.is_ready());
    // try_get does not consume: wait still returns the same response.
    let waited = handle.wait();
    assert_eq!(waited.result.unwrap().outputs, polled.result.unwrap().outputs);
    service.shutdown();
}
