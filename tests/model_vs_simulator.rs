//! Model-validation integration tests: the analytic predictions of
//! `wse-model` against the cycle-level measurements of `wse-fabric`.
//!
//! The paper validates its model on the CS-2 with mean relative errors
//! between 4% and 35% depending on the collective, and stresses that even
//! where absolute predictions are off, the model ranks algorithms correctly
//! (§8.5: a mis-ranking costs at most ~114 cycles). These tests hold the
//! reproduction to the same standard against the simulator.

use wse_collectives::prelude::*;
use wse_integration_tests::{deterministic_inputs, run_and_verify};
use wse_model::{costs_1d, costs_2d, lower_bound, Machine};

fn machine() -> Machine {
    Machine::wse2()
}

fn measured_reduce(pattern: ReducePattern, p: u32, b: u32) -> f64 {
    let plan = reduce_1d_plan(pattern, p, b, ReduceOp::Sum, &machine());
    run_and_verify(&plan, ReduceOp::Sum) as f64
}

#[test]
fn broadcast_prediction_error_is_small() {
    let m = machine();
    for (p, b) in [(16u32, 16u32), (64, 256), (128, 64), (256, 256)] {
        let path = LinePath::row(GridDim::row(p), 0);
        let plan = flood_broadcast_plan(&path, b, wse_fabric::wavelet::Color::new(0));
        let inputs = deterministic_inputs(1, b as usize);
        let measured =
            run_plan(&plan, &inputs, &RunConfig::default()).unwrap().runtime_cycles() as f64;
        let predicted = costs_1d::broadcast(p as u64, b as u64).predict(&m);
        let err = (measured - predicted).abs() / measured;
        assert!(
            err < 0.25,
            "p={p} b={b}: measured {measured}, predicted {predicted}, err {err:.2}"
        );
    }
}

#[test]
fn reduce_prediction_error_stays_within_the_papers_band() {
    let m = machine();
    let cases = [
        (ReducePattern::Chain, 64u32, 256u32),
        (ReducePattern::Chain, 32, 1024),
        (ReducePattern::Tree, 64, 16),
        (ReducePattern::TwoPhase, 64, 64),
        (ReducePattern::TwoPhase, 128, 256),
        (ReducePattern::Star, 16, 256),
    ];
    for (pattern, p, b) in cases {
        let measured = measured_reduce(pattern, p, b);
        let predicted = pattern.model_algorithm().cycles(p as u64, b as u64, &m, None);
        let err = (measured - predicted).abs() / measured;
        assert!(
            err < 0.40,
            "{} p={p} b={b}: measured {measured}, predicted {predicted}, err {:.2}",
            pattern.name(),
            err
        );
    }
}

#[test]
fn model_ranks_algorithms_consistently_with_the_simulator() {
    let m = machine();
    // Representative points from the three regimes of §5.7.
    for (p, b) in [(32u32, 2u32), (48, 64), (24, 1024)] {
        let patterns = [
            ReducePattern::Star,
            ReducePattern::Chain,
            ReducePattern::Tree,
            ReducePattern::TwoPhase,
        ];
        let mut measured: Vec<(ReducePattern, f64)> =
            patterns.iter().map(|&pat| (pat, measured_reduce(pat, p, b))).collect();
        let mut predicted: Vec<(ReducePattern, f64)> = patterns
            .iter()
            .map(|&pat| (pat, pat.model_algorithm().cycles(p as u64, b as u64, &m, None)))
            .collect();
        measured.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        predicted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        // The algorithm the model predicts to be fastest must be measured to
        // be within a small margin of the actually fastest one (§8.5).
        let model_choice = predicted[0].0;
        let measured_of_choice = measured.iter().find(|(pat, _)| *pat == model_choice).unwrap().1;
        let fastest_measured = measured[0].1;
        assert!(
            measured_of_choice <= fastest_measured * 1.15 + 120.0,
            "p={p} b={b}: the model's choice {} is {measured_of_choice} cycles, \
             but {} was measured fastest at {fastest_measured}",
            model_choice.name(),
            measured[0].0.name()
        );
    }
}

#[test]
fn simulated_runtimes_respect_the_lower_bound() {
    // No simulated algorithm may beat the paper's Reduce lower bound by more
    // than the simulator's small constant start-up offset.
    let m = machine();
    for (p, b) in [(16u32, 8u32), (32, 64), (64, 256)] {
        let bound = lower_bound::t_star_1d(p as u64, b as u64, &m);
        for pattern in ReducePattern::all() {
            let measured = measured_reduce(pattern, p, b);
            assert!(
                measured + 16.0 >= bound,
                "{} p={p} b={b}: measured {measured} below the lower bound {bound}",
                pattern.name()
            );
        }
    }
}

#[test]
fn two_dimensional_predictions_track_the_simulator() {
    let m = machine();
    let dim = GridDim::new(8, 8);
    let b = 64u32;
    let cases = [
        (
            Reduce2dPattern::Xy(ReducePattern::Chain),
            costs_2d::xy_reduce(8, 8, b as u64, costs_2d::Phase1d::Chain, &m),
        ),
        (
            Reduce2dPattern::Xy(ReducePattern::TwoPhase),
            costs_2d::xy_reduce(8, 8, b as u64, costs_2d::Phase1d::TwoPhase, &m),
        ),
        (Reduce2dPattern::Snake, costs_2d::snake_reduce(8, 8, b as u64, &m)),
    ];
    for (pattern, predicted) in cases {
        let plan = reduce_2d_plan(pattern, dim, b, ReduceOp::Sum, &m);
        let measured = run_and_verify(&plan, ReduceOp::Sum) as f64;
        let err = (measured - predicted).abs() / measured;
        assert!(
            err < 0.45,
            "{}: measured {measured}, predicted {predicted}, err {err:.2}",
            plan.name()
        );
    }
}

#[test]
fn ring_prediction_matches_simulation_shape() {
    let m = machine();
    for (p, b) in [(4u32, 64u32), (8, 256)] {
        let plan = allreduce_1d_plan(AllReducePattern::Ring, p, b, ReduceOp::Sum, &m);
        let measured = run_and_verify(&plan, ReduceOp::Sum) as f64;
        let predicted = costs_1d::ring_allreduce(p as u64, b as u64).predict(&m);
        let err = (measured - predicted).abs() / measured;
        assert!(err < 0.45, "ring p={p} b={b}: measured {measured}, predicted {predicted}");
    }
}
