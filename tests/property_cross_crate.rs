//! Property-based integration tests: random collective shapes, random data
//! and random schedules must always produce the reference result on the
//! simulator, and the model's structural invariants must hold for every
//! generated schedule.

use proptest::prelude::*;

use wse_collectives::prelude::*;
use wse_collectives::reduce::tree_reduce_plan;
use wse_model::autogen::{AutogenSolver, ReductionTree};
use wse_model::{lower_bound, Machine};

fn machine() -> Machine {
    Machine::wse2()
}

fn pattern_strategy() -> impl Strategy<Value = ReducePattern> {
    prop_oneof![
        Just(ReducePattern::Star),
        Just(ReducePattern::Chain),
        Just(ReducePattern::Tree),
        Just(ReducePattern::TwoPhase),
        Just(ReducePattern::AutoGen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any pattern on any (small) row shape with random data reduces to the
    /// reference sum.
    #[test]
    fn random_reduce_is_correct(
        p in 2u32..20,
        b in 1u32..48,
        pattern in pattern_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let m = machine();
        let plan = reduce_1d_plan(pattern, p, b, ReduceOp::Sum, &m);
        let inputs: Vec<Vec<f32>> = (0..p as usize)
            .map(|i| {
                (0..b as usize)
                    .map(|j| {
                        let x = seed
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add((i * 1000 + j) as u64);
                        ((x >> 40) as f32) / 1000.0 - 8.0
                    })
                    .collect()
            })
            .collect();
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
        let expected = expected_reduce(&inputs, ReduceOp::Sum);
        prop_assert!(wse_collectives::max_relative_error(&outcome.outputs[0].1, &expected) < 1e-3);
    }

    /// Two-phase schedules with arbitrary group sizes are valid pre-order
    /// trees and execute correctly.
    #[test]
    fn random_two_phase_group_sizes_are_correct(
        p in 2usize..24,
        s in 1usize..24,
        b in 1u32..32,
    ) {
        let tree = ReductionTree::two_phase(p, s.min(p));
        prop_assert!(tree.validate().is_ok());
        let path = LinePath::row(GridDim::row(p as u32), 0);
        let plan = tree_reduce_plan("prop-two-phase", &path, &tree, b, ReduceOp::Sum);
        let inputs: Vec<Vec<f32>> = (0..p).map(|i| vec![i as f32 + 0.5; b as usize]).collect();
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
        let expected = expected_reduce(&inputs, ReduceOp::Sum);
        prop_assert!(wse_collectives::max_relative_error(&outcome.outputs[0].1, &expected) < 1e-4);
    }

    /// The Auto-Gen schedule never loses to the fixed patterns under the
    /// model and never beats the lower bound, for arbitrary shapes.
    #[test]
    fn autogen_is_sandwiched_between_bound_and_fixed_patterns(
        p in 2u64..40,
        b in 1u64..4096,
    ) {
        let m = machine();
        let solver = AutogenSolver::new(p);
        let auto = solver.best_cost(b, &m).cycles;
        let bound = lower_bound::t_star_1d(p, b, &m);
        prop_assert!(auto + 1e-6 >= bound);
        for alg in wse_model::Reduce1dAlgorithm::fixed() {
            prop_assert!(auto <= alg.cycles(p, b, &m, None) + 1e-6);
        }
        // The chosen tree is a valid pre-order schedule of the right size.
        let tree = solver.best_tree(b, &m);
        prop_assert_eq!(tree.num_pes(), p as usize);
        prop_assert!(tree.validate().is_ok());
    }

    /// The ring AllReduce is correct for any PE count and any divisible
    /// vector length.
    #[test]
    fn random_ring_allreduce_is_correct(
        p in 2u32..12,
        chunks in 1u32..8,
        inputs_seed in 0u32..1000,
    ) {
        let b = p * chunks;
        let plan = allreduce_1d_plan(AllReducePattern::Ring, p, b, ReduceOp::Sum, &machine());
        let inputs: Vec<Vec<f32>> = (0..p as usize)
            .map(|i| (0..b as usize).map(|j| ((i + j + inputs_seed as usize) % 23) as f32 - 11.0).collect())
            .collect();
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
        let expected = expected_reduce(&inputs, ReduceOp::Sum);
        for (_, out) in &outcome.outputs {
            prop_assert!(wse_collectives::max_relative_error(out, &expected) < 1e-3);
        }
    }

    /// 2D collectives on arbitrary small grids produce the reference result.
    #[test]
    fn random_grid_reduce_is_correct(
        w in 1u32..7,
        h in 1u32..7,
        b in 1u32..24,
        snake in proptest::bool::ANY,
    ) {
        prop_assume!(w * h >= 2);
        let m = machine();
        let pattern = if snake {
            Reduce2dPattern::Snake
        } else {
            Reduce2dPattern::Xy(ReducePattern::TwoPhase)
        };
        let dim = GridDim::new(w, h);
        let plan = reduce_2d_plan(pattern, dim, b, ReduceOp::Sum, &m);
        let inputs: Vec<Vec<f32>> = (0..dim.num_pes())
            .map(|i| (0..b as usize).map(|j| (i * 7 + j) as f32 * 0.25).collect())
            .collect();
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
        let expected = expected_reduce(&inputs, ReduceOp::Sum);
        prop_assert!(wse_collectives::max_relative_error(&outcome.outputs[0].1, &expected) < 1e-3);
    }

    /// Random input data is delivered bit-exactly by the broadcast.
    #[test]
    fn random_broadcast_is_exact(
        p in 2u32..40,
        data in proptest::collection::vec(-1e6f32..1e6, 1..64),
    ) {
        let path = LinePath::row(GridDim::row(p), 0);
        let plan = flood_broadcast_plan(&path, data.len() as u32, wse_fabric::wavelet::Color::new(0));
        let outcome = run_plan(&plan, std::slice::from_ref(&data), &RunConfig::default()).unwrap();
        for (_, out) in &outcome.outputs {
            prop_assert_eq!(out, &data);
        }
    }
}
