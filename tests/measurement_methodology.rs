//! Integration tests of the §8.3 measurement methodology: clock-skewed,
//! thermally noisy runs whose calibrated measurement must agree with the
//! noise-free runtime.

use wse_collectives::measured::{measured_run, MeasureConfig};
use wse_collectives::prelude::*;
use wse_fabric::{ClockModel, NoiseModel};
use wse_integration_tests::deterministic_inputs;
use wse_model::Machine;

fn plain_runtime(plan: &CollectivePlan) -> u64 {
    let inputs = deterministic_inputs(plan.data_pes().len(), plan.vector_len() as usize);
    run_plan(plan, &inputs, &RunConfig::default()).unwrap().runtime_cycles()
}

#[test]
fn calibrated_measurement_matches_plain_runtime_in_1d() {
    let m = Machine::wse2();
    let plan = reduce_1d_plan(ReducePattern::AutoGen, 24, 128, ReduceOp::Sum, &m);
    let plain = plain_runtime(&plan);
    let inputs = deterministic_inputs(plan.data_pes().len(), plan.vector_len() as usize);

    let clock = ClockModel::random(plan.dim().num_pes(), 1_000_000, 21);
    let config = MeasureConfig::new(clock);
    let measured = measured_run(&plan, &inputs, &config).unwrap();
    assert!(measured.calibration.measurement.start_spread <= 57, "start spread too large");
    let diff = (measured.duration() as f64 - plain as f64).abs();
    assert!(
        diff <= plain as f64 * 0.15 + 32.0,
        "measured {} vs plain {plain}",
        measured.duration()
    );
}

#[test]
fn calibrated_measurement_matches_plain_runtime_in_2d() {
    let m = Machine::wse2();
    let dim = GridDim::new(6, 6);
    let plan =
        reduce_2d_plan(Reduce2dPattern::Xy(ReducePattern::TwoPhase), dim, 32, ReduceOp::Sum, &m);
    let plain = plain_runtime(&plan);
    let inputs = deterministic_inputs(plan.data_pes().len(), plan.vector_len() as usize);

    let clock = ClockModel::random(dim.num_pes(), 500_000, 5);
    let mut config = MeasureConfig::new(clock);
    config.start_spread_threshold = 129; // the paper's 2D calibration target
    let measured = measured_run(&plan, &inputs, &config).unwrap();
    assert!(measured.calibration.measurement.start_spread <= 129);
    let diff = (measured.duration() as f64 - plain as f64).abs();
    assert!(diff <= plain as f64 * 0.2 + 48.0, "measured {} vs plain {plain}", measured.duration());
}

#[test]
fn thermal_noise_slows_the_run_but_calibration_still_converges() {
    let m = Machine::wse2();
    let plan = reduce_1d_plan(ReducePattern::Chain, 16, 64, ReduceOp::Sum, &m);
    let plain = plain_runtime(&plan);
    let inputs = deterministic_inputs(plan.data_pes().len(), plan.vector_len() as usize);

    let clock = ClockModel::random(plan.dim().num_pes(), 10_000, 3);
    let mut config = MeasureConfig::new(clock);
    config.run.noise = Some(NoiseModel::new(0.08, 11));
    config.start_spread_threshold = 24;
    let measured = measured_run(&plan, &inputs, &config).unwrap();
    // Thermal no-ops can only slow things down (within a reasonable factor).
    assert!(measured.duration() as f64 >= plain as f64 * 0.9);
    assert!(measured.duration() as f64 <= plain as f64 * 1.6 + 64.0);
    assert!(measured.calibration.iterations <= 8);
}

#[test]
fn repeated_measurements_have_negligible_variance_without_noise() {
    // §8.1: five repetitions suffice because the machine is deterministic;
    // without thermal noise the simulator is exactly deterministic.
    let m = Machine::wse2();
    let plan = reduce_1d_plan(ReducePattern::TwoPhase, 16, 64, ReduceOp::Sum, &m);
    let inputs = deterministic_inputs(plan.data_pes().len(), plan.vector_len() as usize);
    let clock = ClockModel::random(plan.dim().num_pes(), 77_000, 13);
    let mut durations = Vec::new();
    for _ in 0..5 {
        let config = MeasureConfig::new(clock.clone());
        durations.push(measured_run(&plan, &inputs, &config).unwrap().duration());
    }
    assert!(durations.windows(2).all(|w| w[0] == w[1]), "durations {durations:?}");
}
