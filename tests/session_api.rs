//! Integration tests of the unified request API and execution sessions: the
//! "build once, select by model, execute many times" workflow, its plan
//! cache, and its equivalence with the one-shot free functions.

use proptest::prelude::*;

use wse_collectives::prelude::*;
use wse_integration_tests::deterministic_inputs;

/// Acceptance scenario: one session, three distinct requests, each run
/// several times — plan generation must happen exactly once per distinct
/// request, every output must match the serial reference, and the fabric
/// must be reused across runs of the same shape.
#[test]
fn one_session_many_requests_amortises_plan_generation() {
    let mut session = Session::new();
    let runs_per_request = 3;

    let requests = [
        CollectiveRequest::reduce(Topology::line(16), 64)
            .with_schedule(Schedule::Reduce1d(ReducePattern::TwoPhase)),
        CollectiveRequest::allreduce(Topology::line(16), 64),
        CollectiveRequest::reduce(Topology::grid(4, 4), 32),
    ];

    for round in 0..runs_per_request {
        for request in &requests {
            let inputs =
                deterministic_inputs(request.topology.num_pes(), request.vector_len as usize);
            let outcome = session
                .run(request, &inputs)
                .unwrap_or_else(|e| panic!("round {round}: {request:?} failed: {e}"));
            let expected = expected_reduce(&inputs, request.op);
            assert_outputs_close(&outcome, &expected, 1e-4);
        }
    }

    let stats = session.stats();
    assert_eq!(
        stats.plan_misses, 3,
        "plan generation must happen exactly once per distinct request"
    );
    assert_eq!(stats.plan_hits, (runs_per_request - 1) * requests.len() as u64);
    assert_eq!(stats.runs, runs_per_request * requests.len() as u64);
    // Two grid shapes (16x1 line and 4x4 grid) -> two fabrics, every other
    // run reuses one of them.
    assert_eq!(stats.fabrics_created, 2);
    assert_eq!(stats.fabric_reuses, stats.runs - stats.fabrics_created);
}

#[test]
fn with_root_is_rejected_on_rootless_collectives() {
    // The symmetric kinds have no root; offering one is a typed error the
    // caller sees immediately, before any session or service involvement.
    let rootless = [
        CollectiveRequest::allreduce(Topology::line(4), 8),
        CollectiveRequest::reduce_scatter(Topology::line(4), 8),
        CollectiveRequest::allgather(Topology::line(4), 8),
        CollectiveRequest::all_to_all(Topology::line(4), 8),
    ];
    for request in rootless {
        let err = request.with_root(Coord::new(0, 0)).unwrap_err();
        assert_eq!(err, CollectiveError::RootlessCollective { kind: request.kind });
        assert!(err.to_string().contains("no root"), "{err}");
    }

    // Rooted kinds accept the canonical root and still run end to end.
    let mut session = Session::new();
    let request = CollectiveRequest::gather(Topology::line(4), 8)
        .with_root(Coord::new(0, 0))
        .expect("Gather is rooted");
    let full = deterministic_inputs(1, 8).remove(0);
    let shards: Vec<Vec<f32>> = full.chunks(2).map(<[f32]>::to_vec).collect();
    let outcome = session.run(&request, &shards).unwrap();
    assert_eq!(outcome.outputs.len(), 1);
    assert_eq!(outcome.outputs[0].1, full);
}

#[test]
fn auto_schedules_cache_the_model_choice() {
    let mut session = Session::new();
    let request = CollectiveRequest::allreduce(Topology::line(32), 256);
    let first = session.plan(&request).expect("auto request resolves");
    let again = session.plan(&request).expect("cached request resolves");
    assert!(first.choice.is_some(), "auto resolution records the model choice");
    assert!(std::sync::Arc::ptr_eq(&first, &again));
    assert_eq!(session.stats().plan_misses, 1);
    assert_eq!(session.stats().plan_hits, 1);
}

#[test]
fn session_agrees_with_legacy_free_functions() {
    // The legacy shims and the session path must produce identical plans and
    // identical results for the model-selected algorithm.
    let machine = Machine::wse2();
    let mut session = Session::new();
    for (p, b) in [(8u32, 16u32), (16, 128)] {
        let legacy = select_reduce_1d(p, b, ReduceOp::Sum, &machine);
        let request = CollectiveRequest::reduce(Topology::line(p), b);
        let resolved = session.plan(&request).unwrap();
        assert_eq!(legacy.plan, resolved.plan, "p={p} b={b}");
        assert_eq!(legacy.algorithm, resolved.algorithm);

        let inputs = deterministic_inputs(p as usize, b as usize);
        let legacy_outcome = run_plan(&legacy.plan, &inputs, &RunConfig::default()).unwrap();
        let session_outcome = session.run(&request, &inputs).unwrap();
        assert_eq!(legacy_outcome.report, session_outcome.report);
        assert_eq!(legacy_outcome.outputs, session_outcome.outputs);
    }
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Auto),
        Just(Schedule::Reduce1d(ReducePattern::Star)),
        Just(Schedule::Reduce1d(ReducePattern::Chain)),
        Just(Schedule::Reduce1d(ReducePattern::Tree)),
        Just(Schedule::Reduce1d(ReducePattern::TwoPhase)),
        Just(Schedule::Reduce1d(ReducePattern::AutoGen)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A cache hit returns a plan byte-identical (same programs, same
    /// routing scripts, same data/result PEs) to a cold build of the same
    /// request.
    #[test]
    fn cache_hits_are_byte_identical_to_cold_builds(
        p in 2u32..24,
        b in 1u32..96,
        schedule in schedule_strategy(),
    ) {
        let mut session = Session::new();
        let request = CollectiveRequest::reduce(Topology::line(p), b).with_schedule(schedule);

        session.plan(&request).unwrap();          // cold build, populates the cache
        let hit = session.plan(&request).unwrap(); // cache hit
        prop_assert_eq!(session.stats().plan_hits, 1);

        let cold = request.resolve(&Machine::wse2()).unwrap(); // independent cold build
        prop_assert_eq!(&hit.plan, &cold.plan);
        prop_assert_eq!(&hit.algorithm, &cold.algorithm);
    }

    /// Session execution on a reused fabric matches the one-shot runner for
    /// arbitrary shapes and schedules.
    #[test]
    fn session_runs_match_one_shot_runs(
        p in 2u32..20,
        b in 1u32..48,
        schedule in schedule_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let request = CollectiveRequest::reduce(Topology::line(p), b).with_schedule(schedule);
        let inputs: Vec<Vec<f32>> = (0..p as usize)
            .map(|i| {
                (0..b as usize)
                    .map(|j| {
                        let x = seed
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add((i * 1000 + j) as u64);
                        ((x >> 40) as f32) / 1000.0 - 8.0
                    })
                    .collect()
            })
            .collect();

        let mut session = Session::new();
        // Run twice so the second run exercises the reset-fabric path.
        let _ = session.run(&request, &inputs).unwrap();
        let session_outcome = session.run(&request, &inputs).unwrap();

        let resolved = request.resolve(&Machine::wse2()).unwrap();
        let one_shot = run_plan(&resolved.plan, &inputs, &RunConfig::default()).unwrap();
        prop_assert_eq!(&session_outcome.report, &one_shot.report);
        prop_assert_eq!(&session_outcome.outputs, &one_shot.outputs);
    }
}
