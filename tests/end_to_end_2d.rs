//! End-to-end integration tests for the 2D collectives of §7.

use wse_collectives::prelude::*;
use wse_integration_tests::{deterministic_inputs, run_and_verify, session_run_and_verify};
use wse_model::Machine;

fn machine() -> Machine {
    Machine::wse2()
}

fn all_2d_patterns() -> Vec<Reduce2dPattern> {
    vec![
        Reduce2dPattern::Xy(ReducePattern::Star),
        Reduce2dPattern::Xy(ReducePattern::Chain),
        Reduce2dPattern::Xy(ReducePattern::Tree),
        Reduce2dPattern::Xy(ReducePattern::TwoPhase),
        Reduce2dPattern::Xy(ReducePattern::AutoGen),
        Reduce2dPattern::Snake,
    ]
}

#[test]
fn reduce_2d_is_correct_on_rectangular_grids() {
    let mut session = Session::new();
    for (w, h) in [(4u32, 4u32), (6, 3), (2, 8), (5, 5)] {
        for pattern in all_2d_patterns() {
            let request = CollectiveRequest::reduce(Topology::grid(w, h), 12)
                .with_schedule(Schedule::Reduce2d(pattern));
            session_run_and_verify(&mut session, &request);
        }
    }
    // One fabric per distinct grid shape, reused across all six patterns.
    assert_eq!(session.stats().fabrics_created, 4);
}

#[test]
fn allreduce_2d_is_correct_and_uses_at_most_five_colors() {
    let mut session = Session::new();
    for pattern in all_2d_patterns() {
        let request = CollectiveRequest::allreduce(Topology::grid(4, 6), 16)
            .with_schedule(Schedule::AllReduce2d(pattern));
        let resolved = session.plan(&request).unwrap();
        assert!(resolved.plan.colors_used().len() <= 5, "{}", resolved.plan.name());
        session_run_and_verify(&mut session, &request);
    }
}

#[test]
fn broadcast_2d_reaches_the_whole_grid_with_message_energy() {
    let dim = GridDim::new(7, 5);
    let b = 24u32;
    let plan = flood_broadcast_2d_plan(dim, b, wse_fabric::wavelet::Color::new(2));
    let inputs = deterministic_inputs(1, b as usize);
    let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
    assert_eq!(outcome.outputs.len(), dim.num_pes());
    for (_, out) in &outcome.outputs {
        assert_eq!(out, &inputs[0]);
    }
    assert_eq!(outcome.report.energy_hops, b as u64 * (dim.num_pes() as u64 - 1));
    // 2D broadcast latency is close to B + width + height (§7.1), far below
    // the 1D broadcast over the same PE count.
    let cycles = outcome.runtime_cycles() as f64;
    let model = (b + dim.width + dim.height) as f64 + 5.0;
    assert!((cycles - model).abs() / model < 0.5, "cycles {cycles}, model {model}");
}

#[test]
fn snake_reduce_behaves_like_a_chain_over_the_whole_grid() {
    let m = machine();
    let dim = GridDim::new(6, 4);
    let b = 64u32;
    let snake = run_and_verify(
        &reduce_2d_plan(Reduce2dPattern::Snake, dim, b, ReduceOp::Sum, &m),
        ReduceOp::Sum,
    );
    let chain_1d = run_and_verify(
        &reduce_1d_plan(ReducePattern::Chain, dim.num_pes() as u32, b, ReduceOp::Sum, &m),
        ReduceOp::Sum,
    );
    let rel = (snake as f64 - chain_1d as f64).abs() / chain_1d as f64;
    assert!(rel < 0.1, "snake {snake} vs 1D chain {chain_1d}");
}

#[test]
fn xy_two_phase_beats_snake_on_wide_grids_with_short_vectors() {
    // §7.6: the snake's linear depth makes it hopeless once the grid grows,
    // while the X-Y Two-Phase stays close to the 2D lower bound.
    let m = machine();
    let dim = GridDim::new(16, 16);
    let b = 16u32;
    let snake = run_and_verify(
        &reduce_2d_plan(Reduce2dPattern::Snake, dim, b, ReduceOp::Sum, &m),
        ReduceOp::Sum,
    );
    let xy = run_and_verify(
        &reduce_2d_plan(Reduce2dPattern::Xy(ReducePattern::TwoPhase), dim, b, ReduceOp::Sum, &m),
        ReduceOp::Sum,
    );
    assert!(xy * 3 < snake, "xy {xy} should be far below snake {snake}");
}

#[test]
fn selected_2d_allreduce_is_correct_for_several_shapes() {
    let mut session = Session::new();
    for (side, b) in [(4u32, 64u32), (8, 16), (6, 128)] {
        let request = CollectiveRequest::allreduce(Topology::grid(side, side), b);
        let resolved = session.plan(&request).unwrap();
        assert!(resolved.choice.is_some(), "auto requests record the model's choice");
        session_run_and_verify(&mut session, &request);
    }
}
