//! Shared helpers for the cross-crate integration tests.

use wse_collectives::prelude::*;

/// Deterministic input vectors for `pes` PEs with `len` elements each.
pub fn deterministic_inputs(pes: usize, len: usize) -> Vec<Vec<f32>> {
    (0..pes)
        .map(|i| (0..len).map(|j| ((i * 13 + j * 5) % 97) as f32 * 0.0625 - 1.5).collect())
        .collect()
}

/// Run a plan on deterministic inputs and assert the result matches the
/// serial reference reduction; returns the measured runtime in cycles.
pub fn run_and_verify(plan: &CollectivePlan, op: ReduceOp) -> u64 {
    let inputs = deterministic_inputs(plan.data_pes().len(), plan.vector_len() as usize);
    let outcome = run_plan(plan, &inputs, &RunConfig::default())
        .unwrap_or_else(|e| panic!("plan {} failed: {e}", plan.name()));
    let expected = expected_reduce(&inputs, op);
    assert_outputs_close(&outcome, &expected, 1e-3);
    outcome.runtime_cycles()
}

/// Resolve and run a request on a session with deterministic inputs, assert
/// the result matches the serial reference, and return the runtime in cycles.
///
/// Broadcast requests take a single input vector (the root's) and expect it
/// verbatim on every result PE; Reduce/AllReduce take one vector per PE and
/// are checked against the serial reference reduction.
pub fn session_run_and_verify(session: &mut Session, request: &CollectiveRequest) -> u64 {
    let sources =
        if request.kind == CollectiveKind::Broadcast { 1 } else { request.topology.num_pes() };
    let inputs = deterministic_inputs(sources, request.vector_len as usize);
    let outcome =
        session.run(request, &inputs).unwrap_or_else(|e| panic!("request {request:?} failed: {e}"));
    let expected = expected_reduce(&inputs, request.op);
    assert_outputs_close(&outcome, &expected, 1e-3);
    outcome.runtime_cycles()
}
