//! Property-based equivalence tests for the parallel batch executor: a
//! batch of randomly generated requests — mixed kinds, topologies, explicit
//! and model-selected schedules — executed by `Executor::run_batch` must be
//! byte-identical, outcome for outcome (outputs *and* `RunReport`s), to the
//! same batch run sequentially on a fresh `Session`.

use proptest::prelude::*;

use wse_collectives::prelude::*;
use wse_fabric::NoiseModel;
use wse_integration_tests::deterministic_inputs;

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Auto),
        Just(Schedule::Reduce1d(ReducePattern::Star)),
        Just(Schedule::Reduce1d(ReducePattern::Chain)),
        Just(Schedule::Reduce1d(ReducePattern::Tree)),
        Just(Schedule::Reduce1d(ReducePattern::TwoPhase)),
        Just(Schedule::Reduce1d(ReducePattern::AutoGen)),
    ]
}

fn op_strategy() -> impl Strategy<Value = ReduceOp> {
    prop_oneof![Just(ReduceOp::Sum), Just(ReduceOp::Max), Just(ReduceOp::Min)]
}

/// One random batch item. `kind_pick` selects between a 1D Reduce with an
/// explicit or Auto schedule, an Auto AllReduce, a 2D Reduce, and a
/// Broadcast, so every batch mixes plan families.
fn item(
    kind_pick: u32,
    p: u32,
    w: u32,
    h: u32,
    b: u32,
    schedule: Schedule,
    op: ReduceOp,
) -> BatchItem {
    let request = match kind_pick % 4 {
        0 => CollectiveRequest::reduce(Topology::line(p), b).with_schedule(schedule).with_op(op),
        1 => CollectiveRequest::allreduce(Topology::line(p), b).with_op(op),
        2 => CollectiveRequest::reduce(Topology::grid(w, h), b).with_op(op),
        _ => CollectiveRequest::broadcast(Topology::line(p), b),
    };
    let sources =
        if request.kind == CollectiveKind::Broadcast { 1 } else { request.topology.num_pes() };
    BatchItem::new(request, deterministic_inputs(sources, b as usize))
}

fn assert_equivalent(
    parallel: &[Result<RunOutcome, CollectiveError>],
    sequential: &[Result<RunOutcome, CollectiveError>],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(parallel.len(), sequential.len());
    for (i, (p, s)) in parallel.iter().zip(sequential).enumerate() {
        match (p, s) {
            (Ok(p), Ok(s)) => {
                prop_assert!(p.report == s.report, "item {i}: reports diverge");
                prop_assert!(p.outputs == s.outputs, "item {i}: outputs diverge");
            }
            (Err(p), Err(s)) => prop_assert!(p == s, "item {i}: errors diverge"),
            _ => prop_assert!(false, "item {i}: one path failed, the other did not"),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Executor and sequential session agree on arbitrary mixed batches.
    #[test]
    fn executor_matches_sequential_session_on_mixed_batches(
        picks in proptest::collection::vec(0u32..4, 4..10),
        p in 2u32..14,
        w in 2u32..5,
        h in 2u32..5,
        b in 1u32..40,
        schedule in schedule_strategy(),
        op in op_strategy(),
    ) {
        let batch: Vec<BatchItem> = picks
            .iter()
            .enumerate()
            .map(|(i, &pick)| {
                // Vary shapes within the batch so plans, grids and vector
                // lengths all mix: some items repeat (cache hits), some are
                // unique (fresh plans).
                let p = p + (i as u32 % 3);
                let b = b + (i as u32 % 2) * 3;
                item(pick, p, w, h, b, schedule, op)
            })
            .collect();

        let executor = Executor::new();
        let parallel = executor.run_batch(&batch);
        let sequential = Session::new().run_batch(&batch);
        assert_equivalent(&parallel, &sequential)?;
        prop_assert_eq!(executor.stats().runs as usize, batch.len());
    }

    /// The equivalence holds on batches containing rejected items: a
    /// rejected item consumes no noise-run index on either path, so the
    /// realizations of the valid items that follow it stay aligned with a
    /// sequential session (the PR 4 noise-index divergence, fixed).
    #[test]
    fn executor_matches_sequential_session_with_rejected_items(
        codes in proptest::collection::vec(0u32..12, 4..12),
        p in 2u32..12,
        b in 2u32..32,
        probability in 0.01f64..0.25,
        seed in 0u64..1_000_000,
    ) {
        let mut config = SessionConfig::default();
        config.run.noise = Some(NoiseModel::new(probability, seed));
        let batch: Vec<BatchItem> = codes
            .iter()
            .map(|&code| {
                let mut item = item(code % 4, p, 3, 3, b, Schedule::Auto, ReduceOp::Sum);
                match (code / 4) % 3 {
                    // Valid item.
                    0 => {}
                    // Wrong input count: rejected at validation.
                    1 => {
                        item.inputs.pop();
                    }
                    // Invalid request: rejected at plan resolution.
                    _ => item.request.vector_len = 0,
                }
                item
            })
            .collect();

        let executor = Executor::with_session_config(config.clone());
        let parallel = executor.run_batch(&batch);
        let sequential = Session::with_config(config).run_batch(&batch);
        assert_equivalent(&parallel, &sequential)?;
        let valid = parallel.iter().filter(|r| r.is_ok()).count();
        // Only valid items may consume runs (and run indices).
        prop_assert_eq!(executor.stats().runs as usize, valid);
    }

    /// The equivalence holds with a thermal-noise model attached: item `i`
    /// draws noise-run index `i` on both paths, so parallel scheduling
    /// cannot perturb the per-item realization.
    #[test]
    fn executor_matches_sequential_session_under_noise(
        picks in proptest::collection::vec(0u32..4, 3..8),
        p in 2u32..12,
        b in 1u32..32,
        probability in 0.01f64..0.25,
        seed in 0u64..1_000_000,
    ) {
        let mut config = SessionConfig::default();
        config.run.noise = Some(NoiseModel::new(probability, seed));
        let batch: Vec<BatchItem> = picks
            .iter()
            .map(|&pick| item(pick, p, 3, 3, b, Schedule::Auto, ReduceOp::Sum))
            .collect();

        let executor = Executor::with_session_config(config.clone());
        let parallel = executor.run_batch(&batch);
        let sequential = Session::with_config(config).run_batch(&batch);
        assert_equivalent(&parallel, &sequential)?;
    }
}

/// Acceptance scenario: a ≥16-item mixed batch (the throughput benchmark's
/// shape, scaled down) is byte-identical between the two paths, and the
/// executor amortises plans and fabrics across it.
#[test]
fn sixteen_request_mixed_batch_is_byte_identical() {
    let mut batch = Vec::new();
    for i in 0..16u32 {
        // The second half repeats the first half's request shapes, so the
        // batch exercises both fresh plan generation and shared-cache hits.
        let v = i % 8;
        batch.push(item(v, 6 + (v % 4), 3, 4, 8 + (v % 5), Schedule::Auto, ReduceOp::Sum));
    }
    let executor = Executor::new();
    let parallel = executor.run_batch(&batch);
    let sequential = Session::new().run_batch(&batch);
    assert_eq!(parallel.len(), sequential.len());
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.as_ref().unwrap().report, s.as_ref().unwrap().report);
        assert_eq!(p.as_ref().unwrap().outputs, s.as_ref().unwrap().outputs);
    }
    assert_eq!(executor.stats().runs, 16);

    // Amortisation counters are only deterministic with one worker: under
    // the default worker count, racing workers may all miss on a fresh
    // request (the shared cache allows duplicate generation) and check out
    // fabrics before any check-in.
    let pinned = Executor::with_config(ExecutorConfig {
        workers: Some(std::num::NonZeroUsize::new(1).unwrap()),
        ..ExecutorConfig::default()
    });
    pinned.run_batch(&batch);
    let stats = pinned.stats();
    assert_eq!(stats.runs, 16);
    assert!(stats.plan_hits > 0, "repeated shapes must hit the shared cache");
    assert!(stats.fabric_reuses > 0, "repeated grids must reuse pooled fabrics");
}
