//! Property-based equivalence of the two fabric engines.
//!
//! The fast event-driven engine (`EngineKind::Fast`, the default) must be
//! *observably byte-identical* to the reference cycle-stepper
//! (`EngineKind::Reference`) — same [`wse_fabric::RunReport`] (cycles,
//! per-PE finish times, energy, link loads, stall/no-op counters), same
//! outputs, same errors — across every collective the library can plan,
//! with and without thermal noise. These properties drive randomly shaped
//! 1D/2D plans through both engines via the public request API and compare
//! whole outcomes with `==`, not tolerances.

use proptest::prelude::*;

use wse_collectives::prelude::*;
use wse_fabric::pe::PeStats;
use wse_fabric::program::PeProgram;
use wse_fabric::router::{ColorScript, RouteRule};
use wse_fabric::{
    Color, Coord, Direction, DirectionSet, Fabric, FabricError, FabricParams, NoiseModel,
};
use wse_integration_tests::deterministic_inputs;
use wse_model::Machine;

/// Run one request through both engines and assert byte-identity of the
/// full outcome (report and outputs).
fn assert_engines_agree(request: &CollectiveRequest, ramp_latency: u64, noise: Option<NoiseModel>) {
    let machine = Machine::wse2();
    let resolved = request.resolve(&machine).expect("request resolves");
    let sources =
        if request.kind == CollectiveKind::Broadcast { 1 } else { request.topology.num_pes() };
    let inputs = deterministic_inputs(sources, request.vector_len as usize);

    let mut fast = RunConfig::with_ramp_latency(ramp_latency);
    fast.noise = noise;
    let reference = fast.clone().with_engine(EngineKind::Reference);

    let fast_outcome = run_plan(&resolved.plan, &inputs, &fast).expect("fast run succeeds");
    let reference_outcome =
        run_plan(&resolved.plan, &inputs, &reference).expect("reference run succeeds");

    assert_eq!(fast_outcome.report, reference_outcome.report, "reports diverge: {request:?}");
    assert_eq!(fast_outcome.outputs, reference_outcome.outputs, "outputs diverge: {request:?}");
}

/// Build a random collective request from sampled primitives: 1D and 2D
/// topologies, all three kinds, all reduce ops, explicit and Auto schedules.
fn build_request(
    shape: u32,
    p: u32,
    w: u32,
    h: u32,
    b: u32,
    op: u32,
    schedule: u32,
) -> CollectiveRequest {
    let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod][op as usize % 4];
    match shape % 6 {
        0 => {
            let pattern = [
                ReducePattern::Star,
                ReducePattern::Chain,
                ReducePattern::Tree,
                ReducePattern::TwoPhase,
                ReducePattern::AutoGen,
            ][schedule as usize % 5];
            CollectiveRequest::reduce(Topology::line(p), b)
                .with_op(op)
                .with_schedule(Schedule::Reduce1d(pattern))
        }
        1 => CollectiveRequest::allreduce(Topology::line(p), b).with_op(op),
        2 => CollectiveRequest::broadcast(Topology::line(p), b),
        3 => CollectiveRequest::reduce(Topology::grid(w, h), b).with_op(op),
        4 => CollectiveRequest::allreduce(Topology::grid(w, h), b),
        _ => CollectiveRequest::broadcast(Topology::grid(w, h), b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any plannable collective, any ramp latency: identical reports and
    /// outputs on both engines.
    #[test]
    fn engines_agree_on_noiseless_runs(
        shape in 0u32..6,
        p in 2u32..14,
        w in 2u32..5,
        h in 2u32..5,
        b in 1u32..24,
        op in 0u32..4,
        schedule in 0u32..5,
        ramp_latency in 0u64..6,
    ) {
        let request = build_request(shape, p, w, h, b, op, schedule);
        assert_engines_agree(&request, ramp_latency, None);
    }

    /// With a thermal-noise model attached (which disables skip-ahead but
    /// not active-set routing), the engines still agree draw for draw.
    #[test]
    fn engines_agree_under_noise(
        shape in 0u32..6,
        p in 2u32..12,
        w in 2u32..4,
        h in 2u32..4,
        b in 1u32..16,
        op in 0u32..4,
        schedule in 0u32..5,
        probability in 0.01f64..0.25,
        seed in 0u64..1_000_000,
    ) {
        let request = build_request(shape, p, w, h, b, op, schedule);
        assert_engines_agree(&request, 2, Some(NoiseModel::new(probability, seed)));
    }
}

/// Everything observable about a fabric mid- or post-run, gathered through
/// the public API: where it stopped, every PE's memory, statistics and
/// per-instruction finish times.
#[derive(Debug, PartialEq)]
struct FabricSnapshot {
    cycle: u64,
    locals: Vec<Vec<f32>>,
    stats: Vec<PeStats>,
    instruction_finish: Vec<Vec<u64>>,
}

impl FabricSnapshot {
    fn take(fabric: &Fabric) -> Self {
        let dim = fabric.dim();
        let coords = (0..dim.height).flat_map(|y| (0..dim.width).map(move |x| Coord::new(x, y)));
        let mut snap = FabricSnapshot {
            cycle: fabric.cycle(),
            locals: Vec::new(),
            stats: Vec::new(),
            instruction_finish: Vec::new(),
        };
        for at in coords {
            snap.locals.push(fabric.local(at).to_vec());
            snap.stats.push(fabric.pe_stats(at));
            snap.instruction_finish.push(fabric.instruction_finish(at).to_vec());
        }
        snap
    }
}

/// Run `plan` on a raw fabric with the given engine until it fails, and
/// return the error together with a full state snapshot at the failure
/// point.
fn run_until_failure(
    plan: &wse_collectives::prelude::CollectivePlan,
    inputs: &[Vec<f32>],
    params: FabricParams,
    noise: Option<NoiseModel>,
) -> (FabricError, FabricSnapshot) {
    let mut fabric = Fabric::new(plan.dim(), params);
    fabric.set_noise(noise);
    plan.apply(&mut fabric);
    for (at, data) in plan.data_pes().iter().zip(inputs) {
        fabric.set_local(*at, data);
    }
    let err = fabric.run().expect_err("run is expected to fail");
    (err, FabricSnapshot::take(&fabric))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Dense-shape coverage: 2D allreduce grids up to 16x16 — every PE
    /// holds a program, so the fast engine's dense SoA executor carries
    /// (nearly) the whole run — with and without a noise model.
    #[test]
    fn engines_agree_on_dense_allreduce_grids(
        w in 2u32..17,
        h in 2u32..17,
        b in 1u32..33,
        op in 0u32..4,
        ramp_latency in 0u64..6,
        noise_sel in 0u32..3,
        probability in 0.01f64..0.25,
        seed in 0u64..1_000_000,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod][op as usize % 4];
        let request = CollectiveRequest::allreduce(Topology::grid(w, h), b).with_op(op);
        let noise = (noise_sel > 0).then(|| NoiseModel::new(probability, seed));
        assert_engines_agree(&request, ramp_latency, noise);
    }

    /// Cycle-limit truncation: stopping both engines mid-collective (at a
    /// limit drawn from inside the run) must leave byte-identical errors
    /// *and* byte-identical intermediate state — memories, statistics,
    /// instruction finish times — however far the dense executor had taken
    /// the fast engine.
    #[test]
    fn engines_agree_on_cycle_limit_truncation(
        w in 2u32..13,
        h in 2u32..13,
        b in 1u32..17,
        limit_seed in 0u64..1_000_000,
        noise_sel in 0u32..3,
        probability in 0.01f64..0.25,
        seed in 0u64..1_000_000,
    ) {
        let request = CollectiveRequest::allreduce(Topology::grid(w, h), b);
        let resolved = request.resolve(&Machine::wse2()).expect("request resolves");
        let inputs = deterministic_inputs(request.topology.num_pes(), b as usize);
        let noise = (noise_sel > 0).then(|| NoiseModel::new(probability, seed));

        let config = RunConfig { noise: noise.clone(), ..RunConfig::default() };
        let natural =
            run_plan(&resolved.plan, &inputs, &config).expect("untruncated run succeeds").report.cycles;
        prop_assume!(natural >= 2);
        let limit = 1 + limit_seed % (natural - 1);

        let params = FabricParams { max_cycles: limit, ..FabricParams::default() };
        let fast = params.with_engine(EngineKind::Fast);
        let reference = params.with_engine(EngineKind::Reference);
        let (fast_err, fast_snap) = run_until_failure(&resolved.plan, &inputs, fast, noise.clone());
        let (ref_err, ref_snap) = run_until_failure(&resolved.plan, &inputs, reference, noise);
        assert!(
            matches!(fast_err, FabricError::CycleLimitExceeded { .. }),
            "expected a cycle-limit error at limit {limit}, got {fast_err:?}"
        );
        assert_eq!(fast_err, ref_err, "truncation errors diverge at limit {limit}");
        assert_eq!(fast_snap, ref_snap, "truncated state diverges at limit {limit}");
    }
}

/// Deadlock truncation in the dense regime: every PE participates (half
/// send, half under-consume), so the fast engine is deep in its SoA dense
/// path when the fabric wedges. Both engines must report the same deadlock
/// cycle and stuck-PE set, and leave byte-identical state behind.
///
/// No noise variant: injected no-ops count as architectural progress in
/// both engines, so a noisy fabric never strings together enough idle
/// cycles to trip deadlock detection — it would run to the cycle limit
/// instead (the noisy truncation path is covered by
/// `engines_agree_on_cycle_limit_truncation`).
#[test]
fn engines_agree_on_dense_deadlock() {
    let dim = GridDim::new(8, 8);
    let color = Color::new(0);
    let east = DirectionSet::single(Direction::East);
    let ramp = DirectionSet::single(Direction::Ramp);

    let run = |engine: EngineKind| {
        let mut fabric = Fabric::new(dim, FabricParams::default().with_engine(engine));
        // Pair adjacent PEs: even columns send 16 values east, odd columns
        // consume only 2 — the rest back up through the ramp and inbufs
        // until nothing can move.
        for y in 0..dim.height {
            for x in (0..dim.width).step_by(2) {
                let sender = Coord::new(x, y);
                let mut program = PeProgram::new();
                program.send(color, 0, 16);
                fabric.set_program(sender, &program);
                fabric.set_local(sender, &(0..16).map(|i| i as f32 + 1.0).collect::<Vec<_>>());
                fabric.set_router_script(
                    sender,
                    color,
                    ColorScript::new(vec![RouteRule::forever(Direction::Ramp, east)]),
                );

                let receiver = Coord::new(x + 1, y);
                let mut program = PeProgram::new();
                program.recv_store(color, 0, 2);
                fabric.set_program(receiver, &program);
                fabric.set_local(receiver, &[0.0; 2]);
                fabric.set_router_script(
                    receiver,
                    color,
                    ColorScript::new(vec![RouteRule::forever(Direction::West, ramp)]),
                );
            }
        }
        let err = fabric.run().expect_err("the over-sent exchange deadlocks");
        (err, FabricSnapshot::take(&fabric))
    };

    let (fast_err, fast_snap) = run(EngineKind::Fast);
    let (ref_err, ref_snap) = run(EngineKind::Reference);
    assert!(
        matches!(fast_err, FabricError::Deadlock { .. }),
        "expected a deadlock, got {fast_err:?}"
    );
    assert_eq!(fast_err, ref_err, "deadlock errors diverge");
    assert_eq!(fast_snap, ref_snap, "deadlocked state diverges");
}

/// A fast-engine run repeated on the session's reset fabric reproduces
/// itself exactly — the event-driven state (active sets, wake times) leaves
/// no residue behind `Fabric::reset`.
#[test]
fn fast_rerun_on_reset_fabric_reproduces_itself() {
    let mut session = Session::new();
    let requests = [
        CollectiveRequest::reduce(Topology::line(12), 32),
        CollectiveRequest::allreduce(Topology::grid(3, 3), 16),
        CollectiveRequest::broadcast(Topology::line(9), 24),
    ];
    for request in &requests {
        let sources =
            if request.kind == CollectiveKind::Broadcast { 1 } else { request.topology.num_pes() };
        let inputs = deterministic_inputs(sources, request.vector_len as usize);
        let first = session.run(request, &inputs).unwrap();
        let second = session.run(request, &inputs).unwrap();
        assert_eq!(first.report, second.report, "{request:?}");
        assert_eq!(first.outputs, second.outputs, "{request:?}");
    }
    assert!(session.stats().fabric_reuses >= 3, "reruns must exercise the reset path");
}
