//! Property-based equivalence of the two fabric engines.
//!
//! The fast event-driven engine (`EngineKind::Fast`, the default) must be
//! *observably byte-identical* to the reference cycle-stepper
//! (`EngineKind::Reference`) — same [`wse_fabric::RunReport`] (cycles,
//! per-PE finish times, energy, link loads, stall/no-op counters), same
//! outputs, same errors — across every collective the library can plan,
//! with and without thermal noise. These properties drive randomly shaped
//! 1D/2D plans through both engines via the public request API and compare
//! whole outcomes with `==`, not tolerances.

use proptest::prelude::*;

use wse_collectives::prelude::*;
use wse_fabric::NoiseModel;
use wse_integration_tests::deterministic_inputs;
use wse_model::Machine;

/// Run one request through both engines and assert byte-identity of the
/// full outcome (report and outputs).
fn assert_engines_agree(request: &CollectiveRequest, ramp_latency: u64, noise: Option<NoiseModel>) {
    let machine = Machine::wse2();
    let resolved = request.resolve(&machine).expect("request resolves");
    let sources =
        if request.kind == CollectiveKind::Broadcast { 1 } else { request.topology.num_pes() };
    let inputs = deterministic_inputs(sources, request.vector_len as usize);

    let mut fast = RunConfig::with_ramp_latency(ramp_latency);
    fast.noise = noise;
    let reference = fast.clone().with_engine(EngineKind::Reference);

    let fast_outcome = run_plan(&resolved.plan, &inputs, &fast).expect("fast run succeeds");
    let reference_outcome =
        run_plan(&resolved.plan, &inputs, &reference).expect("reference run succeeds");

    assert_eq!(fast_outcome.report, reference_outcome.report, "reports diverge: {request:?}");
    assert_eq!(fast_outcome.outputs, reference_outcome.outputs, "outputs diverge: {request:?}");
}

/// Build a random collective request from sampled primitives: 1D and 2D
/// topologies, all three kinds, all reduce ops, explicit and Auto schedules.
fn build_request(
    shape: u32,
    p: u32,
    w: u32,
    h: u32,
    b: u32,
    op: u32,
    schedule: u32,
) -> CollectiveRequest {
    let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod][op as usize % 4];
    match shape % 6 {
        0 => {
            let pattern = [
                ReducePattern::Star,
                ReducePattern::Chain,
                ReducePattern::Tree,
                ReducePattern::TwoPhase,
                ReducePattern::AutoGen,
            ][schedule as usize % 5];
            CollectiveRequest::reduce(Topology::line(p), b)
                .with_op(op)
                .with_schedule(Schedule::Reduce1d(pattern))
        }
        1 => CollectiveRequest::allreduce(Topology::line(p), b).with_op(op),
        2 => CollectiveRequest::broadcast(Topology::line(p), b),
        3 => CollectiveRequest::reduce(Topology::grid(w, h), b).with_op(op),
        4 => CollectiveRequest::allreduce(Topology::grid(w, h), b),
        _ => CollectiveRequest::broadcast(Topology::grid(w, h), b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any plannable collective, any ramp latency: identical reports and
    /// outputs on both engines.
    #[test]
    fn engines_agree_on_noiseless_runs(
        shape in 0u32..6,
        p in 2u32..14,
        w in 2u32..5,
        h in 2u32..5,
        b in 1u32..24,
        op in 0u32..4,
        schedule in 0u32..5,
        ramp_latency in 0u64..6,
    ) {
        let request = build_request(shape, p, w, h, b, op, schedule);
        assert_engines_agree(&request, ramp_latency, None);
    }

    /// With a thermal-noise model attached (which disables skip-ahead but
    /// not active-set routing), the engines still agree draw for draw.
    #[test]
    fn engines_agree_under_noise(
        shape in 0u32..6,
        p in 2u32..12,
        w in 2u32..4,
        h in 2u32..4,
        b in 1u32..16,
        op in 0u32..4,
        schedule in 0u32..5,
        probability in 0.01f64..0.25,
        seed in 0u64..1_000_000,
    ) {
        let request = build_request(shape, p, w, h, b, op, schedule);
        assert_engines_agree(&request, 2, Some(NoiseModel::new(probability, seed)));
    }
}

/// A fast-engine run repeated on the session's reset fabric reproduces
/// itself exactly — the event-driven state (active sets, wake times) leaves
/// no residue behind `Fabric::reset`.
#[test]
fn fast_rerun_on_reset_fabric_reproduces_itself() {
    let mut session = Session::new();
    let requests = [
        CollectiveRequest::reduce(Topology::line(12), 32),
        CollectiveRequest::allreduce(Topology::grid(3, 3), 16),
        CollectiveRequest::broadcast(Topology::line(9), 24),
    ];
    for request in &requests {
        let sources =
            if request.kind == CollectiveKind::Broadcast { 1 } else { request.topology.num_pes() };
        let inputs = deterministic_inputs(sources, request.vector_len as usize);
        let first = session.run(request, &inputs).unwrap();
        let second = session.run(request, &inputs).unwrap();
        assert_eq!(first.report, second.report, "{request:?}");
        assert_eq!(first.outputs, second.outputs, "{request:?}");
    }
    assert!(session.stats().fabric_reuses >= 3, "reruns must exercise the reset path");
}
