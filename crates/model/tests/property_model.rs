//! Property-based tests of the performance model's invariants.

use proptest::prelude::*;

use wse_model::autogen::{AutogenSolver, ReductionTree};
use wse_model::costs_2d::Phase1d;
use wse_model::lower_bound::LowerBound1d;
use wse_model::selection::Reduce1dAlgorithm;
use wse_model::{costs_1d, costs_2d, lower_bound, Machine};

fn machine() -> Machine {
    Machine::wse2()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The runtime estimate of every fixed algorithm is monotone in the
    /// vector length: longer vectors can never be predicted to finish
    /// earlier.
    #[test]
    fn predictions_are_monotone_in_vector_length(p in 2u64..300, b in 1u64..8192) {
        let m = machine();
        for alg in Reduce1dAlgorithm::fixed() {
            let shorter = alg.cycles(p, b, &m, None);
            let longer = alg.cycles(p, b + 1, &m, None);
            prop_assert!(longer + 1e-9 >= shorter, "{:?} p={p} b={b}", alg);
        }
        prop_assert!(
            costs_1d::broadcast(p, b + 1).predict(&m) >= costs_1d::broadcast(p, b).predict(&m)
        );
        prop_assert!(
            costs_1d::ring_allreduce(p, b + 1).predict(&m)
                >= costs_1d::ring_allreduce(p, b).predict(&m) - 1e-9
        );
    }

    /// The broadcast costs exactly as much as a message (Lemma 4.1) and the
    /// 2D broadcast never costs more than the 1D broadcast over the same
    /// number of PEs (§7.1).
    #[test]
    fn broadcast_lemmas_hold(p in 2u64..400, b in 1u64..4096, rows in 2u64..20, cols in 2u64..20) {
        let m = machine();
        let msg = costs_1d::message(p, b).predict(&m);
        let bcast = costs_1d::broadcast(p, b).predict(&m);
        prop_assert!((msg - bcast).abs() < 1e-9);

        let two_d = costs_2d::broadcast_2d(rows, cols, b).predict(&m);
        let one_d = costs_1d::broadcast(rows * cols, b).predict(&m);
        prop_assert!(two_d <= one_d + 1e-9);
    }

    /// The 1D lower bound never exceeds the cost of any algorithm (fixed or
    /// generated), and is itself at least the trivial distance/contention
    /// bound.
    #[test]
    fn lower_bound_is_consistent(p in 2u64..64, b in 1u64..4096) {
        let m = machine();
        let lb = LowerBound1d::new(p);
        let bound = lb.t_star(b, &m);
        for alg in Reduce1dAlgorithm::fixed() {
            prop_assert!(bound <= alg.cycles(p, b, &m, None) + 1e-6);
        }
        // Trivial bounds: the farthest value must travel P-1 hops and the
        // root must receive at least B wavelets... the model bound keeps the
        // distance but drops contention, so only check the distance part.
        prop_assert!(bound + 1e-9 >= (p - 1) as f64);
    }

    /// The scalar-energy lower bound is monotone: more PEs need more energy,
    /// more depth allowance never increases the minimum energy.
    #[test]
    fn scalar_energy_bound_is_monotone(p in 3u64..48, d in 1u64..47) {
        let d = d.min(p - 1);
        let larger = LowerBound1d::new(p);
        let smaller = LowerBound1d::new(p - 1);
        if let (Some(a), Some(b)) = (larger.scalar_energy(d), smaller.scalar_energy(d.min(p - 2).max(1))) {
            prop_assert!(a >= b);
        }
        if d < p - 1 {
            if let (Some(e1), Some(e2)) = (larger.scalar_energy(d), larger.scalar_energy(d + 1)) {
                prop_assert!(e2 <= e1);
            }
        }
    }

    /// Every named pattern tree has the cost terms the lemmas assign to it.
    #[test]
    fn pattern_trees_match_lemma_terms(p in 2usize..200) {
        let chain = ReductionTree::chain(p);
        prop_assert_eq!(chain.height(), (p - 1) as u64);
        prop_assert_eq!(chain.scalar_energy(), (p - 1) as u64);
        prop_assert_eq!(chain.max_in_degree(), 1);

        let star = ReductionTree::star(p);
        prop_assert_eq!(star.height(), 1.min(p as u64 - 1).max(u64::from(p > 1)));
        prop_assert_eq!(star.scalar_energy(), (p * (p - 1) / 2) as u64);

        let tree = ReductionTree::binary_tree(p);
        prop_assert!(tree.height() <= costs_1d::ceil_log2(p as u64).max(1));
        prop_assert!(tree.validate().is_ok());
    }

    /// Two-phase trees are valid for every group size, have in-degree at
    /// most 2 and height close to s + P/s.
    #[test]
    fn two_phase_trees_are_well_formed(p in 2usize..300, s in 1usize..40) {
        let s = s.min(p);
        let tree = ReductionTree::two_phase(p, s);
        prop_assert!(tree.validate().is_ok());
        prop_assert!(tree.max_in_degree() <= 2);
        let groups = p.div_ceil(s);
        prop_assert!(tree.height() <= (s - 1 + groups) as u64);
    }

    /// The Auto-Gen solver's DP states always reconstruct to trees whose
    /// energy, height and in-degree respect the state's budgets.
    #[test]
    fn autogen_dp_states_reconstruct_consistently(p in 2u64..40, d in 1u64..40, c in 1u64..40) {
        let solver = AutogenSolver::new(p);
        let d = d.min(solver.depth_cap());
        let c = c.min(solver.contention_cap());
        if let Some(energy) = solver.dp_energy(d, c) {
            let tree = solver.dp_tree(d, c);
            prop_assert!(tree.validate().is_ok());
            prop_assert_eq!(tree.scalar_energy(), energy);
            prop_assert!(tree.height() <= d);
            prop_assert!(tree.max_in_degree() <= c);
        }
    }

    /// Auto-Gen dominates every fixed pattern and respects the lower bound
    /// for arbitrary shapes (the Figure 1e property).
    #[test]
    fn autogen_dominates_and_respects_bound(p in 2u64..48, b in 1u64..8192) {
        let m = machine();
        let solver = AutogenSolver::new(p);
        let lb = LowerBound1d::new(p);
        let auto = solver.best_cost(b, &m).cycles;
        prop_assert!(auto + 1e-6 >= lb.t_star(b, &m));
        for alg in Reduce1dAlgorithm::fixed() {
            prop_assert!(auto <= alg.cycles(p, b, &m, None) + 1e-6);
        }
    }

    /// The 2D bound of Lemma 7.2 never exceeds any 2D algorithm's predicted
    /// cost.
    #[test]
    fn two_d_bound_is_below_all_2d_costs(rows in 2u64..64, cols in 2u64..64, b in 1u64..2048) {
        let m = machine();
        let bound = lower_bound::t_star_2d(rows, cols, b, &m);
        prop_assert!(bound <= costs_2d::snake_reduce(rows, cols, b, &m) + 1e-6);
        for pat in Phase1d::all() {
            prop_assert!(bound <= costs_2d::xy_reduce(rows, cols, b, pat, &m) + 1e-6);
        }
    }

    /// Increasing the ramp latency never decreases any prediction.
    #[test]
    fn ramp_latency_monotonicity(p in 2u64..200, b in 1u64..2048, t_r in 0u64..7) {
        let low = Machine::with_ramp_latency(t_r);
        let high = Machine::with_ramp_latency(t_r + 1);
        for alg in Reduce1dAlgorithm::fixed() {
            prop_assert!(alg.cycles(p, b, &high, None) + 1e-9 >= alg.cycles(p, b, &low, None));
        }
    }
}
