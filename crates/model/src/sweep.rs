//! Parameter sweeps matching the paper's experimental methodology (§1.4, §8).
//!
//! The paper evaluates two experiment families:
//!
//! 1. fix the number of PEs to the largest power of two (512 in a row,
//!    512×512 on the full wafer) and sweep the vector length from 4 bytes to
//!    16 KiB (a third of the PE memory), and
//! 2. fix the vector length to 1 KB (256 f32 values) and sweep the number of
//!    PEs from 4 to 512 (4×4 to 512×512 in 2D).
//!
//! All vector lengths are expressed both in bytes (as on the paper's axes)
//! and in 32-bit wavelets (as used by the model).

/// Number of bytes per wavelet (the WSE routes 32-bit packets).
pub const BYTES_PER_WAVELET: u64 = 4;

/// The vector lengths (in bytes) of Figure 1: `2^2 .. 2^15` bytes.
pub fn figure1_vector_bytes() -> Vec<u64> {
    (2..=15).map(|e| 1u64 << e).collect()
}

/// The vector lengths (in bytes) of Figures 11 and 13a/b: 4 bytes to 16 KiB.
pub fn figure11_vector_bytes() -> Vec<u64> {
    (2..=14).map(|e| 1u64 << e).collect()
}

/// The PE-row lengths of Figures 1, 8 and 12: 4×1 up to 512×1.
pub fn figure12_pe_counts() -> Vec<u64> {
    (2..=9).map(|e| 1u64 << e).collect()
}

/// The square grid side lengths of Figures 10 and 13c: 4×4 up to 512×512.
pub fn figure13_grid_sides() -> Vec<u64> {
    (2..=9).map(|e| 1u64 << e).collect()
}

/// The fixed vector length of the PE-count sweeps: 1 KB = 256 wavelets.
pub const FIXED_VECTOR_BYTES: u64 = 1024;

/// Convert a vector length in bytes to wavelets (rounding up, minimum one
/// wavelet).
pub fn bytes_to_wavelets(bytes: u64) -> u64 {
    bytes.div_ceil(BYTES_PER_WAVELET).max(1)
}

/// Convert a vector length in wavelets to bytes.
pub fn wavelets_to_bytes(wavelets: u64) -> u64 {
    wavelets * BYTES_PER_WAVELET
}

/// Pretty-print a byte count the way the paper's axes do (4 B, 256 B, 1 KB,
/// 16 KB, ...).
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{} KB", bytes / 1024)
    } else {
        format!("{} B", bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_sweep_matches_paper_axes() {
        let bytes = figure1_vector_bytes();
        assert_eq!(bytes.first(), Some(&4));
        assert_eq!(bytes.last(), Some(&32768));
        assert_eq!(bytes.len(), 14);
    }

    #[test]
    fn figure11_sweep_stops_at_a_third_of_pe_memory() {
        let bytes = figure11_vector_bytes();
        assert_eq!(bytes.last(), Some(&16384));
        // 16 KiB == 4096 wavelets == one third of the 48 KiB PE memory.
        assert_eq!(bytes_to_wavelets(16384), 4096);
    }

    #[test]
    fn pe_count_sweeps_are_powers_of_two_from_4_to_512() {
        for v in [figure12_pe_counts(), figure13_grid_sides()] {
            assert_eq!(v.first(), Some(&4));
            assert_eq!(v.last(), Some(&512));
            assert_eq!(v.len(), 8);
            assert!(v.windows(2).all(|w| w[1] == 2 * w[0]));
        }
    }

    #[test]
    fn byte_wavelet_conversions() {
        assert_eq!(bytes_to_wavelets(4), 1);
        assert_eq!(bytes_to_wavelets(3), 1);
        assert_eq!(bytes_to_wavelets(1024), 256);
        assert_eq!(wavelets_to_bytes(256), 1024);
        assert_eq!(bytes_to_wavelets(FIXED_VECTOR_BYTES), 256);
    }

    #[test]
    fn byte_formatting_matches_paper_axis_labels() {
        assert_eq!(format_bytes(4), "4 B");
        assert_eq!(format_bytes(256), "256 B");
        assert_eq!(format_bytes(1024), "1 KB");
        assert_eq!(format_bytes(16384), "16 KB");
    }
}
