//! Model-driven algorithm selection and optimality ratios.
//!
//! This module answers the questions behind Figures 1, 8 and 10 of the
//! paper: *which algorithm does the model predict to be fastest for a given
//! PE count and vector length*, and *how far is each algorithm from the
//! lower bound*.

use crate::costs_2d::Phase1d;
use crate::{autogen::AutogenSolver, costs_1d, costs_2d, lower_bound, Machine};

/// The 1D Reduce algorithms compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduce1dAlgorithm {
    /// Star Reduce (§5.1).
    Star,
    /// Chain Reduce (§5.2) — the vendor's pattern.
    Chain,
    /// Binary Tree Reduce (§5.3).
    Tree,
    /// Two-Phase Reduce (§5.4), group size `S ≈ sqrt(P)`.
    TwoPhase,
    /// Auto-Gen Reduce (§5.5).
    AutoGen,
}

impl Reduce1dAlgorithm {
    /// The fixed (non-generated) algorithms, in the paper's order.
    pub fn fixed() -> [Reduce1dAlgorithm; 4] {
        [Self::Star, Self::Chain, Self::Tree, Self::TwoPhase]
    }

    /// All algorithms including Auto-Gen.
    pub fn all() -> [Reduce1dAlgorithm; 5] {
        [Self::Star, Self::Chain, Self::Tree, Self::TwoPhase, Self::AutoGen]
    }

    /// Name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Star => "Star",
            Self::Chain => "Chain",
            Self::Tree => "Tree",
            Self::TwoPhase => "Two-Phase",
            Self::AutoGen => "Auto-Gen",
        }
    }

    /// Predicted Reduce cycles for `p` PEs and `b` wavelets.
    ///
    /// For [`Reduce1dAlgorithm::AutoGen`] an [`AutogenSolver`] for `p` must
    /// be supplied (it is reusable across vector lengths); passing `None`
    /// builds one on the fly.
    pub fn cycles(&self, p: u64, b: u64, machine: &Machine, solver: Option<&AutogenSolver>) -> f64 {
        match self {
            Self::Star => costs_1d::star(p, b).predict(machine),
            Self::Chain => costs_1d::chain(p, b).predict(machine),
            Self::Tree => costs_1d::tree(p, b).predict(machine),
            Self::TwoPhase => costs_1d::two_phase_default(p, b).predict(machine),
            Self::AutoGen => match solver {
                Some(s) => {
                    assert_eq!(s.pes(), p, "solver built for a different PE count");
                    s.best_cost(b, machine).cycles
                }
                None => AutogenSolver::new(p).best_cost(b, machine).cycles,
            },
        }
    }
}

/// The 1D AllReduce algorithms compared in Figure 8 and §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllReduce1dAlgorithm {
    /// Star Reduce followed by the flooding Broadcast.
    StarBcast,
    /// Chain Reduce followed by Broadcast — the vendor's approach.
    ChainBcast,
    /// Tree Reduce followed by Broadcast.
    TreeBcast,
    /// Two-Phase Reduce followed by Broadcast.
    TwoPhaseBcast,
    /// Auto-Gen Reduce followed by Broadcast.
    AutoGenBcast,
    /// Ring AllReduce (§6.2).
    Ring,
    /// Butterfly (recursive doubling) AllReduce, predicted only.
    Butterfly,
}

impl AllReduce1dAlgorithm {
    /// The fixed algorithms considered for the best-algorithm regions of
    /// Figure 8 (Auto-Gen and Butterfly excluded, as in the paper).
    pub fn fixed() -> [AllReduce1dAlgorithm; 5] {
        [Self::StarBcast, Self::ChainBcast, Self::TreeBcast, Self::TwoPhaseBcast, Self::Ring]
    }

    /// Every AllReduce variant the paper discusses.
    pub fn all() -> [AllReduce1dAlgorithm; 7] {
        [
            Self::StarBcast,
            Self::ChainBcast,
            Self::TreeBcast,
            Self::TwoPhaseBcast,
            Self::AutoGenBcast,
            Self::Ring,
            Self::Butterfly,
        ]
    }

    /// Name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Self::StarBcast => "Star+Bcast",
            Self::ChainBcast => "Chain+Bcast",
            Self::TreeBcast => "Tree+Bcast",
            Self::TwoPhaseBcast => "Two Phase+Bcast",
            Self::AutoGenBcast => "Auto-Gen+Bcast",
            Self::Ring => "Ring",
            Self::Butterfly => "Butterfly",
        }
    }

    /// Predicted AllReduce cycles for `p` PEs and `b` wavelets.
    pub fn cycles(&self, p: u64, b: u64, machine: &Machine, solver: Option<&AutogenSolver>) -> f64 {
        let rtb = |reduce: f64| costs_1d::reduce_then_broadcast(reduce, p, b, machine);
        match self {
            Self::StarBcast => rtb(Reduce1dAlgorithm::Star.cycles(p, b, machine, solver)),
            Self::ChainBcast => rtb(Reduce1dAlgorithm::Chain.cycles(p, b, machine, solver)),
            Self::TreeBcast => rtb(Reduce1dAlgorithm::Tree.cycles(p, b, machine, solver)),
            Self::TwoPhaseBcast => rtb(Reduce1dAlgorithm::TwoPhase.cycles(p, b, machine, solver)),
            Self::AutoGenBcast => rtb(Reduce1dAlgorithm::AutoGen.cycles(p, b, machine, solver)),
            Self::Ring => costs_1d::ring_allreduce(p, b).predict(machine),
            Self::Butterfly => costs_1d::butterfly_allreduce(p, b).predict(machine),
        }
    }
}

/// The 2D Reduce algorithms compared in §7 and Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduce2dAlgorithm {
    /// X-Y Reduce with a Star phase on each axis.
    XyStar,
    /// X-Y Reduce with a Chain phase on each axis — the vendor's pattern.
    XyChain,
    /// X-Y Reduce with a Tree phase on each axis.
    XyTree,
    /// X-Y Reduce with a Two-Phase phase on each axis.
    XyTwoPhase,
    /// X-Y Reduce with an Auto-Gen phase on each axis.
    XyAutoGen,
    /// The Snake Reduce (§7.3).
    Snake,
}

impl Reduce2dAlgorithm {
    /// The fixed algorithms considered for the best-algorithm regions of
    /// Figure 10 / Figure 13.
    pub fn fixed() -> [Reduce2dAlgorithm; 5] {
        [Self::XyStar, Self::XyChain, Self::XyTree, Self::XyTwoPhase, Self::Snake]
    }

    /// Every 2D Reduce variant including X-Y Auto-Gen.
    pub fn all() -> [Reduce2dAlgorithm; 6] {
        [Self::XyStar, Self::XyChain, Self::XyTree, Self::XyTwoPhase, Self::XyAutoGen, Self::Snake]
    }

    /// Name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Self::XyStar => "X-Y Star",
            Self::XyChain => "X-Y Chain",
            Self::XyTree => "X-Y Tree",
            Self::XyTwoPhase => "X-Y Two Phase",
            Self::XyAutoGen => "X-Y Auto-Gen",
            Self::Snake => "Snake",
        }
    }

    /// Predicted 2D Reduce cycles for an `m × n` grid and `b` wavelets.
    ///
    /// For X-Y Auto-Gen, `row_solver` and `col_solver` are Auto-Gen solvers
    /// for the row length `n` and column length `m` respectively (built on
    /// the fly when `None`).
    pub fn cycles(
        &self,
        m_rows: u64,
        n_cols: u64,
        b: u64,
        machine: &Machine,
        row_solver: Option<&AutogenSolver>,
        col_solver: Option<&AutogenSolver>,
    ) -> f64 {
        match self {
            Self::XyStar => costs_2d::xy_reduce(m_rows, n_cols, b, Phase1d::Star, machine),
            Self::XyChain => costs_2d::xy_reduce(m_rows, n_cols, b, Phase1d::Chain, machine),
            Self::XyTree => costs_2d::xy_reduce(m_rows, n_cols, b, Phase1d::Tree, machine),
            Self::XyTwoPhase => costs_2d::xy_reduce(m_rows, n_cols, b, Phase1d::TwoPhase, machine),
            Self::XyAutoGen => {
                let x = Reduce1dAlgorithm::AutoGen.cycles(n_cols, b, machine, row_solver);
                let y = Reduce1dAlgorithm::AutoGen.cycles(m_rows, b, machine, col_solver);
                x + y
            }
            Self::Snake => costs_2d::snake_reduce(m_rows, n_cols, b, machine),
        }
    }

    /// Predicted 2D AllReduce cycles: this Reduce followed by the 2D
    /// flooding Broadcast (§7.4).
    pub fn allreduce_cycles(
        &self,
        m_rows: u64,
        n_cols: u64,
        b: u64,
        machine: &Machine,
        row_solver: Option<&AutogenSolver>,
        col_solver: Option<&AutogenSolver>,
    ) -> f64 {
        let red = self.cycles(m_rows, n_cols, b, machine, row_solver, col_solver);
        costs_2d::reduce_then_broadcast_2d(red, m_rows, n_cols, b, machine)
    }
}

/// The 1D algorithms of the inference collective suite (ReduceScatter,
/// AllGather, Gather, Scatter, All-to-All). Each kind currently has one
/// mesh-native candidate, so selection is a single-candidate choice — the
/// enum still flows through [`Choice`] so the `Schedule::Auto` pipeline,
/// prediction reporting and plan naming treat the suite exactly like the
/// contested kinds, and future candidates (e.g. a tree Gather) only extend
/// the candidate lists here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite1dAlgorithm {
    /// The first half of the Ring AllReduce plus a homing rotation.
    RingReduceScatter,
    /// The second half of the Ring AllReduce on its own.
    RingAllGather,
    /// The pipelined westward line Gather.
    LineGather,
    /// The pipelined eastward line Scatter.
    LineScatter,
    /// The store-and-forward ring rotation All-to-All.
    RotateAllToAll,
}

impl Suite1dAlgorithm {
    /// Name as used in plan names and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::RingReduceScatter => "Ring-ReduceScatter",
            Self::RingAllGather => "Ring-AllGather",
            Self::LineGather => "Line-Gather",
            Self::LineScatter => "Line-Scatter",
            Self::RotateAllToAll => "Rotate-AllToAll",
        }
    }

    /// Predicted cycles for `p` PEs and `b` wavelets.
    pub fn cycles(&self, p: u64, b: u64, machine: &Machine) -> f64 {
        match self {
            Self::RingReduceScatter => costs_1d::ring_reduce_scatter(p, b).predict(machine),
            Self::RingAllGather => costs_1d::ring_allgather(p, b).predict(machine),
            Self::LineGather => costs_1d::line_gather(p, b).predict(machine),
            Self::LineScatter => costs_1d::line_scatter(p, b).predict(machine),
            Self::RotateAllToAll => costs_1d::rotate_all_to_all(p, b).predict(machine),
        }
    }
}

/// The Broadcast algorithms. Broadcast has a single mesh-native candidate
/// per topology — the flooding broadcast of §4.2/§7.1, which multicast makes
/// as cheap as one message — so, like [`Suite1dAlgorithm`], selection is a
/// single-candidate [`Choice`]. The enum exists so *every* collective kind
/// has a plan-free prediction entry point (`choose_broadcast_*`), which is
/// what lets a serving front-end price a request on its submit path without
/// building a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BroadcastAlgorithm {
    /// The 1D flooding broadcast along a line (§4.2).
    Flood1d,
    /// The 2D flooding broadcast over a grid (§7.1).
    Flood2d,
}

impl BroadcastAlgorithm {
    /// Name as used in plan names and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Flood1d => "Flood",
            Self::Flood2d => "2D Flood",
        }
    }
}

/// Result of a best-algorithm query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Best<A> {
    /// The winning algorithm.
    pub algorithm: A,
    /// Its predicted runtime in cycles.
    pub cycles: f64,
}

/// The algorithm family a [`Choice`] refers to.
///
/// Plan generators (the `Schedule::Auto` path of `wse-collectives`) consume
/// this structured form instead of parsing algorithm names.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChosenAlgorithm {
    /// A 1D Reduce algorithm.
    Reduce1d(Reduce1dAlgorithm),
    /// A 1D AllReduce algorithm.
    AllReduce1d(AllReduce1dAlgorithm),
    /// A 2D Reduce algorithm.
    Reduce2d(Reduce2dAlgorithm),
    /// A 2D Reduce algorithm followed by the 2D flooding Broadcast.
    AllReduce2d(Reduce2dAlgorithm),
    /// A 1D algorithm of the inference collective suite.
    Suite1d(Suite1dAlgorithm),
    /// A flooding Broadcast (1D or 2D).
    Broadcast(BroadcastAlgorithm),
}

impl ChosenAlgorithm {
    /// Name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Reduce1d(a) => a.name(),
            Self::AllReduce1d(a) => a.name(),
            Self::Reduce2d(a) | Self::AllReduce2d(a) => a.name(),
            Self::Suite1d(a) => a.name(),
            Self::Broadcast(a) => a.name(),
        }
    }
}

/// A structured model decision: which algorithm to run and the runtime the
/// model predicts for it. This is the §1.3/§10 "model → select" step as a
/// value that code generation can consume directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Choice {
    /// The selected algorithm.
    pub algorithm: ChosenAlgorithm,
    /// Predicted runtime in cycles for the selected algorithm.
    pub predicted_cycles: f64,
}

/// The model's choice of fixed 1D Reduce algorithm for `(p, b)`.
pub fn choose_reduce_1d(p: u64, b: u64, machine: &Machine) -> Choice {
    let best = best_fixed_reduce_1d(p, b, machine);
    Choice { algorithm: ChosenAlgorithm::Reduce1d(best.algorithm), predicted_cycles: best.cycles }
}

/// The model's choice of fixed 1D AllReduce algorithm for `(p, b)`.
pub fn choose_allreduce_1d(p: u64, b: u64, machine: &Machine) -> Choice {
    let best = best_fixed_allreduce_1d(p, b, machine);
    Choice {
        algorithm: ChosenAlgorithm::AllReduce1d(best.algorithm),
        predicted_cycles: best.cycles,
    }
}

/// The model's choice of fixed 2D Reduce algorithm for an `m × n` grid.
pub fn choose_reduce_2d(m_rows: u64, n_cols: u64, b: u64, machine: &Machine) -> Choice {
    let best = best_fixed_reduce_2d(m_rows, n_cols, b, machine);
    Choice { algorithm: ChosenAlgorithm::Reduce2d(best.algorithm), predicted_cycles: best.cycles }
}

/// The model's choice of fixed 2D AllReduce algorithm for an `m × n` grid.
pub fn choose_allreduce_2d(m_rows: u64, n_cols: u64, b: u64, machine: &Machine) -> Choice {
    let best = best_fixed_allreduce_2d(m_rows, n_cols, b, machine);
    Choice {
        algorithm: ChosenAlgorithm::AllReduce2d(best.algorithm),
        predicted_cycles: best.cycles,
    }
}

/// The model's choice for a 1D ReduceScatter (single candidate: the ring).
pub fn choose_reduce_scatter_1d(p: u64, b: u64, machine: &Machine) -> Choice {
    suite_choice(Suite1dAlgorithm::RingReduceScatter, p, b, machine)
}

/// The model's choice for a 1D AllGather (single candidate: the ring).
pub fn choose_allgather_1d(p: u64, b: u64, machine: &Machine) -> Choice {
    suite_choice(Suite1dAlgorithm::RingAllGather, p, b, machine)
}

/// The model's choice for a 1D Gather (single candidate: the line stream).
pub fn choose_gather_1d(p: u64, b: u64, machine: &Machine) -> Choice {
    suite_choice(Suite1dAlgorithm::LineGather, p, b, machine)
}

/// The model's choice for a 1D Scatter (single candidate: the line stream).
pub fn choose_scatter_1d(p: u64, b: u64, machine: &Machine) -> Choice {
    suite_choice(Suite1dAlgorithm::LineScatter, p, b, machine)
}

/// The model's choice for a 1D All-to-All (single candidate: the rotation).
pub fn choose_all_to_all_1d(p: u64, b: u64, machine: &Machine) -> Choice {
    suite_choice(Suite1dAlgorithm::RotateAllToAll, p, b, machine)
}

/// The model's choice for a 1D Broadcast (single candidate: the flood).
pub fn choose_broadcast_1d(p: u64, b: u64, machine: &Machine) -> Choice {
    Choice {
        algorithm: ChosenAlgorithm::Broadcast(BroadcastAlgorithm::Flood1d),
        predicted_cycles: costs_1d::broadcast(p, b).predict(machine),
    }
}

/// The model's choice for a 2D Broadcast over an `m × n` grid (single
/// candidate: the 2D flood).
pub fn choose_broadcast_2d(m_rows: u64, n_cols: u64, b: u64, machine: &Machine) -> Choice {
    Choice {
        algorithm: ChosenAlgorithm::Broadcast(BroadcastAlgorithm::Flood2d),
        predicted_cycles: costs_2d::broadcast_2d(m_rows, n_cols, b).predict(machine),
    }
}

fn suite_choice(alg: Suite1dAlgorithm, p: u64, b: u64, machine: &Machine) -> Choice {
    Choice { algorithm: ChosenAlgorithm::Suite1d(alg), predicted_cycles: alg.cycles(p, b, machine) }
}

/// The fixed 1D Reduce algorithm the model predicts to be fastest.
pub fn best_fixed_reduce_1d(p: u64, b: u64, machine: &Machine) -> Best<Reduce1dAlgorithm> {
    let mut best = Best { algorithm: Reduce1dAlgorithm::Star, cycles: f64::INFINITY };
    for alg in Reduce1dAlgorithm::fixed() {
        let t = alg.cycles(p, b, machine, None);
        if t < best.cycles {
            best = Best { algorithm: alg, cycles: t };
        }
    }
    best
}

/// The fixed 1D AllReduce algorithm the model predicts to be fastest
/// (Figure 8's best-algorithm regions).
pub fn best_fixed_allreduce_1d(p: u64, b: u64, machine: &Machine) -> Best<AllReduce1dAlgorithm> {
    let mut best = Best { algorithm: AllReduce1dAlgorithm::Ring, cycles: f64::INFINITY };
    for alg in AllReduce1dAlgorithm::fixed() {
        let t = alg.cycles(p, b, machine, None);
        if t < best.cycles {
            best = Best { algorithm: alg, cycles: t };
        }
    }
    best
}

/// The fixed 2D Reduce algorithm the model predicts to be fastest.
pub fn best_fixed_reduce_2d(
    m_rows: u64,
    n_cols: u64,
    b: u64,
    machine: &Machine,
) -> Best<Reduce2dAlgorithm> {
    let mut best = Best { algorithm: Reduce2dAlgorithm::Snake, cycles: f64::INFINITY };
    for alg in Reduce2dAlgorithm::fixed() {
        let t = alg.cycles(m_rows, n_cols, b, machine, None, None);
        if t < best.cycles {
            best = Best { algorithm: alg, cycles: t };
        }
    }
    best
}

/// The fixed 2D AllReduce algorithm the model predicts to be fastest
/// (Figure 10's best-algorithm regions).
pub fn best_fixed_allreduce_2d(
    m_rows: u64,
    n_cols: u64,
    b: u64,
    machine: &Machine,
) -> Best<Reduce2dAlgorithm> {
    let mut best = Best { algorithm: Reduce2dAlgorithm::Snake, cycles: f64::INFINITY };
    for alg in Reduce2dAlgorithm::fixed() {
        let t = alg.allreduce_cycles(m_rows, n_cols, b, machine, None, None);
        if t < best.cycles {
            best = Best { algorithm: alg, cycles: t };
        }
    }
    best
}

/// Optimality ratio of a 1D Reduce algorithm: predicted cycles divided by
/// the lower bound `T*` (Figure 1). A ratio of `1.0` is optimal.
pub fn optimality_ratio_1d(
    alg: Reduce1dAlgorithm,
    p: u64,
    b: u64,
    machine: &Machine,
    solver: Option<&AutogenSolver>,
    bound: Option<&lower_bound::LowerBound1d>,
) -> f64 {
    let t = alg.cycles(p, b, machine, solver);
    let lb = match bound {
        Some(lb) => {
            assert_eq!(lb.pes(), p);
            lb.t_star(b, machine)
        }
        None => lower_bound::t_star_1d(p, b, machine),
    };
    if lb <= 0.0 {
        1.0
    } else {
        t / lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mach() -> Machine {
        Machine::wse2()
    }

    #[test]
    fn best_reduce_regions_match_section_5_7() {
        let m = mach();
        // Star is effective for scalars (on moderate PE counts; for very long
        // rows the model prefers the tree even for scalars).
        assert_eq!(best_fixed_reduce_1d(16, 1, &m).algorithm, Reduce1dAlgorithm::Star);
        // Chain excels for very large vectors.
        assert_eq!(best_fixed_reduce_1d(16, 8192, &m).algorithm, Reduce1dAlgorithm::Chain);
        // Two-Phase is effective when P ≈ B.
        assert_eq!(best_fixed_reduce_1d(256, 256, &m).algorithm, Reduce1dAlgorithm::TwoPhase);
        // Tree is effective for small (but not scalar) vectors on many PEs.
        assert_eq!(best_fixed_reduce_1d(512, 8, &m).algorithm, Reduce1dAlgorithm::Tree);
    }

    #[test]
    fn best_allreduce_includes_a_ring_region() {
        // Figure 8: the ring overtakes Chain+Bcast when the runtime is
        // dominated by contention (few PEs, huge vectors).
        let m = mach();
        let best = best_fixed_allreduce_1d(4, 8192, &m);
        assert_eq!(best.algorithm, AllReduce1dAlgorithm::Ring);
        // ... but for many PEs the reduce-then-broadcast patterns win.
        let best = best_fixed_allreduce_1d(512, 256, &m);
        assert_ne!(best.algorithm, AllReduce1dAlgorithm::Ring);
    }

    #[test]
    fn vendor_chain_is_never_better_than_the_best() {
        let m = mach();
        for p in [4u64, 16, 64, 256] {
            for b in [1u64, 16, 256, 4096] {
                let best = best_fixed_allreduce_1d(p, b, &m);
                let chain = AllReduce1dAlgorithm::ChainBcast.cycles(p, b, &m, None);
                assert!(best.cycles <= chain + 1e-9);
            }
        }
    }

    #[test]
    fn two_phase_speedup_over_vendor_exceeds_two_at_512_pes() {
        // The paper reports up to 3.3x (Reduce) / 2.5x (AllReduce) speedups
        // over the vendor chain on 512x512 PEs; already in 1D at 512 PEs and
        // intermediate vector lengths the model predicts a sizeable win.
        let m = mach();
        let p = 512;
        let b = 256;
        let chain = Reduce1dAlgorithm::Chain.cycles(p, b, &m, None);
        let two_phase = Reduce1dAlgorithm::TwoPhase.cycles(p, b, &m, None);
        assert!(chain / two_phase > 2.0, "speedup {}", chain / two_phase);
    }

    #[test]
    fn snake_wins_small_grids_xy_two_phase_wins_large_grids() {
        let m = mach();
        assert_eq!(best_fixed_reduce_2d(4, 4, 4096, &m).algorithm, Reduce2dAlgorithm::Snake);
        assert_eq!(
            best_fixed_reduce_2d(512, 512, 256, &m).algorithm,
            Reduce2dAlgorithm::XyTwoPhase
        );
        assert_eq!(best_fixed_reduce_2d(512, 512, 1, &m).algorithm, Reduce2dAlgorithm::XyTree);
    }

    #[test]
    fn optimality_ratio_is_at_least_one_for_fixed_algorithms() {
        let m = mach();
        for p in [8u64, 32, 64] {
            let lb = lower_bound::LowerBound1d::new(p);
            for b in [1u64, 32, 1024] {
                for alg in Reduce1dAlgorithm::fixed() {
                    let r = optimality_ratio_1d(alg, p, b, &m, None, Some(&lb));
                    assert!(r >= 1.0 - 1e-9, "{:?} p={p} b={b}: ratio {r}", alg);
                }
            }
        }
    }

    #[test]
    fn autogen_ratio_never_exceeds_fixed_ratios() {
        let m = mach();
        let p = 32u64;
        let solver = AutogenSolver::new(p);
        let lb = lower_bound::LowerBound1d::new(p);
        for b in [1u64, 8, 64, 512, 4096] {
            let auto =
                optimality_ratio_1d(Reduce1dAlgorithm::AutoGen, p, b, &m, Some(&solver), Some(&lb));
            for alg in Reduce1dAlgorithm::fixed() {
                let fixed = optimality_ratio_1d(alg, p, b, &m, None, Some(&lb));
                assert!(auto <= fixed + 1e-9, "b={b}: auto {auto} vs {:?} {fixed}", alg);
            }
        }
    }

    #[test]
    fn structured_choices_match_best_queries() {
        let m = mach();
        let c = choose_reduce_1d(256, 256, &m);
        assert!(matches!(c.algorithm, ChosenAlgorithm::Reduce1d(Reduce1dAlgorithm::TwoPhase)));
        assert_eq!(c.algorithm.name(), "Two-Phase");
        assert!((c.predicted_cycles - best_fixed_reduce_1d(256, 256, &m).cycles).abs() < 1e-12);

        let c = choose_allreduce_1d(4, 8192, &m);
        assert!(matches!(c.algorithm, ChosenAlgorithm::AllReduce1d(AllReduce1dAlgorithm::Ring)));

        let c = choose_reduce_2d(4, 4, 4096, &m);
        assert!(matches!(c.algorithm, ChosenAlgorithm::Reduce2d(Reduce2dAlgorithm::Snake)));

        let c = choose_allreduce_2d(8, 8, 64, &m);
        assert!(matches!(c.algorithm, ChosenAlgorithm::AllReduce2d(_)));
        assert!(c.predicted_cycles > 0.0);
    }

    #[test]
    fn broadcast_choices_cover_both_topologies() {
        let m = mach();
        let c = choose_broadcast_1d(16, 256, &m);
        assert!(matches!(c.algorithm, ChosenAlgorithm::Broadcast(BroadcastAlgorithm::Flood1d)));
        assert_eq!(c.algorithm.name(), "Flood");
        assert!(c.predicted_cycles > 0.0);

        let c2 = choose_broadcast_2d(8, 8, 256, &m);
        assert!(matches!(c2.algorithm, ChosenAlgorithm::Broadcast(BroadcastAlgorithm::Flood2d)));
        assert_eq!(c2.algorithm.name(), "2D Flood");
        // The flood costs about one message, so its runtime grows with the
        // flood distance: a 16x16 grid (distance 30) beats a 1x256 line
        // (distance 255).
        let line = choose_broadcast_1d(256, 64, &m).predicted_cycles;
        let grid = choose_broadcast_2d(16, 16, 64, &m).predicted_cycles;
        assert!(grid < line, "grid flood {grid} should undercut line flood {line}");

        // Degenerate single-PE broadcasts are free, not negative or NaN.
        assert_eq!(choose_broadcast_1d(1, 64, &m).predicted_cycles, 0.0);
        assert_eq!(choose_broadcast_2d(1, 1, 64, &m).predicted_cycles, 0.0);
    }

    #[test]
    fn algorithm_names_are_stable() {
        assert_eq!(Reduce1dAlgorithm::TwoPhase.name(), "Two-Phase");
        assert_eq!(AllReduce1dAlgorithm::ChainBcast.name(), "Chain+Bcast");
        assert_eq!(Reduce2dAlgorithm::XyChain.name(), "X-Y Chain");
        assert_eq!(Suite1dAlgorithm::RingReduceScatter.name(), "Ring-ReduceScatter");
        assert_eq!(Suite1dAlgorithm::RotateAllToAll.name(), "Rotate-AllToAll");
    }

    #[test]
    fn suite_choices_carry_positive_predictions_above_the_bounds() {
        let m = mach();
        for p in [2u64, 3, 8, 64] {
            let b = 16 * p;
            let cases = [
                (
                    choose_reduce_scatter_1d(p, b, &m),
                    lower_bound::t_star_reduce_scatter_1d(p, b, &m),
                ),
                (choose_allgather_1d(p, b, &m), lower_bound::t_star_allgather_1d(p, b, &m)),
                (choose_gather_1d(p, b, &m), lower_bound::t_star_gather_1d(p, b, &m)),
                (choose_scatter_1d(p, b, &m), lower_bound::t_star_scatter_1d(p, b, &m)),
                (choose_all_to_all_1d(p, b, &m), lower_bound::t_star_all_to_all_1d(p, b, &m)),
            ];
            for (choice, bound) in cases {
                assert!(matches!(choice.algorithm, ChosenAlgorithm::Suite1d(_)));
                assert!(
                    choice.predicted_cycles >= bound - 1e-6,
                    "p={p}: {} predicts {} below its bound {bound}",
                    choice.algorithm.name(),
                    choice.predicted_cycles
                );
            }
        }
    }
}
