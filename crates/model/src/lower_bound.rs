//! Lower bounds for the runtime of Reduce (§5.6 and §7.5 of the paper).
//!
//! The 1D bound follows Lemma 5.5: for every depth budget `D` the minimum
//! energy `E*(P, 1, D)` needed to reduce a scalar over `P` consecutive PEs is
//! bounded from below by a recursion over the last message the root receives.
//! The bound on the runtime then minimises over all depths:
//!
//! ```text
//! T*(P, B) >= min_D  B·E*(P, 1, D)/(P - 1) + (P - 1) + D·(2·T_R + 1)
//! ```
//!
//! The 2D bound (Lemma 7.2) only uses simple counting arguments and is
//! correspondingly loose; the paper points this out as an open problem.

use crate::Machine;

/// Sentinel for infeasible dynamic-programming states.
const INFEASIBLE: u64 = u64::MAX / 4;

/// Lower bound on the minimum energy and runtime of a 1D Reduce over `p`
/// consecutive PEs, for every depth budget.
///
/// Construction is `O(P³)`; evaluating [`LowerBound1d::t_star`] afterwards is
/// `O(P)` per vector length, so the table should be reused across a sweep
/// over `B`.
#[derive(Debug, Clone)]
pub struct LowerBound1d {
    p: u64,
    /// `scalar_energy[d]` = lower bound on `E*(p, 1, d)` for depth budget `d`
    /// (index 0 is unused / infeasible for `p >= 2`).
    scalar_energy: Vec<u64>,
}

impl LowerBound1d {
    /// Build the lower-bound table for a row of `p` PEs.
    pub fn new(p: u64) -> Self {
        assert!(p >= 1, "lower bound requires at least one PE");
        let p_us = p as usize;
        if p == 1 {
            return LowerBound1d { p, scalar_energy: vec![0] };
        }
        let max_d = p_us - 1;
        // e[d][q] = lower bound on the energy to reduce a scalar over q
        // consecutive PEs with depth at most d.
        let mut prev = vec![INFEASIBLE; p_us + 1]; // d = 0
        prev[1] = 0;
        let mut per_depth = vec![INFEASIBLE; max_d + 1];
        let mut cur = vec![0u64; p_us + 1];
        for depth_slot in per_depth.iter_mut().skip(1) {
            cur[0] = INFEASIBLE;
            cur[1] = 0;
            for q in 2..=p_us {
                let mut best = INFEASIBLE;
                for i in 1..q {
                    // First part: i PEs including the root, still depth d.
                    // Second part: q - i PEs whose result arrives last, depth d - 1.
                    let a = cur[i];
                    let b = prev[q - i];
                    if a >= INFEASIBLE || b >= INFEASIBLE {
                        continue;
                    }
                    let extra = (i as u64).min((q - i + 1) as u64);
                    let cand = a + b + extra;
                    if cand < best {
                        best = cand;
                    }
                }
                cur[q] = best;
            }
            *depth_slot = cur[p_us];
            std::mem::swap(&mut prev, &mut cur);
        }
        LowerBound1d { p, scalar_energy: per_depth }
    }

    /// Number of PEs this table was built for.
    pub fn pes(&self) -> u64 {
        self.p
    }

    /// Lower bound on the energy `E*(p, 1, d)` of a scalar Reduce with depth
    /// at most `d`. Returns `None` if no Reduce with that depth exists.
    pub fn scalar_energy(&self, d: u64) -> Option<u64> {
        if self.p == 1 {
            return Some(0);
        }
        let v = *self.scalar_energy.get(d as usize)?;
        if v >= INFEASIBLE {
            None
        } else {
            Some(v)
        }
    }

    /// The runtime lower bound `T*(P, B)` in cycles (§5.6).
    pub fn t_star(&self, b: u64, machine: &Machine) -> f64 {
        if self.p == 1 {
            return 0.0;
        }
        let p = self.p as f64;
        let b = b as f64;
        let overhead = machine.depth_overhead() as f64;
        let mut best = f64::INFINITY;
        for (d, &e) in self.scalar_energy.iter().enumerate() {
            if e >= INFEASIBLE {
                continue;
            }
            let t = b * e as f64 / (p - 1.0) + (p - 1.0) + d as f64 * overhead;
            if t < best {
                best = t;
            }
        }
        best
    }
}

/// Convenience wrapper: the 1D Reduce lower bound `T*(p, b)` in cycles.
///
/// Builds the whole DP table; for sweeps over `b`, construct a
/// [`LowerBound1d`] once and call [`LowerBound1d::t_star`] repeatedly.
pub fn t_star_1d(p: u64, b: u64, machine: &Machine) -> f64 {
    LowerBound1d::new(p).t_star(b, machine)
}

/// Counting lower bound for a 1D ReduceScatter over `p` PEs: every PE must
/// absorb the other `p - 1` contributions to its `b/p`-wavelet shard
/// through its single ramp, and some wavelet travels at least `p - 1` hops.
pub fn t_star_reduce_scatter_1d(p: u64, b: u64, _machine: &Machine) -> f64 {
    shard_exchange_bound(p, b)
}

/// Counting lower bound for a 1D AllGather over `p` PEs: every PE must
/// receive the `p - 1` foreign shards (`(p-1)·b/p` wavelets) through its
/// ramp, and the farthest shard travels `p - 1` hops.
pub fn t_star_allgather_1d(p: u64, b: u64, _machine: &Machine) -> f64 {
    shard_exchange_bound(p, b)
}

/// Counting lower bound for a 1D Gather to a root: the root must drain
/// `(p-1)·b/p` foreign wavelets through its ramp.
pub fn t_star_gather_1d(p: u64, b: u64, _machine: &Machine) -> f64 {
    shard_exchange_bound(p, b)
}

/// Counting lower bound for a 1D Scatter from a root: the root must inject
/// `(p-1)·b/p` wavelets through its ramp.
pub fn t_star_scatter_1d(p: u64, b: u64, _machine: &Machine) -> f64 {
    shard_exchange_bound(p, b)
}

/// Bisection lower bound for a 1D All-to-All over `p` PEs: the
/// `floor(p/2)·ceil(p/2)` chunks headed across the central cut share one
/// link per direction.
pub fn t_star_all_to_all_1d(p: u64, b: u64, _machine: &Machine) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let chunk = b as f64 / p as f64;
    let crossing = (p / 2) as f64 * p.div_ceil(2) as f64 * chunk;
    crossing.max((p - 1) as f64)
}

/// Shared counting bound: `max((p-1)·b/p, p-1)` — the busiest ramp moves
/// the `p - 1` foreign shards, and the farthest wavelet crosses the whole
/// row. Unlike the Reduce bound the two terms take a `max`, not a sum, and
/// no ramp-latency constant is added: pure data movement pipelines the
/// drain behind the travel (the line Gather in fact finishes in exactly
/// `(p-1)·b/p` steady-state cycles once the pipe is full), and the
/// simulator's fencepost accounting starts the clock at the first
/// injection, so only the hop count itself is unconditionally unavoidable.
fn shard_exchange_bound(p: u64, b: u64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let foreign = (p - 1) as f64 * b as f64 / p as f64;
    foreign.max((p - 1) as f64)
}

/// The simple 2D Reduce lower bound of Lemma 7.2 for an `m × n` grid:
///
/// `T*(M, N) >= max(B, B/8 + M + N - 1) + 2·T_R + 1`.
pub fn t_star_2d(m: u64, n: u64, b: u64, machine: &Machine) -> f64 {
    if m * n <= 1 {
        return 0.0;
    }
    let b = b as f64;
    let steady = b.max(b / 8.0 + (m + n - 1) as f64);
    steady + machine.depth_overhead() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{autogen::ReductionTree, costs_1d, Machine};

    fn m() -> Machine {
        Machine::wse2()
    }

    #[test]
    fn two_pes_scalar_energy_is_one() {
        let lb = LowerBound1d::new(2);
        assert_eq!(lb.scalar_energy(1), Some(1));
        assert_eq!(lb.scalar_energy(0), None);
    }

    #[test]
    fn single_pe_bound_is_zero() {
        let lb = LowerBound1d::new(1);
        assert_eq!(lb.t_star(1000, &m()), 0.0);
    }

    #[test]
    fn scalar_energy_is_monotone_in_depth() {
        // Allowing more depth can only reduce the required energy.
        let lb = LowerBound1d::new(33);
        let mut prev = u64::MAX;
        for d in 1..33 {
            let e = lb.scalar_energy(d).expect("feasible depth");
            assert!(e <= prev, "energy increased from depth {} to {}", d - 1, d);
            prev = e;
        }
    }

    #[test]
    fn chain_energy_matches_bound_at_full_depth() {
        // With depth P-1 the chain achieves energy exactly P-1, and the lower
        // bound must not exceed that.
        for p in [4u64, 8, 17, 32] {
            let lb = LowerBound1d::new(p);
            let e = lb.scalar_energy(p - 1).unwrap();
            assert!(e < p, "p={p}: bound {e} exceeds chain energy {}", p - 1);
            assert!(e >= 1);
        }
    }

    #[test]
    fn star_energy_respects_depth_one_bound() {
        // With depth 1 every PE must send directly to the root; the star's
        // energy P(P-1)/2 must be at least the bound at depth 1.
        for p in [4u64, 8, 16, 31] {
            let lb = LowerBound1d::new(p);
            let bound = lb.scalar_energy(1).unwrap();
            let star = p * (p - 1) / 2;
            assert!(bound <= star, "p={p}: bound {bound} exceeds star energy {star}");
        }
    }

    #[test]
    fn t_star_is_below_every_fixed_algorithm() {
        let mach = m();
        for p in [4u64, 8, 16, 32, 64] {
            let lb = LowerBound1d::new(p);
            for b in [1u64, 4, 64, 256, 2048, 8192] {
                let t = lb.t_star(b, &mach);
                let algorithms = [
                    costs_1d::star(p, b).predict(&mach),
                    costs_1d::chain(p, b).predict(&mach),
                    costs_1d::tree(p, b).predict(&mach),
                    costs_1d::two_phase_default(p, b).predict(&mach),
                ];
                for (i, &a) in algorithms.iter().enumerate() {
                    assert!(
                        t <= a + 1e-6,
                        "p={p} b={b}: lower bound {t} exceeds algorithm {i} cost {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn t_star_is_below_arbitrary_trees() {
        // The bound must hold for any pre-order reduction tree, not only the
        // named algorithms.
        let mach = m();
        let p = 24u64;
        let lb = LowerBound1d::new(p);
        let trees = [
            ReductionTree::chain(p as usize),
            ReductionTree::star(p as usize),
            ReductionTree::two_phase(p as usize, 4),
            ReductionTree::two_phase(p as usize, 6),
            ReductionTree::two_phase(p as usize, 12),
        ];
        for b in [1u64, 16, 256, 4096] {
            let bound = lb.t_star(b, &mach);
            for tree in &trees {
                let cost = tree.cost_terms(b).predict(&mach);
                assert!(bound <= cost + 1e-6, "b={b}: bound {bound} exceeds tree cost {cost}");
            }
        }
    }

    #[test]
    fn t_star_grows_with_vector_length_and_pe_count() {
        let mach = m();
        let lb64 = LowerBound1d::new(64);
        assert!(lb64.t_star(1024, &mach) > lb64.t_star(16, &mach));
        let lb8 = LowerBound1d::new(8);
        assert!(lb64.t_star(256, &mach) > lb8.t_star(256, &mach));
    }

    #[test]
    fn suite_bounds_stay_below_their_algorithms() {
        let mach = m();
        for p in [2u64, 3, 4, 8, 64] {
            for b in [p, 8 * p, 512 * p] {
                assert!(
                    t_star_reduce_scatter_1d(p, b, &mach)
                        <= costs_1d::ring_reduce_scatter(p, b).predict(&mach) + 1e-6,
                    "reduce-scatter p={p} b={b}"
                );
                assert!(
                    t_star_allgather_1d(p, b, &mach)
                        <= costs_1d::ring_allgather(p, b).predict(&mach) + 1e-6,
                    "allgather p={p} b={b}"
                );
                assert!(
                    t_star_gather_1d(p, b, &mach)
                        <= costs_1d::line_gather(p, b).predict(&mach) + 1e-6,
                    "gather p={p} b={b}"
                );
                assert!(
                    t_star_scatter_1d(p, b, &mach)
                        <= costs_1d::line_scatter(p, b).predict(&mach) + 1e-6,
                    "scatter p={p} b={b}"
                );
                assert!(
                    t_star_all_to_all_1d(p, b, &mach)
                        <= costs_1d::rotate_all_to_all(p, b).predict(&mach) + 1e-6,
                    "all-to-all p={p} b={b}"
                );
            }
        }
    }

    #[test]
    fn all_to_all_bound_exceeds_the_shard_exchange_bound() {
        // Bisection beats counting once p > 2: crossing traffic grows
        // quadratically with the cut population.
        let mach = m();
        for p in [4u64, 8, 32] {
            let b = 64 * p;
            assert!(t_star_all_to_all_1d(p, b, &mach) > t_star_allgather_1d(p, b, &mach));
        }
    }

    #[test]
    fn t_star_2d_matches_lemma_7_2() {
        let mach = m();
        let t = t_star_2d(512, 512, 4096, &mach);
        let expected = (4096f64).max(4096.0 / 8.0 + 1023.0) + 5.0;
        assert!((t - expected).abs() < 1e-9);
        // Distance-dominated regime.
        let t_small = t_star_2d(512, 512, 8, &mach);
        assert!((t_small - (8.0f64.max(1.0 + 1023.0) + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn t_star_2d_is_below_snake_and_xy_patterns() {
        use crate::costs_2d::{self, Phase1d};
        let mach = m();
        for (rows, cols) in [(4u64, 4u64), (16, 16), (64, 64)] {
            for b in [1u64, 64, 1024, 8192] {
                let bound = t_star_2d(rows, cols, b, &mach);
                assert!(bound <= costs_2d::snake_reduce(rows, cols, b, &mach) + 1e-6);
                for pat in Phase1d::all() {
                    assert!(
                        bound <= costs_2d::xy_reduce(rows, cols, b, pat, &mach) + 1e-6,
                        "{rows}x{cols} b={b} pattern {:?}",
                        pat
                    );
                }
            }
        }
    }
}
