//! Analytic cost predictions for 1D (single row or column) collectives.
//!
//! All functions take the number of PEs `p` in the row and the vector length
//! `b` in 32-bit wavelets. They return the spatial [`CostTerms`] of the
//! pattern; the runtime estimate follows from [`CostTerms::predict`].
//!
//! Where the paper refines the plain Eq. (1) estimate (the Star pattern forms
//! a perfect pipeline for scalars, §5.1), a dedicated `*_cycles` function
//! returns the refined estimate, and the selection logic in
//! [`crate::selection`] uses the refined value.

use crate::{CostTerms, Machine};

/// Ceiling of the base-2 logarithm of `p` (`p >= 1`).
pub fn ceil_log2(p: u64) -> u64 {
    if p <= 1 {
        0
    } else {
        64 - (p - 1).leading_zeros() as u64
    }
}

/// Cost of sending a vector of `b` wavelets from the rightmost to the
/// leftmost PE of a row of `p` PEs (§4.1).
///
/// `T_Message = B + P + 2·T_R` for `p >= 2`.
pub fn message(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1, "message requires p >= 1 and b >= 1");
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    CostTerms::new(b * (p - 1), p - 1, 1, b, p - 1)
}

/// Cost of the flooding Broadcast of §4.2: the root floods the row and every
/// router multicasts each wavelet to its own processor and onwards.
///
/// Lemma 4.1: `T_Bcast = B + P + 2·T_R = T_Message` — multicast makes the
/// broadcast as cheap as a single message.
pub fn broadcast(p: u64, b: u64) -> CostTerms {
    message(p, b)
}

/// Cost terms of the Star Reduce (§5.1): every PE sends its vector directly
/// to the root.
///
/// Lemma 5.1 upper bound: `T_Star <= max(B(P-1), (P/2)·B + P - 1) + 2·T_R + 1`.
pub fn star(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    let energy = b * p * (p - 1) / 2;
    CostTerms::new(energy, p - 1, 1, b * (p - 1), p - 1)
}

/// Refined Star Reduce runtime (§5.1).
///
/// A closer look at the pattern shows the communication forms a perfect
/// pipeline into the root, so the runtime is contention bound for every `B`:
/// `T_Star = B·(P-1) + 2·T_R + 1`.
pub fn star_cycles(p: u64, b: u64, machine: &Machine) -> f64 {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return 0.0;
    }
    (b * (p - 1)) as f64 + (2 * machine.t_r + 1) as f64
}

/// Cost of the Chain Reduce (§5.2): each PE adds its vector to the partial
/// sum arriving from the right and forwards the result to its left
/// neighbour, fully pipelined. This is the pattern used by the vendor
/// collectives library and by Cerebras' matrix-multiplication kernel.
///
/// Lemma 5.2: `T_Chain = B + (2·T_R + 2)(P - 1)`.
pub fn chain(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    CostTerms::new(b * (p - 1), p - 1, p - 1, b, p - 1)
}

/// Cost of the binary Tree Reduce (§5.3): `ceil(log2 P)` rounds; in every
/// round every second active PE sends its partial vector to the previous
/// active PE and becomes inactive.
///
/// Lemma 5.3 (for a power of two):
/// `T_Tree = max(B·log2 P, B·P/(2(P-1))·log2 P + P - 1) + (2·T_R + 1)·log2 P`.
///
/// For non-powers of two the energy and contention are computed by summing
/// over rounds explicitly.
pub fn tree(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    let rounds = ceil_log2(p);
    // Sum the per-round energy and the number of messages the root receives.
    let mut energy: u64 = 0;
    let mut root_recv_rounds: u64 = 0;
    let mut active = p;
    let mut stride: u64 = 1; // distance between consecutive active PEs
    for _ in 0..rounds {
        let senders = active / 2;
        energy += senders * b * stride;
        if active >= 2 {
            // PE 0 has a partner (PE at distance `stride`) whenever there are
            // at least two active PEs, because partners are formed from the
            // left.
            root_recv_rounds += 1;
        }
        active = active.div_ceil(2);
        stride *= 2;
    }
    CostTerms::new(energy, p - 1, rounds, b * root_recv_rounds, p - 1)
}

/// Cost of the Two-Phase Reduce (§5.4) with group size `s`.
///
/// Phase 1 runs a Chain Reduce inside every group of `s` consecutive PEs
/// (groups are assigned starting from the rightmost PE); phase 2 runs a
/// Chain Reduce over the `ceil(P/S)` group leaders.
pub fn two_phase(p: u64, b: u64, s: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    assert!(s >= 1, "two-phase group size must be at least 1");
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    let groups = p.div_ceil(s);
    // Depth: chain within a group (up to s - 1) plus chain over leaders.
    let depth = (s.min(p) - 1) + (groups - 1);
    // Phase 1 energy: a chain on at most `s` PEs inside each group. The
    // leftover (possibly smaller) group contributes proportionally less; we
    // keep the paper's upper bound of a full chain per group.
    let energy_phase1 = (s.saturating_sub(1)) * b * groups;
    // Phase 2 energy: `groups - 1` accumulated vectors travel `s` hops each.
    let energy_phase2 = s * b * (groups.saturating_sub(1));
    // Contention: a group leader receives the group chain (B) and, in phase
    // 2, the accumulated vector of the next leader (B).
    let contention = if groups > 1 { 2 * b } else { b };
    CostTerms::new(energy_phase1 + energy_phase2, p - 1, depth, contention, p - 1)
}

/// The group size the paper uses throughout: `S = round(sqrt(P))`, which
/// balances the depth of the two phases.
pub fn two_phase_default_group(p: u64) -> u64 {
    ((p as f64).sqrt().round() as u64).max(1)
}

/// Two-Phase Reduce with the default group size `S ≈ sqrt(P)`.
pub fn two_phase_default(p: u64, b: u64) -> CostTerms {
    two_phase(p, b, two_phase_default_group(p))
}

/// The closed-form upper bound of Lemma 5.4 for the exact case `P = S²`:
///
/// `T_TwoPhase <= max(2B, 2B - 2B/sqrt(P) + P) + (2·sqrt(P) - 2)(2·T_R + 1)`.
///
/// Exposed for validation against the general [`two_phase`] construction.
pub fn two_phase_lemma_cycles(p: u64, b: u64, machine: &Machine) -> f64 {
    let sqrt_p = (p as f64).sqrt();
    assert!(
        (sqrt_p.round() * sqrt_p.round() - p as f64).abs() < 1e-9,
        "the Lemma 5.4 closed form requires P to be a perfect square"
    );
    let b = b as f64;
    let p = p as f64;
    let steady = (2.0 * b).max(2.0 * b - 2.0 * b / sqrt_p + p);
    steady + (2.0 * sqrt_p - 2.0) * machine.depth_overhead() as f64
}

/// Cost of an AllReduce implemented as Reduce followed by the flooding
/// Broadcast (§6.1): `T = T_Reduce + T_Bcast`.
pub fn reduce_then_broadcast(reduce_cycles: f64, p: u64, b: u64, machine: &Machine) -> f64 {
    reduce_cycles + broadcast(p, b).predict(machine)
}

/// Cost of the Ring AllReduce (§6.2) mapped onto the row (either the simple
/// or the distance-preserving mapping; both have the same predicted cost).
///
/// Lemma 6.1: `T_Ring = 2(P-1)·B/P + 4P - 6 + 2(P-1)(2·T_R + 1)`.
///
/// The pattern performs `P - 1` rounds of reduce-scatter followed by `P - 1`
/// rounds of allgather, exchanging `B/P` elements per round, and uses the
/// links in both directions.
pub fn ring_allreduce(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    let b = b as f64;
    let p_f = p as f64;
    let chunk = b / p_f;
    let rounds = 2.0 * (p_f - 1.0);
    let links = 2.0 * (p_f - 1.0);
    CostTerms {
        energy: rounds * links * chunk,
        distance: 2.0 * (2.0 * p_f - 3.0),
        depth: rounds,
        contention: rounds * chunk,
        links,
    }
}

/// Cost of the ring ReduceScatter: the first `P - 1` rounds of the Ring
/// AllReduce (§6.2) plus one extra Store rotation that homes the finished
/// shards (shard `x` onto PE `x`), i.e. `P` rounds of `B/P` wavelets over
/// the ring's `2(P-1)` directed links.
pub fn ring_reduce_scatter(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    let p_f = p as f64;
    let chunk = b as f64 / p_f;
    let rounds = p_f;
    let links = 2.0 * (p_f - 1.0);
    CostTerms {
        energy: rounds * links * chunk,
        distance: 2.0 * p_f - 3.0,
        depth: rounds,
        contention: rounds * chunk,
        links,
    }
}

/// Cost of the ring AllGather: the second half of the Ring AllReduce (§6.2)
/// on its own — `P - 1` Store rounds of `B/P` wavelets circulating the
/// shards around the ring.
pub fn ring_allgather(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    let p_f = p as f64;
    let chunk = b as f64 / p_f;
    let rounds = p_f - 1.0;
    let links = 2.0 * (p_f - 1.0);
    CostTerms {
        energy: rounds * links * chunk,
        distance: 2.0 * p_f - 3.0,
        depth: rounds,
        contention: rounds * chunk,
        links,
    }
}

/// Cost of the pipelined line Gather rooted at the row's west end: every PE
/// injects its `B/P`-wavelet shard and forwards the eastern shards, so the
/// root drains `(P-1)·B/P` wavelets back to back — the §5 counting bound up
/// to the shard the root already owns. The line Scatter is its mirror image
/// with identical terms.
pub fn line_gather(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    let chunk = b / p;
    // Shard m travels m hops: total energy chunk · P(P-1)/2.
    CostTerms::new(chunk * p * (p - 1) / 2, p - 1, 1, chunk * (p - 1), p - 1)
}

/// Cost of the line Scatter rooted at the row's west end (see
/// [`line_gather`]; the streams are reversed but the terms are the same).
pub fn line_scatter(p: u64, b: u64) -> CostTerms {
    line_gather(p, b)
}

/// Cost of the rotation All-to-All on the ring: `P - 1` phases in which
/// every chunk still in flight advances one ring hop, `P - k` chunk
/// exchanges per PE in phase `k` — `P(P-1)/2` chunks of `B/P` wavelets per
/// directed link in total, roughly twice the bisection bound in exchange
/// for nearest-neighbour traffic only.
pub fn rotate_all_to_all(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    if p == 2 {
        // Degenerate pairwise exchange: each PE sends its peer-destined
        // half one hop, full duplex.
        return CostTerms::new(b, 1, 1, b / 2, 2);
    }
    let p_f = p as f64;
    let chunk = b as f64 / p_f;
    let volume = p_f * (p_f - 1.0) / 2.0; // chunks per PE over all phases
    let links = 2.0 * (p_f - 1.0);
    CostTerms {
        energy: volume * links * chunk,
        distance: 2.0 * p_f - 3.0,
        depth: p_f - 1.0,
        contention: volume * chunk,
        links,
    }
}

/// Predicted cost of a Butterfly (recursive-doubling) AllReduce mapped onto
/// the row. The paper plots its prediction in Figure 11c to show that
/// patterns designed for low-diameter networks translate poorly to a mesh:
/// in round `i` every PE exchanges the full vector with a partner at
/// distance `2^(i-1)`, so the energy grows linearly with `P·B` per round.
pub fn butterfly_allreduce(p: u64, b: u64) -> CostTerms {
    assert!(p >= 1 && b >= 1);
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    let rounds = ceil_log2(p);
    let mut energy: u64 = 0;
    let mut dist: u64 = 1;
    for _ in 0..rounds {
        // Every PE sends its current vector to a partner `dist` away (both
        // directions are active simultaneously).
        energy += p * b * dist;
        dist *= 2;
    }
    let max_hop = 1u64 << (rounds.saturating_sub(1));
    CostTerms::new(energy, max_hop.min(p - 1), rounds, b * rounds, 2 * (p - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: Machine =
        Machine { t_r: 2, clock_mhz: 850.0, ramp_ports: 1, colors: 24, sram_bytes: 49152 };

    #[test]
    fn message_matches_lemma() {
        // T_Message = B + P + 2 T_R
        for (p, b) in [(2u64, 1u64), (8, 16), (512, 4096), (37, 251)] {
            let t = message(p, b).predict(&M);
            let expected = (b + p + 2 * M.t_r) as f64;
            assert!((t - expected).abs() < 1e-9, "p={p} b={b}: got {t}, expected {expected}");
        }
    }

    #[test]
    fn broadcast_equals_message() {
        for (p, b) in [(4u64, 8u64), (64, 256), (512, 1)] {
            assert_eq!(broadcast(p, b), message(p, b));
        }
    }

    #[test]
    fn single_pe_collectives_are_free() {
        assert_eq!(message(1, 100).predict(&M), 0.0);
        assert_eq!(star(1, 100).predict(&M), 0.0);
        assert_eq!(chain(1, 100).predict(&M), 0.0);
        assert_eq!(tree(1, 100).predict(&M), 0.0);
        assert_eq!(two_phase_default(1, 100).predict(&M), 0.0);
    }

    #[test]
    fn star_terms_match_lemma_5_1() {
        let p = 8;
        let b = 4;
        let c = star(p, b);
        assert_eq!(c.energy, (b * p * (p - 1) / 2) as f64);
        assert_eq!(c.depth, 1.0);
        assert_eq!(c.distance, (p - 1) as f64);
        assert_eq!(c.contention, (b * (p - 1)) as f64);
        // Upper bound of Lemma 5.1.
        let ub = ((b * (p - 1)) as f64).max((p * b / 2 + p - 1) as f64) + 5.0;
        assert!((c.predict(&M) - ub).abs() < 1e-9);
    }

    #[test]
    fn star_refined_is_contention_bound() {
        // Refined star: B(P-1) + 2 T_R + 1; approaches the distance lower
        // bound P - 1 for scalars.
        assert!((star_cycles(512, 1, &M) - (511.0 + 5.0)).abs() < 1e-9);
        assert!((star_cycles(16, 100, &M) - (1500.0 + 5.0)).abs() < 1e-9);
        // Refined estimate never exceeds the raw Eq. (1) estimate.
        for p in [2u64, 4, 16, 64, 512] {
            for b in [1u64, 16, 1024] {
                assert!(star_cycles(p, b, &M) <= star(p, b).predict(&M) + 1e-9);
            }
        }
    }

    #[test]
    fn chain_matches_lemma_5_2() {
        for (p, b) in [(2u64, 1u64), (16, 64), (512, 4096), (100, 7)] {
            let t = chain(p, b).predict(&M);
            let expected = b as f64 + (2 * M.t_r + 2) as f64 * (p - 1) as f64;
            assert!((t - expected).abs() < 1e-9, "p={p} b={b}: got {t}, expected {expected}");
        }
    }

    #[test]
    fn tree_matches_lemma_5_3_for_powers_of_two() {
        for (p, b) in [(8u64, 4u64), (64, 256), (512, 1024)] {
            let log_p = (p as f64).log2();
            let t = tree(p, b).predict(&M);
            let contention = b as f64 * log_p;
            let network = b as f64 * p as f64 / (2.0 * (p as f64 - 1.0)) * log_p + (p - 1) as f64;
            let expected = contention.max(network) + 5.0 * log_p;
            assert!((t - expected).abs() < 1e-6, "p={p} b={b}: got {t}, expected {expected}");
        }
    }

    #[test]
    fn tree_handles_non_powers_of_two() {
        // 5 PEs: rounds = 3, the reduction still terminates at the root.
        let c = tree(5, 10);
        assert_eq!(c.depth, 3.0);
        assert!(c.energy > 0.0);
        assert!(c.contention >= 10.0);
        assert!(tree(6, 1).predict(&M) > 0.0);
        assert!(tree(7, 1).predict(&M) >= tree(4, 1).predict(&M));
    }

    #[test]
    fn two_phase_matches_lemma_5_4_for_perfect_squares() {
        for (p, b) in [(16u64, 8u64), (64, 64), (256, 1024)] {
            let general = two_phase_default(p, b).predict(&M);
            let lemma = two_phase_lemma_cycles(p, b, &M);
            // The general construction uses N = P - 1 links whereas the lemma
            // uses N = P, so allow a small relative slack.
            let rel = (general - lemma).abs() / lemma;
            assert!(rel < 0.05, "p={p} b={b}: general {general} vs lemma {lemma} (rel {rel})");
        }
    }

    #[test]
    fn two_phase_depth_is_about_two_sqrt_p() {
        let p = 256;
        let c = two_phase_default(p, 32);
        assert_eq!(c.depth, (16 - 1 + 16 - 1) as f64);
        assert_eq!(c.contention, 64.0);
    }

    #[test]
    fn two_phase_group_size_one_or_p_degenerates_to_chain_shape() {
        // s = 1: every PE is its own group, phase 2 is a chain on all PEs.
        let p = 32;
        let b = 16;
        let c1 = two_phase(p, b, 1);
        assert_eq!(c1.depth, (p - 1) as f64);
        // s = p: one group, phase 1 is a chain on all PEs.
        let cp = two_phase(p, b, p);
        assert_eq!(cp.depth, (p - 1) as f64);
        assert_eq!(cp.contention, b as f64);
    }

    #[test]
    fn ring_matches_lemma_6_1() {
        for (p, b) in [(4u64, 16u64), (8, 64), (512, 4096)] {
            let t = ring_allreduce(p, b).predict(&M);
            let p_f = p as f64;
            let b_f = b as f64;
            let expected =
                2.0 * (p_f - 1.0) * b_f / p_f + 4.0 * p_f - 6.0 + 2.0 * (p_f - 1.0) * 5.0;
            assert!((t - expected).abs() < 1e-6, "p={p} b={b}: got {t}, expected {expected}");
        }
    }

    #[test]
    fn suite_halves_sum_to_roughly_the_ring_allreduce() {
        // ReduceScatter (P rounds, one of them the homing rotation) plus
        // AllGather (P - 1 rounds) predicts one extra round over the Ring
        // AllReduce's 2(P - 1): the composition costs about one chunk plus
        // one depth overhead more than the fused collective.
        for (p, b) in [(4u64, 64u64), (8, 256), (64, 4096)] {
            let rs = ring_reduce_scatter(p, b).predict(&M);
            let ag = ring_allgather(p, b).predict(&M);
            let ar = ring_allreduce(p, b).predict(&M);
            let extra = (rs + ag) - ar;
            let round = b as f64 / p as f64 + (2 * M.t_r + 1) as f64;
            assert!(
                extra > 0.0 && extra <= round + (2 * p) as f64,
                "p={p} b={b}: composition overhead {extra} vs round {round}"
            );
        }
    }

    #[test]
    fn gather_and_scatter_are_contention_bound_for_large_vectors() {
        for (p, b) in [(4u64, 64u64), (16, 1024), (64, 4096)] {
            let chunk = b / p;
            let t = line_gather(p, b).predict(&M);
            // The root drains (P-1) shards back to back.
            assert!(t >= (chunk * (p - 1)) as f64, "p={p} b={b}: {t}");
            assert_eq!(line_scatter(p, b), line_gather(p, b));
        }
    }

    #[test]
    fn all_to_all_costs_more_than_a_single_gather() {
        // Every PE moves (P-1) chunks instead of one shard.
        for (p, b) in [(2u64, 32u64), (4, 64), (16, 1024)] {
            assert!(
                rotate_all_to_all(p, b).predict(&M) >= line_gather(p, b).predict(&M),
                "p={p} b={b}"
            );
        }
    }

    #[test]
    fn butterfly_is_never_better_than_ring_for_large_vectors() {
        // On a mesh the butterfly's energy term dominates; the paper uses its
        // prediction to rule it out without implementing it.
        for p in [8u64, 64, 512] {
            let b = 4096;
            assert!(
                butterfly_allreduce(p, b).predict(&M) > ring_allreduce(p, b).predict(&M),
                "butterfly should lose to ring at p={p}"
            );
        }
    }

    #[test]
    fn reduce_then_broadcast_adds_broadcast_cost() {
        let p = 64;
        let b = 256;
        let red = chain(p, b).predict(&M);
        let all = reduce_then_broadcast(red, p, b, &M);
        assert!((all - (red + broadcast(p, b).predict(&M))).abs() < 1e-9);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(512), 9);
        assert_eq!(ceil_log2(513), 10);
    }

    #[test]
    fn chain_shines_for_large_vectors_tree_for_small() {
        // Qualitative check of §5.7: for large B the chain approaches the
        // contention bound B and beats the tree; for small B the tree wins.
        let p = 512;
        let large = 8192;
        assert!(chain(p, large).predict(&M) < tree(p, large).predict(&M));
        let small = 2;
        assert!(tree(p, small).predict(&M) < chain(p, small).predict(&M));
    }

    #[test]
    fn two_phase_wins_for_intermediate_vectors() {
        // §5.7: Two-Phase is effective when P ≈ B.
        let p = 512;
        let b = 512;
        let tp = two_phase_default(p, b).predict(&M);
        assert!(tp < chain(p, b).predict(&M));
        assert!(tp < tree(p, b).predict(&M));
        assert!(tp < star_cycles(p, b, &M));
    }
}
