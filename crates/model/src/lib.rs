//! # wse-model — performance model for wafer-scale collectives
//!
//! This crate implements the analytic performance model of
//! *Near-Optimal Wafer-Scale Reduce* (HPDC 2024) for a Cerebras-WSE-like
//! 2D mesh of processing elements (PEs).
//!
//! The model estimates the number of cycles a communication collective
//! takes from four *spatial* cost terms (Table 1 of the paper):
//!
//! * **Energy** `E` — total number of link hops over all wavelets,
//! * **Distance** `L` — largest number of hops any wavelet travels,
//! * **Depth** `D` — longest chain of PEs whose operations depend on each
//!   other's output,
//! * **Contention** `C` — largest number of wavelets a single PE sends or
//!   receives,
//!
//! combined with the number of used links `N` and the ramp latency `T_R`
//! into the runtime estimate (Eq. 1 of the paper):
//!
//! ```text
//! T = max(C, E/N + L) + (2·T_R + 1)·D
//! ```
//!
//! On top of the model, the crate provides
//!
//! * closed-form cost predictions for every collective algorithm analysed
//!   in the paper ([`costs_1d`], [`costs_2d`]),
//! * the 1D Reduce **lower bound** (Lemma 5.5) and the 2D bound
//!   (Lemma 7.2) in [`lower_bound`],
//! * the **Auto-Gen** schedule search — a dynamic program over pre-order
//!   reduction trees (§5.5) in [`autogen`],
//! * model-driven **algorithm selection** and optimality-ratio computation
//!   (Figures 1, 8 and 10) in [`selection`],
//! * the paper's parameter sweeps in [`sweep`].
//!
//! The model is purely analytic: it performs no simulation. The companion
//! crate `wse-fabric` provides a cycle-level simulator which plays the role
//! of the physical CS-2 in this reproduction, and `wse-collectives` builds
//! executable plans whose measured cycle counts can be compared against the
//! predictions made here.
//!
//! ## Quick example
//!
//! ```
//! use wse_model::{Machine, costs_1d, lower_bound, autogen};
//!
//! let m = Machine::wse2();
//! let p = 64;        // PEs in a row
//! let b = 256;       // vector length in 32-bit wavelets (1 KiB of f32)
//!
//! let chain = costs_1d::chain(p, b).predict(&m);
//! let two_phase = costs_1d::two_phase_default(p, b).predict(&m);
//! let auto_gen = autogen::AutogenSolver::new(p).best_cost(b, &m).cycles;
//! let lb = lower_bound::t_star_1d(p, b, &m);
//!
//! assert!(lb <= auto_gen + 1e-9);
//! assert!(auto_gen <= chain + 1e-9);
//! assert!(auto_gen <= two_phase + 1e-9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod autogen;
pub mod cost;
pub mod costs_1d;
pub mod costs_2d;
pub mod lower_bound;
pub mod machine;
pub mod selection;
pub mod sweep;

pub use autogen::{AutogenSolver, ReductionTree};
pub use cost::CostTerms;
pub use machine::Machine;
pub use selection::{
    AllReduce1dAlgorithm, BroadcastAlgorithm, Choice, ChosenAlgorithm, Reduce1dAlgorithm,
    Reduce2dAlgorithm, Suite1dAlgorithm,
};
