//! The spatial cost terms and the runtime estimate of Eq. (1).

use crate::Machine;

/// The spatial cost terms of a communication pattern (Table 1 of the paper).
///
/// All quantities are measured in wavelets and hops. A [`CostTerms`] value
/// describes a *pattern*, not a runtime: the runtime estimate is obtained by
/// [`CostTerms::predict`], which combines the terms with the machine's ramp
/// latency according to Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostTerms {
    /// Energy `E`: total number of hops the network routes wavelets for.
    pub energy: f64,
    /// Distance `L`: the largest number of hops any single wavelet travels.
    pub distance: f64,
    /// Depth `D`: the longest sequence of PEs performing operations that
    /// depend on each other's output.
    pub depth: f64,
    /// Contention `C`: the largest number of wavelets a single PE sends or
    /// receives.
    pub contention: f64,
    /// Number of links `N` the pattern uses overall.
    pub links: f64,
}

impl CostTerms {
    /// Construct cost terms from integer quantities.
    pub fn new(energy: u64, distance: u64, depth: u64, contention: u64, links: u64) -> Self {
        CostTerms {
            energy: energy as f64,
            distance: distance as f64,
            depth: depth as f64,
            contention: contention as f64,
            links: links as f64,
        }
    }

    /// The runtime estimate of Eq. (1):
    ///
    /// ```text
    /// T = max(C, E/N + L) + (2·T_R + 1)·D
    /// ```
    ///
    /// in cycles. The `E/N + L` term models network limited execution (the
    /// pattern's wavelets share `N` links and the farthest wavelet needs `L`
    /// hops); the `C` term models a pipeline that stalls at the most
    /// contended PE; each unit of depth pays the ramp round trip plus one
    /// cycle to store the received element.
    pub fn predict(&self, machine: &Machine) -> f64 {
        let network =
            if self.links > 0.0 { self.energy / self.links + self.distance } else { self.distance };
        let steady = self.contention.max(network);
        steady + machine.depth_overhead() as f64 * self.depth
    }

    /// The runtime estimate in microseconds at the machine's clock rate.
    pub fn predict_us(&self, machine: &Machine) -> f64 {
        machine.cycles_to_us(self.predict(machine))
    }

    /// Sequential composition of two patterns: the second pattern starts
    /// only after the first finished (e.g. Reduce followed by Broadcast,
    /// or the X phase followed by the Y phase of an X-Y Reduce).
    ///
    /// The terms of a sequential composition are *not* simply additive in
    /// the model — the runtime estimate is — so this helper exists for
    /// composing term bookkeeping when a combined pattern is itself analysed
    /// as a unit. Runtime prediction of composites should normally add the
    /// per-phase predictions instead (`T = T_1 + T_2`), which is what the
    /// paper does (§6.1, §7.2).
    pub fn sequential(&self, other: &CostTerms) -> CostTerms {
        CostTerms {
            energy: self.energy + other.energy,
            distance: self.distance.max(other.distance),
            depth: self.depth + other.depth,
            contention: self.contention + other.contention,
            links: self.links.max(other.links),
        }
    }
}

/// A runtime prediction broken down into its contributing components, in
/// cycles. Useful for explaining *why* an algorithm behaves the way it does
/// (e.g. "chain is depth dominated for small vectors").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionBreakdown {
    /// The contention term `C`.
    pub contention: f64,
    /// The network term `E/N + L`.
    pub network: f64,
    /// The depth term `(2·T_R + 1)·D`.
    pub depth: f64,
    /// The total estimate (Eq. 1).
    pub total: f64,
}

impl CostTerms {
    /// Break the prediction of Eq. (1) into its components.
    pub fn breakdown(&self, machine: &Machine) -> PredictionBreakdown {
        let network =
            if self.links > 0.0 { self.energy / self.links + self.distance } else { self.distance };
        let depth = machine.depth_overhead() as f64 * self.depth;
        PredictionBreakdown {
            contention: self.contention,
            network,
            depth,
            total: self.contention.max(network) + depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_matches_manual_formula() {
        let m = Machine::wse2();
        // E=100, L=10, D=3, C=25, N=5 -> max(25, 100/5+10) + 5*3 = 30 + 15 = 45
        let c = CostTerms::new(100, 10, 3, 25, 5);
        assert!((c.predict(&m) - 45.0).abs() < 1e-12);
    }

    #[test]
    fn contention_dominated_prediction() {
        let m = Machine::wse2();
        // max(200, 100/5+10) + 5*1 = 200 + 5
        let c = CostTerms::new(100, 10, 1, 200, 5);
        assert!((c.predict(&m) - 205.0).abs() < 1e-12);
    }

    #[test]
    fn zero_links_falls_back_to_distance() {
        let m = Machine::wse2();
        let c = CostTerms { energy: 0.0, distance: 7.0, depth: 1.0, contention: 3.0, links: 0.0 };
        assert!((c.predict(&m) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = Machine::wse2();
        let c = CostTerms::new(1000, 63, 7, 512, 63);
        let b = c.breakdown(&m);
        assert!((b.total - c.predict(&m)).abs() < 1e-12);
        assert!((b.contention.max(b.network) + b.depth - b.total).abs() < 1e-12);
    }

    #[test]
    fn sequential_composition_accumulates_energy_depth_contention() {
        let a = CostTerms::new(10, 5, 2, 3, 4);
        let b = CostTerms::new(20, 7, 1, 6, 8);
        let s = a.sequential(&b);
        assert_eq!(s.energy, 30.0);
        assert_eq!(s.distance, 7.0);
        assert_eq!(s.depth, 3.0);
        assert_eq!(s.contention, 9.0);
        assert_eq!(s.links, 8.0);
    }

    #[test]
    fn prediction_in_microseconds_uses_clock() {
        let m = Machine::wse2();
        let c = CostTerms::new(0, 850, 0, 0, 1);
        assert!((c.predict_us(&m) - 1.0).abs() < 1e-12);
    }
}
