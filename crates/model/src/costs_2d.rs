//! Analytic cost predictions for 2D (grid) collectives (§7 of the paper).
//!
//! The grid has `m` rows and `n` columns (`P = m·n` PEs). The root of a
//! Reduce is the PE at position `(0, 0)` (top-left). 2D collectives are
//! composed from the 1D building blocks: an X phase operating inside every
//! row, followed by a Y phase operating on the first column — except for the
//! Snake Reduce, which maps a single chain across the whole grid, and the 2D
//! Broadcast, which floods both axes simultaneously thanks to multicast.

use crate::costs_1d;
use crate::{CostTerms, Machine};

/// Cost of the 2D flooding Broadcast (§7.1) from the root at `(0, 0)`.
///
/// Lemma 7.1: `T_2DBroadcast = B + M + N - 2 + 2·T_R + 1`.
pub fn broadcast_2d(m: u64, n: u64, b: u64) -> CostTerms {
    assert!(m >= 1 && n >= 1 && b >= 1);
    let p = m * n;
    if p == 1 {
        return CostTerms::new(0, 0, 0, 0, 0);
    }
    CostTerms::new(b * (p - 1), m + n - 2, 1, b, p - 1)
}

/// A 1D reduction pattern usable as the X or Y phase of an X-Y Reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase1d {
    /// Star Reduce (§5.1), using the refined contention-bound estimate.
    Star,
    /// Chain Reduce (§5.2) — the vendor's pattern.
    Chain,
    /// Binary Tree Reduce (§5.3).
    Tree,
    /// Two-Phase Reduce (§5.4) with the default group size `S ≈ sqrt(P)`.
    TwoPhase,
}

impl Phase1d {
    /// Predicted cycles of this 1D pattern on `p` PEs with `b` wavelets.
    pub fn cycles(&self, p: u64, b: u64, machine: &Machine) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        match self {
            // The raw Eq. (1) estimate is used (not the refined pipeline
            // estimate of §5.1) so that selection is consistent with the
            // optimality-ratio analysis of Figure 1.
            Phase1d::Star => costs_1d::star(p, b).predict(machine),
            Phase1d::Chain => costs_1d::chain(p, b).predict(machine),
            Phase1d::Tree => costs_1d::tree(p, b).predict(machine),
            Phase1d::TwoPhase => costs_1d::two_phase_default(p, b).predict(machine),
        }
    }

    /// All 1D phases, in the order the paper lists them.
    pub fn all() -> [Phase1d; 4] {
        [Phase1d::Star, Phase1d::Chain, Phase1d::Tree, Phase1d::TwoPhase]
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Phase1d::Star => "Star",
            Phase1d::Chain => "Chain",
            Phase1d::Tree => "Tree",
            Phase1d::TwoPhase => "Two Phase",
        }
    }
}

/// Predicted cycles of an X-Y Reduce (§7.2): a 1D Reduce inside every row
/// (length `n`), followed by a 1D Reduce along the first column (length `m`).
///
/// `T = T_ReduceX + T_ReduceY` (the paper adds a small register-reload
/// overhead between the phases on the real machine; the model ignores it).
pub fn xy_reduce(m: u64, n: u64, b: u64, pattern: Phase1d, machine: &Machine) -> f64 {
    pattern.cycles(n, b, machine) + pattern.cycles(m, b, machine)
}

/// Predicted cycles of the Snake Reduce (§7.3): the 1D chain mapped across
/// the grid in a boustrophedon (snake-like) order, so the runtime equals the
/// chain on `P = m·n` PEs.
pub fn snake_reduce(m: u64, n: u64, b: u64, machine: &Machine) -> f64 {
    costs_1d::chain(m * n, b).predict(machine)
}

/// Predicted cycles of a 2D AllReduce built as 2D Reduce followed by the 2D
/// flooding Broadcast (§7.4).
pub fn reduce_then_broadcast_2d(
    reduce_cycles: f64,
    m: u64,
    n: u64,
    b: u64,
    machine: &Machine,
) -> f64 {
    reduce_cycles + broadcast_2d(m, n, b).predict(machine)
}

/// Predicted cycles of an X-Y AllReduce (§7.4): AllReduce inside every row,
/// then AllReduce along every column. Each axis uses Reduce-then-Broadcast
/// with the given 1D pattern.
pub fn xy_allreduce(m: u64, n: u64, b: u64, pattern: Phase1d, machine: &Machine) -> f64 {
    let x = costs_1d::reduce_then_broadcast(pattern.cycles(n, b, machine), n, b, machine);
    let y = costs_1d::reduce_then_broadcast(pattern.cycles(m, b, machine), m, b, machine);
    x + y
}

/// Predicted cycles of an X-Y Ring AllReduce: the ring AllReduce of §6.2 run
/// inside every row and then along every column (plotted as "X-Y Ring" in
/// Figure 13b).
pub fn xy_ring_allreduce(m: u64, n: u64, b: u64, machine: &Machine) -> f64 {
    costs_1d::ring_allreduce(n, b).predict(machine)
        + costs_1d::ring_allreduce(m, b).predict(machine)
}

/// Predicted cycles of the Snake AllReduce: Snake Reduce followed by the 2D
/// flooding Broadcast.
pub fn snake_allreduce(m: u64, n: u64, b: u64, machine: &Machine) -> f64 {
    reduce_then_broadcast_2d(snake_reduce(m, n, b, machine), m, n, b, machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Machine {
        Machine::wse2()
    }

    #[test]
    fn broadcast_2d_matches_lemma_7_1() {
        let mach = m();
        for (rows, cols, b) in [(4u64, 4u64, 16u64), (32, 32, 256), (512, 512, 4096)] {
            let t = broadcast_2d(rows, cols, b).predict(&mach);
            let expected = (b + rows + cols - 2 + 2 * mach.t_r + 1) as f64;
            assert!(
                (t - expected).abs() < 1e-6,
                "{rows}x{cols} b={b}: got {t}, expected {expected}"
            );
        }
    }

    #[test]
    fn broadcast_2d_beats_1d_broadcast_on_same_pe_count() {
        // §7.1: a sqrt(P) x sqrt(P) broadcast costs ~2 sqrt(P) + B instead of
        // ~P + B.
        let mach = m();
        let p = 1024u64;
        let side = 32u64;
        let b = 64;
        let two_d = broadcast_2d(side, side, b).predict(&mach);
        let one_d = costs_1d::broadcast(p, b).predict(&mach);
        assert!(two_d < one_d);
    }

    #[test]
    fn snake_equals_chain_on_full_grid() {
        let mach = m();
        let (rows, cols, b) = (8u64, 16u64, 128u64);
        assert_eq!(
            snake_reduce(rows, cols, b, &mach),
            costs_1d::chain(rows * cols, b).predict(&mach)
        );
    }

    #[test]
    fn xy_reduce_sums_both_axes() {
        let mach = m();
        let (rows, cols, b) = (16u64, 64u64, 256u64);
        for pattern in Phase1d::all() {
            let t = xy_reduce(rows, cols, b, pattern, &mach);
            let expected = pattern.cycles(cols, b, &mach) + pattern.cycles(rows, b, &mach);
            assert!((t - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn single_row_grid_degenerates_to_1d() {
        let mach = m();
        let b = 512;
        let t = xy_reduce(1, 64, b, Phase1d::Chain, &mach);
        assert!((t - costs_1d::chain(64, b).predict(&mach)).abs() < 1e-9);
        let bc = broadcast_2d(1, 64, b).predict(&mach);
        assert!((bc - costs_1d::broadcast(64, b).predict(&mach)).abs() < 1e-9);
    }

    #[test]
    fn snake_is_best_for_huge_vectors_on_small_grids() {
        // §7.6 / Figure 13c: bandwidth-bound regime favours the snake.
        let mach = m();
        let (rows, cols) = (4u64, 4u64);
        let b = 8192;
        let snake = snake_reduce(rows, cols, b, &mach);
        for pattern in Phase1d::all() {
            assert!(snake <= xy_reduce(rows, cols, b, pattern, &mach) + 1e-9);
        }
    }

    #[test]
    fn xy_two_phase_is_best_for_large_grids_at_1kb() {
        // §7.6 / Figure 13c: at B = 256 wavelets (1 KB) and large grids the
        // X-Y Two Phase wins among the fixed patterns.
        let mach = m();
        let (rows, cols) = (512u64, 512u64);
        let b = 256;
        let tp = xy_reduce(rows, cols, b, Phase1d::TwoPhase, &mach);
        let snake = snake_reduce(rows, cols, b, &mach);
        assert!(tp < snake);
        assert!(tp < xy_reduce(rows, cols, b, Phase1d::Chain, &mach));
        assert!(tp < xy_reduce(rows, cols, b, Phase1d::Star, &mach));
    }

    #[test]
    fn allreduce_composition_costs_are_consistent() {
        let mach = m();
        let (rows, cols, b) = (32u64, 32u64, 1024u64);
        let red = xy_reduce(rows, cols, b, Phase1d::TwoPhase, &mach);
        let ar = reduce_then_broadcast_2d(red, rows, cols, b, &mach);
        assert!(ar > red);
        let xy = xy_allreduce(rows, cols, b, Phase1d::TwoPhase, &mach);
        // The X-Y AllReduce broadcasts twice (once per axis), so for square
        // grids it should not beat Reduce-then-2D-Broadcast by much; for
        // bandwidth-bound sizes it is strictly worse.
        assert!(xy + 1e-9 >= ar - broadcast_2d(rows, cols, b).predict(&mach));
    }

    #[test]
    fn xy_ring_uses_both_axes() {
        let mach = m();
        let t = xy_ring_allreduce(8, 16, 1024, &mach);
        let expected = costs_1d::ring_allreduce(16, 1024).predict(&mach)
            + costs_1d::ring_allreduce(8, 1024).predict(&mach);
        assert!((t - expected).abs() < 1e-9);
    }
}
