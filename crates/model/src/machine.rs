//! Machine parameters of the modelled wafer-scale engine.

/// Parameters of the target wafer-scale machine.
///
/// The defaults correspond to the second-generation Cerebras Wafer-Scale
/// Engine (the CS-2 system) as characterised in §2.2 and §8.1 of the paper:
/// a ramp latency of `T_R = 2` cycles, one 32-bit wavelet per link direction
/// per cycle, and an 850 MHz clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Ramp latency `T_R`: cycles between a wavelet entering the router and
    /// the processor being able to use it (and symmetrically on send).
    pub t_r: u64,
    /// Clock frequency in MHz, used only to convert cycles to wall time.
    pub clock_mhz: f64,
    /// Number of wavelets a PE can inject or absorb per cycle (the CS-2 has a
    /// single ramp port, so this is 1).
    pub ramp_ports: u64,
    /// Number of routing colors available to applications (24 on the CS-2).
    pub colors: u32,
    /// Local SRAM per PE in bytes (48 KiB on the CS-2). Collectives should
    /// keep the working set below roughly a third of this.
    pub sram_bytes: u64,
}

impl Machine {
    /// Parameters of the second-generation WSE (Cerebras CS-2), the machine
    /// evaluated in the paper.
    pub fn wse2() -> Self {
        Machine { t_r: 2, clock_mhz: 850.0, ramp_ports: 1, colors: 24, sram_bytes: 48 * 1024 }
    }

    /// A machine identical to [`Machine::wse2`] except for the ramp latency.
    ///
    /// Used for the `T_R` sensitivity ablation: the paper notes (§8.7) that
    /// any value other than `T_R = 2` leads to significantly worse
    /// predictions.
    pub fn with_ramp_latency(t_r: u64) -> Self {
        Machine { t_r, ..Machine::wse2() }
    }

    /// The per-hop depth overhead `2·T_R + 1`: a received wavelet pays the
    /// down-ramp and up-ramp latency plus one cycle to store the element.
    pub fn depth_overhead(&self) -> u64 {
        2 * self.t_r + 1
    }

    /// Convert a cycle count into microseconds at this machine's clock.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / self.clock_mhz
    }

    /// Convert microseconds into cycles at this machine's clock.
    pub fn us_to_cycles(&self, us: f64) -> f64 {
        us * self.clock_mhz
    }

    /// Largest vector length (in 32-bit wavelets) that fits within a third of
    /// the PE-local SRAM — the memory ceiling marked in Figures 11 and 13.
    pub fn max_vector_wavelets(&self) -> u64 {
        self.sram_bytes / 3 / 4
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::wse2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wse2_parameters_match_paper() {
        let m = Machine::wse2();
        assert_eq!(m.t_r, 2);
        assert_eq!(m.depth_overhead(), 5);
        assert_eq!(m.colors, 24);
        assert_eq!(m.sram_bytes, 49152);
        assert!((m.clock_mhz - 850.0).abs() < f64::EPSILON);
    }

    #[test]
    fn cycle_time_conversion_roundtrips() {
        let m = Machine::wse2();
        let cycles = 1234.0;
        let us = m.cycles_to_us(cycles);
        assert!((m.us_to_cycles(us) - cycles).abs() < 1e-9);
        // 850 cycles at 850 MHz is exactly one microsecond.
        assert!((m.cycles_to_us(850.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ramp_latency_override() {
        let m = Machine::with_ramp_latency(7);
        assert_eq!(m.t_r, 7);
        assert_eq!(m.depth_overhead(), 15);
        assert_eq!(m.colors, Machine::wse2().colors);
    }

    #[test]
    fn memory_ceiling_is_a_third_of_sram() {
        let m = Machine::wse2();
        assert_eq!(m.max_vector_wavelets(), 4096);
    }
}
