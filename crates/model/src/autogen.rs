//! Auto-Gen Reduce: model-driven search over pre-order reduction trees (§5.5).
//!
//! The paper's Auto-Gen algorithm picks, for every combination of PE count
//! `P` and vector length `B`, a reduction tree that (approximately) minimises
//! the Eq. (1) runtime estimate, and then generates per-PE code realising
//! that tree. Every fixed pattern of §5 (Star, Chain, Tree, Two-Phase) is a
//! special case of such a tree, so the generated schedule matches or
//! outperforms them under the model.
//!
//! The search has two ingredients:
//!
//! * a dynamic program over `(P, depth budget D, contention budget C)` that
//!   computes the minimum-energy pre-order tree (`E_AutoGen` in the paper,
//!   computed here for a scalar and scaled by `B`), with backtracking to
//!   reconstruct the tree, and
//! * a family of parametric candidates (chain, star, two-phase with every
//!   group size) which covers the very deep, low-contention regime that the
//!   capped DP does not explore for large `P`. The caps keep the DP at a
//!   practical `O(P²·√P²) = O(P³)`-ish cost instead of the paper's `O(P⁴)`;
//!   because every parametric candidate is itself a valid pre-order tree,
//!   the final schedule is always feasible and still dominates the fixed
//!   patterns.

use crate::{CostTerms, Machine};

/// Sentinel for infeasible DP states.
const INFEASIBLE: u32 = u32::MAX / 4;

/// A pre-order reduction tree over a row of PEs `0..p`, rooted at PE 0 (the
/// leftmost PE).
///
/// Every non-root PE sends its (partially reduced) vector to exactly one
/// other PE — its parent — after having received the vectors of all its
/// children, in order. Communication edges never partially overlap, which is
/// what allows the schedule to be realised with the mesh's ordered routing
/// configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionTree {
    /// `parent[i]` is the PE that PE `i` sends its partial result to;
    /// `None` exactly for the root (PE 0).
    pub parent: Vec<Option<usize>>,
    /// `children[i]` lists the PEs whose partial results PE `i` receives,
    /// in arrival order.
    pub children: Vec<Vec<usize>>,
}

impl ReductionTree {
    /// Build a tree from a parent array (children are ordered by increasing
    /// PE index, i.e. nearest child first).
    pub fn from_parents(parent: Vec<Option<usize>>) -> Self {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        for (i, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p].push(i);
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        ReductionTree { parent, children }
    }

    /// The chain pattern: PE `i` receives from PE `i + 1` (§5.2).
    pub fn chain(p: usize) -> Self {
        assert!(p >= 1);
        let parent = (0..p).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        Self::from_parents(parent)
    }

    /// The star pattern: every PE sends directly to the root (§5.1).
    pub fn star(p: usize) -> Self {
        assert!(p >= 1);
        let parent = (0..p).map(|i| if i == 0 { None } else { Some(0) }).collect();
        Self::from_parents(parent)
    }

    /// The binary-tree pattern of §5.3: `ceil(log2 P)` rounds of pairwise
    /// combining with doubling stride.
    pub fn binary_tree(p: usize) -> Self {
        assert!(p >= 1);
        let mut parent: Vec<Option<usize>> = vec![None; p];
        let mut stride = 1usize;
        while stride < p {
            let mut i = 0usize;
            while i + stride < p {
                if parent[i + stride].is_none() && i + stride != 0 {
                    parent[i + stride] = Some(i);
                }
                i += 2 * stride;
            }
            stride *= 2;
        }
        Self::from_parents(parent)
    }

    /// The Two-Phase pattern of §5.4 with group size `s`: chains inside
    /// groups of `s` consecutive PEs (groups assigned starting from the
    /// rightmost PE, so the root's group may be smaller), then a chain over
    /// the group leaders.
    pub fn two_phase(p: usize, s: usize) -> Self {
        assert!(p >= 1 && s >= 1);
        let mut starts = Vec::new();
        let mut hi = p;
        while hi > 0 {
            let lo = hi.saturating_sub(s);
            starts.push(lo);
            hi = lo;
        }
        starts.reverse(); // group start indices, leftmost group first
        let mut parent: Vec<Option<usize>> = vec![None; p];
        for (g, &lo) in starts.iter().enumerate() {
            let hi = if g + 1 < starts.len() { starts[g + 1] } else { p };
            for (i, slot) in parent.iter_mut().enumerate().take(hi).skip(lo + 1) {
                *slot = Some(i - 1);
            }
            if g > 0 {
                parent[lo] = Some(starts[g - 1]);
            }
        }
        Self::from_parents(parent)
    }

    /// Number of PEs covered by the tree.
    pub fn num_pes(&self) -> usize {
        self.parent.len()
    }

    /// Height of the tree: the depth term `D` of the schedule.
    pub fn height(&self) -> u64 {
        let n = self.num_pes();
        let mut depth = vec![u64::MAX; n];
        // PEs are processed right-to-left: every child has a larger index
        // than... not necessarily (children of the root may appear anywhere),
        // so compute depths iteratively from the root instead.
        let mut stack = vec![0usize];
        depth[0] = 0;
        let mut max = 0;
        while let Some(v) = stack.pop() {
            for &c in &self.children[v] {
                depth[c] = depth[v] + 1;
                max = max.max(depth[c]);
                stack.push(c);
            }
        }
        max
    }

    /// The largest number of messages any PE receives (the per-message
    /// contention; multiply by `B` for the wavelet contention).
    pub fn max_in_degree(&self) -> u64 {
        self.children.iter().map(|c| c.len() as u64).max().unwrap_or(0).max(1)
    }

    /// Total hop count of a scalar reduction over this tree (the energy term
    /// for `B = 1`).
    pub fn scalar_energy(&self) -> u64 {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i as i64 - p as i64).unsigned_abs()))
            .sum()
    }

    /// Check the structural invariants: a single tree rooted at PE 0 whose
    /// communication edges never partially overlap (Figure 6).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_pes();
        if n == 0 {
            return Err("empty tree".into());
        }
        if self.parent[0].is_some() {
            return Err("PE 0 must be the root".into());
        }
        // Every non-root PE has a parent and is reachable from the root.
        let mut reached = vec![false; n];
        let mut stack = vec![0usize];
        reached[0] = true;
        while let Some(v) = stack.pop() {
            for &c in &self.children[v] {
                if reached[c] {
                    return Err(format!("PE {c} reached twice"));
                }
                if self.parent[c] != Some(v) {
                    return Err(format!("child list of {v} inconsistent with parent of {c}"));
                }
                reached[c] = true;
                stack.push(c);
            }
        }
        if let Some(unreached) = reached.iter().position(|&r| !r) {
            return Err(format!("PE {unreached} is not part of the tree"));
        }
        // Non-overlap: the intervals spanned by any two edges are either
        // disjoint or nested.
        let edges: Vec<(usize, usize)> = self
            .parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i.min(p), i.max(p))))
            .collect();
        for (a, &(lo1, hi1)) in edges.iter().enumerate() {
            for &(lo2, hi2) in edges.iter().skip(a + 1) {
                let disjoint = hi1 <= lo2 || hi2 <= lo1;
                let nested = (lo1 <= lo2 && hi2 <= hi1) || (lo2 <= lo1 && hi1 <= hi2);
                if !disjoint && !nested {
                    return Err(format!("edges ({lo1},{hi1}) and ({lo2},{hi2}) partially overlap"));
                }
            }
        }
        Ok(())
    }

    /// Spatial cost terms of executing this tree on vectors of `b` wavelets,
    /// following the Auto-Gen cost expression of §5.5 (distance and link
    /// count are those of the row).
    pub fn cost_terms(&self, b: u64) -> CostTerms {
        let p = self.num_pes() as u64;
        if p <= 1 {
            return CostTerms::new(0, 0, 0, 0, 0);
        }
        CostTerms::new(
            b * self.scalar_energy(),
            p - 1,
            self.height(),
            b * self.max_in_degree(),
            p - 1,
        )
    }

    /// Pre-order listing of the PEs (root first, then each child subtree in
    /// receive order). The paper stores the tree in exactly this order.
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.num_pes());
        fn visit(t: &ReductionTree, v: usize, out: &mut Vec<usize>) {
            out.push(v);
            for &c in &t.children[v] {
                visit(t, c, out);
            }
        }
        visit(self, 0, &mut out);
        out
    }
}

/// How the best Auto-Gen schedule for a particular `(P, B)` was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Reconstructed from the `(depth, contention)` DP state.
    DpTree {
        /// Depth budget of the chosen DP state.
        depth: u64,
        /// Contention budget of the chosen DP state.
        contention: u64,
    },
    /// The chain pattern.
    Chain,
    /// The star pattern.
    Star,
    /// A two-phase pattern with the given group size.
    TwoPhase {
        /// Group size of the first phase.
        group: u64,
    },
}

/// The outcome of the Auto-Gen search for one vector length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutogenCost {
    /// Predicted runtime in cycles under Eq. (1).
    pub cycles: f64,
    /// Which schedule achieves it.
    pub kind: ScheduleKind,
}

/// The Auto-Gen solver for a fixed row length `p`.
///
/// Construction runs the energy DP once (independent of the vector length);
/// [`AutogenSolver::best_cost`] and [`AutogenSolver::best_tree`] can then be
/// queried for any `B` cheaply.
#[derive(Debug, Clone)]
pub struct AutogenSolver {
    p: usize,
    d_cap: usize,
    c_cap: usize,
    /// `energy[(d * (c_cap+1) + c) * (p+1) + q]` = minimum scalar energy of a
    /// pre-order reduce over `q` PEs with depth ≤ d and contention ≤ c.
    energy: Vec<u32>,
    /// Split choice used for backtracking (the `i` of the recursion).
    choice: Vec<u16>,
}

impl AutogenSolver {
    /// Default caps for the DP budgets: generous for small `p`, on the order
    /// of `3·sqrt(p)` for large `p` (the deep/low-contention regime beyond
    /// the cap is covered by the parametric candidates).
    fn default_caps(p: usize) -> (usize, usize) {
        if p <= 2 {
            return (1.max(p.saturating_sub(1)), 1.max(p.saturating_sub(1)));
        }
        let sqrt = (p as f64).sqrt().ceil() as usize;
        let cap = (3 * sqrt + 10).min(p - 1);
        (cap, cap)
    }

    /// Build the solver for a row of `p` PEs using the default budget caps.
    pub fn new(p: u64) -> Self {
        let (d, c) = Self::default_caps(p as usize);
        Self::with_caps(p, d as u64, c as u64)
    }

    /// Build the solver with explicit depth and contention caps (both are
    /// clamped to `p - 1`).
    pub fn with_caps(p: u64, d_cap: u64, c_cap: u64) -> Self {
        assert!(p >= 1);
        let p = p as usize;
        let d_cap = (d_cap as usize).min(p.saturating_sub(1)).max(1);
        let c_cap = (c_cap as usize).min(p.saturating_sub(1)).max(1);
        let stride_q = p + 1;
        let states = (d_cap + 1) * (c_cap + 1) * stride_q;
        let mut energy = vec![INFEASIBLE; states];
        let mut choice = vec![0u16; states];
        let idx = |d: usize, c: usize, q: usize| (d * (c_cap + 1) + c) * stride_q + q;
        // Base case: a single PE needs no communication.
        for d in 0..=d_cap {
            for c in 0..=c_cap {
                energy[idx(d, c, 1)] = 0;
            }
        }
        for d in 1..=d_cap {
            for c in 1..=c_cap {
                for q in 2..=p {
                    let mut best = INFEASIBLE;
                    let mut best_i = 0u16;
                    for i in 1..q {
                        // First part: i PEs including the root, depth d,
                        // contention c - 1 (the root will receive one more
                        // message). Second part: q - i PEs whose result is
                        // the last message, depth d - 1, contention c. The
                        // last message travels i hops.
                        let a = energy[idx(d, c - 1, i)];
                        let b = energy[idx(d - 1, c, q - i)];
                        if a >= INFEASIBLE || b >= INFEASIBLE {
                            continue;
                        }
                        let cand = a + b + i as u32;
                        if cand < best {
                            best = cand;
                            best_i = i as u16;
                        }
                    }
                    energy[idx(d, c, q)] = best;
                    choice[idx(d, c, q)] = best_i;
                }
            }
        }
        AutogenSolver { p, d_cap, c_cap, energy, choice }
    }

    /// Number of PEs the solver was built for.
    pub fn pes(&self) -> u64 {
        self.p as u64
    }

    /// Depth cap used by the DP.
    pub fn depth_cap(&self) -> u64 {
        self.d_cap as u64
    }

    /// Contention cap used by the DP.
    pub fn contention_cap(&self) -> u64 {
        self.c_cap as u64
    }

    fn idx(&self, d: usize, c: usize, q: usize) -> usize {
        (d * (self.c_cap + 1) + c) * (self.p + 1) + q
    }

    /// Minimum scalar energy of a pre-order Reduce over all `p` PEs with
    /// depth ≤ `d` and contention ≤ `c` (messages, not wavelets), or `None`
    /// if no such tree exists within the caps.
    pub fn dp_energy(&self, d: u64, c: u64) -> Option<u64> {
        if self.p == 1 {
            return Some(0);
        }
        let d = d.min(self.d_cap as u64) as usize;
        let c = c.min(self.c_cap as u64) as usize;
        let e = self.energy[self.idx(d, c, self.p)];
        if e >= INFEASIBLE {
            None
        } else {
            Some(e as u64)
        }
    }

    /// Reconstruct the minimum-energy tree for the DP state `(d, c)`.
    /// Panics if the state is infeasible.
    pub fn dp_tree(&self, d: u64, c: u64) -> ReductionTree {
        assert!(self.dp_energy(d, c).is_some(), "no feasible tree for depth {d}, contention {c}");
        let mut parent: Vec<Option<usize>> = vec![None; self.p];
        let mut order: Vec<Vec<usize>> = vec![Vec::new(); self.p];
        self.rebuild(
            0,
            self.p,
            d.min(self.d_cap as u64) as usize,
            c.min(self.c_cap as u64) as usize,
            &mut parent,
            &mut order,
        );
        let mut tree = ReductionTree { parent, children: order };
        // Ensure children are stored in receive order (they already are by
        // construction of `rebuild`, which appends the last-received child
        // after the earlier ones), but normalise empty allocations.
        for c in &mut tree.children {
            c.shrink_to_fit();
        }
        tree
    }

    fn rebuild(
        &self,
        lo: usize,
        hi: usize,
        d: usize,
        c: usize,
        parent: &mut Vec<Option<usize>>,
        children: &mut Vec<Vec<usize>>,
    ) {
        let q = hi - lo;
        if q <= 1 {
            return;
        }
        let i = self.choice[self.idx(d, c, q)] as usize;
        debug_assert!(i >= 1 && i < q, "invalid split for q={q} d={d} c={c}");
        // Earlier receives of the root: the first i PEs, contention budget c-1.
        self.rebuild(lo, lo + i, d, c - 1, parent, children);
        // The last message: the segment [lo + i, hi) rooted at lo + i.
        self.rebuild(lo + i, hi, d - 1, c, parent, children);
        parent[lo + i] = Some(lo);
        children[lo].push(lo + i);
    }

    /// Candidate group sizes for the parametric two-phase family.
    fn group_candidates(p: u64) -> Vec<u64> {
        let mut out = vec![];
        let mut s = 2u64;
        while s < p {
            out.push(s);
            // Geometric-ish progression keeps the candidate count ~O(log P)
            // while still covering the interesting range densely.
            s = (s + 1).max(s * 5 / 4);
        }
        let sq = (p as f64).sqrt().round() as u64;
        for extra in [sq.saturating_sub(1), sq, sq + 1] {
            if extra >= 2 && extra < p {
                out.push(extra);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The best Auto-Gen schedule cost for vectors of `b` wavelets.
    pub fn best_cost(&self, b: u64, machine: &Machine) -> AutogenCost {
        assert!(b >= 1);
        if self.p <= 1 {
            return AutogenCost { cycles: 0.0, kind: ScheduleKind::Chain };
        }
        let p = self.p as u64;
        let pf = p as f64;
        let bf = b as f64;
        let overhead = machine.depth_overhead() as f64;
        let eval = |energy: f64, depth: f64, contention: f64| -> f64 {
            (contention * bf).max(energy * bf / (pf - 1.0) + (pf - 1.0)) + depth * overhead
        };

        let mut best = AutogenCost {
            cycles: eval((p - 1) as f64, (p - 1) as f64, 1.0),
            kind: ScheduleKind::Chain,
        };
        let star = eval((p * (p - 1) / 2) as f64, 1.0, (p - 1) as f64);
        if star < best.cycles {
            best = AutogenCost { cycles: star, kind: ScheduleKind::Star };
        }
        for s in Self::group_candidates(p) {
            let t = ReductionTree::two_phase(self.p, s as usize);
            let c = eval(t.scalar_energy() as f64, t.height() as f64, t.max_in_degree() as f64);
            if c < best.cycles {
                best = AutogenCost { cycles: c, kind: ScheduleKind::TwoPhase { group: s } };
            }
        }
        for d in 1..=self.d_cap {
            for c in 1..=self.c_cap {
                let e = self.energy[self.idx(d, c, self.p)];
                if e >= INFEASIBLE {
                    continue;
                }
                let cost = eval(e as f64, d as f64, c as f64);
                if cost < best.cycles {
                    best = AutogenCost {
                        cycles: cost,
                        kind: ScheduleKind::DpTree { depth: d as u64, contention: c as u64 },
                    };
                }
            }
        }
        // The DP evaluation charges the full (d, c) budget; the reconstructed
        // tree may be shallower or less contended, so refine the estimate
        // with the realised tree statistics.
        if let ScheduleKind::DpTree { depth, contention } = best.kind {
            let tree = self.dp_tree(depth, contention);
            let refined = eval(
                tree.scalar_energy() as f64,
                tree.height() as f64,
                tree.max_in_degree() as f64,
            );
            best.cycles = best.cycles.min(refined);
        }
        best
    }

    /// The reduction tree realising [`AutogenSolver::best_cost`].
    pub fn best_tree(&self, b: u64, machine: &Machine) -> ReductionTree {
        let choice = self.best_cost(b, machine);
        match choice.kind {
            ScheduleKind::Chain => ReductionTree::chain(self.p),
            ScheduleKind::Star => ReductionTree::star(self.p),
            ScheduleKind::TwoPhase { group } => ReductionTree::two_phase(self.p, group as usize),
            ScheduleKind::DpTree { depth, contention } => self.dp_tree(depth, contention),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{costs_1d, lower_bound::LowerBound1d, Machine};

    fn m() -> Machine {
        Machine::wse2()
    }

    #[test]
    fn fixed_pattern_trees_have_expected_shape() {
        let chain = ReductionTree::chain(8);
        assert_eq!(chain.height(), 7);
        assert_eq!(chain.max_in_degree(), 1);
        assert_eq!(chain.scalar_energy(), 7);
        chain.validate().unwrap();

        let star = ReductionTree::star(8);
        assert_eq!(star.height(), 1);
        assert_eq!(star.max_in_degree(), 7);
        assert_eq!(star.scalar_energy(), 28);
        star.validate().unwrap();

        let tree = ReductionTree::binary_tree(8);
        assert_eq!(tree.height(), 3);
        tree.validate().unwrap();
        assert_eq!(tree.scalar_energy(), 4 + 2 * 2 + 4);

        let tp = ReductionTree::two_phase(16, 4);
        assert_eq!(tp.height(), 3 + 3);
        assert_eq!(tp.max_in_degree(), 2);
        tp.validate().unwrap();
    }

    #[test]
    fn two_phase_tree_assigns_groups_from_the_end() {
        // 10 PEs with group size 4: groups are [0,1], [2..6), [6..10) — the
        // leftmost (root) group is the smaller one.
        let t = ReductionTree::two_phase(10, 4);
        t.validate().unwrap();
        assert_eq!(t.parent[1], Some(0));
        assert_eq!(t.parent[2], Some(0)); // leader of the middle group
        assert_eq!(t.parent[6], Some(2)); // leader of the last group
        assert_eq!(t.parent[5], Some(4));
        assert_eq!(t.height(), (4 - 1) + 2);
    }

    #[test]
    fn preorder_lists_every_pe_once_root_first() {
        for tree in [
            ReductionTree::chain(9),
            ReductionTree::star(9),
            ReductionTree::two_phase(9, 3),
            ReductionTree::binary_tree(9),
        ] {
            let order = tree.preorder();
            assert_eq!(order.len(), 9);
            assert_eq!(order[0], 0);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn validate_rejects_overlapping_edges() {
        // PE 3 -> PE 0 and PE 4 -> PE 2 partially overlap (Figure 6's
        // counter-example).
        let parent = vec![None, Some(0), Some(1), Some(0), Some(2)];
        let tree = ReductionTree::from_parents(parent);
        assert!(tree.validate().is_err());
    }

    #[test]
    fn validate_rejects_cycles_and_forests() {
        let detached = ReductionTree::from_parents(vec![None, Some(2), Some(1), Some(0)]);
        assert!(detached.validate().is_err());
    }

    #[test]
    fn dp_energy_matches_known_small_cases() {
        let solver = AutogenSolver::with_caps(4, 3, 3);
        // Depth 3, contention 1: only the chain is possible -> energy 3.
        assert_eq!(solver.dp_energy(3, 1), Some(3));
        // Depth 1: every PE sends to the root directly -> energy 1+2+3 = 6.
        assert_eq!(solver.dp_energy(1, 3), Some(6));
        // Depth 1, contention 1: impossible for 4 PEs.
        assert_eq!(solver.dp_energy(1, 1), None);
        // Depth 2, contention 2: e.g. 1->0, 3->2, 2->0 gives energy 1+1+2 = 4.
        assert_eq!(solver.dp_energy(2, 2), Some(4));
    }

    #[test]
    fn dp_tree_reconstruction_matches_dp_energy() {
        let p = 24u64;
        let solver = AutogenSolver::new(p);
        for d in 1..=solver.depth_cap() {
            for c in 1..=solver.contention_cap() {
                if let Some(e) = solver.dp_energy(d, c) {
                    let tree = solver.dp_tree(d, c);
                    tree.validate().unwrap();
                    assert_eq!(tree.num_pes(), p as usize);
                    assert_eq!(tree.scalar_energy(), e, "tree energy mismatch at d={d} c={c}");
                    assert!(tree.height() <= d, "height exceeds budget at d={d} c={c}");
                    assert!(tree.max_in_degree() <= c, "in-degree exceeds budget at d={d} c={c}");
                }
            }
        }
    }

    #[test]
    fn autogen_matches_or_beats_every_fixed_pattern() {
        let mach = m();
        for p in [4u64, 8, 16, 32, 64] {
            let solver = AutogenSolver::new(p);
            for b in [1u64, 4, 16, 64, 256, 1024, 8192] {
                let auto = solver.best_cost(b, &mach).cycles;
                let fixed = [
                    costs_1d::star(p, b).predict(&mach),
                    costs_1d::chain(p, b).predict(&mach),
                    costs_1d::tree(p, b).predict(&mach),
                    costs_1d::two_phase_default(p, b).predict(&mach),
                ];
                for (i, f) in fixed.iter().enumerate() {
                    assert!(
                        auto <= f + 1e-6,
                        "p={p} b={b}: auto-gen {auto} worse than fixed pattern {i} ({f})"
                    );
                }
            }
        }
    }

    #[test]
    fn autogen_stays_above_the_lower_bound() {
        let mach = m();
        for p in [4u64, 8, 16, 32, 64] {
            let solver = AutogenSolver::new(p);
            let lb = LowerBound1d::new(p);
            for b in [1u64, 8, 128, 1024, 8192] {
                let auto = solver.best_cost(b, &mach).cycles;
                let bound = lb.t_star(b, &mach);
                assert!(
                    auto + 1e-6 >= bound,
                    "p={p} b={b}: auto-gen {auto} below the lower bound {bound}"
                );
            }
        }
    }

    #[test]
    fn autogen_is_near_optimal_for_a_row() {
        // Figure 1e: the Auto-Gen schedule stays within 1.4x of the lower
        // bound across the sweep. Check a representative sub-sweep at a size
        // that is cheap enough for a unit test.
        let mach = m();
        let p = 64u64;
        let solver = AutogenSolver::new(p);
        let lb = LowerBound1d::new(p);
        for b in [1u64, 2, 8, 32, 128, 512, 2048, 8192] {
            let auto = solver.best_cost(b, &mach).cycles;
            let bound = lb.t_star(b, &mach);
            let ratio = auto / bound;
            assert!(
                ratio <= 1.45,
                "p={p} b={b}: optimality ratio {ratio:.3} exceeds the paper's 1.4"
            );
        }
    }

    #[test]
    fn best_tree_realises_best_cost() {
        let mach = m();
        let p = 32u64;
        let solver = AutogenSolver::new(p);
        for b in [1u64, 16, 256, 4096] {
            let cost = solver.best_cost(b, &mach);
            let tree = solver.best_tree(b, &mach);
            tree.validate().unwrap();
            let realised = {
                let t = tree.cost_terms(b);
                // Evaluate with the Auto-Gen cost expression (same as eval in
                // best_cost): contention vs energy/(P-1) + P-1 plus depth.
                (t.contention).max(t.energy / (p as f64 - 1.0) + (p as f64 - 1.0))
                    + t.depth * mach.depth_overhead() as f64
            };
            assert!(
                (realised - cost.cycles).abs() < 1e-6,
                "b={b}: realised {realised} vs predicted {}",
                cost.cycles
            );
        }
    }

    #[test]
    fn scalar_reduce_prefers_low_depth() {
        // For B = 1 the depth overhead dominates, so the chosen schedule must
        // have a small height; for huge B the chain (depth P-1) wins.
        let mach = m();
        let p = 64u64;
        let solver = AutogenSolver::new(p);
        let small = solver.best_tree(1, &mach);
        assert!(small.height() <= 8);
        let large = solver.best_tree(16384, &mach);
        assert!(large.height() >= 32);
    }

    #[test]
    fn single_pe_solver_is_trivial() {
        let solver = AutogenSolver::new(1);
        let mach = m();
        assert_eq!(solver.best_cost(128, &mach).cycles, 0.0);
    }
}
