//! Per-PE CSL-like source emission.

use std::fmt::Write as _;

use wse_collectives::CollectivePlan;
use wse_fabric::geometry::{Coord, Direction};
use wse_fabric::program::{Instruction, RecvMode, ReduceOp};
use wse_fabric::router::RouteRule;

/// The generated sources of one plan: one CSL-like module per PE plus a
/// layout description.
#[derive(Debug, Clone)]
pub struct GeneratedSource {
    /// Name of the plan the sources were generated from.
    pub plan_name: String,
    /// `(coordinate, source text)` for every PE that has a program or a
    /// routing script.
    pub pe_sources: Vec<(Coord, String)>,
    /// The layout file describing the rectangle of PEs and which module each
    /// PE runs.
    pub layout: String,
}

impl GeneratedSource {
    /// Total number of emitted source lines (a rough size metric, handy for
    /// comparing the complexity of generated schedules).
    pub fn total_lines(&self) -> usize {
        self.pe_sources.iter().map(|(_, s)| s.lines().count()).sum::<usize>()
            + self.layout.lines().count()
    }

    /// The source of the PE at `at`, if that PE participates in the plan.
    pub fn source_of(&self, at: Coord) -> Option<&str> {
        self.pe_sources.iter().find(|(c, _)| *c == at).map(|(_, s)| s.as_str())
    }
}

fn direction_name(d: Direction) -> &'static str {
    match d {
        Direction::North => "NORTH",
        Direction::East => "EAST",
        Direction::South => "SOUTH",
        Direction::West => "WEST",
        Direction::Ramp => "RAMP",
    }
}

fn op_name(op: ReduceOp) -> &'static str {
    match op {
        ReduceOp::Sum => "@fadds",
        ReduceOp::Max => "@fmaxs",
        ReduceOp::Min => "@fmins",
        ReduceOp::Prod => "@fmuls",
    }
}

fn write_rule(out: &mut String, rule: &RouteRule, index: usize) {
    let forwards: Vec<&str> = rule.forward_to.iter().map(direction_name).collect();
    let advance = if let Some(n) = rule.advance_after {
        format!("advance after {n} wavelets")
    } else if rule.advance_on_control {
        "advance on control wavelet".to_string()
    } else {
        "static".to_string()
    };
    let _ = writeln!(
        out,
        "    .{{ .rx = {}, .tx = {{ {} }} }}, // position {index}: {advance}",
        direction_name(rule.accept_from),
        forwards.join(", "),
    );
}

fn write_instruction(out: &mut String, idx: usize, instruction: &Instruction) {
    match instruction {
        Instruction::Send { color, offset, len, last_control } => {
            let _ = writeln!(
                out,
                "  // step {idx}: stream {len} wavelets of local[{offset}..] on c{}{}",
                color.id(),
                if *last_control { " (last wavelet is a control wavelet)" } else { "" },
            );
            let _ = writeln!(
                out,
                "  @mov32(fabout_dsd(c{}, {len}), mem1d_dsd(&local[{offset}], {len}), .{{ .async = true }});",
                color.id()
            );
        }
        Instruction::Recv { color, offset, len, mode } => {
            let _ = writeln!(
                out,
                "  // step {idx}: receive {len} wavelets on c{} into local[{offset}..]",
                color.id()
            );
            let verb = match mode {
                RecvMode::Store => "@mov32".to_string(),
                RecvMode::Reduce(op) => op_name(*op).to_string(),
            };
            let _ = writeln!(
                out,
                "  {verb}(mem1d_dsd(&local[{offset}], {len}), fabin_dsd(c{}, {len}), .{{ .async = true }});",
                color.id()
            );
        }
        Instruction::RecvForward { recv_color, send_color, offset, len, op, keep, .. } => {
            let _ = writeln!(
                out,
                "  // step {idx}: pipelined chain step — combine c{} with local[{offset}..] and forward on c{}{}",
                recv_color.id(),
                send_color.id(),
                if *keep { " (keeping the partial sum)" } else { "" },
            );
            let _ = writeln!(
                out,
                "  {}(fabout_dsd(c{}, {len}), mem1d_dsd(&local[{offset}], {len}), fabin_dsd(c{}, {len}), .{{ .async = true }});",
                op_name(*op),
                send_color.id(),
                recv_color.id()
            );
        }
        Instruction::Compute { cycles } => {
            let _ = writeln!(out, "  // step {idx}: calibrated wait ({cycles} one-cycle writes)");
            let _ =
                writeln!(out, "  for (@range(u32, {cycles})) |_| {{ scratch = scratch +% 1; }}");
        }
        Instruction::Exchange { send_color, send_offset, recv_color, recv_offset, len, mode } => {
            let verb = match mode {
                RecvMode::Store => "@mov32",
                RecvMode::Reduce(op) => op_name(*op),
            };
            let _ = writeln!(
                out,
                "  // step {idx}: ring exchange — send local[{send_offset}..+{len}] on c{}, receive on c{} into local[{recv_offset}..]",
                send_color.id(),
                recv_color.id()
            );
            let _ = writeln!(
                out,
                "  @mov32(fabout_dsd(c{}, {len}), mem1d_dsd(&local[{send_offset}], {len}), .{{ .async = true }});",
                send_color.id()
            );
            let _ = writeln!(
                out,
                "  {verb}(mem1d_dsd(&local[{recv_offset}], {len}), fabin_dsd(c{}, {len}), .{{ .async = true }});",
                recv_color.id()
            );
        }
    }
}

/// Emit the CSL-like source of a single PE of a plan.
pub fn emit_pe_source(plan: &CollectivePlan, at: Coord) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Generated by wse-codegen from plan \"{}\"", plan.name());
    let _ = writeln!(
        out,
        "// PE ({}, {}) of a {}x{} rectangle",
        at.x,
        at.y,
        plan.dim().width,
        plan.dim().height
    );
    let _ = writeln!(out);

    let scripts = plan.scripts(at);
    for (color, _) in scripts {
        let _ = writeln!(out, "const c{}: color = @get_color({});", color.id(), color.id());
    }
    if !scripts.is_empty() {
        let _ = writeln!(out);
    }
    for (color, script) in scripts {
        let _ = writeln!(
            out,
            "comptime {{ // routing configurations for c{} ({} position(s))",
            color.id(),
            script.len()
        );
        let _ = writeln!(out, "  @set_local_color_config(c{}, .{{ .routes = .{{", color.id());
        for (i, rule) in script.rules().iter().enumerate() {
            write_rule(&mut out, rule, i);
        }
        let _ = writeln!(out, "  }} }});");
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
    }

    let program = plan.program(at);
    let _ = writeln!(
        out,
        "var local = @zeros([{}]f32);",
        plan.vector_len().max(program.required_memory())
    );
    let _ = writeln!(out, "var scratch: u32 = 0;");
    let _ = writeln!(out);
    let _ = writeln!(out, "task collective_task() void {{");
    if program.is_empty() {
        let _ = writeln!(out, "  // This PE only forwards wavelets; the processor stays idle.");
    }
    for (idx, instruction) in program.instructions().iter().enumerate() {
        write_instruction(&mut out, idx, instruction);
    }
    let _ = writeln!(out, "}}");
    out
}

/// Emit the sources of every participating PE of a plan, plus the layout.
pub fn emit_plan(plan: &CollectivePlan) -> GeneratedSource {
    let dim = plan.dim();
    let mut pe_sources = Vec::new();
    for c in dim.iter() {
        if plan.program(c).is_empty() && plan.scripts(c).is_empty() {
            continue;
        }
        pe_sources.push((c, emit_pe_source(plan, c)));
    }
    GeneratedSource {
        plan_name: plan.name().to_string(),
        layout: crate::layout::emit_layout(plan),
        pe_sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_collectives::prelude::*;

    fn machine() -> Machine {
        Machine::wse2()
    }

    #[test]
    fn emits_one_module_per_participating_pe() {
        let plan = reduce_1d_plan(ReducePattern::TwoPhase, 9, 16, ReduceOp::Sum, &machine());
        let generated = emit_plan(&plan);
        assert_eq!(generated.pe_sources.len(), 9);
        assert_eq!(generated.plan_name, plan.name());
        assert!(generated.total_lines() > 9 * 5);
    }

    #[test]
    fn root_source_contains_reduce_ops_and_leaf_contains_send() {
        let plan = reduce_1d_plan(ReducePattern::Chain, 6, 8, ReduceOp::Sum, &machine());
        let generated = emit_plan(&plan);
        let root = generated.source_of(Coord::new(0, 0)).unwrap();
        assert!(root.contains("@fadds"), "root must accumulate: {root}");
        assert!(root.contains("fabin_dsd"));
        let leaf = generated.source_of(Coord::new(5, 0)).unwrap();
        assert!(leaf.contains("fabout_dsd"), "rightmost PE must send: {leaf}");
        // Interior PEs use the pipelined chain step.
        let mid = generated.source_of(Coord::new(3, 0)).unwrap();
        assert!(mid.contains("pipelined chain step"));
    }

    #[test]
    fn different_patterns_generate_different_code() {
        let m = machine();
        let star = emit_plan(&reduce_1d_plan(ReducePattern::Star, 8, 32, ReduceOp::Sum, &m));
        let chain = emit_plan(&reduce_1d_plan(ReducePattern::Chain, 8, 32, ReduceOp::Sum, &m));
        assert_ne!(
            star.source_of(Coord::new(0, 0)),
            chain.source_of(Coord::new(0, 0)),
            "star and chain roots must differ"
        );
    }

    #[test]
    fn emission_is_deterministic() {
        let m = machine();
        let a = emit_plan(&reduce_1d_plan(ReducePattern::AutoGen, 12, 64, ReduceOp::Sum, &m));
        let b = emit_plan(&reduce_1d_plan(ReducePattern::AutoGen, 12, 64, ReduceOp::Sum, &m));
        assert_eq!(a.pe_sources, b.pe_sources);
        assert_eq!(a.layout, b.layout);
    }

    #[test]
    fn ring_exchange_and_measurement_wait_are_emitted() {
        let plan = allreduce_1d_plan(AllReducePattern::Ring, 4, 16, ReduceOp::Sum, &machine());
        let generated = emit_plan(&plan);
        let any = generated.source_of(Coord::new(1, 0)).unwrap();
        assert!(any.contains("ring exchange"));

        let ops = [ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod];
        for op in ops {
            let plan = reduce_1d_plan(ReducePattern::Tree, 4, 4, op, &machine());
            let generated = emit_plan(&plan);
            let root = generated.source_of(Coord::new(0, 0)).unwrap();
            assert!(root.contains(op_name(op)));
        }
    }

    #[test]
    fn broadcast_only_pes_still_get_router_configs() {
        let plan = flood_broadcast_plan(
            &LinePath::row(GridDim::row(5), 0),
            8,
            wse_fabric::wavelet::Color::new(3),
        );
        let generated = emit_plan(&plan);
        for x in 0..5 {
            let src = generated.source_of(Coord::new(x, 0)).unwrap();
            assert!(src.contains("@set_local_color_config"));
        }
    }
}
