//! # wse-codegen — CSL-like source emission for generated collective schedules
//!
//! The paper implements its collectives in CSL (the Cerebras SDK's language)
//! and, for the Auto-Gen Reduce, generates the per-PE source code and router
//! configurations from a Python program (§5.5, §8.2). Without the
//! proprietary toolchain this crate reproduces the *code generation* step:
//! it turns a [`wse_collectives::CollectivePlan`] — the same structure every
//! algorithm in this reproduction compiles to — into human-readable CSL-like
//! source text, one module per PE plus a layout file, mirroring what the
//! paper's generator emits.
//!
//! The emitted text is a faithful, reviewable description of the schedule
//! (colors, routing rules, vectorised operations); it is *not* fed to a real
//! CSL compiler. The executable form of the same plan runs on the
//! `wse-fabric` simulator.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod emit;
pub mod layout;

pub use emit::{emit_pe_source, emit_plan, GeneratedSource};
pub use layout::emit_layout;
