//! Criterion benchmarks of the fabric simulator's raw throughput: how many
//! simulated cycles per second the engine sustains for representative
//! traffic patterns.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wse_bench::make_inputs;
use wse_collectives::prelude::*;

fn bench_broadcast_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric/broadcast_row");
    group.sample_size(20);
    for p in [32u32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bencher, &p| {
            let path = LinePath::row(GridDim::row(p), 0);
            let plan = flood_broadcast_plan(&path, 256, wse_fabric::wavelet::Color::new(0));
            let inputs = make_inputs(1, 256);
            bencher.iter(|| {
                let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
                black_box(outcome.runtime_cycles())
            })
        });
    }
    group.finish();
}

fn bench_chain_reduce_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric/chain_reduce_row");
    group.sample_size(10);
    let machine = Machine::wse2();
    for (p, b) in [(64u32, 256u32), (128, 256)] {
        let id = format!("p{p}_b{b}");
        group.bench_with_input(BenchmarkId::from_parameter(id), &(p, b), |bencher, &(p, b)| {
            let plan = reduce_1d_plan(ReducePattern::Chain, p, b, ReduceOp::Sum, &machine);
            let inputs = make_inputs(p as usize, b as usize);
            bencher.iter(|| {
                let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
                black_box(outcome.runtime_cycles())
            })
        });
    }
    group.finish();
}

fn bench_grid_reduce_simulation(c: &mut Criterion) {
    let machine = Machine::wse2();
    let mut group = c.benchmark_group("fabric/xy_two_phase_grid");
    group.sample_size(10);
    for side in [8u32, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |bencher, &side| {
            let dim = GridDim::new(side, side);
            let plan = reduce_2d_plan(
                Reduce2dPattern::Xy(ReducePattern::TwoPhase),
                dim,
                64,
                ReduceOp::Sum,
                &machine,
            );
            let inputs = make_inputs(dim.num_pes(), 64);
            bencher.iter(|| {
                let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
                black_box(outcome.runtime_cycles())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_broadcast_simulation,
    bench_chain_reduce_simulation,
    bench_grid_reduce_simulation
);
criterion_main!(benches);
