//! Criterion micro-benchmarks of the performance model itself: evaluating
//! the closed-form costs, the lower-bound dynamic program and the algorithm
//! selection used by the figure harnesses.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wse_model::{costs_1d, costs_2d, lower_bound::LowerBound1d, selection, Machine};

fn bench_closed_form_costs(c: &mut Criterion) {
    let machine = Machine::wse2();
    c.bench_function("model/all_1d_costs_p512_b1024", |bencher| {
        bencher.iter(|| {
            let p = black_box(512u64);
            let b = black_box(1024u64);
            let total = costs_1d::star(p, b).predict(&machine)
                + costs_1d::chain(p, b).predict(&machine)
                + costs_1d::tree(p, b).predict(&machine)
                + costs_1d::two_phase_default(p, b).predict(&machine)
                + costs_1d::ring_allreduce(p, b).predict(&machine)
                + costs_2d::snake_reduce(p, p, b, &machine);
            black_box(total)
        })
    });
}

fn bench_lower_bound(c: &mut Criterion) {
    let machine = Machine::wse2();
    let mut group = c.benchmark_group("model/lower_bound_dp");
    for p in [64u64, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bencher, &p| {
            bencher.iter(|| {
                let lb = LowerBound1d::new(black_box(p));
                black_box(lb.t_star(256, &machine))
            })
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let machine = Machine::wse2();
    c.bench_function("model/best_fixed_allreduce_sweep", |bencher| {
        bencher.iter(|| {
            let mut acc = 0.0;
            for p in [4u64, 16, 64, 256] {
                for b in [1u64, 16, 256, 4096] {
                    acc += selection::best_fixed_allreduce_1d(p, b, &machine).cycles;
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_closed_form_costs, bench_lower_bound, bench_selection);
criterion_main!(benches);
