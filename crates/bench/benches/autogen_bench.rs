//! Criterion benchmarks of the Auto-Gen search: building the energy DP,
//! querying the best schedule for a vector length, and reconstructing the
//! reduction tree (the paper's offline code-generation cost, §5.5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wse_model::{AutogenSolver, Machine};

fn bench_solver_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("autogen/dp_construction");
    group.sample_size(10);
    for p in [32u64, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bencher, &p| {
            bencher.iter(|| black_box(AutogenSolver::new(black_box(p))))
        });
    }
    group.finish();
}

fn bench_best_cost_queries(c: &mut Criterion) {
    let machine = Machine::wse2();
    let solver = AutogenSolver::new(128);
    c.bench_function("autogen/best_cost_sweep_p128", |bencher| {
        bencher.iter(|| {
            let mut acc = 0.0;
            for b in [1u64, 8, 64, 512, 4096] {
                acc += solver.best_cost(black_box(b), &machine).cycles;
            }
            black_box(acc)
        })
    });
}

fn bench_tree_reconstruction(c: &mut Criterion) {
    let machine = Machine::wse2();
    let solver = AutogenSolver::new(128);
    c.bench_function("autogen/best_tree_p128_b256", |bencher| {
        bencher.iter(|| black_box(solver.best_tree(black_box(256), &machine)))
    });
}

criterion_group!(
    benches,
    bench_solver_construction,
    bench_best_cost_queries,
    bench_tree_reconstruction
);
criterion_main!(benches);
