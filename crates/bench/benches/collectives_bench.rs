//! Criterion benchmarks of plan generation (the "code generation" cost of
//! every algorithm) and of end-to-end simulated collectives, including the
//! ablation over the ramp latency `T_R` and the Two-Phase group size that
//! DESIGN.md calls out.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wse_bench::make_inputs;
use wse_collectives::prelude::*;
use wse_collectives::reduce::tree_reduce_plan;
use wse_model::autogen::ReductionTree;

fn bench_plan_generation(c: &mut Criterion) {
    let machine = Machine::wse2();
    let mut group = c.benchmark_group("collectives/plan_generation_p256_b256");
    for pattern in
        [ReducePattern::Star, ReducePattern::Chain, ReducePattern::Tree, ReducePattern::TwoPhase]
    {
        group.bench_with_input(
            BenchmarkId::from_parameter(pattern.name()),
            &pattern,
            |bencher, &pattern| {
                bencher
                    .iter(|| black_box(reduce_1d_plan(pattern, 256, 256, ReduceOp::Sum, &machine)))
            },
        );
    }
    group.finish();
}

fn bench_end_to_end_patterns(c: &mut Criterion) {
    let machine = Machine::wse2();
    let mut group = c.benchmark_group("collectives/simulated_reduce_p64_b256");
    group.sample_size(10);
    for pattern in [ReducePattern::Chain, ReducePattern::TwoPhase, ReducePattern::AutoGen] {
        group.bench_with_input(
            BenchmarkId::from_parameter(pattern.name()),
            &pattern,
            |bencher, &pattern| {
                let plan = reduce_1d_plan(pattern, 64, 256, ReduceOp::Sum, &machine);
                let inputs = make_inputs(64, 256);
                bencher.iter(|| {
                    let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
                    black_box(outcome.runtime_cycles())
                })
            },
        );
    }
    group.finish();
}

/// Ablation: sensitivity of the simulated runtime to the ramp latency `T_R`
/// (§8.7 argues that `T_R = 2` is the value that matches the hardware).
fn bench_ramp_latency_ablation(c: &mut Criterion) {
    let machine = Machine::wse2();
    let mut group = c.benchmark_group("collectives/ramp_latency_ablation_chain_p64_b256");
    group.sample_size(10);
    for t_r in [1u64, 2, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(t_r), &t_r, |bencher, &t_r| {
            let plan = reduce_1d_plan(ReducePattern::Chain, 64, 256, ReduceOp::Sum, &machine);
            let inputs = make_inputs(64, 256);
            let config = RunConfig::with_ramp_latency(t_r);
            bencher.iter(|| {
                let outcome = run_plan(&plan, &inputs, &config).unwrap();
                black_box(outcome.runtime_cycles())
            })
        });
    }
    group.finish();
}

/// Ablation: the Two-Phase group size `S` around its default `sqrt(P)`.
fn bench_two_phase_group_size_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives/two_phase_group_size_p64_b256");
    group.sample_size(10);
    let path = LinePath::row(GridDim::row(64), 0);
    for s in [2usize, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |bencher, &s| {
            let tree = ReductionTree::two_phase(64, s);
            let plan =
                tree_reduce_plan(format!("two-phase-s{s}"), &path, &tree, 256, ReduceOp::Sum);
            let inputs = make_inputs(64, 256);
            bencher.iter(|| {
                let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
                black_box(outcome.runtime_cycles())
            })
        });
    }
    group.finish();
}

/// The amortisation the session API exists for: repeated requests through a
/// `Session` (plan cache hit + fabric reuse) versus the one-shot path that
/// regenerates the plan — including the Auto-Gen schedule search, the most
/// expensive part of plan generation — on every call.
fn bench_session_amortisation(c: &mut Criterion) {
    let machine = Machine::wse2();
    let mut group = c.benchmark_group("collectives/repeat_autogen_reduce_p64_b256");
    group.sample_size(10);
    let inputs = make_inputs(64, 256);

    group.bench_function(BenchmarkId::from_parameter("one-shot"), |bencher| {
        bencher.iter(|| {
            let plan = reduce_1d_plan(ReducePattern::AutoGen, 64, 256, ReduceOp::Sum, &machine);
            let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
            black_box(outcome.runtime_cycles())
        })
    });

    group.bench_function(BenchmarkId::from_parameter("session"), |bencher| {
        let mut session = Session::new();
        let request = CollectiveRequest::reduce(Topology::line(64), 256)
            .with_schedule(Schedule::Reduce1d(ReducePattern::AutoGen));
        bencher.iter(|| {
            let outcome = session.run(&request, &inputs).unwrap();
            black_box(outcome.runtime_cycles())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_generation,
    bench_end_to_end_patterns,
    bench_ramp_latency_ablation,
    bench_two_phase_group_size_ablation,
    bench_session_amortisation
);
criterion_main!(benches);
