//! Shared infrastructure for the figure-regeneration harnesses.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper: it sweeps
//! the same parameter grid, prints the measured (simulated) and predicted
//! series, and summarises the headline comparison the paper draws from that
//! figure. The helpers here provide deterministic input generation, a
//! simulation-budget guard (the full 512×512-PE wafer is beyond what a
//! cycle-level simulator can sweep on one core — those points are reported
//! from the validated model instead, see DESIGN.md), and a small parallel
//! sweep runner.

use std::collections::VecDeque;
use std::sync::Mutex;

use wse_collectives::prelude::*;
use wse_collectives::runner::expected_reduce;
use wse_collectives::RunOutcome;
use wse_fabric::program::ReduceOp;

/// Default budget on `predicted cycles × PEs` above which a configuration is
/// not simulated (the model prediction is reported instead).
pub const DEFAULT_SIM_BUDGET: f64 = 4.0e7;

/// Budget used when `--paper` is passed: substantially larger, for overnight
/// full-scale runs.
pub const PAPER_SIM_BUDGET: f64 = 2.0e9;

/// Command-line options shared by all harnesses.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Maximum `predicted cycles × PEs` product that is still simulated.
    pub sim_budget: f64,
}

impl HarnessOptions {
    /// Parse the (tiny) shared command line: `--paper` raises the simulation
    /// budget, `--quick` lowers it.
    pub fn from_args() -> Self {
        let mut budget = DEFAULT_SIM_BUDGET;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--paper" => budget = PAPER_SIM_BUDGET,
                "--quick" => budget = 2.0e6,
                other => {
                    eprintln!("ignoring unknown argument {other:?} (supported: --paper, --quick)")
                }
            }
        }
        HarnessOptions { sim_budget: budget }
    }

    /// Whether a configuration with the given predicted cycle count and PE
    /// count fits in the simulation budget.
    pub fn within_budget(&self, predicted_cycles: f64, pes: u64) -> bool {
        predicted_cycles * pes as f64 <= self.sim_budget
    }
}

/// Deterministic per-PE input vectors (the values the paper's benchmarks use
/// are irrelevant for timing; these are chosen so result checking catches
/// ordering mistakes).
pub fn make_inputs(pes: usize, vector_len: usize) -> Vec<Vec<f32>> {
    (0..pes)
        .map(|i| (0..vector_len).map(|j| ((i * 31 + j * 7) % 113) as f32 * 0.03125 + 0.5).collect())
        .collect()
}

/// Run a plan on the simulator, verify the Reduce/AllReduce result and
/// return the measured runtime in cycles.
pub fn simulate_plan(plan: &CollectivePlan, op: ReduceOp) -> u64 {
    let inputs = make_inputs(plan.data_pes().len(), plan.vector_len() as usize);
    let outcome = run_plan(plan, &inputs, &RunConfig::default())
        .unwrap_or_else(|e| panic!("plan {} failed: {e}", plan.name()));
    verify_against_reference(plan, &inputs, &outcome, op);
    outcome.runtime_cycles()
}

fn verify_against_reference(
    plan: &CollectivePlan,
    inputs: &[Vec<f32>],
    outcome: &RunOutcome,
    op: ReduceOp,
) {
    let expected = expected_reduce(inputs, op);
    let tolerance = 1e-3;
    for (at, output) in &outcome.outputs {
        let err = wse_collectives::max_relative_error(output, &expected);
        assert!(
            err <= tolerance,
            "plan {} produced a wrong result at {at} (relative error {err})",
            plan.name()
        );
    }
}

/// A single cell of a printed sweep: measured (if simulated) and predicted
/// runtimes in cycles.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Simulated runtime in cycles, if the configuration fit in the budget.
    pub measured_cycles: Option<f64>,
    /// Model-predicted runtime in cycles.
    pub predicted_cycles: f64,
}

impl Cell {
    /// The value used for figure output: measured when available, predicted
    /// otherwise.
    pub fn best_estimate(&self) -> f64 {
        self.measured_cycles.unwrap_or(self.predicted_cycles)
    }

    /// Relative model error (|measured − predicted| / measured), if measured.
    pub fn relative_error(&self) -> Option<f64> {
        self.measured_cycles.map(|m| (m - self.predicted_cycles).abs() / m.max(1.0))
    }
}

/// Format a cycles value as microseconds at the CS-2 clock (850 MHz), the
/// unit of the paper's y-axes.
pub fn cycles_to_us(cycles: f64) -> f64 {
    Machine::wse2().cycles_to_us(cycles)
}

/// Print a table header followed by rows; purely cosmetic, but keeps the six
/// harnesses visually consistent.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// Summary statistics of model accuracy over a set of cells.
pub fn error_summary(cells: &[Cell]) -> Option<(f64, f64)> {
    let errors: Vec<f64> = cells.iter().filter_map(Cell::relative_error).collect();
    if errors.is_empty() {
        return None;
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0, f64::max);
    Some((mean, max))
}

/// Run `jobs` closures on a small worker pool (one worker per core) and
/// collect their results in order.
pub fn parallel_sweep<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let queue: Mutex<VecDeque<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<T>>> = {
        let len = queue.lock().unwrap().len();
        Mutex::new((0..len).map(|_| None).collect())
    };
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some((index, job)) = queue.lock().unwrap().pop_front() else {
                    break;
                };
                let value = job();
                results.lock().unwrap()[index] = Some(value);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|v| v.expect("every sweep job produces a result"))
        .collect()
}

/// A cache of Auto-Gen solvers keyed by PE count (building the DP for 512
/// PEs is the most expensive part of a sweep and is reused across vector
/// lengths).
#[derive(Default)]
pub struct SolverCache {
    solvers: std::collections::HashMap<u64, wse_model::AutogenSolver>,
}

impl SolverCache {
    /// Get (or build) the solver for `p` PEs.
    pub fn get(&mut self, p: u64) -> &wse_model::AutogenSolver {
        self.solvers.entry(p).or_insert_with(|| wse_model::AutogenSolver::new(p))
    }
}

/// Measured + predicted runtime of a 1D Broadcast on `p` PEs.
pub fn broadcast_1d_cell(p: u32, b: u32, opts: &HarnessOptions, machine: &Machine) -> Cell {
    let predicted = wse_model::costs_1d::broadcast(p as u64, b as u64).predict(machine);
    let measured = if opts.within_budget(predicted, p as u64) {
        let path = LinePath::row(GridDim::row(p), 0);
        let plan = flood_broadcast_plan(&path, b, wse_fabric::wavelet::Color::new(0));
        let inputs = make_inputs(1, b as usize);
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).expect("broadcast runs");
        Some(outcome.runtime_cycles() as f64)
    } else {
        None
    };
    Cell { measured_cycles: measured, predicted_cycles: predicted }
}

/// Measured + predicted runtime of a 1D Reduce with the given pattern.
pub fn reduce_1d_cell(
    pattern: ReducePattern,
    p: u32,
    b: u32,
    opts: &HarnessOptions,
    machine: &Machine,
    cache: &mut SolverCache,
) -> Cell {
    let predicted = predict_reduce_1d(pattern, p, b, machine, cache);
    let measured = if opts.within_budget(predicted, p as u64) {
        let plan = build_reduce_1d_plan(pattern, p, b, machine, cache);
        Some(simulate_plan(&plan, ReduceOp::Sum) as f64)
    } else {
        None
    };
    Cell { measured_cycles: measured, predicted_cycles: predicted }
}

/// Measured + predicted runtime of a 1D AllReduce (Reduce+Bcast or Ring).
pub fn allreduce_1d_cell(
    pattern: AllReducePattern,
    p: u32,
    b: u32,
    opts: &HarnessOptions,
    machine: &Machine,
    cache: &mut SolverCache,
) -> Cell {
    let predicted = match pattern {
        AllReducePattern::ReduceBroadcast(inner) => wse_model::costs_1d::reduce_then_broadcast(
            predict_reduce_1d(inner, p, b, machine, cache),
            p as u64,
            b as u64,
            machine,
        ),
        AllReducePattern::Ring => {
            wse_model::costs_1d::ring_allreduce(p as u64, b as u64).predict(machine)
        }
    };
    let simulatable = match pattern {
        AllReducePattern::Ring => b.is_multiple_of(p),
        _ => true,
    };
    let measured = if simulatable && opts.within_budget(predicted, p as u64) {
        let plan = match pattern {
            AllReducePattern::ReduceBroadcast(inner) => allreduce_1d_plan(
                AllReducePattern::ReduceBroadcast(inner),
                p,
                b,
                ReduceOp::Sum,
                machine,
            ),
            AllReducePattern::Ring => {
                allreduce_1d_plan(AllReducePattern::Ring, p, b, ReduceOp::Sum, machine)
            }
        };
        Some(simulate_plan(&plan, ReduceOp::Sum) as f64)
    } else {
        None
    };
    Cell { measured_cycles: measured, predicted_cycles: predicted }
}

/// Measured + predicted runtime of a 2D Reduce over a `side × side` grid.
pub fn reduce_2d_cell(
    pattern: Reduce2dPattern,
    side: u32,
    b: u32,
    opts: &HarnessOptions,
    machine: &Machine,
    cache: &mut SolverCache,
) -> Cell {
    let predicted = predict_reduce_2d(pattern, side, b, machine, cache);
    let pes = side as u64 * side as u64;
    let measured = if opts.within_budget(predicted, pes) {
        let dim = GridDim::new(side, side);
        let plan = reduce_2d_plan(pattern, dim, b, ReduceOp::Sum, machine);
        Some(simulate_plan(&plan, ReduceOp::Sum) as f64)
    } else {
        None
    };
    Cell { measured_cycles: measured, predicted_cycles: predicted }
}

/// Measured + predicted runtime of a 2D AllReduce (Reduce + 2D Broadcast).
pub fn allreduce_2d_cell(
    pattern: Reduce2dPattern,
    side: u32,
    b: u32,
    opts: &HarnessOptions,
    machine: &Machine,
    cache: &mut SolverCache,
) -> Cell {
    let reduce_predicted = predict_reduce_2d(pattern, side, b, machine, cache);
    let predicted = wse_model::costs_2d::reduce_then_broadcast_2d(
        reduce_predicted,
        side as u64,
        side as u64,
        b as u64,
        machine,
    );
    let pes = side as u64 * side as u64;
    let measured = if opts.within_budget(predicted, pes) {
        let dim = GridDim::new(side, side);
        let plan = allreduce_2d_plan(pattern, dim, b, ReduceOp::Sum, machine);
        Some(simulate_plan(&plan, ReduceOp::Sum) as f64)
    } else {
        None
    };
    Cell { measured_cycles: measured, predicted_cycles: predicted }
}

/// Model prediction for a 1D Reduce pattern (cycles).
pub fn predict_reduce_1d(
    pattern: ReducePattern,
    p: u32,
    b: u32,
    machine: &Machine,
    cache: &mut SolverCache,
) -> f64 {
    use wse_model::Reduce1dAlgorithm;
    let alg = pattern.model_algorithm();
    if alg == Reduce1dAlgorithm::AutoGen {
        alg.cycles(p as u64, b as u64, machine, Some(cache.get(p as u64)))
    } else {
        alg.cycles(p as u64, b as u64, machine, None)
    }
}

/// Model prediction for a 2D Reduce pattern (cycles).
pub fn predict_reduce_2d(
    pattern: Reduce2dPattern,
    side: u32,
    b: u32,
    machine: &Machine,
    cache: &mut SolverCache,
) -> f64 {
    match pattern {
        Reduce2dPattern::Snake => {
            wse_model::costs_2d::snake_reduce(side as u64, side as u64, b as u64, machine)
        }
        Reduce2dPattern::Xy(inner) => 2.0 * predict_reduce_1d(inner, side, b, machine, cache),
    }
}

fn build_reduce_1d_plan(
    pattern: ReducePattern,
    p: u32,
    b: u32,
    machine: &Machine,
    cache: &mut SolverCache,
) -> CollectivePlan {
    if pattern == ReducePattern::AutoGen {
        // Reuse the cached solver instead of rebuilding the DP.
        let tree = cache.get(p as u64).best_tree(b as u64, machine);
        let path = LinePath::row(GridDim::row(p), 0);
        wse_collectives::reduce::tree_reduce_plan(
            format!("reduce-1d-Auto-Gen-p{p}-b{b}"),
            &path,
            &tree,
            b,
            ReduceOp::Sum,
        )
    } else {
        reduce_1d_plan(pattern, p, b, ReduceOp::Sum, machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic_and_sized() {
        let a = make_inputs(4, 8);
        let b = make_inputs(4, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|v| v.len() == 8));
    }

    #[test]
    fn budget_gate_respects_product() {
        let opts = HarnessOptions { sim_budget: 1000.0 };
        assert!(opts.within_budget(10.0, 10));
        assert!(!opts.within_budget(10.0, 1000));
    }

    #[test]
    fn cell_prefers_measured_value() {
        let cell = Cell { measured_cycles: Some(110.0), predicted_cycles: 100.0 };
        assert_eq!(cell.best_estimate(), 110.0);
        assert!((cell.relative_error().unwrap() - 10.0 / 110.0).abs() < 1e-12);
        let model_only = Cell { measured_cycles: None, predicted_cycles: 42.0 };
        assert_eq!(model_only.best_estimate(), 42.0);
        assert!(model_only.relative_error().is_none());
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..16usize).map(|i| Box::new(move || i * i) as _).collect();
        let results = parallel_sweep(jobs);
        assert_eq!(results, (0..16usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn simulate_plan_checks_results() {
        let plan = reduce_1d_plan(ReducePattern::TwoPhase, 8, 16, ReduceOp::Sum, &Machine::wse2());
        let cycles = simulate_plan(&plan, ReduceOp::Sum);
        assert!(cycles > 0);
    }

    #[test]
    fn error_summary_aggregates() {
        let cells = vec![
            Cell { measured_cycles: Some(100.0), predicted_cycles: 90.0 },
            Cell { measured_cycles: Some(200.0), predicted_cycles: 220.0 },
            Cell { measured_cycles: None, predicted_cycles: 10.0 },
        ];
        let (mean, max) = error_summary(&cells).unwrap();
        assert!((mean - 0.1).abs() < 1e-9);
        assert!((max - 0.1).abs() < 1e-9);
    }
}
