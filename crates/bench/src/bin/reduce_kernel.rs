//! Microbench for the chunked `f32` reduce kernels (`wse_fabric::kernel`).
//!
//! The dense-regime executor leans on [`reduce_into`] staying
//! autovectorized; an added branch or a changed loop shape in the kernel
//! silently drops it back to scalar code. This bin times the kernel against
//! a deliberately scalar baseline — the same per-element [`ReduceOp::apply`]
//! with [`std::hint::black_box`] on every element, which the compiler cannot
//! vectorize — so the vector/scalar gap is visible regardless of how clever
//! the optimizer is with ordinary loops.
//!
//! Before timing anything the bin re-checks bitwise equivalence of the
//! kernel against element-wise `apply` on lengths straddling the chunk
//! width, including NaN operands for `Max`/`Min`.
//!
//! Flags:
//!
//! * `--quick`               shorter timing windows (CI smoke)
//! * `--assert-vectorized`   fail unless the kernel beats the scalar
//!   baseline by 2x for `Sum` on the largest size (typical gap is larger)

use std::hint::black_box;
use std::time::Instant;

use wse_fabric::kernel::{reduce_into, LANES};
use wse_fabric::program::ReduceOp;

const OPS: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod];
/// Benchmarked slice lengths: the collectives' block size, a mid size, and
/// an L1-resident large size.
const SIZES: [usize; 3] = [32, 256, 4096];

fn scalar_baseline(op: ReduceOp, acc: &mut [f32], incoming: &[f32]) {
    for (a, b) in acc.iter_mut().zip(incoming) {
        *a = black_box(op.apply(*a, *b));
    }
}

/// Elements per nanosecond over repeated in-cache applications; best of
/// `batches` timing batches so one scheduler hiccup does not poison a point.
fn rate(mut f: impl FnMut(&mut [f32], &[f32]), len: usize, iters: u32, batches: u32) -> f64 {
    let incoming: Vec<f32> = (0..len).map(|i| 1.0 + (i % 13) as f32 * 0.25).collect();
    let mut acc: Vec<f32> = (0..len).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
    let mut best = f64::MAX;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..iters {
            f(&mut acc, &incoming);
        }
        let ns = start.elapsed().as_nanos() as f64;
        best = best.min(ns / (len as f64 * iters as f64));
        black_box(&acc);
    }
    1.0 / best
}

/// Bitwise self-check of the kernel against element-wise `apply` (the unit
/// tests cover this too; re-checking here keeps the bin trustworthy on its
/// own).
fn check() {
    for op in OPS {
        for len in [0usize, 1, LANES - 1, LANES, LANES + 1, 2 * LANES, 33] {
            let mut acc: Vec<f32> = (0..len).map(|i| i as f32 * 0.75 - 3.0).collect();
            let incoming: Vec<f32> = (0..len).map(|i| 10.0 - i as f32 * 1.25).collect();
            if len > 1 {
                acc[len / 2] = f32::NAN;
                acc[len - 1] = f32::NAN;
            }
            let expected: Vec<u32> =
                acc.iter().zip(&incoming).map(|(&a, &b)| op.apply(a, b).to_bits()).collect();
            reduce_into(op, &mut acc, &incoming);
            let got: Vec<u32> = acc.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expected, "kernel diverges from scalar apply: {op:?} len {len}");
        }
    }
}

fn main() {
    let mut quick = false;
    let mut assert_vectorized = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--assert-vectorized" => assert_vectorized = true,
            other => eprintln!(
                "ignoring unknown argument {other:?} (supported: --quick, --assert-vectorized)"
            ),
        }
    }
    check();

    let batches = if quick { 5 } else { 20 };
    println!("# Chunked reduce kernel vs. scalar (black_box) baseline, elements/ns");
    println!("{:>6} {:>6} {:>12} {:>12} {:>8}", "op", "len", "kernel", "scalar", "ratio");
    let mut sum_large_ratio = 0.0f64;
    for op in OPS {
        for len in SIZES {
            // Aim each batch at roughly the same wall time across sizes.
            let iters = (if quick { 200_000 } else { 2_000_000 } / len.max(1)).max(16) as u32;
            let kernel = rate(|a, b| reduce_into(op, a, b), len, iters, batches);
            let scalar = rate(|a, b| scalar_baseline(op, a, b), len, iters, batches);
            let ratio = kernel / scalar.max(1e-12);
            if op == ReduceOp::Sum && len == SIZES[SIZES.len() - 1] {
                sum_large_ratio = ratio;
            }
            println!(
                "{:>6} {:>6} {:>12.3} {:>12.3} {:>7.1}x",
                format!("{op:?}"),
                len,
                kernel,
                scalar,
                ratio
            );
        }
    }

    if assert_vectorized {
        assert!(
            sum_large_ratio >= 2.0,
            "reduce kernel is only {sum_large_ratio:.1}x the scalar baseline for Sum/{} — \
             it has likely de-vectorized",
            SIZES[SIZES.len() - 1]
        );
    }
}
