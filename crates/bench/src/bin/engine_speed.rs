//! Engine throughput: the event-driven fast path against the reference
//! cycle-stepper, in simulated cycles per wall-clock second.
//!
//! The headline workload is *sparse traffic on a large grid* — one message
//! crossing a W×H wafer along a single row. The reference engine pays for
//! every PE and router every cycle, O(W·H) per cycle; the fast engine visits
//! only the handful of PEs and routers with pending work, so its advantage
//! grows with the idle fraction of the wafer — exactly the serving regime
//! where a small collective runs on a corner of a big configured mesh. A
//! dense 2D reduce point is included as a sanity check that active-set
//! bookkeeping does not slow busy fabrics down.
//!
//! Every point first runs both engines once and asserts byte-identical
//! [`RunReport`]s and receiver memory — the speedup is only meaningful
//! because the answers are the same.
//!
//! The dense points sweep a 2D reduce and a 2D allreduce over grids where
//! every PE participates — the regime the fast engine's struct-of-arrays
//! dense executor targets. Each dense point reports the fast engine twice:
//! with the dense regime enabled (default) and with it disabled
//! (`dense_threshold_pct` above 100, i.e. the event-driven path alone), so
//! the JSON records what the dense executor itself buys. Dense cps clocks
//! `Fabric::run` alone on a reused fabric (plan re-install is untimed), so
//! the ratios compare engine stepping speed, not fabric construction.
//!
//! Flags:
//!
//! * `--quick`           fewer/smaller grids, shorter timing windows (CI)
//! * `--out F`           JSON output path (default `BENCH_engine.json`)
//! * `--assert-speedup`  fail unless fast/reference clears the bar on the
//!   largest sparse grid (5x; the measured margin is typically far larger)
//! * `--assert-dense-speedup`  fail unless, on the largest dense-reduce
//!   grid, fast/reference clears 1.5x and the dense executor clears 1.1x
//!   over the fast engine with the dense regime disabled

use std::time::{Duration, Instant};

use wse_collectives::prelude::*;
use wse_fabric::program::PeProgram;
use wse_fabric::router::{ColorScript, RouteRule};
use wse_fabric::wavelet::Color;
use wse_fabric::{Direction, DirectionSet, EngineKind as Engine, Fabric, FabricParams, RunReport};

struct Options {
    quick: bool,
    out: String,
    assert_speedup: bool,
    assert_dense_speedup: bool,
}

impl Options {
    fn from_args() -> Self {
        let mut opts = Options {
            quick: false,
            out: "BENCH_engine.json".to_string(),
            assert_speedup: false,
            assert_dense_speedup: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--out" => opts.out = args.next().expect("--out needs a path"),
                "--assert-speedup" => opts.assert_speedup = true,
                "--assert-dense-speedup" => opts.assert_dense_speedup = true,
                other => eprintln!(
                    "ignoring unknown argument {other:?} \
                     (supported: --quick, --out F, --assert-speedup, --assert-dense-speedup)"
                ),
            }
        }
        opts
    }
}

/// One measured grid point.
struct Point {
    label: &'static str,
    width: u32,
    height: u32,
    run_cycles: u64,
    reference_cps: f64,
    fast_cps: f64,
    speedup: f64,
    /// Fast engine with the dense regime disabled (dense points only).
    fast_nodense_cps: Option<f64>,
}

const MESSAGE_LEN: u32 = 16;

/// Install the sparse workload on an idle fabric: PE (W-1, H/2) sends
/// `MESSAGE_LEN` values west along its row to PE (0, H/2). Everything off
/// that row stays idle for the whole run.
fn install_sparse(fabric: &mut Fabric, dim: GridDim) {
    let color = Color::new(0);
    let row = dim.height / 2;
    let west = DirectionSet::single(Direction::West);
    let ramp = DirectionSet::single(Direction::Ramp);

    let sender = Coord::new(dim.width - 1, row);
    let mut program = PeProgram::new();
    program.send(color, 0, MESSAGE_LEN);
    fabric.set_program(sender, &program);
    let values: Vec<f32> = (0..MESSAGE_LEN).map(|i| i as f32 * 0.5 + 1.0).collect();
    fabric.set_local(sender, &values);
    fabric.set_router_script(
        sender,
        color,
        ColorScript::new(vec![RouteRule::forever(Direction::Ramp, west)]),
    );

    for x in 1..dim.width - 1 {
        fabric.set_router_script(
            Coord::new(x, row),
            color,
            ColorScript::new(vec![RouteRule::forever(Direction::East, west)]),
        );
    }

    let receiver = Coord::new(0, row);
    let mut program = PeProgram::new();
    program.recv_store(color, 0, MESSAGE_LEN);
    fabric.set_program(receiver, &program);
    fabric.set_local(receiver, &vec![0.0; MESSAGE_LEN as usize]);
    fabric.set_router_script(
        receiver,
        color,
        ColorScript::new(vec![RouteRule::forever(Direction::East, ramp)]),
    );
}

/// Run the sparse workload once on a fresh fabric with the given engine.
fn sparse_once(dim: GridDim, engine: Engine) -> (RunReport, Vec<f32>) {
    let mut fabric = Fabric::new(dim, FabricParams::default().with_engine(engine));
    install_sparse(&mut fabric, dim);
    let report = fabric.run().expect("the sparse message completes");
    let received = fabric.local(Coord::new(0, dim.height / 2)).to_vec();
    (report, received)
}

/// Simulated cycles per second for the sparse workload: repeat
/// reset-install-run on one fabric until the timing window closes.
fn sparse_rate(dim: GridDim, engine: Engine, window: Duration) -> (f64, u64) {
    let mut fabric = Fabric::new(dim, FabricParams::default().with_engine(engine));
    let mut total_cycles = 0u64;
    let start = Instant::now();
    let run_cycles = loop {
        fabric.reset();
        install_sparse(&mut fabric, dim);
        let report = fabric.run().expect("the sparse message completes");
        total_cycles += report.cycles;
        if start.elapsed() >= window {
            break report.cycles;
        }
    };
    (total_cycles as f64 / start.elapsed().as_secs_f64().max(1e-9), run_cycles)
}

/// Measure one sparse grid point, asserting byte-identity first.
fn sparse_point(width: u32, height: u32, window: Duration) -> Point {
    let dim = GridDim::new(width, height);
    let (fast_report, fast_values) = sparse_once(dim, Engine::Fast);
    let (reference_report, reference_values) = sparse_once(dim, Engine::Reference);
    assert_eq!(fast_report, reference_report, "{width}x{height}: engine reports diverge");
    assert_eq!(fast_values, reference_values, "{width}x{height}: received values diverge");

    let (reference_cps, run_cycles) = sparse_rate(dim, Engine::Reference, window);
    let (fast_cps, _) = sparse_rate(dim, Engine::Fast, window);
    Point {
        label: "sparse",
        width,
        height,
        run_cycles,
        reference_cps,
        fast_cps,
        speedup: fast_cps / reference_cps.max(1e-9),
        fast_nodense_cps: None,
    }
}

/// One dense point: a 2D collective keeping the whole grid busy — the regime
/// of the struct-of-arrays dense executor. Measures the reference engine,
/// the full fast engine, and the fast engine with its dense regime disabled
/// (the event-driven path alone), asserting byte-identity across all three.
fn dense_point(
    label: &'static str,
    allreduce: bool,
    width: u32,
    height: u32,
    window: Duration,
) -> Point {
    let topology = Topology::grid(width, height);
    let request = if allreduce {
        CollectiveRequest::allreduce(topology, 32)
    } else {
        CollectiveRequest::reduce(topology, 32)
    };
    let resolved = request.resolve(&Machine::wse2()).expect("dense request resolves");
    let inputs = wse_bench::make_inputs((width * height) as usize, 32);

    // Dense cps measures the engines' *stepping* speed: the fabric is built
    // once and reused (reset + plan re-install each iteration, untimed), and
    // only `Fabric::run` is on the clock. Timing the whole `run_plan` would
    // fold a per-iteration `Fabric::new` — O(grid) allocation, identical for
    // both engines — into every ratio and dilute them.
    let rate = |engine: Engine, dense_threshold: Option<u32>| {
        let mut params = FabricParams::default().with_engine(engine);
        if let Some(pct) = dense_threshold {
            params = params.with_dense_threshold(pct);
        }
        let mut fabric = Fabric::new(resolved.plan.dim(), params);
        let mut total_cycles = 0u64;
        let mut run_time = Duration::ZERO;
        let start = Instant::now();
        loop {
            fabric.reset();
            resolved.plan.apply(&mut fabric);
            for (at, data) in resolved.plan.data_pes().iter().zip(&inputs) {
                fabric.set_local(*at, data);
            }
            let timed = Instant::now();
            let report = fabric.run().expect("dense collective runs");
            run_time += timed.elapsed();
            total_cycles += report.cycles;
            if start.elapsed() >= window {
                break;
            }
        }
        total_cycles as f64 / run_time.as_secs_f64().max(1e-9)
    };

    // Byte-identity is asserted on full untimed runs through `run_plan`,
    // comparing reports and gathered outputs across all three configurations.
    let once = |engine: Engine, dense_threshold: Option<u32>| {
        let mut config = RunConfig::default().with_engine(engine);
        if let Some(pct) = dense_threshold {
            config.params = config.params.with_dense_threshold(pct);
        }
        run_plan(&resolved.plan, &inputs, &config).expect("dense collective runs")
    };

    let fast_outcome = once(Engine::Fast, None);
    let nodense_outcome = once(Engine::Fast, Some(101));
    let reference_outcome = once(Engine::Reference, None);
    let fast_cps = rate(Engine::Fast, None);
    let nodense_cps = rate(Engine::Fast, Some(101));
    let reference_cps = rate(Engine::Reference, None);
    assert_eq!(fast_outcome.report, reference_outcome.report, "{label}: engine reports diverge");
    assert_eq!(fast_outcome.outputs, reference_outcome.outputs, "{label}: outputs diverge");
    assert_eq!(
        nodense_outcome.report, reference_outcome.report,
        "{label}: no-dense report diverges"
    );
    assert_eq!(
        nodense_outcome.outputs, reference_outcome.outputs,
        "{label}: no-dense outputs diverge"
    );
    Point {
        label,
        width,
        height,
        run_cycles: fast_outcome.report.cycles,
        reference_cps,
        fast_cps,
        speedup: fast_cps / reference_cps.max(1e-9),
        fast_nodense_cps: Some(nodense_cps),
    }
}

fn json(points: &[Point], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"engine_speed\",\n");
    out.push_str(&format!(
        "  \"workload\": \"sparse: {MESSAGE_LEN}-value row-crossing message; \
         dense: 2D reduce/allreduce b=32\",\n"
    ));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let nodense = match p.fast_nodense_cps {
            Some(cps) => format!(
                ", \"fast_nodense_cps\": {:.0}, \"nodense_speedup\": {:.2}",
                cps,
                cps / p.reference_cps.max(1e-9)
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"width\": {}, \"height\": {}, \"run_cycles\": {}, \
             \"reference_cps\": {:.0}, \"fast_cps\": {:.0}, \"speedup\": {:.2}{}}}{}\n",
            p.label,
            p.width,
            p.height,
            p.run_cycles,
            p.reference_cps,
            p.fast_cps,
            p.speedup,
            nodense,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let opts = Options::from_args();
    let grids: &[(u32, u32)] =
        if opts.quick { &[(12, 12), (32, 32)] } else { &[(16, 16), (32, 32), (64, 64), (96, 96)] };
    let window = if opts.quick { Duration::from_millis(25) } else { Duration::from_millis(200) };

    let dense_grids: &[(u32, u32)] =
        if opts.quick { &[(12, 12), (24, 24)] } else { &[(12, 12), (24, 24), (48, 48)] };

    println!("# Engine speed: event-driven fast path vs. reference cycle-stepper");
    println!(
        "{:>15} {:>9} {:>11} {:>16} {:>16} {:>9} {:>11}",
        "workload", "grid", "cycles/run", "reference(c/s)", "fast(c/s)", "speedup", "no-dense"
    );
    let mut points = Vec::new();
    for &(w, h) in grids {
        points.push(sparse_point(w, h, window));
    }
    for &(w, h) in dense_grids {
        points.push(dense_point("dense-reduce", false, w, h, window));
        points.push(dense_point("dense-allreduce", true, w, h, window));
    }
    for p in &points {
        let nodense = match p.fast_nodense_cps {
            Some(cps) => format!("{:.1}x", cps / p.reference_cps.max(1e-9)),
            None => "-".to_string(),
        };
        println!(
            "{:>15} {:>9} {:>11} {:>16.0} {:>16.0} {:>8.1}x {:>11}",
            p.label,
            format!("{}x{}", p.width, p.height),
            p.run_cycles,
            p.reference_cps,
            p.fast_cps,
            p.speedup,
            nodense,
        );
    }

    // The fast engine must win where it is designed to: the largest sparse
    // grid, and (with the dense regime) the largest dense reduce. The gates
    // are opt-in (like the throughput harness) so CI smoke runs on loaded
    // shared runners stay deterministic.
    let sparse_best =
        points.iter().rev().find(|p| p.label == "sparse").expect("sparse points exist");
    if opts.assert_speedup {
        assert!(
            sparse_best.speedup >= 5.0,
            "fast engine speedup {:.1}x on {}x{} is below the 5x bar",
            sparse_best.speedup,
            sparse_best.width,
            sparse_best.height
        );
    }
    // The dense bars sit well below typical measurements (the largest dense
    // reduce runs ~1.8-2.6x the reference here) but above what the
    // event-driven path manages alone (~1.2-1.45x), so a regression that
    // effectively disables the dense executor trips them even on a noisy
    // runner.
    let dense_best =
        points.iter().rev().find(|p| p.label == "dense-reduce").expect("dense points exist");
    if opts.assert_dense_speedup {
        assert!(
            dense_best.speedup >= 1.5,
            "dense-regime speedup {:.1}x on {}x{} is below the 1.5x bar",
            dense_best.speedup,
            dense_best.width,
            dense_best.height
        );
        let nodense = dense_best.fast_nodense_cps.expect("dense points record a no-dense rate");
        assert!(
            dense_best.fast_cps >= 1.1 * nodense,
            "dense executor buys only {:.2}x over the event-driven path on {}x{} (bar: 1.1x)",
            dense_best.fast_cps / nodense.max(1e-9),
            dense_best.width,
            dense_best.height
        );
    }

    let payload = json(&points, opts.quick);
    std::fs::write(&opts.out, &payload)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!("\nwrote {} points to {}", points.len(), opts.out);
}
