//! Engine throughput: the event-driven fast path against the reference
//! cycle-stepper, in simulated cycles per wall-clock second.
//!
//! The headline workload is *sparse traffic on a large grid* — one message
//! crossing a W×H wafer along a single row. The reference engine pays for
//! every PE and router every cycle, O(W·H) per cycle; the fast engine visits
//! only the handful of PEs and routers with pending work, so its advantage
//! grows with the idle fraction of the wafer — exactly the serving regime
//! where a small collective runs on a corner of a big configured mesh. A
//! dense 2D reduce point is included as a sanity check that active-set
//! bookkeeping does not slow busy fabrics down.
//!
//! Every point first runs both engines once and asserts byte-identical
//! [`RunReport`]s and receiver memory — the speedup is only meaningful
//! because the answers are the same.
//!
//! Flags:
//!
//! * `--quick`           fewer/smaller grids, shorter timing windows (CI)
//! * `--out F`           JSON output path (default `BENCH_engine.json`)
//! * `--assert-speedup`  fail unless fast/reference clears the bar on the
//!   largest sparse grid (5x; the measured margin is typically far larger)

use std::time::{Duration, Instant};

use wse_collectives::prelude::*;
use wse_fabric::program::PeProgram;
use wse_fabric::router::{ColorScript, RouteRule};
use wse_fabric::wavelet::Color;
use wse_fabric::{Direction, DirectionSet, EngineKind as Engine, Fabric, FabricParams, RunReport};

struct Options {
    quick: bool,
    out: String,
    assert_speedup: bool,
}

impl Options {
    fn from_args() -> Self {
        let mut opts =
            Options { quick: false, out: "BENCH_engine.json".to_string(), assert_speedup: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--out" => opts.out = args.next().expect("--out needs a path"),
                "--assert-speedup" => opts.assert_speedup = true,
                other => eprintln!(
                    "ignoring unknown argument {other:?} \
                     (supported: --quick, --out F, --assert-speedup)"
                ),
            }
        }
        opts
    }
}

/// One measured grid point.
struct Point {
    label: &'static str,
    width: u32,
    height: u32,
    run_cycles: u64,
    reference_cps: f64,
    fast_cps: f64,
    speedup: f64,
}

const MESSAGE_LEN: u32 = 16;

/// Install the sparse workload on an idle fabric: PE (W-1, H/2) sends
/// `MESSAGE_LEN` values west along its row to PE (0, H/2). Everything off
/// that row stays idle for the whole run.
fn install_sparse(fabric: &mut Fabric, dim: GridDim) {
    let color = Color::new(0);
    let row = dim.height / 2;
    let west = DirectionSet::single(Direction::West);
    let ramp = DirectionSet::single(Direction::Ramp);

    let sender = Coord::new(dim.width - 1, row);
    let mut program = PeProgram::new();
    program.send(color, 0, MESSAGE_LEN);
    fabric.set_program(sender, &program);
    let values: Vec<f32> = (0..MESSAGE_LEN).map(|i| i as f32 * 0.5 + 1.0).collect();
    fabric.set_local(sender, &values);
    fabric.set_router_script(
        sender,
        color,
        ColorScript::new(vec![RouteRule::forever(Direction::Ramp, west)]),
    );

    for x in 1..dim.width - 1 {
        fabric.set_router_script(
            Coord::new(x, row),
            color,
            ColorScript::new(vec![RouteRule::forever(Direction::East, west)]),
        );
    }

    let receiver = Coord::new(0, row);
    let mut program = PeProgram::new();
    program.recv_store(color, 0, MESSAGE_LEN);
    fabric.set_program(receiver, &program);
    fabric.set_local(receiver, &vec![0.0; MESSAGE_LEN as usize]);
    fabric.set_router_script(
        receiver,
        color,
        ColorScript::new(vec![RouteRule::forever(Direction::East, ramp)]),
    );
}

/// Run the sparse workload once on a fresh fabric with the given engine.
fn sparse_once(dim: GridDim, engine: Engine) -> (RunReport, Vec<f32>) {
    let mut fabric = Fabric::new(dim, FabricParams::default().with_engine(engine));
    install_sparse(&mut fabric, dim);
    let report = fabric.run().expect("the sparse message completes");
    let received = fabric.local(Coord::new(0, dim.height / 2)).to_vec();
    (report, received)
}

/// Simulated cycles per second for the sparse workload: repeat
/// reset-install-run on one fabric until the timing window closes.
fn sparse_rate(dim: GridDim, engine: Engine, window: Duration) -> (f64, u64) {
    let mut fabric = Fabric::new(dim, FabricParams::default().with_engine(engine));
    let mut total_cycles = 0u64;
    let start = Instant::now();
    let run_cycles = loop {
        fabric.reset();
        install_sparse(&mut fabric, dim);
        let report = fabric.run().expect("the sparse message completes");
        total_cycles += report.cycles;
        if start.elapsed() >= window {
            break report.cycles;
        }
    };
    (total_cycles as f64 / start.elapsed().as_secs_f64().max(1e-9), run_cycles)
}

/// Measure one sparse grid point, asserting byte-identity first.
fn sparse_point(width: u32, height: u32, window: Duration) -> Point {
    let dim = GridDim::new(width, height);
    let (fast_report, fast_values) = sparse_once(dim, Engine::Fast);
    let (reference_report, reference_values) = sparse_once(dim, Engine::Reference);
    assert_eq!(fast_report, reference_report, "{width}x{height}: engine reports diverge");
    assert_eq!(fast_values, reference_values, "{width}x{height}: received values diverge");

    let (reference_cps, run_cycles) = sparse_rate(dim, Engine::Reference, window);
    let (fast_cps, _) = sparse_rate(dim, Engine::Fast, window);
    Point {
        label: "sparse",
        width,
        height,
        run_cycles,
        reference_cps,
        fast_cps,
        speedup: fast_cps / reference_cps.max(1e-9),
    }
}

/// The dense sanity point: a 2D reduce keeping the whole grid busy. The fast
/// engine cannot skip much here; the point checks its bookkeeping overhead.
fn dense_point(width: u32, height: u32, window: Duration) -> Point {
    let request = CollectiveRequest::reduce(Topology::grid(width, height), 32);
    let resolved = request.resolve(&Machine::wse2()).expect("dense request resolves");
    let inputs = wse_bench::make_inputs((width * height) as usize, 32);

    let rate = |engine: Engine| {
        let config = RunConfig::default().with_engine(engine);
        let mut total_cycles = 0u64;
        let start = Instant::now();
        let outcome = loop {
            let result = run_plan(&resolved.plan, &inputs, &config).expect("dense reduce runs");
            total_cycles += result.report.cycles;
            if start.elapsed() >= window {
                break result;
            }
        };
        (total_cycles as f64 / start.elapsed().as_secs_f64().max(1e-9), outcome)
    };

    let (fast_cps, fast_outcome) = rate(Engine::Fast);
    let (reference_cps, reference_outcome) = rate(Engine::Reference);
    assert_eq!(fast_outcome.report, reference_outcome.report, "dense: engine reports diverge");
    assert_eq!(fast_outcome.outputs, reference_outcome.outputs, "dense: outputs diverge");
    Point {
        label: "dense",
        width,
        height,
        run_cycles: fast_outcome.report.cycles,
        reference_cps,
        fast_cps,
        speedup: fast_cps / reference_cps.max(1e-9),
    }
}

fn json(points: &[Point], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"engine_speed\",\n");
    out.push_str(&format!(
        "  \"workload\": \"sparse: {MESSAGE_LEN}-value row-crossing message; \
         dense: 2D reduce b=32\",\n"
    ));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"width\": {}, \"height\": {}, \"run_cycles\": {}, \
             \"reference_cps\": {:.0}, \"fast_cps\": {:.0}, \"speedup\": {:.2}}}{}\n",
            p.label,
            p.width,
            p.height,
            p.run_cycles,
            p.reference_cps,
            p.fast_cps,
            p.speedup,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let opts = Options::from_args();
    let grids: &[(u32, u32)] =
        if opts.quick { &[(12, 12), (32, 32)] } else { &[(16, 16), (32, 32), (64, 64), (96, 96)] };
    let window = if opts.quick { Duration::from_millis(25) } else { Duration::from_millis(200) };

    println!("# Engine speed: event-driven fast path vs. reference cycle-stepper");
    println!(
        "{:>8} {:>9} {:>11} {:>16} {:>16} {:>9}",
        "workload", "grid", "cycles/run", "reference(c/s)", "fast(c/s)", "speedup"
    );
    let mut points = Vec::new();
    for &(w, h) in grids {
        points.push(sparse_point(w, h, window));
    }
    points.push(dense_point(
        if opts.quick { 8 } else { 12 },
        if opts.quick { 8 } else { 12 },
        window,
    ));
    for p in &points {
        println!(
            "{:>8} {:>9} {:>11} {:>16.0} {:>16.0} {:>8.1}x",
            p.label,
            format!("{}x{}", p.width, p.height),
            p.run_cycles,
            p.reference_cps,
            p.fast_cps,
            p.speedup,
        );
    }

    // The fast engine must win where it is designed to: the largest sparse
    // grid. The gate is opt-in (like the throughput harness) so CI smoke
    // runs on loaded shared runners stay deterministic.
    let sparse_best =
        points.iter().rev().find(|p| p.label == "sparse").expect("sparse points exist");
    if opts.assert_speedup {
        assert!(
            sparse_best.speedup >= 5.0,
            "fast engine speedup {:.1}x on {}x{} is below the 5x bar",
            sparse_best.speedup,
            sparse_best.width,
            sparse_best.height
        );
    }

    let payload = json(&points, opts.quick);
    std::fs::write(&opts.out, &payload)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!("\nwrote {} points to {}", points.len(), opts.out);
}
