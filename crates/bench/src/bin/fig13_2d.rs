//! Figure 13: 2D Reduce and AllReduce.
//!
//! * (a) 2D Reduce on 512×512 PEs for increasing vector length,
//! * (b) 2D AllReduce on 512×512 PEs for increasing vector length,
//! * (c) 2D Reduce at a fixed 1 KB vector for grids from 4×4 to 512×512.
//!
//! Cycle-level simulation of the full 262 144-PE wafer is outside this
//! harness's budget (see DESIGN.md); by default the 512×512 series are
//! model predictions, cross-validated against simulation at the grid sizes
//! that fit the budget (the `measured` rows of part (c) and any `--paper`
//! runs).

use wse_bench::*;
use wse_collectives::prelude::*;
use wse_model::{selection, sweep};

fn patterns() -> Vec<Reduce2dPattern> {
    vec![
        Reduce2dPattern::Xy(ReducePattern::Star),
        Reduce2dPattern::Xy(ReducePattern::Chain),
        Reduce2dPattern::Xy(ReducePattern::Tree),
        Reduce2dPattern::Xy(ReducePattern::TwoPhase),
        Reduce2dPattern::Xy(ReducePattern::AutoGen),
        Reduce2dPattern::Snake,
    ]
}

fn main() {
    let opts = HarnessOptions::from_args();
    let machine = Machine::wse2();
    let mut cache = SolverCache::default();
    let vector_bytes = sweep::figure11_vector_bytes();
    let side: u32 = 512;

    let header: Vec<String> = std::iter::once("series".to_string())
        .chain(vector_bytes.iter().map(|b| sweep::format_bytes(*b)))
        .collect();

    // ---------------------------------------------------------------- (a)
    let mut rows = Vec::new();
    let mut chain_series = Vec::new();
    let mut auto_series = Vec::new();
    for pattern in patterns() {
        let mut measured_row = vec![format!("measured {} (us)", pattern.name())];
        let mut predicted_row = vec![format!("predicted {} (us)", pattern.name())];
        for &bytes in &vector_bytes {
            let b = sweep::bytes_to_wavelets(bytes) as u32;
            let cell = reduce_2d_cell(pattern, side, b, &opts, &machine, &mut cache);
            measured_row.push(match cell.measured_cycles {
                Some(m) => format!("{:.3}", cycles_to_us(m)),
                None => "-".to_string(),
            });
            predicted_row.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
            if pattern == Reduce2dPattern::Xy(ReducePattern::Chain) {
                chain_series.push(cell.best_estimate());
            }
            if pattern == Reduce2dPattern::Xy(ReducePattern::AutoGen) {
                auto_series.push(cell.best_estimate());
            }
        }
        rows.push(measured_row);
        rows.push(predicted_row);
    }
    print_table(
        "Figure 13a: 2D Reduce on 512x512 PEs for increasing vector length (us)",
        &header,
        &rows,
    );
    let speedup = chain_series.iter().zip(&auto_series).map(|(c, a)| c / a).fold(0.0f64, f64::max);
    println!("largest X-Y Auto-Gen speedup over the vendor X-Y Chain: {speedup:.2}x (paper: up to 3.27x)");

    // ---------------------------------------------------------------- (b)
    let mut rows = Vec::new();
    let mut chain_series = Vec::new();
    let mut auto_series = Vec::new();
    for pattern in patterns() {
        let mut measured_row = vec![format!("measured {}+2D-Bcast (us)", pattern.name())];
        let mut predicted_row = vec![format!("predicted {}+2D-Bcast (us)", pattern.name())];
        for &bytes in &vector_bytes {
            let b = sweep::bytes_to_wavelets(bytes) as u32;
            let cell = allreduce_2d_cell(pattern, side, b, &opts, &machine, &mut cache);
            measured_row.push(match cell.measured_cycles {
                Some(m) => format!("{:.3}", cycles_to_us(m)),
                None => "-".to_string(),
            });
            predicted_row.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
            if pattern == Reduce2dPattern::Xy(ReducePattern::Chain) {
                chain_series.push(cell.best_estimate());
            }
            if pattern == Reduce2dPattern::Xy(ReducePattern::AutoGen) {
                auto_series.push(cell.best_estimate());
            }
        }
        rows.push(measured_row);
        rows.push(predicted_row);
    }
    // X-Y Ring (predicted only, as in the paper's Figure 13b legend).
    let mut ring_row = vec!["predicted X-Y Ring (us)".to_string()];
    for &bytes in &vector_bytes {
        let b = sweep::bytes_to_wavelets(bytes);
        ring_row.push(format!(
            "{:.3}",
            cycles_to_us(wse_model::costs_2d::xy_ring_allreduce(
                side as u64,
                side as u64,
                b,
                &machine
            ))
        ));
    }
    rows.push(ring_row);
    print_table(
        "Figure 13b: 2D AllReduce on 512x512 PEs for increasing vector length (us)",
        &header,
        &rows,
    );
    let speedup = chain_series.iter().zip(&auto_series).map(|(c, a)| c / a).fold(0.0f64, f64::max);
    println!(
        "largest X-Y Auto-Gen AllReduce speedup over X-Y Chain: {speedup:.2}x (paper: up to 2.54x)"
    );

    // ---------------------------------------------------------------- (c)
    let b = sweep::bytes_to_wavelets(sweep::FIXED_VECTOR_BYTES) as u32;
    let sides = sweep::figure13_grid_sides();
    let header: Vec<String> = std::iter::once("series".to_string())
        .chain(sides.iter().map(|s| format!("{s}x{s}")))
        .collect();
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for pattern in patterns() {
        let mut measured_row = vec![format!("measured {} (us)", pattern.name())];
        let mut predicted_row = vec![format!("predicted {} (us)", pattern.name())];
        for &s in &sides {
            let cell = reduce_2d_cell(pattern, s as u32, b, &opts, &machine, &mut cache);
            measured_row.push(match cell.measured_cycles {
                Some(m) => format!("{:.3}", cycles_to_us(m)),
                None => "-".to_string(),
            });
            predicted_row.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
            cells.push(cell);
        }
        rows.push(measured_row);
        rows.push(predicted_row);
    }
    print_table("Figure 13c: 2D Reduce at 1 KB for increasing grid size (us)", &header, &rows);
    if let Some((mean, max)) = error_summary(&cells) {
        println!(
            "model error (simulated grid sizes): mean {:.1}% / max {:.1}%",
            mean * 100.0,
            max * 100.0
        );
    }

    // Best-algorithm transitions along the grid-size axis (paper §8.7:
    // Snake -> X-Y Chain -> X-Y Two Phase).
    println!("\nbest fixed 2D Reduce per grid size at 1 KB:");
    for &s in &sides {
        let best = selection::best_fixed_reduce_2d(s, s, b as u64, &machine);
        println!("  {s}x{s}: {}", best.algorithm.name());
    }
}
