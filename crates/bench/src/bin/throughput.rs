//! Batch-serving throughput: sequential `Session` loop vs. parallel
//! `Executor` on a mixed batch of independent collective requests.
//!
//! The harness builds a batch of mixed kinds (Reduce / AllReduce /
//! Broadcast), topologies (rows and grids) and vector lengths, runs it
//! several times through both execution paths, verifies the executor's
//! results are **byte-identical** to the sequential session's (outputs and
//! `RunReport`s — the executor's determinism contract), and reports the
//! wall-clock speedup.
//!
//! Flags:
//!
//! * `--quick`           smaller shapes and fewer repetitions (CI smoke run)
//! * `--requests N`      batch size (default 32, minimum 16)
//! * `--assert-speedup`  fail unless the speedup clears the bar for the
//!   host's core count (≥ 2x on ≥ 4 cores, ≥ 1.2x on 2–3 cores; on a
//!   single core only byte-identity is enforced — there is nothing to
//!   parallelise against)

use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use wse_bench::make_inputs;
use wse_collectives::prelude::*;

struct Options {
    quick: bool,
    requests: usize,
    assert_speedup: bool,
}

impl Options {
    fn from_args() -> Self {
        let mut opts = Options { quick: false, requests: 32, assert_speedup: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--assert-speedup" => opts.assert_speedup = true,
                "--requests" => {
                    let value = args.next().expect("--requests needs a value");
                    opts.requests = value.parse().expect("--requests needs an integer");
                }
                other => eprintln!(
                    "ignoring unknown argument {other:?} \
                     (supported: --quick, --requests N, --assert-speedup)"
                ),
            }
        }
        opts.requests = opts.requests.max(16);
        opts
    }
}

/// A deterministic mixed batch: every item is an independent request, with
/// enough shape repetition that the plan cache and fabric pool both matter
/// (as they would under real serving traffic).
fn build_batch(n: usize, quick: bool) -> Vec<BatchItem> {
    let lines: &[u32] = if quick { &[16, 24, 32] } else { &[32, 48, 64] };
    let grids: &[(u32, u32)] = if quick { &[(5, 5), (6, 4)] } else { &[(8, 8), (10, 6)] };
    let vector_lens: &[u32] = if quick { &[64, 128] } else { &[192, 256, 384] };
    let mut batch = Vec::with_capacity(n);
    for i in 0..n {
        let b = vector_lens[i % vector_lens.len()];
        let request = match i % 4 {
            0 => CollectiveRequest::reduce(Topology::line(lines[i % lines.len()]), b),
            1 => CollectiveRequest::allreduce(Topology::line(lines[i % lines.len()]), b),
            2 => {
                let (w, h) = grids[i % grids.len()];
                CollectiveRequest::reduce(Topology::grid(w, h), b)
            }
            _ => CollectiveRequest::broadcast(Topology::line(lines[i % lines.len()]), b),
        };
        let sources =
            if request.kind == CollectiveKind::Broadcast { 1 } else { request.topology.num_pes() };
        batch.push(BatchItem::new(request, make_inputs(sources, b as usize)));
    }
    batch
}

fn unwrap_outcomes(results: Vec<Result<RunOutcome, CollectiveError>>) -> Vec<RunOutcome> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("batch item {i} failed: {e}")))
        .collect()
}

fn main() {
    let opts = Options::from_args();
    let batch = build_batch(opts.requests, opts.quick);
    let repetitions = if opts.quick { 2 } else { 3 };
    let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);

    // Reference pass (untimed): byte-identity between the two paths. Fresh
    // front-ends so both assign noise-run indices 0..n the same way.
    let reference = unwrap_outcomes(Session::new().run_batch(&batch));
    let executor = Executor::new();
    let parallel = unwrap_outcomes(executor.run_batch(&batch));
    for (i, (s, p)) in reference.iter().zip(&parallel).enumerate() {
        assert_eq!(s.report, p.report, "item {i}: executor report diverges from session");
        assert_eq!(s.outputs, p.outputs, "item {i}: executor outputs diverge from session");
    }
    println!("byte-identity: OK ({} mixed requests, executor == sequential session)", batch.len());

    // Timed passes. Warm front-ends (plans cached, fabrics pooled) so the
    // comparison isolates *execution* throughput, and the best of several
    // repetitions so scheduling hiccups don't skew either side.
    let mut session = Session::new();
    session.run_batch(&batch);
    let mut sequential_best = Duration::MAX;
    for _ in 0..repetitions {
        let start = Instant::now();
        let results = session.run_batch(&batch);
        sequential_best = sequential_best.min(start.elapsed());
        assert!(results.iter().all(Result::is_ok));
    }

    let mut parallel_best = Duration::MAX;
    for _ in 0..repetitions {
        let start = Instant::now();
        let results = executor.run_batch(&batch);
        parallel_best = parallel_best.min(start.elapsed());
        assert!(results.iter().all(Result::is_ok));
    }

    let speedup = sequential_best.as_secs_f64() / parallel_best.as_secs_f64().max(1e-9);
    println!("host cores:          {cores}");
    println!("batch size:          {} requests", batch.len());
    println!("sequential session:  {:>10.3} ms", sequential_best.as_secs_f64() * 1e3);
    println!("parallel executor:   {:>10.3} ms", parallel_best.as_secs_f64() * 1e3);
    println!("speedup:             {speedup:>10.2}x");
    let stats = executor.stats();
    println!(
        "executor amortisation: {} plan hits / {} misses, {} fabric reuses / {} created",
        stats.plan_hits, stats.plan_misses, stats.fabric_reuses, stats.fabrics_created
    );

    if opts.assert_speedup {
        let bar = match cores {
            0 | 1 => {
                println!("single core: speedup bar skipped (byte-identity already verified)");
                return;
            }
            2 | 3 => 1.2,
            _ => 2.0,
        };
        assert!(speedup >= bar, "throughput bar missed: {speedup:.2}x < {bar}x on {cores} cores");
        println!("speedup bar ({bar}x on {cores} cores): OK");
    }
}
