//! Serving latency under load: sweep request arrival rate against the
//! service's batch window and record throughput, tail latency, queue
//! pressure and batch-size distribution.
//!
//! The harness stands up one `CollectiveService` per (arrival rate, batch
//! window) point, paces non-blocking submissions at the target rate —
//! `try_submit`, so a saturated queue *rejects* instead of distorting the
//! pacing — samples the queue depth, waits for every accepted response and
//! computes exact p50/p99 enqueue-to-complete latencies from the collected
//! samples. Results are printed as a table and written as JSON.
//!
//! A second sweep compares the admission layer's batch-formation policies
//! draining one burst-submitted backlog of cheap reduces mixed with
//! expensive all-to-alls: FIFO, shortest-predicted-job-first (SJF), and
//! SJF plus a token-bucket cycle budget that meters the all-to-all tenant.
//! All three run with the same per-batch predicted-cycle cut, so the only
//! variable is ordering (and, for the budget point, deferral). Every
//! request completes — submissions block instead of rejecting — which
//! keeps the latency populations comparable across policies.
//!
//! Flags:
//!
//! * `--quick`           fewer points and requests (CI smoke run)
//! * `--out F`           JSON output path (default `BENCH_serving.json`)
//! * `--assert-sjf-p99`  fail unless SJF holds the small-request p99 at or
//!   below FIFO's in the mixed-load sweep (opt-in: it encodes a real claim
//!   about head-of-line blocking, but wall-clock tails are noisy on shared
//!   machines, so CI opts in explicitly rather than inheriting flakiness)

use std::time::{Duration, Instant};

use wse_bench::make_inputs;
use wse_collectives::prelude::*;

struct Options {
    quick: bool,
    out: String,
    assert_sjf_p99: bool,
}

impl Options {
    fn from_args() -> Self {
        let mut opts =
            Options { quick: false, out: "BENCH_serving.json".to_string(), assert_sjf_p99: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--out" => opts.out = args.next().expect("--out needs a path"),
                "--assert-sjf-p99" => opts.assert_sjf_p99 = true,
                other => eprintln!(
                    "ignoring unknown argument {other:?} \
                     (supported: --quick, --out F, --assert-sjf-p99)"
                ),
            }
        }
        opts
    }
}

/// One measured sweep point.
struct Point {
    arrival_rate_hz: u64,
    max_wait_us: u64,
    offered: usize,
    accepted: usize,
    rejected: u64,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_batch_size: f64,
    max_queue_depth: usize,
    size_flushes: u64,
    deadline_flushes: u64,
}

/// Exact nearest-rank percentile over the collected latency samples (the
/// service's own summary is windowed; the bench keeps every sample).
fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e6
}

/// Drive one (arrival rate, batch window) point: paced open-loop traffic of
/// small line reductions against a fresh service.
fn run_point(rate_hz: u64, max_wait_us: u64, requests: usize) -> Point {
    let service = CollectiveService::with_config(ServiceConfig {
        queue_capacity: 32,
        max_batch: 8,
        max_wait: Duration::from_micros(max_wait_us),
        ..ServiceConfig::default()
    });
    let request = CollectiveRequest::reduce(Topology::line(8), 64);
    let inputs = make_inputs(8, 64);
    let gap = Duration::from_secs_f64(1.0 / rate_hz as f64);

    let mut handles = Vec::with_capacity(requests);
    let mut rejected = 0u64;
    let mut max_queue_depth = 0usize;
    let start = Instant::now();
    for i in 0..requests {
        // Open-loop pacing: submission i is due at `start + i * gap`,
        // regardless of how the service is keeping up.
        let due = start + gap * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match service.try_submit(request, inputs.clone()) {
            Ok(handle) => handles.push(handle),
            Err(CollectiveError::QueueFull { .. }) => rejected += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        max_queue_depth = max_queue_depth.max(service.stats().queue_depth);
    }

    let accepted = handles.len();
    let mut latencies: Vec<Duration> = handles
        .into_iter()
        .map(|handle| {
            let response = handle.wait();
            response.result.expect("the bench submits only valid requests");
            response.latency
        })
        .collect();
    let elapsed = start.elapsed();
    latencies.sort_unstable();

    let stats = service.shutdown();
    assert_eq!(stats.completed as usize, accepted, "every accepted request completes");
    Point {
        arrival_rate_hz: rate_hz,
        max_wait_us,
        offered: requests,
        accepted,
        rejected,
        throughput_rps: accepted as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile_us(&latencies, 50.0),
        p99_us: percentile_us(&latencies, 99.0),
        mean_batch_size: stats.mean_batch_size(),
        max_queue_depth,
        size_flushes: stats.size_flushes,
        deadline_flushes: stats.deadline_flushes,
    }
}

/// The mixed-load workload: three small reduces for every large all-to-all,
/// submitted by two tenants.
const SMALL_PES: u32 = 8;
const SMALL_LEN: u32 = 64;
const LARGE_PES: u32 = 8;
const LARGE_LEN: u32 = 2048;
const SMALL_TENANT: TenantId = TenantId(0);
const LARGE_TENANT: TenantId = TenantId(1);

/// One measured policy point from the mixed-load sweep.
struct PolicyPoint {
    policy: &'static str,
    requests: usize,
    deferred: u64,
    throughput_rps: f64,
    small_p50_us: f64,
    small_p99_us: f64,
    large_p50_us: f64,
    large_p99_us: f64,
    mean_batch_size: f64,
    max_deferral_wait_ms: f64,
}

/// Drive one admission policy over the mixed load, burst-submitted as one
/// backlog. Submissions block (no rejections), so every policy completes
/// the identical request set and the latency populations are directly
/// comparable. A burst rather than paced arrivals keeps the comparison out
/// of the hands of wall-clock scheduling noise: drain order is the one
/// thing the batch-formation policy fully controls, while under paced
/// arrivals the tail turns on arrival/batch phase alignment and on
/// multi-millisecond OS scheduler hiccups that swamp the policy effect.
fn run_policy_point(
    policy: &'static str,
    admission: AdmissionConfig,
    requests: usize,
) -> PolicyPoint {
    // max_batch bounds the scheduler's reorder horizon — the queue itself
    // is FIFO for every policy, so a wide accumulator is what lets SJF (or
    // the cycle cut) actually act on a backlog instead of on 8-item slices.
    let service = CollectiveService::with_config(ServiceConfig {
        queue_capacity: 256,
        max_batch: 64,
        max_wait: Duration::from_micros(200),
        admission,
        ..ServiceConfig::default()
    });
    let small = CollectiveRequest::reduce(Topology::line(SMALL_PES), SMALL_LEN);
    let large = CollectiveRequest::all_to_all(Topology::line(LARGE_PES), LARGE_LEN);
    let small_inputs = make_inputs(SMALL_PES as usize, SMALL_LEN as usize);
    let large_inputs = make_inputs(LARGE_PES as usize, LARGE_LEN as usize);

    let mut handles = Vec::with_capacity(requests);
    let start = Instant::now();
    for i in 0..requests {
        // Every fourth request is the expensive all-to-all from the second
        // tenant; the rest are cheap reduces from the first.
        let handle = if i % 4 == 3 {
            service.submit_as(large, large_inputs.clone(), LARGE_TENANT)
        } else {
            service.submit_as(small, small_inputs.clone(), SMALL_TENANT)
        };
        handles.push((i % 4 == 3, handle.expect("mixed-load submissions are valid")));
    }

    let mut small_lat = Vec::new();
    let mut large_lat = Vec::new();
    let mut max_deferral_wait = Duration::ZERO;
    for (is_large, handle) in handles {
        let response = handle.wait();
        response.result.expect("the bench submits only valid requests");
        if let Some(info) = response.admission {
            if let AdmissionOutcome::DeferredThenAdmitted { wait } = info.outcome {
                max_deferral_wait = max_deferral_wait.max(wait);
            }
        }
        if is_large {
            large_lat.push(response.latency);
        } else {
            small_lat.push(response.latency);
        }
    }
    let elapsed = start.elapsed();
    small_lat.sort_unstable();
    large_lat.sort_unstable();

    let stats = service.shutdown();
    assert_eq!(stats.completed as usize, requests, "every request completes");
    PolicyPoint {
        policy,
        requests,
        deferred: stats.deferred,
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        small_p50_us: percentile_us(&small_lat, 50.0),
        small_p99_us: percentile_us(&small_lat, 99.0),
        large_p50_us: percentile_us(&large_lat, 50.0),
        large_p99_us: percentile_us(&large_lat, 99.0),
        mean_batch_size: stats.mean_batch_size(),
        max_deferral_wait_ms: max_deferral_wait.as_secs_f64() * 1e3,
    }
}

/// Run the FIFO / SJF / tenant-budget comparison over the mixed load.
fn run_policy_sweep(requests: usize) -> (Vec<PolicyPoint>, u64, u64) {
    let machine = Machine::wse2();
    let small_pred = CollectiveRequest::reduce(Topology::line(SMALL_PES), SMALL_LEN)
        .predicted_cycles(&machine)
        .expect("the small request is valid")
        .ceil() as u64;
    let large_pred = CollectiveRequest::all_to_all(Topology::line(LARGE_PES), LARGE_LEN)
        .predicted_cycles(&machine)
        .expect("the large request is valid")
        .ceil() as u64;
    // One large request (or many smalls) per batch: the cycle cut is what
    // turns SJF ordering into a latency difference, since responses are
    // fulfilled per batch.
    let batch_cap = large_pred;
    // The budget point admits roughly 80 large requests per second from the
    // all-to-all tenant and defers the rest; the refill rate bounds how long
    // a deferral can wait, keeping the bench finite without a shutdown drain.
    let budget = TenantBudget::new(large_pred, large_pred as f64 * 80.0);

    let fifo = AdmissionConfig::disabled().with_max_batch_cycles(batch_cap);
    let sjf = fifo.clone().with_order(BatchOrder::ShortestPredictedFirst);
    let budgeted = sjf
        .clone()
        .with_tenant_budget(LARGE_TENANT, budget)
        .with_deferred_capacity(requests.max(1));

    let points = vec![
        run_policy_point("fifo", fifo, requests),
        run_policy_point("sjf", sjf, requests),
        run_policy_point("sjf+budget", budgeted, requests),
    ];
    (points, small_pred, large_pred)
}

fn json(
    points: &[Point],
    policies: &[PolicyPoint],
    small_pred: u64,
    large_pred: u64,
    quick: bool,
    requests: usize,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"serving_latency\",\n");
    out.push_str("  \"workload\": \"reduce line(8) b=64, open-loop paced try_submit\",\n");
    out.push_str("  \"queue_capacity\": 32,\n  \"max_batch\": 8,\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"requests_per_point\": {requests},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arrival_rate_hz\": {}, \"max_wait_us\": {}, \"offered\": {}, \
             \"accepted\": {}, \"rejected\": {}, \"throughput_rps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_batch_size\": {:.2}, \
             \"max_queue_depth\": {}, \"size_flushes\": {}, \"deadline_flushes\": {}}}{}\n",
            p.arrival_rate_hz,
            p.max_wait_us,
            p.offered,
            p.accepted,
            p.rejected,
            p.throughput_rps,
            p.p50_us,
            p.p99_us,
            p.mean_batch_size,
            p.max_queue_depth,
            p.size_flushes,
            p.deadline_flushes,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"policy_sweep\": {\n");
    out.push_str(&format!(
        "    \"workload\": \"3x reduce line({SMALL_PES}) b={SMALL_LEN} : \
         1x all-to-all line({LARGE_PES}) b={LARGE_LEN}, burst backlog, two tenants\",\n"
    ));
    out.push_str(&format!(
        "    \"small_predicted_cycles\": {small_pred},\n    \
         \"large_predicted_cycles\": {large_pred},\n"
    ));
    out.push_str("    \"points\": [\n");
    for (i, p) in policies.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"policy\": \"{}\", \"requests\": {}, \"deferred\": {}, \
             \"throughput_rps\": {:.1}, \"small_p50_us\": {:.1}, \"small_p99_us\": {:.1}, \
             \"large_p50_us\": {:.1}, \"large_p99_us\": {:.1}, \"mean_batch_size\": {:.2}, \
             \"max_deferral_wait_ms\": {:.1}}}{}\n",
            p.policy,
            p.requests,
            p.deferred,
            p.throughput_rps,
            p.small_p50_us,
            p.small_p99_us,
            p.large_p50_us,
            p.large_p99_us,
            p.mean_batch_size,
            p.max_deferral_wait_ms,
            if i + 1 < policies.len() { "," } else { "" },
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

fn main() {
    let opts = Options::from_args();
    let rates: &[u64] = if opts.quick { &[500, 4_000] } else { &[250, 1_000, 4_000, 16_000] };
    let windows: &[u64] = if opts.quick { &[200] } else { &[100, 500, 2_000] };
    let requests = if opts.quick { 60 } else { 300 };

    println!("# Serving latency sweep: arrival rate vs. batch window");
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>12} {:>10} {:>10} {:>7} {:>7}",
        "rate(req/s)",
        "wait(us)",
        "accepted",
        "rejected",
        "thruput(r/s)",
        "p50(us)",
        "p99(us)",
        "batch",
        "depth"
    );
    let mut points = Vec::new();
    for &rate in rates {
        for &window in windows {
            let p = run_point(rate, window, requests);
            println!(
                "{:>10} {:>9} {:>9} {:>9} {:>12.1} {:>10.1} {:>10.1} {:>7.2} {:>7}",
                p.arrival_rate_hz,
                p.max_wait_us,
                p.accepted,
                p.rejected,
                p.throughput_rps,
                p.p50_us,
                p.p99_us,
                p.mean_batch_size,
                p.max_queue_depth,
            );
            points.push(p);
        }
    }

    // Sanity: the slowest arrival rate must be fully absorbed — small line
    // reductions simulate in well under the submission gap.
    let slowest = &points[0];
    assert_eq!(slowest.rejected, 0, "the lightest load must not backpressure");

    let policy_requests = if opts.quick { 160 } else { 320 };
    println!("\n# Admission policy sweep: mixed small reduces + large all-to-alls");
    let (policies, small_pred, large_pred) = run_policy_sweep(policy_requests);
    println!("predicted cycles: small reduce {small_pred}, large all-to-all {large_pred}");
    println!(
        "{:>11} {:>9} {:>12} {:>11} {:>11} {:>11} {:>11} {:>7} {:>11}",
        "policy",
        "deferred",
        "thruput(r/s)",
        "sm-p50(us)",
        "sm-p99(us)",
        "lg-p50(us)",
        "lg-p99(us)",
        "batch",
        "defer(ms)"
    );
    for p in &policies {
        println!(
            "{:>11} {:>9} {:>12.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>7.2} {:>11.1}",
            p.policy,
            p.deferred,
            p.throughput_rps,
            p.small_p50_us,
            p.small_p99_us,
            p.large_p50_us,
            p.large_p99_us,
            p.mean_batch_size,
            p.max_deferral_wait_ms,
        );
    }

    if opts.assert_sjf_p99 {
        let fifo = policies.iter().find(|p| p.policy == "fifo").expect("fifo point present");
        let sjf = policies.iter().find(|p| p.policy == "sjf").expect("sjf point present");
        assert!(
            sjf.small_p99_us <= fifo.small_p99_us,
            "SJF must not worsen the small-request p99 under mixed load \
             (sjf {:.1}us vs fifo {:.1}us)",
            sjf.small_p99_us,
            fifo.small_p99_us,
        );
        println!(
            "\nassert-sjf-p99: ok (sjf {:.1}us <= fifo {:.1}us)",
            sjf.small_p99_us, fifo.small_p99_us
        );
    }

    let payload = json(&points, &policies, small_pred, large_pred, opts.quick, requests);
    std::fs::write(&opts.out, &payload)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!(
        "\nwrote {} sweep points and {} policy points to {}",
        points.len(),
        policies.len(),
        opts.out
    );
}
