//! Serving latency under load: sweep request arrival rate against the
//! service's batch window and record throughput, tail latency, queue
//! pressure and batch-size distribution.
//!
//! The harness stands up one `CollectiveService` per (arrival rate, batch
//! window) point, paces non-blocking submissions at the target rate —
//! `try_submit`, so a saturated queue *rejects* instead of distorting the
//! pacing — samples the queue depth, waits for every accepted response and
//! computes exact p50/p99 enqueue-to-complete latencies from the collected
//! samples. Results are printed as a table and written as JSON.
//!
//! Flags:
//!
//! * `--quick`   fewer points and requests (CI smoke run)
//! * `--out F`   JSON output path (default `BENCH_serving.json`)

use std::time::{Duration, Instant};

use wse_bench::make_inputs;
use wse_collectives::prelude::*;

struct Options {
    quick: bool,
    out: String,
}

impl Options {
    fn from_args() -> Self {
        let mut opts = Options { quick: false, out: "BENCH_serving.json".to_string() };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--out" => opts.out = args.next().expect("--out needs a path"),
                other => {
                    eprintln!("ignoring unknown argument {other:?} (supported: --quick, --out F)")
                }
            }
        }
        opts
    }
}

/// One measured sweep point.
struct Point {
    arrival_rate_hz: u64,
    max_wait_us: u64,
    offered: usize,
    accepted: usize,
    rejected: u64,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_batch_size: f64,
    max_queue_depth: usize,
    size_flushes: u64,
    deadline_flushes: u64,
}

/// Exact nearest-rank percentile over the collected latency samples (the
/// service's own summary is windowed; the bench keeps every sample).
fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e6
}

/// Drive one (arrival rate, batch window) point: paced open-loop traffic of
/// small line reductions against a fresh service.
fn run_point(rate_hz: u64, max_wait_us: u64, requests: usize) -> Point {
    let service = CollectiveService::with_config(ServiceConfig {
        queue_capacity: 32,
        max_batch: 8,
        max_wait: Duration::from_micros(max_wait_us),
        ..ServiceConfig::default()
    });
    let request = CollectiveRequest::reduce(Topology::line(8), 64);
    let inputs = make_inputs(8, 64);
    let gap = Duration::from_secs_f64(1.0 / rate_hz as f64);

    let mut handles = Vec::with_capacity(requests);
    let mut rejected = 0u64;
    let mut max_queue_depth = 0usize;
    let start = Instant::now();
    for i in 0..requests {
        // Open-loop pacing: submission i is due at `start + i * gap`,
        // regardless of how the service is keeping up.
        let due = start + gap * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match service.try_submit(request, inputs.clone()) {
            Ok(handle) => handles.push(handle),
            Err(CollectiveError::QueueFull { .. }) => rejected += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        max_queue_depth = max_queue_depth.max(service.stats().queue_depth);
    }

    let accepted = handles.len();
    let mut latencies: Vec<Duration> = handles
        .into_iter()
        .map(|handle| {
            let response = handle.wait();
            response.result.expect("the bench submits only valid requests");
            response.latency
        })
        .collect();
    let elapsed = start.elapsed();
    latencies.sort_unstable();

    let stats = service.shutdown();
    assert_eq!(stats.completed as usize, accepted, "every accepted request completes");
    Point {
        arrival_rate_hz: rate_hz,
        max_wait_us,
        offered: requests,
        accepted,
        rejected,
        throughput_rps: accepted as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile_us(&latencies, 50.0),
        p99_us: percentile_us(&latencies, 99.0),
        mean_batch_size: stats.mean_batch_size(),
        max_queue_depth,
        size_flushes: stats.size_flushes,
        deadline_flushes: stats.deadline_flushes,
    }
}

fn json(points: &[Point], quick: bool, requests: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"serving_latency\",\n");
    out.push_str("  \"workload\": \"reduce line(8) b=64, open-loop paced try_submit\",\n");
    out.push_str("  \"queue_capacity\": 32,\n  \"max_batch\": 8,\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"requests_per_point\": {requests},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arrival_rate_hz\": {}, \"max_wait_us\": {}, \"offered\": {}, \
             \"accepted\": {}, \"rejected\": {}, \"throughput_rps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_batch_size\": {:.2}, \
             \"max_queue_depth\": {}, \"size_flushes\": {}, \"deadline_flushes\": {}}}{}\n",
            p.arrival_rate_hz,
            p.max_wait_us,
            p.offered,
            p.accepted,
            p.rejected,
            p.throughput_rps,
            p.p50_us,
            p.p99_us,
            p.mean_batch_size,
            p.max_queue_depth,
            p.size_flushes,
            p.deadline_flushes,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let opts = Options::from_args();
    let rates: &[u64] = if opts.quick { &[500, 4_000] } else { &[250, 1_000, 4_000, 16_000] };
    let windows: &[u64] = if opts.quick { &[200] } else { &[100, 500, 2_000] };
    let requests = if opts.quick { 60 } else { 300 };

    println!("# Serving latency sweep: arrival rate vs. batch window");
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>12} {:>10} {:>10} {:>7} {:>7}",
        "rate(req/s)",
        "wait(us)",
        "accepted",
        "rejected",
        "thruput(r/s)",
        "p50(us)",
        "p99(us)",
        "batch",
        "depth"
    );
    let mut points = Vec::new();
    for &rate in rates {
        for &window in windows {
            let p = run_point(rate, window, requests);
            println!(
                "{:>10} {:>9} {:>9} {:>9} {:>12.1} {:>10.1} {:>10.1} {:>7.2} {:>7}",
                p.arrival_rate_hz,
                p.max_wait_us,
                p.accepted,
                p.rejected,
                p.throughput_rps,
                p.p50_us,
                p.p99_us,
                p.mean_batch_size,
                p.max_queue_depth,
            );
            points.push(p);
        }
    }

    // Sanity: the slowest arrival rate must be fully absorbed — small line
    // reductions simulate in well under the submission gap.
    let slowest = &points[0];
    assert_eq!(slowest.rejected, 0, "the lightest load must not backpressure");

    let payload = json(&points, opts.quick, requests);
    std::fs::write(&opts.out, &payload)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!("\nwrote {} sweep points to {}", points.len(), opts.out);
}
