//! Figure 8: speedup of the best fixed 1D AllReduce over Chain+Bcast (the
//! vendor's approach), and the regions in which each algorithm is the best
//! fixed choice, for every combination of PE count and vector length.

use wse_bench::print_table;
use wse_model::selection::{best_fixed_allreduce_1d, AllReduce1dAlgorithm};
use wse_model::{sweep, Machine};

fn main() {
    let machine = Machine::wse2();
    let pe_counts = sweep::figure12_pe_counts();
    let vector_bytes = sweep::figure1_vector_bytes();

    let header: Vec<String> = std::iter::once("PEs\\bytes".to_string())
        .chain(vector_bytes.iter().map(|b| sweep::format_bytes(*b)))
        .collect();

    let mut speedup_rows = Vec::new();
    let mut region_rows = Vec::new();
    let mut max_speedup = 0.0f64;
    let mut ring_region = 0usize;

    for &p in pe_counts.iter().rev() {
        let mut speedups = vec![format!("{p}x1")];
        let mut regions = vec![format!("{p}x1")];
        for &bytes in &vector_bytes {
            let b = sweep::bytes_to_wavelets(bytes);
            let best = best_fixed_allreduce_1d(p, b, &machine);
            let chain = AllReduce1dAlgorithm::ChainBcast.cycles(p, b, &machine, None);
            let speedup = chain / best.cycles;
            max_speedup = max_speedup.max(speedup);
            if best.algorithm == AllReduce1dAlgorithm::Ring {
                ring_region += 1;
            }
            speedups.push(format!("{speedup:.2}"));
            regions.push(best.algorithm.name().to_string());
        }
        speedup_rows.push(speedups);
        region_rows.push(regions);
    }

    print_table(
        "Figure 8: speedup of the best fixed 1D AllReduce over Chain+Bcast (vendor)",
        &header,
        &speedup_rows,
    );
    print_table("Figure 8 (regions): best fixed 1D AllReduce algorithm", &header, &region_rows);

    println!("\n## Summary\n");
    println!("largest predicted speedup over the vendor Chain+Bcast: {max_speedup:.2}x");
    println!(
        "grid points where the Ring is the best fixed algorithm: {ring_region} \
         (the paper finds a small contention-bound region at few PEs / long vectors)"
    );
}
