//! Figure 12: 1D Broadcast (a), Reduce (b) and AllReduce (c) for a fixed
//! vector length of 1 KB (256 f32 values) and an increasing number of PEs
//! (4×1 … 512×1), measured on the simulator and predicted by the model.

use wse_bench::*;
use wse_collectives::prelude::*;
use wse_model::{costs_1d, sweep};

fn main() {
    let opts = HarnessOptions::from_args();
    let machine = Machine::wse2();
    let mut cache = SolverCache::default();
    let b = sweep::bytes_to_wavelets(sweep::FIXED_VECTOR_BYTES) as u32;
    let pe_counts = sweep::figure12_pe_counts();

    let header: Vec<String> = std::iter::once("series".to_string())
        .chain(pe_counts.iter().map(|p| format!("{p}x1")))
        .collect();

    // ---------------------------------------------------------------- (a)
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let mut measured_row = vec!["measured broadcast (us)".to_string()];
    let mut predicted_row = vec!["predicted broadcast (us)".to_string()];
    for &p in &pe_counts {
        let cell = broadcast_1d_cell(p as u32, b, &opts, &machine);
        measured_row.push(match cell.measured_cycles {
            Some(m) => format!("{:.3}", cycles_to_us(m)),
            None => "-".to_string(),
        });
        predicted_row.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
        cells.push(cell);
    }
    rows.push(measured_row);
    rows.push(predicted_row);
    print_table("Figure 12a: 1D Broadcast at 1 KB for increasing PE count (us)", &header, &rows);
    if let Some((mean, max)) = error_summary(&cells) {
        println!(
            "model error: mean {:.1}% / max {:.1}% (paper: 8%-21%)",
            mean * 100.0,
            max * 100.0
        );
    }

    // ---------------------------------------------------------------- (b)
    let patterns = [
        ReducePattern::Star,
        ReducePattern::Chain,
        ReducePattern::Tree,
        ReducePattern::TwoPhase,
        ReducePattern::AutoGen,
    ];
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let mut best_fixed: Vec<f64> = vec![f64::INFINITY; pe_counts.len()];
    let mut auto_best: Vec<f64> = vec![f64::INFINITY; pe_counts.len()];
    for pattern in patterns {
        let mut measured_row = vec![format!("measured {} (us)", pattern.name())];
        let mut predicted_row = vec![format!("predicted {} (us)", pattern.name())];
        for (i, &p) in pe_counts.iter().enumerate() {
            let cell = reduce_1d_cell(pattern, p as u32, b, &opts, &machine, &mut cache);
            measured_row.push(match cell.measured_cycles {
                Some(m) => format!("{:.3}", cycles_to_us(m)),
                None => "-".to_string(),
            });
            predicted_row.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
            if pattern == ReducePattern::AutoGen {
                auto_best[i] = cell.best_estimate();
            } else {
                best_fixed[i] = best_fixed[i].min(cell.best_estimate());
            }
            cells.push(cell);
        }
        rows.push(measured_row);
        rows.push(predicted_row);
    }
    print_table("Figure 12b: 1D Reduce at 1 KB for increasing PE count (us)", &header, &rows);
    if let Some((mean, max)) = error_summary(&cells) {
        println!(
            "model error: mean {:.1}% / max {:.1}% (paper: 13%-28% mean per pattern)",
            mean * 100.0,
            max * 100.0
        );
    }
    let worst = auto_best.iter().zip(&best_fixed).map(|(a, f)| a / f).fold(0.0f64, f64::max);
    println!(
        "Auto-Gen vs best fixed pattern across PE counts: never more than {:.2}x slower \
         (the paper finds Auto-Gen fastest throughout, with Two-Phase matching it from 64 PEs on)",
        worst
    );

    // ---------------------------------------------------------------- (c)
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for pattern in patterns {
        let mut measured_row = vec![format!("measured {}+Bcast (us)", pattern.name())];
        let mut predicted_row = vec![format!("predicted {}+Bcast (us)", pattern.name())];
        for &p in &pe_counts {
            let cell = allreduce_1d_cell(
                AllReducePattern::ReduceBroadcast(pattern),
                p as u32,
                b,
                &opts,
                &machine,
                &mut cache,
            );
            measured_row.push(match cell.measured_cycles {
                Some(m) => format!("{:.3}", cycles_to_us(m)),
                None => "-".to_string(),
            });
            predicted_row.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
            cells.push(cell);
        }
        rows.push(measured_row);
        rows.push(predicted_row);
    }
    // Ring: predicted always, measured where the chunking divides evenly.
    let mut ring_measured = vec!["measured Ring (us)".to_string()];
    let mut ring_predicted = vec!["predicted Ring (us)".to_string()];
    for &p in &pe_counts {
        let cell =
            allreduce_1d_cell(AllReducePattern::Ring, p as u32, b, &opts, &machine, &mut cache);
        ring_measured.push(match cell.measured_cycles {
            Some(m) => format!("{:.3}", cycles_to_us(m)),
            None => "-".to_string(),
        });
        ring_predicted.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
    }
    rows.push(ring_measured);
    rows.push(ring_predicted);
    print_table("Figure 12c: 1D AllReduce at 1 KB for increasing PE count (us)", &header, &rows);
    if let Some((mean, max)) = error_summary(&cells) {
        println!("model error: mean {:.1}% / max {:.1}%", mean * 100.0, max * 100.0);
    }
    // The paper's observation: from 8 PEs upwards reduce-then-broadcast beats
    // the ring by up to ~1.4x.
    let p_check = 128u64;
    let ring = costs_1d::ring_allreduce(p_check, b as u64).predict(&machine);
    let best = wse_model::selection::best_fixed_allreduce_1d(p_check, b as u64, &machine);
    println!(
        "at {p_check} PEs the best reduce-then-broadcast beats the predicted ring by {:.2}x",
        ring / best.cycles
    );
}
