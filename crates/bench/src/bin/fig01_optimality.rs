//! Figure 1: optimality ratios of 1D Reduce algorithms against the lower
//! bound, for every combination of PE count (4×1 … 512×1) and vector length
//! (4 B … 32 KB). A ratio of 1.0 is optimal.
//!
//! Regenerates the five heat maps of Figure 1 (Star, Chain, Tree, Two-Phase,
//! Auto-Gen) as text tables and checks the paper's headline claims: the
//! Auto-Gen schedule stays within ~1.4× of the lower bound, Two-Phase within
//! ~2.4×, while every previously existing fixed pattern degrades to ≥ 5× for
//! some input size.

use wse_bench::print_table;
use wse_model::autogen::AutogenSolver;
use wse_model::lower_bound::LowerBound1d;
use wse_model::selection::{optimality_ratio_1d, Reduce1dAlgorithm};
use wse_model::{sweep, Machine};

fn main() {
    let machine = Machine::wse2();
    let pe_counts = sweep::figure12_pe_counts();
    let vector_bytes = sweep::figure1_vector_bytes();

    let algorithms = Reduce1dAlgorithm::all();
    let mut max_ratio = vec![0.0f64; algorithms.len()];

    for (a_idx, alg) in algorithms.iter().enumerate() {
        let header: Vec<String> = std::iter::once("PEs\\bytes".to_string())
            .chain(vector_bytes.iter().map(|b| sweep::format_bytes(*b)))
            .collect();
        let mut rows = Vec::new();
        // The paper prints large PE counts at the top of each heat map.
        for &p in pe_counts.iter().rev() {
            let bound = LowerBound1d::new(p);
            let solver =
                if *alg == Reduce1dAlgorithm::AutoGen { Some(AutogenSolver::new(p)) } else { None };
            let mut row = vec![format!("{p}x1")];
            for &bytes in &vector_bytes {
                let b = sweep::bytes_to_wavelets(bytes);
                let ratio =
                    optimality_ratio_1d(*alg, p, b, &machine, solver.as_ref(), Some(&bound));
                max_ratio[a_idx] = max_ratio[a_idx].max(ratio);
                row.push(format!("{ratio:.1}"));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 1{}: {} Reduce optimality ratio (1.0 = optimal)",
                (b'a' + a_idx as u8) as char,
                alg.name()
            ),
            &header,
            &rows,
        );
    }

    println!("\n## Summary (paper §1.3 / §5.7)\n");
    for (alg, max) in algorithms.iter().zip(&max_ratio) {
        println!("worst-case optimality ratio of {:<10}: {max:.2}x", alg.name());
    }
    let auto = max_ratio[algorithms.iter().position(|a| *a == Reduce1dAlgorithm::AutoGen).unwrap()];
    let two_phase =
        max_ratio[algorithms.iter().position(|a| *a == Reduce1dAlgorithm::TwoPhase).unwrap()];
    let worst_fixed = algorithms
        .iter()
        .zip(&max_ratio)
        .filter(|(a, _)| !matches!(a, Reduce1dAlgorithm::AutoGen | Reduce1dAlgorithm::TwoPhase))
        .map(|(_, r)| *r)
        .fold(0.0, f64::max);
    println!();
    println!("paper: Auto-Gen <= 1.4x, Two-Phase <= 2.4x, previous fixed patterns up to 5.9x");
    println!(
        "ours : Auto-Gen <= {auto:.2}x, Two-Phase <= {two_phase:.2}x, previous fixed patterns up to {worst_fixed:.2}x"
    );
}
