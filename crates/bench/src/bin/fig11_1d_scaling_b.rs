//! Figure 11: 1D Broadcast (a), Reduce (b) and AllReduce (c) on a row of
//! 512×1 PEs for increasing vector length (4 B … 16 KB), measured on the
//! fabric simulator and predicted by the performance model.
//!
//! By default configurations whose simulation would exceed the cycle budget
//! (notably the Star pattern at long vectors, whose runtime is `B·(P-1)`)
//! are reported from the model only; pass `--paper` to simulate everything.

use wse_bench::*;
use wse_collectives::prelude::*;
use wse_model::{costs_1d, sweep};

fn main() {
    let opts = HarnessOptions::from_args();
    let machine = Machine::wse2();
    let mut cache = SolverCache::default();
    let p: u32 = 512;
    let vector_bytes = sweep::figure11_vector_bytes();

    let header: Vec<String> = std::iter::once("series".to_string())
        .chain(vector_bytes.iter().map(|b| sweep::format_bytes(*b)))
        .collect();

    // ---------------------------------------------------------------- (a)
    let mut rows = Vec::new();
    let mut bcast_cells = Vec::new();
    let mut measured_row = vec!["measured broadcast (us)".to_string()];
    let mut predicted_row = vec!["predicted broadcast (us)".to_string()];
    for &bytes in &vector_bytes {
        let b = sweep::bytes_to_wavelets(bytes) as u32;
        let cell = broadcast_1d_cell(p, b, &opts, &machine);
        measured_row.push(match cell.measured_cycles {
            Some(m) => format!("{:.3}", cycles_to_us(m)),
            None => "-".to_string(),
        });
        predicted_row.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
        bcast_cells.push(cell);
    }
    rows.push(measured_row);
    rows.push(predicted_row);
    print_table("Figure 11a: 1D Broadcast on 512x1 PEs (runtime in us)", &header, &rows);
    if let Some((mean, max)) = error_summary(&bcast_cells) {
        println!(
            "model error: mean {:.1}% / max {:.1}% (paper: <= 21%)",
            mean * 100.0,
            max * 100.0
        );
    }

    // ---------------------------------------------------------------- (b)
    let patterns = [
        ReducePattern::Star,
        ReducePattern::Chain,
        ReducePattern::Tree,
        ReducePattern::TwoPhase,
        ReducePattern::AutoGen,
    ];
    let mut rows = Vec::new();
    let mut all_cells = Vec::new();
    let mut per_pattern: Vec<Vec<Cell>> = Vec::new();
    for pattern in patterns {
        let mut measured_row = vec![format!("measured {} (us)", pattern.name())];
        let mut predicted_row = vec![format!("predicted {} (us)", pattern.name())];
        let mut cells = Vec::new();
        for &bytes in &vector_bytes {
            let b = sweep::bytes_to_wavelets(bytes) as u32;
            let cell = reduce_1d_cell(pattern, p, b, &opts, &machine, &mut cache);
            measured_row.push(match cell.measured_cycles {
                Some(m) => format!("{:.3}", cycles_to_us(m)),
                None => "-".to_string(),
            });
            predicted_row.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
            all_cells.push(cell);
            cells.push(cell);
        }
        rows.push(measured_row);
        rows.push(predicted_row);
        per_pattern.push(cells);
    }
    print_table(
        "Figure 11b: 1D Reduce on 512x1 PEs for increasing vector length (runtime in us)",
        &header,
        &rows,
    );
    if let Some((mean, max)) = error_summary(&all_cells) {
        println!(
            "model error over all patterns: mean {:.1}% / max {:.1}% (paper: 12%-35% mean per pattern)",
            mean * 100.0,
            max * 100.0
        );
    }
    let chain_idx = patterns.iter().position(|p| *p == ReducePattern::Chain).unwrap();
    let auto_idx = patterns.iter().position(|p| *p == ReducePattern::AutoGen).unwrap();
    let speedup = per_pattern[chain_idx]
        .iter()
        .zip(&per_pattern[auto_idx])
        .map(|(c, a)| c.best_estimate() / a.best_estimate())
        .fold(0.0, f64::max);
    println!("largest Auto-Gen speedup over the vendor Chain: {speedup:.2}x (paper: up to 3.16x)");

    // ---------------------------------------------------------------- (c)
    let mut rows = Vec::new();
    let mut ar_cells = Vec::new();
    let mut chain_row_best: Vec<f64> = Vec::new();
    let mut auto_row_best: Vec<f64> = Vec::new();
    for pattern in patterns {
        let mut measured_row = vec![format!("measured {}+Bcast (us)", pattern.name())];
        let mut predicted_row = vec![format!("predicted {}+Bcast (us)", pattern.name())];
        for &bytes in &vector_bytes {
            let b = sweep::bytes_to_wavelets(bytes) as u32;
            let cell = allreduce_1d_cell(
                AllReducePattern::ReduceBroadcast(pattern),
                p,
                b,
                &opts,
                &machine,
                &mut cache,
            );
            measured_row.push(match cell.measured_cycles {
                Some(m) => format!("{:.3}", cycles_to_us(m)),
                None => "-".to_string(),
            });
            predicted_row.push(format!("{:.3}", cycles_to_us(cell.predicted_cycles)));
            if pattern == ReducePattern::Chain {
                chain_row_best.push(cell.best_estimate());
            }
            if pattern == ReducePattern::AutoGen {
                auto_row_best.push(cell.best_estimate());
            }
            ar_cells.push(cell);
        }
        rows.push(measured_row);
        rows.push(predicted_row);
    }
    // Predicted-only series: Ring and Butterfly (the paper plots their
    // predictions and concludes they are never the best choice, §8.6).
    let mut ring_row = vec!["predicted Ring (us)".to_string()];
    let mut butterfly_row = vec!["predicted Butterfly (us)".to_string()];
    for &bytes in &vector_bytes {
        let b = sweep::bytes_to_wavelets(bytes);
        ring_row.push(format!(
            "{:.3}",
            cycles_to_us(costs_1d::ring_allreduce(p as u64, b).predict(&machine))
        ));
        butterfly_row.push(format!(
            "{:.3}",
            cycles_to_us(costs_1d::butterfly_allreduce(p as u64, b).predict(&machine))
        ));
    }
    rows.push(ring_row);
    rows.push(butterfly_row);
    print_table(
        "Figure 11c: 1D AllReduce on 512x1 PEs for increasing vector length (runtime in us)",
        &header,
        &rows,
    );
    if let Some((mean, max)) = error_summary(&ar_cells) {
        println!("model error: mean {:.1}% / max {:.1}%", mean * 100.0, max * 100.0);
    }
    let speedup = chain_row_best.iter().zip(&auto_row_best).map(|(c, a)| c / a).fold(0.0, f64::max);
    println!(
        "largest Auto-Gen AllReduce speedup over Chain+Bcast: {speedup:.2}x (paper: up to 2.47x)"
    );
}
