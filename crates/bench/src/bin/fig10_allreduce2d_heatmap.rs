//! Figure 10: speedup of the best fixed 2D AllReduce over the X-Y Chain (the
//! vendor's approach), and the best-algorithm regions, for square grids from
//! 4×4 to 512×512 and vector lengths from 4 B to 32 KB.

use wse_bench::print_table;
use wse_model::selection::{best_fixed_allreduce_2d, Reduce2dAlgorithm};
use wse_model::{sweep, Machine};

fn main() {
    let machine = Machine::wse2();
    let sides = sweep::figure13_grid_sides();
    let vector_bytes = sweep::figure1_vector_bytes();

    let header: Vec<String> = std::iter::once("grid\\bytes".to_string())
        .chain(vector_bytes.iter().map(|b| sweep::format_bytes(*b)))
        .collect();

    let mut speedup_rows = Vec::new();
    let mut region_rows = Vec::new();
    let mut max_speedup = 0.0f64;

    for &side in sides.iter().rev() {
        let mut speedups = vec![format!("{side}x{side}")];
        let mut regions = vec![format!("{side}x{side}")];
        for &bytes in &vector_bytes {
            let b = sweep::bytes_to_wavelets(bytes);
            let best = best_fixed_allreduce_2d(side, side, b, &machine);
            let chain =
                Reduce2dAlgorithm::XyChain.allreduce_cycles(side, side, b, &machine, None, None);
            let speedup = chain / best.cycles;
            max_speedup = max_speedup.max(speedup);
            speedups.push(format!("{speedup:.2}"));
            regions.push(best.algorithm.name().to_string());
        }
        speedup_rows.push(speedups);
        region_rows.push(regions);
    }

    print_table(
        "Figure 10: speedup of the best fixed 2D AllReduce over X-Y Chain (vendor)",
        &header,
        &speedup_rows,
    );
    print_table("Figure 10 (regions): best fixed 2D AllReduce algorithm", &header, &region_rows);

    println!("\n## Summary\n");
    println!("largest predicted speedup over the vendor X-Y Chain: {max_speedup:.2}x");
    println!(
        "expected region structure (paper §7.6): Snake for small bandwidth-bound grids, \
         X-Y Two Phase / X-Y Tree for large grids, X-Y Star only for tiny vectors"
    );
}
