//! Collective-suite sweep: measure the five inference collectives
//! (ReduceScatter, AllGather, Gather, Scatter, All-to-All) end to end and
//! record simulated cycles next to the cost model's prediction and the
//! per-kind lower bound.
//!
//! Two sections:
//!
//! 1. a per-kind `(p, b)` sweep through a `Session` with `Schedule::Auto`,
//!    every output verified against the kind's reference semantics in-bin,
//! 2. a mixed-kind batch through the parallel `Executor`, asserted
//!    byte-identical to the same batch run sequentially on a fresh
//!    `Session` — the serving path treats the new kinds exactly like the
//!    established ones.
//!
//! Results are printed as a table and written as JSON.
//!
//! Flags:
//!
//! * `--quick`   fewer points (CI smoke run)
//! * `--out F`   JSON output path (default `BENCH_collectives.json`)

use std::time::Instant;

use wse_bench::make_inputs;
use wse_collectives::prelude::*;
use wse_model::lower_bound::{
    t_star_all_to_all_1d, t_star_allgather_1d, t_star_gather_1d, t_star_reduce_scatter_1d,
    t_star_scatter_1d,
};

struct Options {
    quick: bool,
    out: String,
}

impl Options {
    fn from_args() -> Self {
        let mut opts = Options { quick: false, out: "BENCH_collectives.json".to_string() };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--out" => opts.out = args.next().expect("--out needs a path"),
                other => {
                    eprintln!("ignoring unknown argument {other:?} (supported: --quick, --out F)")
                }
            }
        }
        opts
    }
}

/// One measured sweep point.
struct Point {
    kind: &'static str,
    algorithm: String,
    p: u32,
    b: u32,
    measured_cycles: u64,
    predicted_cycles: f64,
    bound_cycles: f64,
}

const KINDS: [CollectiveKind; 5] = [
    CollectiveKind::ReduceScatter,
    CollectiveKind::AllGather,
    CollectiveKind::Gather,
    CollectiveKind::Scatter,
    CollectiveKind::AllToAll,
];

fn kind_name(kind: CollectiveKind) -> &'static str {
    match kind {
        CollectiveKind::ReduceScatter => "reduce_scatter",
        CollectiveKind::AllGather => "allgather",
        CollectiveKind::Gather => "gather",
        CollectiveKind::Scatter => "scatter",
        CollectiveKind::AllToAll => "all_to_all",
        _ => "other",
    }
}

fn request_for(kind: CollectiveKind, p: u32, b: u32) -> CollectiveRequest {
    match kind {
        CollectiveKind::ReduceScatter => CollectiveRequest::reduce_scatter(Topology::line(p), b),
        CollectiveKind::AllGather => CollectiveRequest::allgather(Topology::line(p), b),
        CollectiveKind::Gather => CollectiveRequest::gather(Topology::line(p), b),
        CollectiveKind::Scatter => CollectiveRequest::scatter(Topology::line(p), b),
        CollectiveKind::AllToAll => CollectiveRequest::all_to_all(Topology::line(p), b),
        other => panic!("not a suite kind: {other:?}"),
    }
}

/// Kind-appropriate inputs: full vectors where every PE contributes `b`
/// elements, shards where each contributes `b / p`, one root vector for
/// Scatter.
fn inputs_for(kind: CollectiveKind, p: u32, b: u32) -> Vec<Vec<f32>> {
    let chunk = (b / p) as usize;
    match kind {
        CollectiveKind::AllGather | CollectiveKind::Gather => {
            let full = make_inputs(1, b as usize).remove(0);
            full.chunks(chunk).map(<[f32]>::to_vec).collect()
        }
        CollectiveKind::Scatter => make_inputs(1, b as usize),
        _ => make_inputs(p as usize, b as usize),
    }
}

/// Verify `outputs` against the kind's reference semantics over `inputs`.
fn verify(
    kind: CollectiveKind,
    p: u32,
    b: u32,
    inputs: &[Vec<f32>],
    outputs: &[(Coord, Vec<f32>)],
) {
    let chunk = (b / p) as usize;
    match kind {
        CollectiveKind::ReduceScatter => {
            let reduced = expected_reduce(inputs, ReduceOp::Sum);
            assert_eq!(outputs.len(), p as usize);
            for (k, (_, got)) in outputs.iter().enumerate() {
                assert_eq!(got, &reduced[k * chunk..(k + 1) * chunk], "shard {k}");
            }
        }
        CollectiveKind::AllGather => {
            let full: Vec<f32> = inputs.concat();
            assert_eq!(outputs.len(), p as usize);
            for (_, got) in outputs {
                assert_eq!(got, &full);
            }
        }
        CollectiveKind::Gather => {
            let full: Vec<f32> = inputs.concat();
            assert_eq!(outputs.len(), 1);
            assert_eq!(outputs[0].1, full);
        }
        CollectiveKind::Scatter => {
            assert_eq!(outputs.len(), p as usize);
            for (k, (_, got)) in outputs.iter().enumerate() {
                assert_eq!(got, &inputs[0][k * chunk..(k + 1) * chunk], "shard {k}");
            }
        }
        CollectiveKind::AllToAll => {
            assert_eq!(outputs.len(), p as usize);
            for (x, (_, got)) in outputs.iter().enumerate() {
                for (s, sent) in inputs.iter().enumerate() {
                    assert_eq!(
                        &got[s * chunk..(s + 1) * chunk],
                        &sent[x * chunk..(x + 1) * chunk],
                        "chunk from PE {s} at PE {x}"
                    );
                }
            }
        }
        other => panic!("not a suite kind: {other:?}"),
    }
}

fn bound_for(kind: CollectiveKind, p: u32, b: u32, machine: &Machine) -> f64 {
    let (p, b) = (u64::from(p), u64::from(b));
    match kind {
        CollectiveKind::ReduceScatter => t_star_reduce_scatter_1d(p, b, machine),
        CollectiveKind::AllGather => t_star_allgather_1d(p, b, machine),
        CollectiveKind::Gather => t_star_gather_1d(p, b, machine),
        CollectiveKind::Scatter => t_star_scatter_1d(p, b, machine),
        CollectiveKind::AllToAll => t_star_all_to_all_1d(p, b, machine),
        other => panic!("not a suite kind: {other:?}"),
    }
}

/// Run one `(kind, p, b)` point through the session and verify the outputs.
fn run_point(session: &mut Session, kind: CollectiveKind, p: u32, b: u32) -> Point {
    let machine = Machine::wse2();
    let request = request_for(kind, p, b);
    let resolved = session.plan(&request).expect("suite request resolves");
    let inputs = inputs_for(kind, p, b);
    let outcome = session.run(&request, &inputs).expect("suite request runs");
    verify(kind, p, b, &inputs, &outcome.outputs);
    Point {
        kind: kind_name(kind),
        algorithm: resolved.algorithm.clone(),
        p,
        b,
        measured_cycles: outcome.runtime_cycles(),
        predicted_cycles: resolved.predicted_cycles().expect("Auto schedules carry a prediction"),
        bound_cycles: bound_for(kind, p, b, &machine),
    }
}

/// The mixed-kind batch: all five kinds (plus an AllReduce) at assorted
/// sizes, run in parallel and asserted byte-identical to the sequential
/// reference.
fn run_mixed_batch(quick: bool) -> (usize, f64, f64, u64, u64) {
    let sizes: &[(u32, u32)] =
        if quick { &[(4, 16), (8, 32)] } else { &[(4, 16), (8, 32), (16, 128), (24, 96)] };
    let mut batch = Vec::new();
    for &(p, b) in sizes {
        for kind in KINDS {
            batch.push(BatchItem::new(request_for(kind, p, b), inputs_for(kind, p, b)));
        }
        batch.push(BatchItem::new(
            CollectiveRequest::allreduce(Topology::line(p), b),
            make_inputs(p as usize, b as usize),
        ));
    }

    let executor = Executor::new();
    let start = Instant::now();
    let parallel = executor.run_batch(&batch);
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut session = Session::new();
    let start = Instant::now();
    let sequential = session.run_batch(&batch);
    let sequential_ms = start.elapsed().as_secs_f64() * 1e3;

    for (i, (par, seq)) in parallel.iter().zip(&sequential).enumerate() {
        let (par, seq) = (par.as_ref().expect("parallel run"), seq.as_ref().expect("sequential"));
        assert_eq!(par.report, seq.report, "item {i} diverged");
        assert_eq!(par.outputs, seq.outputs, "item {i} diverged");
    }
    let stats = executor.stats();
    (batch.len(), parallel_ms, sequential_ms, stats.plan_misses, stats.fabrics_created)
}

fn json(points: &[Point], quick: bool, batch: (usize, f64, f64, u64, u64)) -> String {
    let (batch_len, parallel_ms, sequential_ms, plan_misses, fabrics_created) = batch;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"collective_suite\",\n");
    out.push_str(
        "  \"workload\": \"suite kinds on line(p) via Schedule::Auto, outputs verified\",\n",
    );
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"algorithm\": \"{}\", \"p\": {}, \"b\": {}, \
             \"measured_cycles\": {}, \"predicted_cycles\": {:.1}, \"bound_cycles\": {:.1}}}{}\n",
            pt.kind,
            pt.algorithm,
            pt.p,
            pt.b,
            pt.measured_cycles,
            pt.predicted_cycles,
            pt.bound_cycles,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"mixed_batch\": {{\"items\": {batch_len}, \"parallel_ms\": {parallel_ms:.2}, \
         \"sequential_ms\": {sequential_ms:.2}, \"plan_misses\": {plan_misses}, \
         \"fabrics_created\": {fabrics_created}, \"byte_identical\": true}}\n"
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let opts = Options::from_args();
    let pes: &[u32] = if opts.quick { &[4, 8] } else { &[4, 8, 16, 32, 64] };
    let chunks: &[u32] = if opts.quick { &[4] } else { &[1, 8, 64] };

    println!("# Collective suite sweep: measured vs. predicted vs. lower bound");
    println!(
        "{:>15} {:>24} {:>4} {:>6} {:>10} {:>11} {:>9}",
        "kind", "algorithm", "p", "b", "cycles", "predicted", "bound"
    );
    let mut session = Session::new();
    let mut points = Vec::new();
    for kind in KINDS {
        for &p in pes {
            for &chunk in chunks {
                let pt = run_point(&mut session, kind, p, p * chunk);
                println!(
                    "{:>15} {:>24} {:>4} {:>6} {:>10} {:>11.1} {:>9.1}",
                    pt.kind,
                    pt.algorithm,
                    pt.p,
                    pt.b,
                    pt.measured_cycles,
                    pt.predicted_cycles,
                    pt.bound_cycles,
                );
                points.push(pt);
            }
        }
    }

    // Sanity: no run undercuts its kind's lower bound, and the model tracks
    // the simulator to within the phase accounting's constant overheads.
    for pt in &points {
        assert!(
            pt.measured_cycles as f64 >= pt.bound_cycles,
            "{} p={} b={}: measured {} undercuts the bound {:.1}",
            pt.kind,
            pt.p,
            pt.b,
            pt.measured_cycles,
            pt.bound_cycles
        );
    }

    let batch = run_mixed_batch(opts.quick);
    println!(
        "\nmixed batch: {} items, executor {:.2} ms vs session {:.2} ms, byte-identical",
        batch.0, batch.1, batch.2
    );

    let payload = json(&points, opts.quick, batch);
    std::fs::write(&opts.out, &payload)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!("wrote {} sweep points to {}", points.len(), opts.out);
}
