//! Property-based tests of the fabric simulator: data integrity, ordering,
//! conservation and determinism for randomly sized transfers.

use proptest::prelude::*;

use wse_fabric::geometry::{Coord, Direction, DirectionSet, GridDim};
use wse_fabric::measure::{self, Timestamps};
use wse_fabric::program::{PeProgram, RecvMode, ReduceOp};
use wse_fabric::router::{ColorScript, RouteRule};
use wse_fabric::wavelet::Color;
use wse_fabric::{ClockModel, Fabric, FabricParams, NoiseModel};

/// Build a fabric where the rightmost PE of a `p`-PE row streams `data`
/// westwards to the leftmost PE.
fn message_fabric(p: u32, data: &[f32], params: FabricParams) -> Fabric {
    let dim = GridDim::row(p);
    let mut fabric = Fabric::new(dim, params);
    let color = Color::new(0);
    let b = data.len() as u32;

    let sender = Coord::new(p - 1, 0);
    let mut prog = PeProgram::new();
    prog.send(color, 0, b);
    fabric.set_program(sender, &prog);
    fabric.set_local(sender, data);
    fabric.set_router_script(
        sender,
        color,
        ColorScript::new(vec![RouteRule::forever(
            Direction::Ramp,
            DirectionSet::single(Direction::West),
        )]),
    );
    for x in 1..p - 1 {
        fabric.set_router_script(
            Coord::new(x, 0),
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::East,
                DirectionSet::single(Direction::West),
            )]),
        );
    }
    let receiver = Coord::new(0, 0);
    let mut prog = PeProgram::new();
    prog.recv_store(color, 0, b);
    fabric.set_program(receiver, &prog);
    fabric.set_local(receiver, &vec![0.0; b as usize]);
    fabric.set_router_script(
        receiver,
        color,
        ColorScript::new(vec![RouteRule::forever(
            Direction::East,
            DirectionSet::single(Direction::Ramp),
        )]),
    );
    fabric
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any payload is delivered bit-exactly, in order, with energy equal to
    /// `len · (P − 1)` hops and contention equal to `len`.
    #[test]
    fn messages_are_delivered_exactly(
        p in 2u32..48,
        data in proptest::collection::vec(-1e30f32..1e30, 1..128),
    ) {
        let mut fabric = message_fabric(p, &data, FabricParams::default());
        let report = fabric.run().unwrap();
        prop_assert_eq!(&fabric.local(Coord::new(0, 0))[..data.len()], &data[..]);
        prop_assert_eq!(report.energy_hops, data.len() as u64 * (p as u64 - 1));
        prop_assert_eq!(report.max_received, data.len() as u64);
        prop_assert_eq!(report.links_used, p as u64 - 1);
    }

    /// The runtime of a message stays within a small band around the model's
    /// `B + P + 2·T_R` for every ramp latency.
    #[test]
    fn message_runtime_tracks_model_for_all_ramp_latencies(
        p in 2u32..40,
        len in 1usize..96,
        t_r in 1u64..6,
    ) {
        let data = vec![1.0f32; len];
        let mut fabric = message_fabric(p, &data, FabricParams::with_ramp_latency(t_r));
        let report = fabric.run().unwrap();
        let measured = report.finish_of(0) as f64;
        let model = len as f64 + p as f64 + 2.0 * t_r as f64;
        prop_assert!((measured - model).abs() <= 0.3 * model + 6.0,
            "p={p} len={len} t_r={t_r}: measured {measured} vs model {model}");
    }

    /// Thermal noise only slows execution down and never corrupts data.
    #[test]
    fn thermal_noise_preserves_correctness(
        p in 2u32..24,
        len in 1usize..64,
        noise in 0.0f64..0.3,
        seed in 0u64..1000,
    ) {
        let data: Vec<f32> = (0..len).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut clean = message_fabric(p, &data, FabricParams::default());
        let clean_report = clean.run().unwrap();

        let mut noisy = message_fabric(p, &data, FabricParams::default());
        noisy.set_noise(Some(NoiseModel::new(noise, seed)));
        let noisy_report = noisy.run().unwrap();

        prop_assert_eq!(&noisy.local(Coord::new(0, 0))[..len], &data[..]);
        prop_assert!(noisy_report.finish_of(0) >= clean_report.finish_of(0));
    }

    /// Simulation is deterministic: identical configurations produce
    /// identical reports.
    #[test]
    fn runs_are_deterministic(p in 2u32..24, len in 1usize..64) {
        let data: Vec<f32> = (0..len).map(|i| (i as f32).cos()).collect();
        let mut a = message_fabric(p, &data, FabricParams::default());
        let mut b = message_fabric(p, &data, FabricParams::default());
        prop_assert_eq!(a.run().unwrap(), b.run().unwrap());
    }

    /// Two senders serialised by counted routing rules always produce the
    /// correct sum, whatever the lengths involved.
    #[test]
    fn counted_rules_serialise_concurrent_senders(left in 1u32..48, right in 1u32..48) {
        let b = left.min(right);
        let dim = GridDim::row(3);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let color = Color::new(1);
        for (x, towards) in [(0u32, Direction::East), (2u32, Direction::West)] {
            let at = Coord::new(x, 0);
            let mut prog = PeProgram::new();
            prog.send(color, 0, b);
            fabric.set_program(at, &prog);
            fabric.set_local(at, &vec![x as f32 + 1.0; b as usize]);
            fabric.set_router_script(
                at,
                color,
                ColorScript::new(vec![RouteRule::forever(Direction::Ramp, DirectionSet::single(towards))]),
            );
        }
        let middle = Coord::new(1, 0);
        let mut prog = PeProgram::new();
        prog.recv_reduce(color, 0, b, ReduceOp::Sum);
        prog.recv_reduce(color, 0, b, ReduceOp::Sum);
        fabric.set_program(middle, &prog);
        fabric.set_local(middle, &vec![0.0; b as usize]);
        fabric.set_router_script(
            middle,
            color,
            ColorScript::new(vec![
                RouteRule::counted(Direction::East, DirectionSet::single(Direction::Ramp), b as u64),
                RouteRule::counted(Direction::West, DirectionSet::single(Direction::Ramp), b as u64),
            ]),
        );
        fabric.run().unwrap();
        prop_assert_eq!(&fabric.local(middle)[..b as usize], &vec![4.0f32; b as usize][..]);
    }

    /// A full-duplex exchange between two PEs swaps both payloads intact.
    #[test]
    fn exchange_swaps_payloads(
        len in 1usize..64,
        east in proptest::collection::vec(-1e6f32..1e6, 1..64),
    ) {
        prop_assume!(east.len() >= len);
        let east = &east[..len];
        let west: Vec<f32> = east.iter().map(|v| v * 0.5 - 1.0).collect();
        let dim = GridDim::row(2);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let c_we = Color::new(0); // west -> east
        let c_ew = Color::new(1); // east -> west

        let west_pe = Coord::new(0, 0);
        let east_pe = Coord::new(1, 0);
        let mut prog = PeProgram::new();
        prog.exchange(c_we, 0, c_ew, len as u32, len as u32, RecvMode::Store);
        fabric.set_program(west_pe, &prog);
        let mut local = west.clone();
        local.resize(2 * len, 0.0);
        fabric.set_local(west_pe, &local);
        fabric.set_router_script(west_pe, c_we, ColorScript::new(vec![RouteRule::forever(Direction::Ramp, DirectionSet::single(Direction::East))]));
        fabric.set_router_script(west_pe, c_ew, ColorScript::new(vec![RouteRule::forever(Direction::East, DirectionSet::single(Direction::Ramp))]));

        let mut prog = PeProgram::new();
        prog.exchange(c_ew, 0, c_we, len as u32, len as u32, RecvMode::Store);
        fabric.set_program(east_pe, &prog);
        let mut local = east.to_vec();
        local.resize(2 * len, 0.0);
        fabric.set_local(east_pe, &local);
        fabric.set_router_script(east_pe, c_ew, ColorScript::new(vec![RouteRule::forever(Direction::Ramp, DirectionSet::single(Direction::West))]));
        fabric.set_router_script(east_pe, c_we, ColorScript::new(vec![RouteRule::forever(Direction::West, DirectionSet::single(Direction::Ramp))]));

        fabric.run().unwrap();
        prop_assert_eq!(&fabric.local(west_pe)[len..2 * len], east);
        prop_assert_eq!(&fabric.local(east_pe)[len..2 * len], &west[..]);
    }

    /// The §8.3 correction cancels arbitrary clock offsets exactly in an
    /// ideal (no-noise) system.
    #[test]
    fn clock_correction_is_exact_for_any_skew(
        width in 2u32..24,
        height in 1u32..8,
        duration in 1u64..100_000,
        skew in 0u64..1_000_000,
        seed in 0u64..1000,
    ) {
        let dims = GridDim::new(width, height);
        let clock = ClockModel::random(dims.num_pes(), skew, seed);
        let mut reference = Vec::new();
        let mut start = Vec::new();
        let mut end = Vec::new();
        for c in dims.iter() {
            let arrival = measure::reference_delay(c);
            let begin = arrival + measure::stagger_writes(dims, c, 1.0);
            reference.push(arrival);
            start.push(begin);
            end.push(begin + duration);
        }
        let ts = Timestamps::from_true_times(&clock, &reference, &start, &end);
        let m = measure::measure(dims, &ts);
        prop_assert_eq!(m.start_spread, 0);
        prop_assert_eq!(m.duration, duration);
    }
}
