//! Runtime state and per-cycle execution of a single processing element.

use std::collections::VecDeque;

use crate::program::{Instruction, PeProgram, RecvMode};
use crate::wavelet::Wavelet;

/// Capacity of the ramp FIFOs beyond the in-flight latency. The ramp is a
/// short pipeline; when it backs up the PE (or the router) stalls, which is
/// how backpressure reaches the processor.
const RAMP_EXTRA_CAPACITY: usize = 2;

/// An error raised by a PE while executing its program — always indicates a
/// bug in the plan (e.g. a wavelet of an unexpected color reaching the
/// processor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeError {
    /// Linear index of the PE.
    pub pe: usize,
    /// Description of the failure.
    pub message: String,
}

/// Statistics of one PE after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Wavelets the processor injected into the fabric.
    pub sent: u64,
    /// Wavelets the processor consumed from the fabric.
    pub received: u64,
    /// Cycles the PE spent stalled waiting to send or receive.
    pub stall_cycles: u64,
    /// Thermal no-op cycles injected by the noise model.
    pub noop_cycles: u64,
}

/// When a PE or router could next act, as computed for the fast engine's
/// skip-ahead (`engine/fast.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    /// It can act this very cycle.
    Now,
    /// Nothing can happen before the given future cycle.
    At(u64),
    /// It will never act on its own; only another component's move (e.g. a
    /// router pop freeing ramp space) can unblock it, and that move carries
    /// its own wake time.
    Never,
}

/// Hot per-PE execution state moved between a [`PeState`] and the dense
/// executor's struct-of-arrays mirrors (`engine/dense.rs`). Extraction and
/// writeback are exact inverses: a writeback immediately after an extraction
/// restores the PE byte for byte.
#[derive(Debug)]
pub(crate) struct DenseHot {
    pub pc: usize,
    pub progress: u32,
    pub progress_alt: u32,
    pub pending_noops: u32,
    pub finish_cycle: Option<u64>,
    pub stats: PeStats,
    /// The local memory, moved (not copied) out of and back into the PE.
    pub local: Vec<f32>,
}

/// The runtime state of one PE: its program, local memory and ramp FIFOs.
#[derive(Debug, Clone)]
pub struct PeState {
    index: usize,
    program: Vec<Instruction>,
    pc: usize,
    /// Progress (elements processed) within the current instruction.
    progress: u32,
    /// Secondary progress counter: elements *sent* by an `Exchange`
    /// instruction (whose sends and receives advance independently).
    progress_alt: u32,
    /// Local memory: one `f32` per element.
    local: Vec<f32>,
    /// Wavelets travelling up the ramp towards the router, with the cycle at
    /// which they become visible to the router.
    ramp_up: VecDeque<(u64, Wavelet)>,
    /// Wavelets travelling down the ramp towards the processor, with the
    /// cycle at which the processor may consume them.
    ramp_down: VecDeque<(u64, Wavelet)>,
    ramp_capacity: usize,
    /// Cycle at which the program finished, if it has.
    finish_cycle: Option<u64>,
    /// Cycle at which each instruction completed (same order as the program).
    instruction_finish: Vec<u64>,
    /// Pending thermal no-op cycles to insert before the next instruction step.
    pending_noops: u32,
    stats: PeStats,
}

impl PeState {
    /// Create a PE with an empty program and empty local memory.
    pub fn new(index: usize, ramp_latency: u64) -> Self {
        PeState {
            index,
            program: Vec::new(),
            pc: 0,
            progress: 0,
            progress_alt: 0,
            local: Vec::new(),
            ramp_up: VecDeque::new(),
            ramp_down: VecDeque::new(),
            ramp_capacity: ramp_latency as usize + RAMP_EXTRA_CAPACITY,
            finish_cycle: None,
            instruction_finish: Vec::new(),
            pending_noops: 0,
            stats: PeStats::default(),
        }
    }

    /// Return the PE to its post-construction state while keeping its
    /// allocations: the program is cleared, local memory is zeroed (but stays
    /// allocated), the ramp FIFOs are drained and the statistics reset. Used
    /// by [`crate::Fabric::reset`] so an execution session can reuse one
    /// fabric across many collective runs.
    pub fn reset(&mut self) {
        self.program.clear();
        self.pc = 0;
        self.progress = 0;
        self.progress_alt = 0;
        self.local.iter_mut().for_each(|v| *v = 0.0);
        self.ramp_up.clear();
        self.ramp_down.clear();
        self.finish_cycle = Some(0);
        self.instruction_finish.clear();
        self.pending_noops = 0;
        self.stats = PeStats::default();
    }

    /// Install the program, resizing local memory to fit its accesses.
    pub fn set_program(&mut self, program: &PeProgram) {
        self.program = program.instructions().to_vec();
        self.pc = 0;
        self.progress = 0;
        self.progress_alt = 0;
        self.instruction_finish.clear();
        self.finish_cycle = if self.program.is_empty() { Some(0) } else { None };
        let needed = program.required_memory() as usize;
        if self.local.len() < needed {
            self.local.resize(needed, 0.0);
        }
    }

    /// Set the local vector (input data of the collective).
    pub fn set_local(&mut self, data: &[f32]) {
        if self.local.len() < data.len() {
            self.local.resize(data.len(), 0.0);
        }
        self.local[..data.len()].copy_from_slice(data);
    }

    /// Write `data` into local memory starting at `offset`, growing the
    /// memory if needed and leaving everything outside the slice untouched
    /// (sharded collective inputs, e.g. one AllGather chunk per PE).
    pub fn set_local_at(&mut self, offset: u32, data: &[f32]) {
        let start = offset as usize;
        let end = start + data.len();
        if self.local.len() < end {
            self.local.resize(end, 0.0);
        }
        self.local[start..end].copy_from_slice(data);
    }

    /// The local vector after (or during) a run.
    pub fn local(&self) -> &[f32] {
        &self.local
    }

    /// Per-PE statistics.
    pub fn stats(&self) -> PeStats {
        self.stats
    }

    /// The cycle the program finished, if it has.
    pub fn finish_cycle(&self) -> Option<u64> {
        self.finish_cycle
    }

    /// The cycle at which each instruction completed, in program order.
    /// Instructions that have not completed yet are absent. Used by the
    /// measurement methodology of §8.3 to timestamp the end of the
    /// start-staggering phase.
    pub fn instruction_finish(&self) -> &[u64] {
        &self.instruction_finish
    }

    /// Whether the program has run to completion.
    pub fn finished(&self) -> bool {
        self.finish_cycle.is_some()
    }

    /// Whether the PE still holds wavelets in its ramp FIFOs.
    pub fn ramps_empty(&self) -> bool {
        self.ramp_up.is_empty() && self.ramp_down.is_empty()
    }

    /// Ask the PE to insert `n` thermal no-op cycles before continuing (the
    /// overheating mitigation described in §8.1).
    pub fn inject_noops(&mut self, n: u32) {
        self.pending_noops = self.pending_noops.saturating_add(n);
    }

    /// Offer a wavelet arriving from the router (down the ramp). Returns
    /// `false` if the ramp FIFO is full, in which case the router must stall.
    pub fn offer_ramp_down(&mut self, ready_cycle: u64, wavelet: Wavelet) -> bool {
        if self.ramp_down.len() >= self.ramp_capacity {
            return false;
        }
        self.ramp_down.push_back((ready_cycle, wavelet));
        true
    }

    /// Whether the ramp-down FIFO can accept another wavelet this cycle.
    pub fn ramp_down_has_space(&self) -> bool {
        self.ramp_down.len() < self.ramp_capacity
    }

    /// The wavelet the router may pick up from the ramp this cycle, if any.
    pub fn ramp_up_head(&self, now: u64) -> Option<Wavelet> {
        match self.ramp_up.front() {
            Some(&(ready, w)) if ready <= now => Some(w),
            _ => None,
        }
    }

    /// Remove the head of the ramp-up FIFO (after the router accepted it).
    pub fn pop_ramp_up(&mut self) -> Wavelet {
        self.ramp_up.pop_front().expect("pop_ramp_up on empty FIFO").1
    }

    fn ramp_up_has_space(&self) -> bool {
        self.ramp_up.len() < self.ramp_capacity
    }

    fn ramp_down_ready(&self, now: u64) -> Option<Wavelet> {
        match self.ramp_down.front() {
            Some(&(ready, w)) if ready <= now => Some(w),
            _ => None,
        }
    }

    /// Whether the upward ramp holds no wavelets (fast-engine router
    /// activity predicate).
    pub(crate) fn ramp_up_is_empty(&self) -> bool {
        self.ramp_up.is_empty()
    }

    /// The cycle at which the head of the upward ramp becomes visible to the
    /// router, regardless of the current cycle.
    pub(crate) fn ramp_up_ready(&self) -> Option<u64> {
        self.ramp_up.front().map(|&(ready, _)| ready)
    }

    /// Credit `n` stall cycles in bulk (the fast engine's skip-ahead stands
    /// in for `n` reference-engine steps in which this PE provably stalled).
    pub(crate) fn add_stall_cycles(&mut self, n: u64) {
        self.stats.stall_cycles += n;
    }

    /// The earliest cycle at which [`PeState::step`] could do anything other
    /// than stall. `Wake::At` futures come only from the downward ramp (its
    /// head's readiness is the single time-driven input of a PE); everything
    /// a router must first unblock reports `Wake::Never`.
    pub(crate) fn next_wake(&self, now: u64) -> Wake {
        if self.finished() {
            return Wake::Never;
        }
        if self.pending_noops > 0 {
            return Wake::Now;
        }
        let Some(instruction) = self.program.get(self.pc) else {
            // The next step records the finish cycle: that is progress.
            return Wake::Now;
        };
        match *instruction {
            Instruction::Compute { .. } => Wake::Now,
            Instruction::Send { .. } => {
                if self.ramp_up_has_space() {
                    Wake::Now
                } else {
                    Wake::Never
                }
            }
            Instruction::Recv { .. } => self.ramp_down_wake(now),
            Instruction::RecvForward { .. } => match self.ramp_down.front() {
                None => Wake::Never,
                Some(&(ready, _)) if ready <= now => {
                    if self.ramp_up_has_space() {
                        Wake::Now
                    } else {
                        Wake::Never
                    }
                }
                Some(&(ready, _)) => Wake::At(ready),
            },
            Instruction::Exchange { len, .. } => {
                if self.progress_alt < len && self.ramp_up_has_space() {
                    return Wake::Now;
                }
                if self.progress < len {
                    self.ramp_down_wake(now)
                } else {
                    Wake::Never
                }
            }
        }
    }

    /// When the head of the downward ramp becomes consumable.
    fn ramp_down_wake(&self, now: u64) -> Wake {
        match self.ramp_down.front() {
            None => Wake::Never,
            Some(&(ready, _)) if ready <= now => Wake::Now,
            Some(&(ready, _)) => Wake::At(ready),
        }
    }

    /// Execute one cycle of the program. Returns `Ok(true)` if any
    /// architectural state changed (used for deadlock detection).
    pub fn step(&mut self, now: u64, ramp_latency: u64) -> Result<bool, PeError> {
        if self.finished() {
            return Ok(false);
        }
        if self.pending_noops > 0 {
            self.pending_noops -= 1;
            self.stats.noop_cycles += 1;
            return Ok(true);
        }
        let Some(instruction) = self.program.get(self.pc).copied() else {
            self.finish_cycle = Some(now);
            return Ok(true);
        };
        let mut advanced = false;
        match instruction {
            Instruction::Compute { cycles } => {
                self.progress += 1;
                advanced = true;
                if self.progress >= cycles {
                    self.next_instruction(now);
                }
            }
            Instruction::Send { color, offset, len, last_control } => {
                if self.ramp_up_has_space() {
                    let idx = (offset + self.progress) as usize;
                    let value = self.read_local(idx)?;
                    let is_last = self.progress + 1 == len;
                    let w = Wavelet::from_f32(color, value).with_control(is_last && last_control);
                    self.ramp_up.push_back((now + ramp_latency, w));
                    self.stats.sent += 1;
                    self.progress += 1;
                    advanced = true;
                    if self.progress >= len {
                        self.next_instruction(now);
                    }
                } else {
                    self.stats.stall_cycles += 1;
                }
            }
            Instruction::Recv { color, offset, len, mode } => {
                if let Some(w) = self.ramp_down_ready(now) {
                    if w.color != color {
                        return Err(self.error(format!(
                            "expected a wavelet on {color} but received one on {} (pc {})",
                            w.color, self.pc
                        )));
                    }
                    self.ramp_down.pop_front();
                    self.stats.received += 1;
                    let idx = (offset + self.progress) as usize;
                    let incoming = w.as_f32();
                    let current = self.read_local(idx)?;
                    let value = match mode {
                        RecvMode::Store => incoming,
                        RecvMode::Reduce(op) => op.apply(current, incoming),
                    };
                    self.local[idx] = value;
                    self.progress += 1;
                    advanced = true;
                    if self.progress >= len {
                        self.next_instruction(now);
                    }
                } else {
                    self.stats.stall_cycles += 1;
                }
            }
            Instruction::RecvForward {
                recv_color,
                send_color,
                offset,
                len,
                op,
                keep,
                last_control,
            } => {
                // The pipelined chain step needs the incoming wavelet and a
                // free slot on the outgoing ramp in the same cycle.
                if let Some(w) = self.ramp_down_ready(now) {
                    if w.color != recv_color {
                        return Err(self.error(format!(
                            "expected a wavelet on {recv_color} but received one on {} (pc {})",
                            w.color, self.pc
                        )));
                    }
                    if self.ramp_up_has_space() {
                        self.ramp_down.pop_front();
                        self.stats.received += 1;
                        let idx = (offset + self.progress) as usize;
                        let combined = op.apply(self.read_local(idx)?, w.as_f32());
                        if keep {
                            self.local[idx] = combined;
                        }
                        let is_last = self.progress + 1 == len;
                        // One cycle to combine, then the ramp latency upwards.
                        let out = Wavelet::from_f32(send_color, combined)
                            .with_control(is_last && last_control);
                        self.ramp_up.push_back((now + 1 + ramp_latency, out));
                        self.stats.sent += 1;
                        self.progress += 1;
                        advanced = true;
                        if self.progress >= len {
                            self.next_instruction(now);
                        }
                    } else {
                        self.stats.stall_cycles += 1;
                    }
                } else {
                    self.stats.stall_cycles += 1;
                }
            }
            Instruction::Exchange {
                send_color,
                send_offset,
                recv_color,
                recv_offset,
                len,
                mode,
            } => {
                // Sends and receives progress independently, at most one
                // wavelet each per cycle.
                let mut did_anything = false;
                if self.progress_alt < len && self.ramp_up_has_space() {
                    let idx = (send_offset + self.progress_alt) as usize;
                    let value = self.read_local(idx)?;
                    self.ramp_up
                        .push_back((now + ramp_latency, Wavelet::from_f32(send_color, value)));
                    self.stats.sent += 1;
                    self.progress_alt += 1;
                    did_anything = true;
                }
                if self.progress < len {
                    if let Some(w) = self.ramp_down_ready(now) {
                        if w.color != recv_color {
                            return Err(self.error(format!(
                                "expected a wavelet on {recv_color} but received one on {} (pc {})",
                                w.color, self.pc
                            )));
                        }
                        self.ramp_down.pop_front();
                        self.stats.received += 1;
                        let idx = (recv_offset + self.progress) as usize;
                        let incoming = w.as_f32();
                        let current = self.read_local(idx)?;
                        self.local[idx] = match mode {
                            RecvMode::Store => incoming,
                            RecvMode::Reduce(op) => op.apply(current, incoming),
                        };
                        self.progress += 1;
                        did_anything = true;
                    }
                }
                if did_anything {
                    advanced = true;
                } else {
                    self.stats.stall_cycles += 1;
                }
                if self.progress >= len && self.progress_alt >= len {
                    self.next_instruction(now);
                }
            }
        }
        Ok(advanced)
    }

    /// Move the hot execution state out of the PE for the dense executor,
    /// draining the ramp FIFOs (in order) into the provided scratch vectors.
    pub(crate) fn dense_extract(
        &mut self,
        up: &mut Vec<(u64, Wavelet)>,
        down: &mut Vec<(u64, Wavelet)>,
    ) -> DenseHot {
        up.clear();
        down.clear();
        up.extend(self.ramp_up.drain(..));
        down.extend(self.ramp_down.drain(..));
        DenseHot {
            pc: self.pc,
            progress: self.progress,
            progress_alt: self.progress_alt,
            pending_noops: self.pending_noops,
            finish_cycle: self.finish_cycle,
            stats: self.stats,
            local: std::mem::take(&mut self.local),
        }
    }

    /// Restore the hot execution state after a dense segment. The ramp
    /// iterators must yield the FIFO contents front to back.
    pub(crate) fn dense_writeback(
        &mut self,
        hot: DenseHot,
        up: impl Iterator<Item = (u64, Wavelet)>,
        down: impl Iterator<Item = (u64, Wavelet)>,
    ) {
        self.pc = hot.pc;
        self.progress = hot.progress;
        self.progress_alt = hot.progress_alt;
        self.pending_noops = hot.pending_noops;
        self.finish_cycle = hot.finish_cycle;
        self.stats = hot.stats;
        self.local = hot.local;
        debug_assert!(self.ramp_up.is_empty() && self.ramp_down.is_empty());
        self.ramp_up.extend(up);
        self.ramp_down.extend(down);
    }

    /// The instruction at program counter `pc`, if the program has one.
    pub(crate) fn instruction_at(&self, pc: usize) -> Option<Instruction> {
        self.program.get(pc).copied()
    }

    /// Record an instruction completion at `now` (the dense executor's
    /// counterpart of the bookkeeping done by `next_instruction`).
    pub(crate) fn record_instruction_finish(&mut self, now: u64) {
        self.instruction_finish.push(now);
    }

    /// Capacity of each ramp FIFO (identical for every PE of a fabric).
    pub(crate) fn dense_ramp_capacity(&self) -> usize {
        self.ramp_capacity
    }

    /// Whether the PE still has program instructions to execute — the dense
    /// regime's notion of a *working* lane. Unfinished PEs whose program has
    /// run out (notably never-programmed PEs, which retire on their first
    /// step) do not count: they contribute one trivial epilogue cycle, not a
    /// dense workload.
    pub(crate) fn has_instructions_remaining(&self) -> bool {
        self.finish_cycle.is_none() && self.pc < self.program.len()
    }

    fn next_instruction(&mut self, now: u64) {
        self.instruction_finish.push(now);
        self.pc += 1;
        self.progress = 0;
        self.progress_alt = 0;
        if self.pc >= self.program.len() {
            self.finish_cycle = Some(now);
        }
    }

    fn read_local(&self, idx: usize) -> Result<f32, PeError> {
        self.local.get(idx).copied().ok_or_else(|| PeError {
            pe: self.index,
            message: format!("local memory access out of bounds: index {idx}"),
        })
    }

    fn error(&self, message: String) -> PeError {
        PeError { pe: self.index, message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PeProgram, ReduceOp};
    use crate::wavelet::Color;

    const TR: u64 = 2;

    fn pe_with(program: &PeProgram, local: &[f32]) -> PeState {
        let mut pe = PeState::new(0, TR);
        pe.set_program(program);
        pe.set_local(local);
        pe
    }

    #[test]
    fn empty_program_finishes_immediately() {
        let pe = pe_with(&PeProgram::new(), &[]);
        assert!(pe.finished());
        assert_eq!(pe.finish_cycle(), Some(0));
    }

    #[test]
    fn send_streams_one_wavelet_per_cycle_with_ramp_latency() {
        let c = Color::new(0);
        let mut prog = PeProgram::new();
        prog.send(c, 0, 3);
        let mut pe = pe_with(&prog, &[1.0, 2.0, 3.0]);
        for now in 0..3 {
            assert!(pe.step(now, TR).unwrap());
        }
        assert!(pe.finished());
        assert_eq!(pe.stats().sent, 3);
        // The first wavelet becomes visible to the router only after the ramp
        // latency.
        assert_eq!(pe.ramp_up_head(0), None);
        assert_eq!(pe.ramp_up_head(1), None);
        let w = pe.ramp_up_head(2).expect("ready at t_r");
        assert_eq!(w.as_f32(), 1.0);
        assert_eq!(pe.pop_ramp_up().as_f32(), 1.0);
        assert_eq!(pe.pop_ramp_up().as_f32(), 2.0);
        assert_eq!(pe.pop_ramp_up().as_f32(), 3.0);
    }

    #[test]
    fn recv_reduce_accumulates_in_order() {
        let c = Color::new(1);
        let mut prog = PeProgram::new();
        prog.recv_reduce(c, 0, 2, ReduceOp::Sum);
        let mut pe = pe_with(&prog, &[10.0, 20.0]);
        assert!(pe.offer_ramp_down(0, Wavelet::from_f32(c, 1.5)));
        assert!(pe.offer_ramp_down(1, Wavelet::from_f32(c, 2.5)));
        assert!(pe.step(0, TR).is_ok());
        let _ = pe.step(0, TR);
        // Only one wavelet is consumed per cycle.
        assert_eq!(pe.stats().received, 1);
        let _ = pe.step(1, TR);
        assert!(pe.finished());
        assert_eq!(pe.local()[0], 11.5);
        assert_eq!(pe.local()[1], 22.5);
    }

    #[test]
    fn recv_rejects_unexpected_color() {
        let mut prog = PeProgram::new();
        prog.recv_store(Color::new(0), 0, 1);
        let mut pe = pe_with(&prog, &[0.0]);
        pe.offer_ramp_down(0, Wavelet::from_f32(Color::new(5), 1.0));
        let err = pe.step(0, TR).unwrap_err();
        assert!(err.message.contains("expected a wavelet"));
    }

    #[test]
    fn recv_forward_combines_and_forwards_with_processing_latency() {
        let red = Color::new(0);
        let blue = Color::new(1);
        let mut prog = PeProgram::new();
        prog.recv_forward(red, blue, 0, 1, ReduceOp::Sum, true);
        let mut pe = pe_with(&prog, &[10.0]);
        pe.offer_ramp_down(0, Wavelet::from_f32(red, 4.0));
        assert!(pe.step(5, TR).unwrap());
        assert!(pe.finished());
        assert_eq!(pe.local()[0], 14.0);
        // Combined wavelet leaves on the send color after one processing
        // cycle plus the ramp latency.
        assert_eq!(pe.ramp_up_head(5 + TR), None);
        let w = pe.ramp_up_head(5 + 1 + TR).expect("forwarded wavelet");
        assert_eq!(w.color, blue);
        assert_eq!(w.as_f32(), 14.0);
    }

    #[test]
    fn recv_forward_without_keep_preserves_local_value() {
        let red = Color::new(0);
        let blue = Color::new(1);
        let mut prog = PeProgram::new();
        prog.recv_forward(red, blue, 0, 1, ReduceOp::Sum, false);
        let mut pe = pe_with(&prog, &[10.0]);
        pe.offer_ramp_down(0, Wavelet::from_f32(red, 4.0));
        pe.step(0, TR).unwrap();
        assert_eq!(pe.local()[0], 10.0);
        assert_eq!(pe.ramp_up_head(3).unwrap().as_f32(), 14.0);
    }

    #[test]
    fn compute_busy_waits() {
        let mut prog = PeProgram::new();
        prog.compute(3);
        let mut pe = pe_with(&prog, &[]);
        for now in 0..3 {
            assert!(!pe.finished());
            pe.step(now, TR).unwrap();
        }
        assert!(pe.finished());
        assert_eq!(pe.finish_cycle(), Some(2));
    }

    #[test]
    fn noop_injection_delays_progress() {
        let mut prog = PeProgram::new();
        prog.compute(1);
        let mut pe = pe_with(&prog, &[]);
        pe.inject_noops(2);
        pe.step(0, TR).unwrap();
        pe.step(1, TR).unwrap();
        assert!(!pe.finished());
        pe.step(2, TR).unwrap();
        assert!(pe.finished());
        assert_eq!(pe.stats().noop_cycles, 2);
    }

    #[test]
    fn stalls_are_counted_when_nothing_arrives() {
        let mut prog = PeProgram::new();
        prog.recv_store(Color::new(0), 0, 1);
        let mut pe = pe_with(&prog, &[0.0]);
        for now in 0..4 {
            assert!(!pe.step(now, TR).unwrap());
        }
        assert_eq!(pe.stats().stall_cycles, 4);
        assert!(!pe.finished());
    }

    #[test]
    fn last_control_marks_only_final_wavelet() {
        let c = Color::new(0);
        let mut prog = PeProgram::new();
        prog.send_with_control(c, 0, 2);
        let mut pe = pe_with(&prog, &[1.0, 2.0]);
        pe.step(0, TR).unwrap();
        pe.step(1, TR).unwrap();
        let first = pe.pop_ramp_up();
        let second = pe.pop_ramp_up();
        assert!(!first.control);
        assert!(second.control);
    }

    #[test]
    fn exchange_sends_and_receives_independently() {
        use crate::program::RecvMode;
        let tx = Color::new(0);
        let rx = Color::new(1);
        let mut prog = PeProgram::new();
        prog.exchange(tx, 0, rx, 2, 2, RecvMode::Reduce(ReduceOp::Sum));
        let mut pe = pe_with(&prog, &[1.0, 2.0, 10.0, 20.0]);
        // Nothing has arrived yet: the PE still makes progress by sending.
        assert!(pe.step(0, TR).unwrap());
        assert!(pe.step(1, TR).unwrap());
        assert_eq!(pe.stats().sent, 2);
        assert!(!pe.finished());
        // Now the two incoming wavelets arrive and are accumulated.
        pe.offer_ramp_down(2, Wavelet::from_f32(rx, 5.0));
        pe.offer_ramp_down(3, Wavelet::from_f32(rx, 7.0));
        assert!(pe.step(2, TR).unwrap());
        assert!(pe.step(3, TR).unwrap());
        assert!(pe.finished());
        assert_eq!(pe.local()[2], 15.0);
        assert_eq!(pe.local()[3], 27.0);
        assert_eq!(pe.pop_ramp_up().as_f32(), 1.0);
        assert_eq!(pe.pop_ramp_up().as_f32(), 2.0);
    }

    #[test]
    fn ramp_down_capacity_applies_backpressure() {
        let mut pe = PeState::new(0, TR);
        pe.set_program(&PeProgram::new());
        let c = Color::new(0);
        let capacity = TR as usize + RAMP_EXTRA_CAPACITY;
        for i in 0..capacity {
            assert!(pe.offer_ramp_down(0, Wavelet::data(c, i as u32)));
        }
        assert!(!pe.offer_ramp_down(0, Wavelet::data(c, 99)));
        assert!(!pe.ramp_down_has_space());
    }
}
