//! The event-driven fast engine: active sets plus skip-ahead.
//!
//! Observably byte-identical to the reference stepper (see the
//! [equivalence contract](super)); it gets its speed from two sources:
//!
//! * **Active sets.** Only PEs whose programs have not finished are stepped
//!   (a finished PE's `step` is a no-op in the reference engine), and only
//!   routers that hold at least one wavelet — in an input queue or on the
//!   PE's upward ramp — are routed. Wavelet-free routers neither read nor
//!   write anything in the reference engine, so routing the active subset in
//!   ascending index order interleaves identically with the reference's full
//!   sweep. The router set is maintained incrementally: a router activates
//!   when a wavelet is pushed towards it and deactivates when it drains.
//!
//! * **Skip-ahead.** Each cycle the engine computes the earliest cycle at
//!   which anything could act: a visible input-queue head or matured ramp
//!   wavelet for a router, and per unfinished PE whatever its current
//!   instruction waits for (ramp-down maturation, ramp-up space, …). If that
//!   wake-up cycle lies in the future, every unfinished PE provably stalls
//!   (+1 `stall_cycles`) and no wavelet moves on each intervening cycle, so
//!   the clock jumps there in one step, crediting the stalls and idle cycles
//!   in bulk. The jump is clamped to the deadlock horizon and the cycle
//!   limit so both errors fire at exactly the reference cycle.
//!
//! With a noise model attached, skip-ahead is disabled: the reference
//! engine draws one RNG sample per PE per cycle, so cycles cannot be
//! skipped without desynchronising the noise stream. The active-set
//! machinery still applies (sampling touches all PEs, stepping and routing
//! only active ones).
//!
//! When most PEs are busy at once, neither trick pays — there is nothing to
//! skip and the active sets cover the whole grid. The run loop then hands
//! whole segments of the simulation to the struct-of-arrays executor of
//! [`super::dense`], re-entering the event-driven loop when density drops
//! (see [the dense regime](super) and
//! [`super::FabricParams::dense_threshold_pct`]).

use super::{dense, Fabric, FabricError, RunReport};
use crate::pe::Wake;

/// The [`super::EngineKind::Fast`] run loop.
pub(super) fn run(fabric: &mut Fabric) -> Result<RunReport, FabricError> {
    let tolerance = fabric.idle_tolerance();
    let noisy = fabric.noise.is_some();
    let n = fabric.pes.len();

    // Seed the active sets from the current state: `run` may be called on a
    // fabric that was already hand-stepped. Both lists stay sorted ascending
    // so phase order (and therefore error precedence) matches the reference.
    let dense_threshold = dense::entry_threshold(fabric);
    let mut unfinished: Vec<usize> = (0..n).filter(|&i| !fabric.pes[i].finished()).collect();
    let mut router_active: Vec<bool> = (0..n).map(|i| fabric.router_has_work(i)).collect();
    let mut active: Vec<usize> = (0..n).filter(|&i| router_active[i]).collect();
    let mut snapshot: Vec<usize> = Vec::new();
    let mut fresh: Vec<usize> = Vec::new();
    let mut pushed: Vec<usize> = Vec::new();
    let mut idle_cycles = 0u64;

    loop {
        // Termination. The cheap emptiness test gates the O(n) `finished()`
        // sweep, which therefore runs at most a handful of times per run
        // (at completion, or when a finished PE left wavelets stranded in
        // its downward ramp — a plan bug that ends in a deadlock below).
        if unfinished.is_empty() && active.is_empty() && fabric.finished() {
            return Ok(fabric.report());
        }
        if fabric.cycle >= fabric.params.max_cycles {
            return Err(FabricError::CycleLimitExceeded { limit: fabric.params.max_cycles });
        }

        // Dense regime. The cheap unfinished-count gate keeps the O(n)
        // working-lane scan off the steady sparse path; the scan itself
        // excludes unfinished-but-unprogrammed PEs (their one-step epilogue
        // would otherwise read as 100% density on an idle fabric).
        if let Some(pct) = dense_threshold {
            if unfinished.len() * 100 >= pct * n
                && unfinished
                    .iter()
                    .filter(|&&i| fabric.pes[i].has_instructions_remaining())
                    .count()
                    * 100
                    >= pct * n
            {
                match dense::run_segment(fabric, &mut idle_cycles, pct)? {
                    Some(report) => return Ok(report),
                    None => {
                        // Density dropped (or a cycle was replayed scalar):
                        // reseed the active sets from the fabric and resume
                        // event-driven stepping.
                        unfinished.clear();
                        unfinished.extend((0..n).filter(|&i| !fabric.pes[i].finished()));
                        for (i, slot) in router_active.iter_mut().enumerate() {
                            *slot = fabric.router_has_work(i);
                        }
                        active.clear();
                        active.extend((0..n).filter(|&i| router_active[i]));
                        continue;
                    }
                }
            }
        }

        if !noisy {
            let now = fabric.cycle;
            let wake = next_wake(fabric, &unfinished, &active);
            if wake > now {
                // Nothing can act before `wake`: every intervening cycle is
                // a reference-engine cycle with no progress in which each
                // unfinished PE stalls once. Jump there, clamped so the
                // deadlock and cycle-limit checks fire at the same cycle the
                // reference engine would report.
                let gap = if wake == u64::MAX { u64::MAX } else { wake - now };
                let jump = gap.min(tolerance + 1 - idle_cycles).min(fabric.params.max_cycles - now);
                debug_assert!(jump >= 1);
                fabric.cycle += jump;
                idle_cycles += jump;
                for &i in &unfinished {
                    fabric.pes[i].add_stall_cycles(jump);
                }
                if idle_cycles > tolerance {
                    return Err(fabric.deadlock_error());
                }
                continue;
            }
        }

        // Step one cycle over the active sets.
        let now = fabric.cycle;
        let t_r = fabric.params.ramp_latency;
        let mut progress = false;

        // Phase 1: noise for all PEs (keeps the RNG stream aligned with the
        // reference engine, which draws for finished PEs too), then program
        // execution for unfinished ones. A `Send` can surface the first ramp
        // wavelet of a quiet router, so activation is collected immediately —
        // with a zero ramp latency it must route this very cycle. Walking
        // `unfinished` ascending makes `fresh` sorted by construction.
        fabric.inject_noise_all();
        fresh.clear();
        for &i in &unfinished {
            match fabric.pes[i].step(now, t_r) {
                Ok(adv) => progress |= adv,
                Err(e) => return Err(FabricError::Program(e)),
            }
            if !router_active[i] && fabric.router_has_work(i) {
                router_active[i] = true;
                fresh.push(i);
            }
        }
        unfinished.retain(|&i| !fabric.pes[i].finished());

        // Phase 2: route the routers that were active entering the cycle
        // plus any activated in phase 1, merged in one pass (no O(n)
        // mid-vector inserts). Routers that receive their first wavelet
        // *this* cycle join for the next one — their new head is not visible
        // before then anyway.
        snapshot.clear();
        merge_sorted(&active, &fresh, &mut snapshot);
        pushed.clear();
        for &i in &snapshot {
            progress |= fabric.route_one(i, now, Some(&mut pushed))?;
        }
        fresh.clear();
        for &ni in &pushed {
            // `router_active` doubles as the dedup set: a router already in
            // `snapshot` (or pushed to twice) is skipped here and kept, if
            // still loaded, by the retain below.
            if !router_active[ni] {
                router_active[ni] = true;
                fresh.push(ni);
            }
        }
        fresh.sort_unstable();
        active.clear();
        merge_sorted(&snapshot, &fresh, &mut active);
        active.retain(|&i| {
            let keep = fabric.router_has_work(i);
            if !keep {
                router_active[i] = false;
            }
            keep
        });

        fabric.cycle += 1;
        if progress {
            idle_cycles = 0;
        } else {
            idle_cycles += 1;
            if idle_cycles > tolerance {
                return Err(fabric.deadlock_error());
            }
        }
    }
}

/// The earliest cycle at which any PE or router could act, `u64::MAX` if
/// none ever will (the deadlock horizon takes over). Returns `now` as soon
/// as one immediate candidate is found.
fn next_wake(fabric: &Fabric, unfinished: &[usize], active: &[usize]) -> u64 {
    let now = fabric.cycle;
    let mut wake = u64::MAX;
    for &i in unfinished {
        match fabric.pes[i].next_wake(now) {
            Wake::Now => return now,
            Wake::At(t) => {
                debug_assert!(t > now);
                wake = wake.min(t);
            }
            Wake::Never => {}
        }
    }
    for &i in active {
        match fabric.router_wake(i, now) {
            Wake::Now => return now,
            Wake::At(t) => {
                debug_assert!(t > now);
                wake = wake.min(t);
            }
            Wake::Never => {}
        }
    }
    wake
}

/// Merge two sorted, disjoint index lists into `out` (cleared by the caller).
fn merge_sorted(a: &[usize], b: &[usize], out: &mut Vec<usize>) {
    out.reserve(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        debug_assert_ne!(a[ia], b[ib], "merge inputs must be disjoint");
        if a[ia] < b[ib] {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
}

#[cfg(test)]
mod tests {
    use super::super::tests::{configure_message, message_fabric};
    use super::super::{EngineKind, Fabric, FabricError, FabricParams, RunReport};
    use crate::clock::NoiseModel;
    use crate::geometry::{Coord, Direction, DirectionSet, GridDim};
    use crate::program::PeProgram;
    use crate::router::{ColorScript, RouteRule};
    use crate::wavelet::Color;

    /// Run the same configuration under both engines and demand identical
    /// observable results: report (or error) and every PE's local memory.
    fn assert_engines_agree(
        build: impl Fn(&mut Fabric),
        dim: GridDim,
        params: FabricParams,
        noise: Option<NoiseModel>,
    ) -> Result<RunReport, FabricError> {
        let mut results = Vec::new();
        for engine in [EngineKind::Reference, EngineKind::Fast] {
            let mut fabric = Fabric::new(dim, params.with_engine(engine));
            build(&mut fabric);
            fabric.set_noise(noise.clone());
            let outcome = fabric.run();
            let locals: Vec<Vec<f32>> =
                (0..dim.num_pes()).map(|i| fabric.local(dim.coord(i)).to_vec()).collect();
            results.push((outcome, locals));
        }
        let (reference, fast) = (results.remove(0), results.remove(0));
        assert_eq!(reference.0, fast.0, "engines disagree on the run outcome");
        assert_eq!(reference.1, fast.1, "engines disagree on PE local memory");
        reference.0
    }

    #[test]
    fn fast_matches_reference_on_a_message() {
        for (p, b) in [(2u32, 1u32), (4, 8), (16, 64), (64, 16)] {
            let report = assert_engines_agree(
                |fabric| configure_message(fabric, p, b),
                GridDim::row(p),
                FabricParams::default(),
                None,
            )
            .expect("message runs succeed");
            assert_eq!(report.max_received, b as u64);
        }
    }

    #[test]
    fn fast_matches_reference_under_noise() {
        for seed in 0..8u64 {
            let noise = NoiseModel::new(0.05, seed);
            assert_engines_agree(
                |fabric| configure_message(fabric, 6, 24),
                GridDim::row(6),
                FabricParams::default(),
                Some(noise),
            )
            .expect("noisy message runs succeed");
        }
    }

    #[test]
    fn fast_matches_reference_on_errors() {
        let dim = GridDim::row(2);
        // Deadlock: the router only accepts from the West but the wavelet
        // arrives on the ramp.
        let deadlock = assert_engines_agree(
            |fabric| {
                let color = Color::new(0);
                let mut prog = PeProgram::new();
                prog.send(color, 0, 1);
                fabric.set_program(Coord::new(1, 0), &prog);
                fabric.set_local(Coord::new(1, 0), &[1.0]);
                fabric.set_router_script(
                    Coord::new(1, 0),
                    color,
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::West,
                        DirectionSet::single(Direction::East),
                    )]),
                );
            },
            dim,
            FabricParams::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(deadlock, FabricError::Deadlock { .. }));

        // Unconfigured color: no routing script at all.
        let unconfigured = assert_engines_agree(
            |fabric| {
                let mut prog = PeProgram::new();
                prog.send(Color::new(0), 0, 1);
                fabric.set_program(Coord::new(1, 0), &prog);
                fabric.set_local(Coord::new(1, 0), &[1.0]);
            },
            dim,
            FabricParams::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(unconfigured, FabricError::UnconfiguredColor { pe: 1, .. }));

        // Forward off the grid.
        let off_grid = assert_engines_agree(
            |fabric| {
                let color = Color::new(0);
                let mut prog = PeProgram::new();
                prog.send(color, 0, 1);
                fabric.set_program(Coord::new(1, 0), &prog);
                fabric.set_local(Coord::new(1, 0), &[1.0]);
                fabric.set_router_script(
                    Coord::new(1, 0),
                    color,
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::Ramp,
                        DirectionSet::single(Direction::East),
                    )]),
                );
            },
            dim,
            FabricParams::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(off_grid, FabricError::ForwardOffGrid { pe: 1, .. }));

        // Cycle limit: a healthy run cut short at the same cycle.
        let limited = assert_engines_agree(
            |fabric| configure_message(fabric, 8, 32),
            GridDim::row(8),
            FabricParams { max_cycles: 10, ..FabricParams::default() },
            None,
        )
        .unwrap_err();
        assert!(matches!(limited, FabricError::CycleLimitExceeded { limit: 10 }));
    }

    #[test]
    fn fast_matches_reference_across_ramp_latencies() {
        for t_r in [0u64, 1, 2, 5, 9] {
            assert_engines_agree(
                |fabric| configure_message(fabric, 5, 17),
                GridDim::row(5),
                FabricParams::with_ramp_latency(t_r),
                None,
            )
            .expect("message runs succeed for every ramp latency");
        }
    }

    #[test]
    fn skip_ahead_credits_stalls_like_the_reference() {
        // A large ramp latency opens long event-free gaps that the fast
        // engine jumps over; stall and idle accounting must still match the
        // reference cycle-for-cycle (checked via the full report).
        let report = assert_engines_agree(
            |fabric| configure_message(fabric, 3, 4),
            GridDim::row(3),
            FabricParams::with_ramp_latency(40),
            None,
        )
        .expect("high-latency message run succeeds");
        assert!(report.stall_cycles > 0, "the receiver must have stalled while waiting");
    }

    #[test]
    fn fast_rerun_on_a_reset_fabric_reproduces_itself() {
        // Regression: the fast engine seeds its active sets from fabric
        // state, so a reset + reinstall must reproduce the first run exactly.
        let mut fabric = message_fabric(6, 24);
        assert_eq!(fabric.params().engine, EngineKind::Fast);
        let first = fabric.run().expect("first fast run succeeds");
        fabric.reset();
        configure_message(&mut fabric, 6, 24);
        let again = fabric.run().expect("rerun succeeds");
        assert_eq!(first, again);
    }

    #[test]
    fn fast_handles_a_fabric_with_no_work() {
        // Unprogrammed PEs still take one cycle to retire (their programs
        // finish on the first step) — in both engines, identically.
        let report =
            assert_engines_agree(|_| {}, GridDim::new(3, 3), FabricParams::default(), None)
                .expect("an idle fabric completes");
        assert_eq!(report.cycles, 1);
        assert_eq!(report.energy_hops, 0);
    }
}
