//! The reference cycle-stepper: every PE and every router port, every cycle.
//!
//! This engine is the correctness oracle for [`super::EngineKind::Fast`]
//! (`engine/fast.rs`): its run loop visits the entire grid each cycle with
//! no shortcuts, so its structure maps one-to-one onto the architectural
//! semantics in the [module docs](super). It is also the engine behind the
//! public [`Fabric::step`], which callers use to hand-advance a fabric.

use super::{Fabric, FabricError, RunReport};

impl Fabric {
    /// Advance the fabric by one cycle with the reference engine. Returns
    /// whether any architectural state changed.
    pub fn step(&mut self) -> Result<bool, FabricError> {
        let mut progress = false;
        let now = self.cycle;
        let t_r = self.params.ramp_latency;

        // Phase 1: processor execution (with thermal no-op injection drawn
        // per PE, in index order).
        for i in 0..self.pes.len() {
            if let Some(noise) = &mut self.noise {
                let noops = noise.sample_noops();
                if noops > 0 {
                    self.pes[i].inject_noops(noops);
                }
            }
            match self.pes[i].step(now, t_r) {
                Ok(adv) => progress |= adv,
                Err(e) => return Err(FabricError::Program(e)),
            }
        }

        // Phase 2: routing. A wavelet handed to a neighbouring router is
        // stamped with the current cycle and only becomes visible there in
        // the next cycle, so every hop takes at least one cycle. Each input
        // port and each output port move at most one wavelet per cycle
        // (32 bits/cycle/direction); multicast forwards are all-or-nothing.
        for i in 0..self.pes.len() {
            progress |= self.route_one(i, now, None)?;
        }

        self.cycle += 1;
        Ok(progress)
    }

    /// The [`super::EngineKind::Reference`] run loop.
    pub(super) fn run_reference(&mut self) -> Result<RunReport, FabricError> {
        let tolerance = self.idle_tolerance();
        let mut idle_cycles = 0u64;
        while !self.finished() {
            if self.cycle >= self.params.max_cycles {
                return Err(FabricError::CycleLimitExceeded { limit: self.params.max_cycles });
            }
            let progress = self.step()?;
            if progress {
                idle_cycles = 0;
            } else {
                idle_cycles += 1;
                // Wavelets may legitimately sit in a ramp for `t_r` cycles
                // before becoming visible; beyond the tolerance, no progress
                // means no progress ever (the system is deterministic and
                // monotone).
                if idle_cycles > tolerance {
                    return Err(self.deadlock_error());
                }
            }
        }
        Ok(self.report())
    }
}
