//! The dense-regime executor of the fast engine: struct-of-arrays PE lanes,
//! cohort stepping and slot-cached routing.
//!
//! When most PEs are busy, the event-driven machinery of `engine/fast.rs`
//! degenerates into the reference sweep — every PE steps and every router
//! routes every cycle, just with extra bookkeeping on top. This module is
//! the fast engine's second gear for that regime. On entry it *extracts* the
//! hot state of the whole fabric into flat mirrors:
//!
//! * per-PE execution state (pc, progress counters, pending no-ops, finish
//!   cycles, statistics) as parallel arrays indexed by PE,
//! * a compact descriptor of each PE's current instruction (kind, colors,
//!   offsets, length, flags) refreshed whenever the lane advances,
//! * the ramp FIFOs as fixed-stride circular rings in two flat arrays,
//! * per-router routing state: a color→slot map plus the active rule of
//!   every script (accept direction, forward set, advance trigger, cursor)
//!   as flat slot records, so routing a wavelet touches no `Vec` of rules
//!   and no linear color scan,
//! * a neighbour table and a per-router wavelet count that skips idle
//!   routers in one branch.
//!
//! Each simulated cycle then runs in three passes. A read-only **plan** pass
//! walks the live lanes in ascending order and buckets them into cohorts by
//! instruction kind — the lanes that will act, the lanes that stall, and the
//! `f32` operands of every `Recv`+reduce / `RecvForward` lane gathered into
//! contiguous scratch. An **execute** pass drains each cohort in a tight
//! loop, applying reduce operators through the chunked kernels of
//! [`crate::kernel`]. A **routing** pass replays the reference engine's
//! exact ascending router / port / fairness order against the mirrored
//! rings and slot records — itself split into a gather sub-pass (collect
//! every occupied port's visible head, warming the slot and destination
//! lines with independent loads) and a commit sub-pass (decide and move,
//! with per-rule destination caches and a full-queue bitset keeping the
//! decide path off the destination's cache line). On exit (completion,
//! error, or an idle cycle at low live-lane density) every mirror is
//! written back, so the fabric is byte-identical to one advanced by the
//! reference engine.
//!
//! Two details preserve byte-identity on the edges:
//!
//! * **Errors.** Phase-1 steps of one cycle are mutually independent, so
//!   cohort order is free — *except* that the reference engine returns the
//!   error of the lowest-indexed erroring PE, leaving later PEs unstepped
//!   that cycle. The plan pass therefore detects any lane that would raise a
//!   program error and, instead of executing, writes the mirrors back and
//!   replays the whole cycle through the scalar [`PeState::step`] path,
//!   which reproduces the reference's precedence and partial-cycle state
//!   exactly. Routing errors already surface in reference order because the
//!   routing pass is sequential.
//! * **Noise.** Dense stepping never skips cycles, so it also runs under a
//!   noise model: the RNG is sampled once per PE per cycle in index order,
//!   exactly like the reference engine, and lanes with pending no-ops take
//!   the no-op branch instead of their cohort's action.

use std::collections::VecDeque;
use std::mem;

use super::{Fabric, FabricError, RunReport, INBUF_CAPACITY};
use crate::geometry::{Direction, DirectionSet};
use crate::kernel;
use crate::pe::DenseHot;
use crate::program::{Instruction, RecvMode, ReduceOp};
use crate::wavelet::{Color, Wavelet};

/// Default value of [`super::FabricParams::dense_threshold_pct`].
pub(super) const DEFAULT_THRESHOLD_PCT: u32 = 40;

/// Ramp capacities beyond this disable dense stepping: the ring mirrors are
/// capacity-strided flat arrays, so a pathological ramp latency would make
/// extraction cost more than it saves.
const MAX_RAMP_CAPACITY: usize = 256;

/// `Direction::ALL[pos].index()` for every arbitration position (the four
/// mesh directions followed by the ramp).
const ALL_IDX: [usize; 5] = [3, 1, 0, 2, 4];
/// Position of [`Direction::Ramp`] in `Direction::ALL`.
const RAMP_ALL_POS: usize = 4;

/// Sentinel for "no script slot" in the color→slot maps.
const NO_SLOT: u8 = u8::MAX;

/// Sentinel for "no queue yet for this color" in the input-port maps.
const NO_QUEUE: u8 = u8::MAX;

/// Sentinel accept direction of an exhausted (or empty) script: no port
/// index equals it, so every candidate stalls.
const NO_ACCEPT: u8 = 5;

const OPS: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod];

fn op_index(op: ReduceOp) -> usize {
    match op {
        ReduceOp::Sum => 0,
        ReduceOp::Max => 1,
        ReduceOp::Min => 2,
        ReduceOp::Prod => 3,
    }
}

#[cfg(test)]
static SEGMENTS_ENTERED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[cfg(test)]
pub(super) fn segments_entered() -> u64 {
    SEGMENTS_ENTERED.load(std::sync::atomic::Ordering::Relaxed)
}

#[cfg(test)]
static SEGMENTS_HANDED_BACK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[cfg(test)]
pub(super) fn segments_handed_back() -> u64 {
    SEGMENTS_HANDED_BACK.load(std::sync::atomic::Ordering::Relaxed)
}

/// The effective dense entry threshold (as a percentage), or `None` if dense
/// stepping is disabled for this fabric.
pub(super) fn entry_threshold(fabric: &Fabric) -> Option<usize> {
    let pct = fabric.params.dense_threshold_pct.unwrap_or(DEFAULT_THRESHOLD_PCT);
    let cap = fabric.pes[0].dense_ramp_capacity();
    (pct <= 100 && cap <= MAX_RAMP_CAPACITY).then_some(pct as usize)
}

/// The current instruction kind of a lane — the cohort key. Reduce operators
/// are folded in so each cohort's execute loop applies exactly one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Compute,
    Send,
    RecvStore,
    RecvReduce(ReduceOp),
    Forward(ReduceOp),
    Exchange,
    /// Program counter past the end with the finish cycle not yet recorded —
    /// a never-programmed PE, which retires on its first step.
    Epilogue,
}

/// `Direction` by its `index()` (the inverse of `Direction::index`).
const DIR_BY_INDEX: [Direction; 5] =
    [Direction::North, Direction::East, Direction::South, Direction::West, Direction::Ramp];

/// Marks a multi-target forward in [`SlotState::fwd_one`].
const MULTICAST: u8 = u8::MAX;

/// `Direction::Ramp.index()`.
const RAMP_INDEX: usize = 4;

/// `d.opposite().index()` by `d.index()`, for the four mesh directions.
const OPP_INDEX: [usize; 4] = [2, 3, 0, 1];

/// The mirrored active rule and cursor of one router script.
#[derive(Debug, Clone, Copy)]
struct SlotState {
    /// `Direction::index()` of the accepting port, or [`NO_ACCEPT`].
    accept_from: u8,
    /// `Direction::index()` of the single forward target, or [`MULTICAST`]
    /// — the overwhelmingly common single-target case skips the set walk.
    fwd_one: u8,
    /// The rule can never advance (`advance_after` unset, no control
    /// trigger): the cursor update reduces to a count increment.
    advance_never: bool,
    advance_on_control: bool,
    forward: DirectionSet,
    /// Accepted-wavelet count that advances the rule; `u64::MAX` for never.
    advance_after: u64,
    pos: u32,
    count: u64,
    /// Cached destination of a single-target mesh forward: the absolute
    /// input-port base at the neighbour, `u32::MAX` until first resolved
    /// (reset whenever the rule changes).
    dest_pb: u32,
    /// Cached destination queue base; `u32::MAX` while the queue does not
    /// exist yet. Stable once set — queues are never removed and a port's
    /// color→queue map never changes.
    dest_qb: u32,
}

fn load_rule(slot: &mut SlotState, rules: &[crate::router::RouteRule]) {
    match rules.get(slot.pos as usize) {
        None => {
            slot.accept_from = NO_ACCEPT;
            slot.fwd_one = MULTICAST;
            slot.advance_never = true;
            slot.advance_on_control = false;
            slot.forward = DirectionSet::EMPTY;
            slot.advance_after = u64::MAX;
            slot.dest_pb = u32::MAX;
            slot.dest_qb = u32::MAX;
        }
        Some(rule) => {
            slot.accept_from = rule.accept_from.index() as u8;
            slot.fwd_one = match rule.forward_to.len() {
                1 => rule.forward_to.iter().next().expect("one target").index() as u8,
                _ => MULTICAST,
            };
            slot.advance_on_control = rule.advance_on_control;
            slot.advance_never = rule.advance_after.is_none() && !rule.advance_on_control;
            slot.forward = rule.forward_to;
            slot.advance_after = rule.advance_after.unwrap_or(u64::MAX);
            slot.dest_pb = u32::MAX;
            slot.dest_qb = u32::MAX;
        }
    }
}

/// Gathered operands of one reduce cohort: parallel lanes of accumulator,
/// incoming value and local index.
#[derive(Debug, Default)]
struct OpScratch {
    pe: Vec<u32>,
    acc: Vec<f32>,
    inc: Vec<f32>,
    idx: Vec<u32>,
}

impl OpScratch {
    fn clear(&mut self) {
        self.pe.clear();
        self.acc.clear();
        self.inc.clear();
        self.idx.clear();
    }
}

/// The mirrored statistics counters of one PE, packed so a lane update
/// touches a single cache line.
#[derive(Debug, Clone, Copy, Default)]
struct LaneStats {
    sent: u64,
    received: u64,
    stalls: u64,
    noops: u64,
}

/// The packed descriptor of one PE's current instruction. Field meaning
/// depends on the lane's [`Kind`]: `color`/`off` describe the receive side,
/// `color2`/`off2` the send side of `RecvForward`/`Exchange`.
#[derive(Debug, Clone, Copy)]
struct Desc {
    color: Color,
    color2: Color,
    op: ReduceOp,
    last_control: bool,
    keep: bool,
    store: bool,
    off: u32,
    off2: u32,
    len: u32,
}

impl Default for Desc {
    fn default() -> Self {
        Desc {
            color: Color(0),
            color2: Color(0),
            op: ReduceOp::Sum,
            last_control: false,
            keep: false,
            store: false,
            off: 0,
            off2: 0,
            len: 0,
        }
    }
}

/// Packed per-queue metadata of one input-port color queue: ring cursor,
/// the queue's color, and the cached slot index of that color at the owning
/// router ([`NO_SLOT`] if unconfigured). One 4-byte load covers everything
/// the router sweep needs besides the ring entries themselves.
#[derive(Debug, Clone, Copy, Default)]
struct QMeta {
    head: u8,
    len: u8,
    color: u8,
    slot: u8,
}

/// One input-port color queue: packed metadata and the ring entries it
/// indexes, adjacent so the head probe and the entry load share a cache
/// line.
#[derive(Debug, Clone, Copy)]
struct QBlock {
    meta: QMeta,
    ring: [(u64, Wavelet); INBUF_CAPACITY],
}

impl Default for QBlock {
    fn default() -> Self {
        Self { meta: QMeta::default(), ring: [(0, Wavelet::data(Color(0), 0)); INBUF_CAPACITY] }
    }
}

/// Packed ramp-ring cursors of one PE: both FIFOs in a single 8-byte load.
#[derive(Debug, Clone, Copy, Default)]
struct RMeta {
    up_head: u16,
    up_len: u16,
    down_head: u16,
    down_len: u16,
}

/// Planned actions of one `Exchange` lane (sends and receives progress
/// independently).
#[derive(Debug, Clone, Copy)]
struct ExchPlan {
    pe: u32,
    send: bool,
    recv: bool,
    send_val: f32,
    recv_val: f32,
}

/// A routing candidate gathered by the first routing pass: the visible head
/// wavelet of one occupied input port, plus where it came from.
#[derive(Debug, Clone, Copy)]
struct Cand {
    /// Router (PE) index.
    i: u32,
    /// Source port as a `Direction::ALL` position (4 = ramp).
    pos: u8,
    /// Fairness-rotation step the head was found at (mesh ports only);
    /// later queues are retried from `k + 1` if this candidate fails.
    k: u8,
    /// Router-relative slot of the wavelet's color.
    slot: u8,
    /// Absolute source port base, `u32::MAX` for the ramp.
    pb: u32,
    /// Absolute source queue block, `u32::MAX` for the ramp.
    qb: u32,
    w: Wavelet,
}

/// Per-cycle cohort scratch, reused across cycles.
#[derive(Debug, Default)]
struct Scratch {
    cands: Vec<Cand>,
    noop: Vec<u32>,
    epilogue: Vec<u32>,
    compute: Vec<u32>,
    stalled: Vec<u32>,
    send_pe: Vec<u32>,
    send_val: Vec<f32>,
    store_pe: Vec<u32>,
    store_val: Vec<f32>,
    store_idx: Vec<u32>,
    red: [OpScratch; 4],
    fwd: [OpScratch; 4],
    exch: Vec<ExchPlan>,
}

impl Scratch {
    fn clear(&mut self) {
        self.noop.clear();
        self.epilogue.clear();
        self.compute.clear();
        self.stalled.clear();
        self.send_pe.clear();
        self.send_val.clear();
        self.store_pe.clear();
        self.store_val.clear();
        self.store_idx.clear();
        for s in &mut self.red {
            s.clear();
        }
        for s in &mut self.fwd {
            s.clear();
        }
        self.exch.clear();
    }
}

/// The struct-of-arrays mirrors of the whole fabric for one dense segment.
struct DenseState {
    n: usize,
    /// Ring stride: the (uniform) ramp FIFO capacity.
    cap: usize,
    t_r: u64,
    /// Whether any pending no-ops can exist (noise model attached, or
    /// leftovers from before extraction). When false the per-lane pending
    /// check is skipped entirely.
    noisy: bool,

    // Per-PE execution mirrors (indexed by PE).
    kind: Vec<Kind>,
    pc: Vec<usize>,
    progress: Vec<u32>,
    progress_alt: Vec<u32>,
    pending: Vec<u32>,
    /// Finish cycle, `u64::MAX` while unfinished.
    finish: Vec<u64>,
    stats: Vec<LaneStats>,
    /// All PE local memories, concatenated; `local_base[pe]..local_base[pe+1]`
    /// is PE `pe`'s slice (`n + 1` entries).
    local: Vec<f32>,
    local_base: Vec<u32>,

    /// Current-instruction descriptor per PE (field meaning depends on
    /// `kind` — recv color / send color / recv offset / send offset / length).
    desc: Vec<Desc>,

    // Ramp FIFOs as fixed-stride circular rings, cursors packed per PE.
    up: Vec<(u64, Wavelet)>,
    down: Vec<(u64, Wavelet)>,
    ramp: Vec<RMeta>,
    /// Ready cycle of each up ring's head, `u64::MAX` when empty: the hot
    /// not-ready probe is one compare instead of two dependent ring loads.
    up_head_ready: Vec<u64>,
    /// Same for the down rings (probed by every waiting recv lane).
    down_head_ready: Vec<u64>,

    // Routing mirrors.
    /// Neighbour PE index per mesh direction (`Direction::index()` order),
    /// `u32::MAX` off-grid.
    nbr: Vec<[u32; 4]>,
    color_slot: Vec<[u8; Color::MAX_COLORS as usize]>,
    /// Start of PE `i`'s slots in `slots`; `n + 1` entries (last is the total).
    slot_base: Vec<u32>,
    slots: Vec<SlotState>,
    /// Occupied input ports per router, as a bitmask over
    /// `Direction::index()` (bit 4 = the up ring). The routing scan tests
    /// one bit instead of walking a port's queues to find it empty.
    port_mask: Vec<u8>,
    /// Wavelet count per (router, mesh port), across that port's queues;
    /// drives the `port_mask` bit reset on pop.
    port_load: Vec<u16>,

    // Input-port mirrors: per (router, mesh port), up to `qcap` per-color
    // queues in creation order (the order drives the fairness rotation),
    // each a fixed ring of `INBUF_CAPACITY` entries. `qcap` bounds the
    // per-port queue count by the number of distinct colors configured or
    // in flight anywhere — a queue is only ever created for a wavelet some
    // router accepted.
    qcap: usize,
    /// Per-queue blocks: packed cursor/color/slot plus the ring entries.
    ib_q: Vec<QBlock>,
    /// One bit per queue block, set while the queue is full. The space check
    /// on the routing decide path tests this small L1-resident bitset
    /// instead of loading the destination queue's cache line.
    ib_full: Vec<u64>,
    /// Queue count per (router, port).
    ib_nq: Vec<u8>,
    /// Color id → queue index per (router, port), [`NO_QUEUE`] if absent.
    ib_color_qi: Vec<[u8; Color::MAX_COLORS as usize]>,

    // Global wavelet counts for the termination test.
    ramp_wavelets: u64,
    inbuf_wavelets: u64,

    /// A lane retired this cycle — the retire sweep runs only then.
    any_finished: bool,

    /// Unfinished PEs, ascending.
    lanes: Vec<u32>,
    sc: Scratch,
}

/// What the plan pass concluded about this cycle.
#[derive(Debug, PartialEq, Eq)]
enum Plan {
    Clean,
    /// Some lane would raise a program error: abandon the cycle (nothing has
    /// been mutated) and replay it through the scalar path.
    WouldError,
}

/// Run dense cycles until the fabric completes (`Ok(Some(report))`), the
/// live-lane density drops below half of `entry_pct` (`Ok(None)` — the
/// event-driven loop takes over), or the run fails. `idle_cycles` is the
/// shared no-progress counter, threaded through so deadlocks fire at the
/// same cycle as in the reference engine.
pub(super) fn run_segment(
    fabric: &mut Fabric,
    idle_cycles: &mut u64,
    entry_pct: usize,
) -> Result<Option<RunReport>, FabricError> {
    #[cfg(test)]
    SEGMENTS_ENTERED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    let tolerance = fabric.idle_tolerance();
    let mut st = DenseState::extract(fabric);

    loop {
        if st.lanes.is_empty() && st.ramp_wavelets == 0 && st.inbuf_wavelets == 0 {
            st.writeback(fabric);
            debug_assert!(fabric.finished());
            return Ok(Some(fabric.report()));
        }
        if fabric.cycle >= fabric.params.max_cycles {
            st.writeback(fabric);
            return Err(FabricError::CycleLimitExceeded { limit: fabric.params.max_cycles });
        }
        let now = fabric.cycle;

        // Phase A: noise draws for every PE, in index order (identical RNG
        // stream to the reference engine).
        if let Some(noise) = &mut fabric.noise {
            for pending in &mut st.pending {
                let noops = noise.sample_noops();
                if noops > 0 {
                    *pending = pending.saturating_add(noops);
                }
            }
        }

        // Phase B: plan (read-only), then execute per cohort.
        st.sc.clear();
        if st.plan(now) == Plan::WouldError {
            st.writeback(fabric);
            scalar_cycle(fabric, idle_cycles, tolerance)?;
            return Ok(None);
        }
        let mut progress = st.execute(fabric, now);

        // Phase C: routing, in the reference's exact order.
        match st.route_all(fabric, now) {
            Ok(moved) => progress |= moved,
            Err(e) => {
                st.writeback(fabric);
                return Err(e);
            }
        }

        // Retire finished lanes (only when some lane finished this cycle).
        if st.any_finished {
            st.any_finished = false;
            let (lanes, finish) = (&mut st.lanes, &st.finish);
            lanes.retain(|&pe| finish[pe as usize] == u64::MAX);
        }

        fabric.cycle += 1;
        if progress {
            *idle_cycles = 0;
        } else {
            *idle_cycles += 1;
            if *idle_cycles > tolerance {
                st.writeback(fabric);
                return Err(fabric.deadlock_error());
            }
        }

        // Hand-back: only when the fabric goes idle *and* the live-lane
        // density has dropped below half the entry threshold. A flowing
        // pipeline is cheaper to step here than in the event-driven loop
        // regardless of density (no cycle can be skipped while wavelets
        // move), but an idle cycle at low density is exactly the situation
        // the skip-ahead loop exists for. With an entry threshold of 0 the
        // density clause never fires: the segment runs to completion.
        if !progress && st.lanes.len() * 200 < entry_pct * st.n {
            #[cfg(test)]
            SEGMENTS_HANDED_BACK.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            st.writeback(fabric);
            return Ok(None);
        }
    }
}

/// Replay one full cycle through the scalar reference path, after the plan
/// pass predicted a program error and the mirrors were written back. Noise
/// for this cycle has already been injected. If the prediction was exact the
/// step loop returns the reference's error; if it was conservative the cycle
/// simply completes scalar and the caller re-enters whichever regime fits.
fn scalar_cycle(
    fabric: &mut Fabric,
    idle_cycles: &mut u64,
    tolerance: u64,
) -> Result<(), FabricError> {
    let now = fabric.cycle;
    let t_r = fabric.params.ramp_latency;
    let mut progress = false;
    for i in 0..fabric.pes.len() {
        match fabric.pes[i].step(now, t_r) {
            Ok(adv) => progress |= adv,
            Err(e) => return Err(FabricError::Program(e)),
        }
    }
    for i in 0..fabric.pes.len() {
        progress |= fabric.route_one(i, now, None)?;
    }
    fabric.cycle += 1;
    if progress {
        *idle_cycles = 0;
    } else {
        *idle_cycles += 1;
        if *idle_cycles > tolerance {
            return Err(fabric.deadlock_error());
        }
    }
    Ok(())
}

impl DenseState {
    fn extract(fabric: &mut Fabric) -> DenseState {
        let n = fabric.pes.len();
        let cap = fabric.pes[0].dense_ramp_capacity();
        let null = (0u64, Wavelet::data(Color(0), 0));

        // A port can hold at most one queue per distinct wavelet color, and
        // every wavelet that reaches an input port was accepted by some
        // router's script for its color — so the configured (or already
        // queued) colors bound the per-port queue count.
        let mut color_seen = [false; Color::MAX_COLORS as usize];
        for i in 0..n {
            for (_, color) in fabric.routers[i].slots() {
                color_seen[color.id() as usize] = true;
            }
            for port in &fabric.inbuf[i] {
                for (color, _) in &port.queues {
                    color_seen[color.id() as usize] = true;
                }
            }
        }
        let qcap = color_seen.iter().filter(|&&seen| seen).count().max(1);
        let mut st = DenseState {
            n,
            cap,
            t_r: fabric.params.ramp_latency,
            noisy: fabric.noise.is_some(),
            kind: Vec::with_capacity(n),
            pc: Vec::with_capacity(n),
            progress: Vec::with_capacity(n),
            progress_alt: Vec::with_capacity(n),
            pending: Vec::with_capacity(n),
            finish: Vec::with_capacity(n),
            stats: Vec::with_capacity(n),
            local: Vec::new(),
            local_base: Vec::with_capacity(n + 1),
            desc: vec![Desc::default(); n],
            up: vec![null; n * cap],
            down: vec![null; n * cap],
            ramp: Vec::with_capacity(n),
            up_head_ready: Vec::with_capacity(n),
            down_head_ready: Vec::with_capacity(n),
            nbr: Vec::with_capacity(n),
            color_slot: Vec::with_capacity(n),
            slot_base: Vec::with_capacity(n + 1),
            slots: Vec::new(),
            port_mask: Vec::with_capacity(n),
            port_load: vec![0; n * 4],
            qcap,
            ib_q: vec![QBlock::default(); n * 4 * qcap],
            ib_full: vec![0; (n * 4 * qcap).div_ceil(64)],
            ib_nq: vec![0; n * 4],
            ib_color_qi: vec![[NO_QUEUE; Color::MAX_COLORS as usize]; n * 4],
            ramp_wavelets: 0,
            inbuf_wavelets: 0,
            any_finished: false,
            lanes: Vec::with_capacity(n),
            sc: Scratch::default(),
        };

        let mut tmp_up = Vec::new();
        let mut tmp_down = Vec::new();
        for i in 0..n {
            let hot = fabric.pes[i].dense_extract(&mut tmp_up, &mut tmp_down);
            st.pc.push(hot.pc);
            st.progress.push(hot.progress);
            st.progress_alt.push(hot.progress_alt);
            st.pending.push(hot.pending_noops);
            st.noisy |= hot.pending_noops > 0;
            st.finish.push(hot.finish_cycle.unwrap_or(u64::MAX));
            st.stats.push(LaneStats {
                sent: hot.stats.sent,
                received: hot.stats.received,
                stalls: hot.stats.stall_cycles,
                noops: hot.stats.noop_cycles,
            });
            st.local_base.push(st.local.len() as u32);
            st.local.extend_from_slice(&hot.local);
            st.up[i * cap..i * cap + tmp_up.len()].copy_from_slice(&tmp_up);
            st.down[i * cap..i * cap + tmp_down.len()].copy_from_slice(&tmp_down);
            st.up_head_ready.push(tmp_up.first().map_or(u64::MAX, |e| e.0));
            st.down_head_ready.push(tmp_down.first().map_or(u64::MAX, |e| e.0));
            st.ramp.push(RMeta {
                up_head: 0,
                up_len: tmp_up.len() as u16,
                down_head: 0,
                down_len: tmp_down.len() as u16,
            });
            st.ramp_wavelets += (tmp_up.len() + tmp_down.len()) as u64;

            let instr = if hot.finish_cycle.is_none() {
                fabric.pes[i].instruction_at(hot.pc)
            } else {
                None
            };
            st.kind.push(Kind::Epilogue);
            st.set_descriptor(i, instr);
            if hot.finish_cycle.is_none() {
                st.lanes.push(i as u32);
            }
        }
        st.local_base.push(st.local.len() as u32);

        for i in 0..n {
            let here = fabric.dim.coord(i);
            let mut nb = [u32::MAX; 4];
            for d in Direction::MESH {
                if let Some(nc) = fabric.dim.neighbor(here, d) {
                    nb[d.index()] = fabric.dim.index(nc) as u32;
                }
            }
            st.nbr.push(nb);

            st.slot_base.push(st.slots.len() as u32);
            let mut map = [NO_SLOT; Color::MAX_COLORS as usize];
            let router = &fabric.routers[i];
            for (s, color) in router.slots() {
                debug_assert!(s < NO_SLOT as usize);
                map[color.id() as usize] = s as u8;
                let (pos, count) = router.slot_cursor(s);
                let mut slot = SlotState {
                    accept_from: NO_ACCEPT,
                    fwd_one: MULTICAST,
                    advance_never: false,
                    advance_on_control: false,
                    forward: DirectionSet::EMPTY,
                    advance_after: u64::MAX,
                    pos: pos as u32,
                    count,
                    dest_pb: u32::MAX,
                    dest_qb: u32::MAX,
                };
                load_rule(&mut slot, router.slot_rules(s));
                st.slots.push(slot);
            }
            st.color_slot.push(map);

            let mut mask = 0u8;
            if st.ramp[i].up_len > 0 {
                mask |= 1 << RAMP_INDEX;
            }
            for (p, port) in fabric.inbuf[i].iter().enumerate() {
                let pb = i * 4 + p;
                debug_assert!(port.queues.len() <= qcap);
                st.ib_nq[pb] = port.queues.len() as u8;
                let mut load = 0u16;
                for (qi, (color, q)) in port.queues.iter().enumerate() {
                    let qb = pb * qcap + qi;
                    st.ib_q[qb].meta = QMeta {
                        head: 0,
                        len: q.len() as u8,
                        color: color.id(),
                        slot: map[color.id() as usize],
                    };
                    st.ib_color_qi[pb][color.id() as usize] = qi as u8;
                    for (k, &entry) in q.iter().enumerate() {
                        st.ib_q[qb].ring[k] = entry;
                    }
                    if q.len() >= INBUF_CAPACITY {
                        st.ib_full[qb >> 6] |= 1 << (qb & 63);
                    }
                    load += q.len() as u16;
                    st.inbuf_wavelets += q.len() as u64;
                }
                st.port_load[pb] = load;
                if load > 0 {
                    mask |= 1 << p;
                }
            }
            st.port_mask.push(mask);
        }
        st.slot_base.push(st.slots.len() as u32);
        st
    }

    fn writeback(&mut self, fabric: &mut Fabric) {
        let cap = self.cap;
        let mut tmp_up = Vec::with_capacity(cap);
        let mut tmp_down = Vec::with_capacity(cap);
        for i in 0..self.n {
            tmp_up.clear();
            tmp_down.clear();
            let base = i * cap;
            let rm = self.ramp[i];
            for k in 0..rm.up_len as usize {
                tmp_up.push(self.up[base + (rm.up_head as usize + k) % cap]);
            }
            for k in 0..rm.down_len as usize {
                tmp_down.push(self.down[base + (rm.down_head as usize + k) % cap]);
            }
            let hot = DenseHot {
                pc: self.pc[i],
                progress: self.progress[i],
                progress_alt: self.progress_alt[i],
                pending_noops: self.pending[i],
                finish_cycle: (self.finish[i] != u64::MAX).then_some(self.finish[i]),
                stats: crate::pe::PeStats {
                    sent: self.stats[i].sent,
                    received: self.stats[i].received,
                    stall_cycles: self.stats[i].stalls,
                    noop_cycles: self.stats[i].noops,
                },
                local: self.local[self.local_base[i] as usize..self.local_base[i + 1] as usize]
                    .to_vec(),
            };
            fabric.pes[i].dense_writeback(hot, tmp_up.drain(..), tmp_down.drain(..));

            let sb = self.slot_base[i] as usize;
            let se = self.slot_base[i + 1] as usize;
            for (s, slot) in self.slots[sb..se].iter().enumerate() {
                fabric.routers[i].set_slot_cursor(s, slot.pos as usize, slot.count);
            }

            // Rebuild the live input ports from the mirrors, preserving
            // queue creation order (drained queues included — the reference
            // keeps them, and the order drives the fairness rotation).
            for (p, port) in fabric.inbuf[i].iter_mut().enumerate() {
                let pb = i * 4 + p;
                port.queues.clear();
                for qi in 0..self.ib_nq[pb] as usize {
                    let qb = pb * self.qcap + qi;
                    let b = self.ib_q[qb];
                    let mut q = VecDeque::with_capacity(INBUF_CAPACITY);
                    for k in 0..b.meta.len as usize {
                        q.push_back(b.ring[(b.meta.head as usize + k) % INBUF_CAPACITY]);
                    }
                    let m = b.meta;
                    port.queues.push((Color(m.color), q));
                }
            }
        }
    }

    /// Whether the `color` queue of input port `p` of router `pe` can take
    /// one more wavelet (a missing queue is created on push).
    #[inline]
    fn ib_has_space(&self, pe: usize, p: usize, color: Color) -> bool {
        let pb = pe * 4 + p;
        let qi = self.ib_color_qi[pb][color.id() as usize];
        if qi == NO_QUEUE {
            return true;
        }
        let qb = pb * self.qcap + qi as usize;
        self.ib_full[qb >> 6] & (1 << (qb & 63)) == 0
    }

    #[inline]
    fn ib_push(&mut self, pe: usize, p: usize, arrival: u64, w: Wavelet) {
        let pb = pe * 4 + p;
        let cid = w.color.id() as usize;
        let mut qi = self.ib_color_qi[pb][cid];
        if qi == NO_QUEUE {
            qi = self.ib_nq[pb];
            debug_assert!((qi as usize) < self.qcap);
            self.ib_nq[pb] = qi + 1;
            self.ib_color_qi[pb][cid] = qi;
            self.ib_q[pb * self.qcap + qi as usize].meta =
                QMeta { head: 0, len: 0, color: w.color.id(), slot: self.color_slot[pe][cid] };
        }
        let qb = pb * self.qcap + qi as usize;
        let b = &mut self.ib_q[qb];
        debug_assert!((b.meta.len as usize) < INBUF_CAPACITY);
        let slot = (b.meta.head as usize + b.meta.len as usize) % INBUF_CAPACITY;
        b.meta.len += 1;
        b.ring[slot] = (arrival, w);
        if b.meta.len as usize == INBUF_CAPACITY {
            self.ib_full[qb >> 6] |= 1 << (qb & 63);
        }
    }

    /// Refresh the descriptor arrays of `pe` from its current instruction.
    fn set_descriptor(&mut self, pe: usize, instr: Option<Instruction>) {
        let d = &mut self.desc[pe];
        self.kind[pe] = match instr {
            None => Kind::Epilogue,
            Some(Instruction::Compute { cycles }) => {
                d.len = cycles;
                Kind::Compute
            }
            Some(Instruction::Send { color, offset, len, last_control }) => {
                d.color = color;
                d.off = offset;
                d.len = len;
                d.last_control = last_control;
                Kind::Send
            }
            Some(Instruction::Recv { color, offset, len, mode }) => {
                d.color = color;
                d.off = offset;
                d.len = len;
                match mode {
                    RecvMode::Store => Kind::RecvStore,
                    RecvMode::Reduce(op) => Kind::RecvReduce(op),
                }
            }
            Some(Instruction::RecvForward {
                recv_color,
                send_color,
                offset,
                len,
                op,
                keep,
                last_control,
            }) => {
                d.color = recv_color;
                d.color2 = send_color;
                d.off = offset;
                d.len = len;
                d.keep = keep;
                d.last_control = last_control;
                Kind::Forward(op)
            }
            Some(Instruction::Exchange {
                send_color,
                send_offset,
                recv_color,
                recv_offset,
                len,
                mode,
            }) => {
                d.color = recv_color;
                d.color2 = send_color;
                d.off = recv_offset;
                d.off2 = send_offset;
                d.len = len;
                match mode {
                    RecvMode::Store => d.store = true,
                    RecvMode::Reduce(op) => {
                        d.store = false;
                        d.op = op;
                    }
                }
                Kind::Exchange
            }
        };
    }

    /// The visible head of `pe`'s downward ramp ring, if consumable now.
    #[inline]
    fn down_ready(&self, pe: usize, now: u64) -> Option<Wavelet> {
        if self.down_head_ready[pe] > now {
            return None;
        }
        let m = self.ramp[pe];
        Some(self.down[pe * self.cap + m.down_head as usize].1)
    }

    #[inline]
    fn down_pop(&mut self, pe: usize) {
        let cap = self.cap;
        let base = pe * cap;
        let m = &mut self.ramp[pe];
        debug_assert!(m.down_len > 0);
        let h = m.down_head as usize + 1;
        let h = if h == cap { 0 } else { h };
        m.down_head = h as u16;
        m.down_len -= 1;
        self.down_head_ready[pe] = if m.down_len == 0 { u64::MAX } else { self.down[base + h].0 };
    }

    #[inline]
    fn down_push(&mut self, pe: usize, ready: u64, w: Wavelet) {
        let cap = self.cap;
        let m = &mut self.ramp[pe];
        debug_assert!((m.down_len as usize) < cap);
        let pos = (m.down_head as usize + m.down_len as usize) % cap;
        if m.down_len == 0 {
            self.down_head_ready[pe] = ready;
        }
        m.down_len += 1;
        self.down[pe * cap + pos] = (ready, w);
    }

    /// The head of `pe`'s upward ramp ring, if visible to the router now.
    #[inline]
    fn up_ready(&self, pe: usize, now: u64) -> Option<Wavelet> {
        if self.up_head_ready[pe] > now {
            return None;
        }
        let m = self.ramp[pe];
        Some(self.up[pe * self.cap + m.up_head as usize].1)
    }

    /// Advance the upward ring past its head (the caller already holds the
    /// head wavelet from [`Self::up_ready`]).
    #[inline]
    fn up_pop(&mut self, pe: usize) {
        let cap = self.cap;
        let base = pe * cap;
        let m = &mut self.ramp[pe];
        debug_assert!(m.up_len > 0);
        let h = m.up_head as usize + 1;
        let h = if h == cap { 0 } else { h };
        m.up_head = h as u16;
        m.up_len -= 1;
        self.up_head_ready[pe] = if m.up_len == 0 { u64::MAX } else { self.up[base + h].0 };
    }

    #[inline]
    fn up_push(&mut self, pe: usize, ready: u64, w: Wavelet) {
        let cap = self.cap;
        let m = &mut self.ramp[pe];
        debug_assert!((m.up_len as usize) < cap);
        let pos = (m.up_head as usize + m.up_len as usize) % cap;
        if m.up_len == 0 {
            self.up_head_ready[pe] = ready;
        }
        m.up_len += 1;
        self.up[pe * cap + pos] = (ready, w);
    }

    /// The read-only plan pass: bucket every live lane into its cohort and
    /// gather operands. Detects lanes that would raise a program error
    /// *before anything mutates*, mirroring the error conditions of
    /// [`crate::pe::PeState::step`] exactly (including checks that the
    /// reference performs before its own capacity checks).
    fn plan(&mut self, now: u64) -> Plan {
        let noisy = self.noisy;
        let cap = self.cap;
        for li in 0..self.lanes.len() {
            let pe32 = self.lanes[li];
            let pe = pe32 as usize;
            if noisy && self.pending[pe] > 0 {
                self.sc.noop.push(pe32);
                continue;
            }
            let d = self.desc[pe];
            // The PE's slice of the flat local buffer; indices pushed into
            // the cohorts are absolute (pre-offset by `lb`).
            let lb = self.local_base[pe] as usize;
            let le = self.local_base[pe + 1] as usize;
            match self.kind[pe] {
                Kind::Epilogue => self.sc.epilogue.push(pe32),
                Kind::Compute => self.sc.compute.push(pe32),
                Kind::Send => {
                    if (self.ramp[pe].up_len as usize) < cap {
                        let idx = lb + (d.off + self.progress[pe]) as usize;
                        if idx >= le {
                            return Plan::WouldError;
                        }
                        self.sc.send_pe.push(pe32);
                        self.sc.send_val.push(self.local[idx]);
                    } else {
                        self.sc.stalled.push(pe32);
                    }
                }
                Kind::RecvStore => match self.down_ready(pe, now) {
                    Some(w) => {
                        if w.color != d.color {
                            return Plan::WouldError;
                        }
                        let idx = lb + (d.off + self.progress[pe]) as usize;
                        if idx >= le {
                            return Plan::WouldError;
                        }
                        self.sc.store_pe.push(pe32);
                        self.sc.store_val.push(w.as_f32());
                        self.sc.store_idx.push(idx as u32);
                    }
                    None => self.sc.stalled.push(pe32),
                },
                Kind::RecvReduce(op) => match self.down_ready(pe, now) {
                    Some(w) => {
                        if w.color != d.color {
                            return Plan::WouldError;
                        }
                        let idx = lb + (d.off + self.progress[pe]) as usize;
                        if idx >= le {
                            return Plan::WouldError;
                        }
                        let s = &mut self.sc.red[op_index(op)];
                        s.pe.push(pe32);
                        s.acc.push(self.local[idx]);
                        s.inc.push(w.as_f32());
                        s.idx.push(idx as u32);
                    }
                    None => self.sc.stalled.push(pe32),
                },
                Kind::Forward(op) => match self.down_ready(pe, now) {
                    Some(w) => {
                        // The color check precedes the ramp-space check in
                        // the scalar step, so it must here too.
                        if w.color != d.color {
                            return Plan::WouldError;
                        }
                        if (self.ramp[pe].up_len as usize) < cap {
                            let idx = lb + (d.off + self.progress[pe]) as usize;
                            if idx >= le {
                                return Plan::WouldError;
                            }
                            let s = &mut self.sc.fwd[op_index(op)];
                            s.pe.push(pe32);
                            s.acc.push(self.local[idx]);
                            s.inc.push(w.as_f32());
                            s.idx.push(idx as u32);
                        } else {
                            self.sc.stalled.push(pe32);
                        }
                    }
                    None => self.sc.stalled.push(pe32),
                },
                Kind::Exchange => {
                    let len = d.len;
                    let mut p = ExchPlan {
                        pe: pe32,
                        send: false,
                        recv: false,
                        send_val: 0.0,
                        recv_val: 0.0,
                    };
                    if self.progress_alt[pe] < len && (self.ramp[pe].up_len as usize) < cap {
                        let idx = lb + (d.off2 + self.progress_alt[pe]) as usize;
                        if idx >= le {
                            return Plan::WouldError;
                        }
                        p.send = true;
                        p.send_val = self.local[idx];
                    }
                    if self.progress[pe] < len {
                        if let Some(w) = self.down_ready(pe, now) {
                            if w.color != d.color {
                                return Plan::WouldError;
                            }
                            let idx = lb + (d.off + self.progress[pe]) as usize;
                            if idx >= le {
                                return Plan::WouldError;
                            }
                            p.recv = true;
                            p.recv_val = w.as_f32();
                        }
                    }
                    self.sc.exch.push(p);
                }
            }
        }
        Plan::Clean
    }

    /// Drain every cohort, in tight per-kind loops. Returns whether any lane
    /// advanced (the phase-1 contribution to the deadlock progress flag).
    fn execute(&mut self, fabric: &mut Fabric, now: u64) -> bool {
        let mut progress = false;

        // Thermal no-ops.
        for li in 0..self.sc.noop.len() {
            let pe = self.sc.noop[li] as usize;
            self.pending[pe] -= 1;
            self.stats[pe].noops += 1;
        }
        progress |= !self.sc.noop.is_empty();

        // Epilogue retirements (no instruction-finish record — the scalar
        // path does not push one either).
        for li in 0..self.sc.epilogue.len() {
            let pe = self.sc.epilogue[li] as usize;
            self.finish[pe] = now;
        }
        progress |= !self.sc.epilogue.is_empty();
        self.any_finished |= !self.sc.epilogue.is_empty();

        // Compute.
        let cohort = mem::take(&mut self.sc.compute);
        for &pe32 in &cohort {
            let pe = pe32 as usize;
            self.progress[pe] += 1;
            if self.progress[pe] >= self.desc[pe].len {
                self.advance(fabric, pe, now);
            }
        }
        progress |= !cohort.is_empty();
        self.sc.compute = cohort;

        // Send.
        let cohort = mem::take(&mut self.sc.send_pe);
        for (k, &pe32) in cohort.iter().enumerate() {
            let pe = pe32 as usize;
            let d = self.desc[pe];
            let p = self.progress[pe];
            let is_last = p + 1 == d.len;
            let w = Wavelet::from_f32(d.color, self.sc.send_val[k])
                .with_control(is_last && d.last_control);
            self.up_push(pe, now + self.t_r, w);
            self.ramp_wavelets += 1;
            self.port_mask[pe] |= 1 << RAMP_INDEX;
            self.stats[pe].sent += 1;
            self.progress[pe] = p + 1;
            if is_last {
                self.advance(fabric, pe, now);
            }
        }
        progress |= !cohort.is_empty();
        self.sc.send_pe = cohort;

        // Recv + store.
        let cohort = mem::take(&mut self.sc.store_pe);
        for (k, &pe32) in cohort.iter().enumerate() {
            let pe = pe32 as usize;
            self.down_pop(pe);
            self.ramp_wavelets -= 1;
            self.stats[pe].received += 1;
            let idx = self.sc.store_idx[k] as usize;
            self.local[idx] = self.sc.store_val[k];
            self.progress[pe] += 1;
            if self.progress[pe] >= self.desc[pe].len {
                self.advance(fabric, pe, now);
            }
        }
        progress |= !cohort.is_empty();
        self.sc.store_pe = cohort;

        // Recv + reduce: one chunked kernel call per operator, then scatter.
        for (o, &op) in OPS.iter().enumerate() {
            {
                let s = &mut self.sc.red[o];
                if s.pe.is_empty() {
                    continue;
                }
                kernel::reduce_into(op, &mut s.acc, &s.inc);
            }
            let cohort = mem::take(&mut self.sc.red[o].pe);
            for (k, &pe32) in cohort.iter().enumerate() {
                let pe = pe32 as usize;
                self.down_pop(pe);
                self.ramp_wavelets -= 1;
                self.stats[pe].received += 1;
                let idx = self.sc.red[o].idx[k] as usize;
                self.local[idx] = self.sc.red[o].acc[k];
                self.progress[pe] += 1;
                if self.progress[pe] >= self.desc[pe].len {
                    self.advance(fabric, pe, now);
                }
            }
            progress = true;
            self.sc.red[o].pe = cohort;
        }

        // RecvForward: combine through the kernel, then pop/forward/keep.
        for (o, &op) in OPS.iter().enumerate() {
            {
                let s = &mut self.sc.fwd[o];
                if s.pe.is_empty() {
                    continue;
                }
                kernel::reduce_into(op, &mut s.acc, &s.inc);
            }
            let cohort = mem::take(&mut self.sc.fwd[o].pe);
            for (k, &pe32) in cohort.iter().enumerate() {
                let pe = pe32 as usize;
                self.down_pop(pe);
                self.stats[pe].received += 1;
                let combined = self.sc.fwd[o].acc[k];
                let d = self.desc[pe];
                if d.keep {
                    let idx = self.sc.fwd[o].idx[k] as usize;
                    self.local[idx] = combined;
                }
                let p = self.progress[pe];
                let is_last = p + 1 == d.len;
                let out =
                    Wavelet::from_f32(d.color2, combined).with_control(is_last && d.last_control);
                // One cycle to combine, then the ramp latency upwards.
                self.up_push(pe, now + 1 + self.t_r, out);
                self.port_mask[pe] |= 1 << RAMP_INDEX;
                self.stats[pe].sent += 1;
                self.progress[pe] = p + 1;
                if is_last {
                    self.advance(fabric, pe, now);
                }
            }
            progress = true;
            self.sc.fwd[o].pe = cohort;
        }

        // Exchange (scalar per lane: sends and receives are independent).
        let cohort = mem::take(&mut self.sc.exch);
        for plan in &cohort {
            let pe = plan.pe as usize;
            let d = self.desc[pe];
            if plan.send {
                let w = Wavelet::from_f32(d.color2, plan.send_val);
                self.up_push(pe, now + self.t_r, w);
                self.ramp_wavelets += 1;
                self.port_mask[pe] |= 1 << RAMP_INDEX;
                self.stats[pe].sent += 1;
                self.progress_alt[pe] += 1;
            }
            if plan.recv {
                self.down_pop(pe);
                self.ramp_wavelets -= 1;
                self.stats[pe].received += 1;
                let idx = self.local_base[pe] as usize + (d.off + self.progress[pe]) as usize;
                self.local[idx] = if d.store {
                    plan.recv_val
                } else {
                    d.op.apply(self.local[idx], plan.recv_val)
                };
                self.progress[pe] += 1;
            }
            if plan.send || plan.recv {
                progress = true;
            } else {
                self.stats[pe].stalls += 1;
            }
            if self.progress[pe] >= d.len && self.progress_alt[pe] >= d.len {
                self.advance(fabric, pe, now);
            }
        }
        self.sc.exch = cohort;

        // Stalled lanes.
        for li in 0..self.sc.stalled.len() {
            let pe = self.sc.stalled[li] as usize;
            self.stats[pe].stalls += 1;
        }

        progress
    }

    /// Advance `pe` past a completed instruction, mirroring
    /// `PeState::next_instruction`.
    fn advance(&mut self, fabric: &mut Fabric, pe: usize, now: u64) {
        fabric.pes[pe].record_instruction_finish(now);
        self.pc[pe] += 1;
        self.progress[pe] = 0;
        self.progress_alt[pe] = 0;
        match fabric.pes[pe].instruction_at(self.pc[pe]) {
            Some(instr) => self.set_descriptor(pe, Some(instr)),
            None => {
                self.finish[pe] = now;
                self.any_finished = true;
            }
        }
    }

    /// Phase C: route every router holding wavelets, ascending, with the
    /// reference engine's port order and per-port fairness rotation.
    fn route_all(&mut self, fabric: &mut Fabric, now: u64) -> Result<bool, FabricError> {
        let mut progress = false;
        let offset = now as usize;
        let qcap = self.qcap;

        // Pass 1: gather the first visible head per occupied input port.
        // This is sound because nothing pass 2 does can change a head pass 1
        // saw: a port's queues are only popped at that port's own (single)
        // turn, and pushes either append behind an existing head or create a
        // head that arrives *this* cycle and is invisible until the next.
        // Gathering first turns the per-event chain of dependent loads
        // (queue block -> slot -> destination block) into independent loads
        // across ~hundreds of ports that the core can overlap; pass 2 then
        // re-reads them from warm cache.
        let mut cands = std::mem::take(&mut self.sc.cands);
        for i in 0..self.n {
            let in_mask = self.port_mask[i];
            if in_mask == 0 {
                continue;
            }
            // Remap the occupancy mask from `index()` bit positions to
            // `Direction::ALL` order (W,E,N,S,Ramp) so the loop visits only
            // occupied ports while preserving the reference port order.
            let mut rem = ((in_mask >> 3) & 1)
                | (in_mask & 0b10)
                | ((in_mask & 1) << 2)
                | ((in_mask & 0b100) << 1)
                | (in_mask & 0b1_0000);
            while rem != 0 {
                let pos = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                if pos == RAMP_ALL_POS {
                    if let Some(w) = self.up_ready(i, now) {
                        let slot = self.color_slot[i][w.color.id() as usize];
                        self.touch_route_lines(i, slot);
                        cands.push(Cand {
                            i: i as u32,
                            pos: pos as u8,
                            k: 0,
                            slot,
                            pb: u32::MAX,
                            qb: u32::MAX,
                            w,
                        });
                    }
                } else {
                    let pb = i * 4 + ALL_IDX[pos];
                    let nq = self.ib_nq[pb] as usize;
                    for k in 0..nq {
                        let qi = if nq == 1 { 0 } else { (k + offset) % nq };
                        let qb = pb * qcap + qi;
                        let b = &self.ib_q[qb];
                        let m = b.meta;
                        if m.len == 0 {
                            continue;
                        }
                        let (arrival, w) = b.ring[m.head as usize];
                        // Visible only if it arrived in an earlier cycle.
                        if arrival >= now {
                            continue;
                        }
                        self.touch_route_lines(i, m.slot);
                        cands.push(Cand {
                            i: i as u32,
                            pos: pos as u8,
                            k: k as u8,
                            slot: m.slot,
                            pb: pb as u32,
                            qb: qb as u32,
                            w,
                        });
                        break;
                    }
                }
            }
        }

        // Pass 2: attempt each candidate in gathering order (= the reference
        // router/port order). Output-port occupancy resets per router.
        let mut cur = usize::MAX;
        let mut out_used = 0u8;
        for c in &cands {
            let i = c.i as usize;
            if i != cur {
                cur = i;
                out_used = 0;
            }
            let port = Direction::ALL[c.pos as usize];
            if c.pb == u32::MAX {
                progress |= self.try_route(
                    fabric,
                    i,
                    port,
                    c.w,
                    c.slot,
                    usize::MAX,
                    usize::MAX,
                    &mut out_used,
                )?;
                continue;
            }
            if self.try_route(
                fabric,
                i,
                port,
                c.w,
                c.slot,
                c.pb as usize,
                c.qb as usize,
                &mut out_used,
            )? {
                progress = true;
                continue;
            }
            // The head candidate could not route: give the port's remaining
            // queues their turn, continuing the fairness rotation.
            let pb = c.pb as usize;
            let nq = self.ib_nq[pb] as usize;
            for k in (c.k as usize + 1)..nq {
                let qi = (k + offset) % nq;
                let qb = pb * qcap + qi;
                let b = &self.ib_q[qb];
                let m = b.meta;
                if m.len == 0 {
                    continue;
                }
                let (arrival, w) = b.ring[m.head as usize];
                if arrival >= now {
                    continue;
                }
                if self.try_route(fabric, i, port, w, m.slot, pb, qb, &mut out_used)? {
                    progress = true;
                    // At most one wavelet per input port per cycle.
                    break;
                }
            }
        }
        cands.clear();
        self.sc.cands = cands;
        Ok(progress)
    }

    /// Warm the cache lines [`Self::try_route`] will need for a candidate:
    /// its routing slot and (via the slot's destination cache) the
    /// destination queue block whose space it checks. The loaded values are
    /// discarded — only the cache side effect matters.
    #[inline]
    fn touch_route_lines(&self, i: usize, slot: u8) {
        if slot == NO_SLOT {
            return;
        }
        let si = self.slot_base[i] as usize + slot as usize;
        std::hint::black_box(self.slots[si].dest_qb);
    }

    /// The dense mirror of `Fabric::try_route`: decide via the slot cache,
    /// check all forward targets (multicast all-or-nothing), then commit.
    /// `slot_rel` is the router-relative slot of the wavelet's color (cached
    /// per queue, looked up for the ramp); `pb`/`qb` are the absolute source
    /// port and queue bases for mesh ports (ignored for the ramp).
    #[allow(clippy::too_many_arguments)]
    fn try_route(
        &mut self,
        fabric: &mut Fabric,
        i: usize,
        port: Direction,
        w: Wavelet,
        slot_rel: u8,
        pb: usize,
        qb: usize,
        out_used: &mut u8,
    ) -> Result<bool, FabricError> {
        if slot_rel == NO_SLOT {
            return Err(FabricError::UnconfiguredColor { pe: i, color: w.color, from: port });
        }
        let si = self.slot_base[i] as usize + slot_rel as usize;
        let s = &self.slots[si];
        if s.accept_from != port.index() as u8 {
            return Ok(false);
        }
        let fwd_one = s.fwd_one;
        if fwd_one == MULTICAST {
            return self.try_route_multi(fabric, i, port, w, slot_rel, si, pb, qb, out_used);
        }
        let advance_never = s.advance_never;

        // Single forward target — virtually every rule of a real collective.
        // The destination port/queue are fixed per rule, so they resolve
        // once and come from the slot cache on every later route.
        let di = fwd_one as usize;
        if *out_used & (1 << di) != 0 {
            return Ok(false);
        }
        let mut dest_pb = 0usize;
        let mut dest_qb = u32::MAX;
        if di == RAMP_INDEX {
            if self.ramp[i].down_len as usize >= self.cap {
                return Ok(false);
            }
        } else {
            let cached_pb = s.dest_pb;
            if cached_pb == u32::MAX {
                let ni = self.nbr[i][di];
                if ni == u32::MAX {
                    return Err(FabricError::ForwardOffGrid { pe: i, direction: DIR_BY_INDEX[di] });
                }
                dest_pb = ni as usize * 4 + OPP_INDEX[di];
                let qi = self.ib_color_qi[dest_pb][w.color.id() as usize];
                if qi != NO_QUEUE {
                    dest_qb = (dest_pb * self.qcap + qi as usize) as u32;
                }
                let sm = &mut self.slots[si];
                sm.dest_pb = dest_pb as u32;
                sm.dest_qb = dest_qb;
            } else {
                dest_pb = cached_pb as usize;
                dest_qb = s.dest_qb;
            }
            if dest_qb != u32::MAX
                && self.ib_full[dest_qb as usize >> 6] & (1 << (dest_qb & 63)) != 0
            {
                return Ok(false);
            }
        }

        // Commit: pop the source (the head wavelet is already in hand)…
        self.pop_source(i, port, pb, qb);

        // …forward…
        *out_used |= 1 << di;
        if di == RAMP_INDEX {
            self.down_push(i, now_plus_ramp(fabric), w);
            self.ramp_wavelets += 1;
        } else {
            if dest_qb == u32::MAX {
                // First wavelet of this color into that port: the push
                // creates the queue; remember it. This happens before the
                // cursor advance so a rule switch rightly re-clears it.
                self.ib_push(dest_pb >> 2, dest_pb & 3, fabric.cycle, w);
                let qi = self.ib_color_qi[dest_pb][w.color.id() as usize];
                self.slots[si].dest_qb = (dest_pb * self.qcap + qi as usize) as u32;
            } else {
                let b = &mut self.ib_q[dest_qb as usize];
                let slot = (b.meta.head as usize + b.meta.len as usize) % INBUF_CAPACITY;
                b.meta.len += 1;
                b.ring[slot] = (fabric.cycle, w);
                if b.meta.len as usize == INBUF_CAPACITY {
                    self.ib_full[dest_qb as usize >> 6] |= 1 << (dest_qb & 63);
                }
            }
            self.inbuf_wavelets += 1;
            self.port_load[dest_pb] += 1;
            self.port_mask[dest_pb >> 2] |= 1 << (dest_pb & 3);
            fabric.energy_hops += 1;
            fabric.link_load[i][di] += 1;
        }

        // …and advance the mirrored cursor (last: `load_rule` on a rule
        // switch resets the destination cache, which must stick).
        self.advance_cursor(fabric, i, si, slot_rel, advance_never, w.control);
        Ok(true)
    }

    /// The multicast tail of [`Self::try_route`]: check every forward target
    /// (all-or-nothing), then commit and duplicate to each.
    #[allow(clippy::too_many_arguments)]
    fn try_route_multi(
        &mut self,
        fabric: &mut Fabric,
        i: usize,
        port: Direction,
        w: Wavelet,
        slot_rel: u8,
        si: usize,
        pb: usize,
        qb: usize,
        out_used: &mut u8,
    ) -> Result<bool, FabricError> {
        let s = &self.slots[si];
        let advance_never = s.advance_never;
        let forward = s.forward;
        for d in forward.iter() {
            if *out_used & (1 << d.index()) != 0 {
                return Ok(false);
            }
            if d == Direction::Ramp {
                if self.ramp[i].down_len as usize >= self.cap {
                    return Ok(false);
                }
            } else {
                let ni = self.nbr[i][d.index()];
                if ni == u32::MAX {
                    return Err(FabricError::ForwardOffGrid { pe: i, direction: d });
                }
                if !self.ib_has_space(ni as usize, OPP_INDEX[d.index()], w.color) {
                    return Ok(false);
                }
            }
        }

        self.pop_source(i, port, pb, qb);
        self.advance_cursor(fabric, i, si, slot_rel, advance_never, w.control);

        for d in forward.iter() {
            *out_used |= 1 << d.index();
            if d == Direction::Ramp {
                self.down_push(i, now_plus_ramp(fabric), w);
                self.ramp_wavelets += 1;
            } else {
                let ni = self.nbr[i][d.index()] as usize;
                let p2 = OPP_INDEX[d.index()];
                self.ib_push(ni, p2, fabric.cycle, w);
                self.inbuf_wavelets += 1;
                self.port_load[ni * 4 + p2] += 1;
                self.port_mask[ni] |= 1 << p2;
                fabric.energy_hops += 1;
                fabric.link_load[i][d.index()] += 1;
            }
        }
        Ok(true)
    }

    /// Pop the routed wavelet off its source (up ring or mesh queue `qb` of
    /// port `pb`), clearing the port's occupancy bit when it empties.
    #[inline]
    fn pop_source(&mut self, i: usize, port: Direction, pb: usize, qb: usize) {
        if port == Direction::Ramp {
            self.ramp_wavelets -= 1;
            self.up_pop(i);
            if self.ramp[i].up_len == 0 {
                self.port_mask[i] &= !(1 << RAMP_INDEX);
            }
        } else {
            self.inbuf_wavelets -= 1;
            let m = &mut self.ib_q[qb].meta;
            m.head = ((m.head as usize + 1) % INBUF_CAPACITY) as u8;
            m.len -= 1;
            self.ib_full[qb >> 6] &= !(1 << (qb & 63));
            self.port_load[pb] -= 1;
            if self.port_load[pb] == 0 {
                self.port_mask[i] &= !(1 << port.index());
            }
        }
    }

    /// Advance the mirrored slot cursor after an accepted wavelet. A
    /// never-advancing rule — the steady state of every forever-rule — only
    /// counts.
    #[inline]
    fn advance_cursor(
        &mut self,
        fabric: &Fabric,
        i: usize,
        si: usize,
        slot_rel: u8,
        advance_never: bool,
        control: bool,
    ) {
        if advance_never {
            self.slots[si].count += 1;
        } else {
            let slot = &mut self.slots[si];
            slot.count += 1;
            let advance = (slot.advance_after != u64::MAX && slot.count >= slot.advance_after)
                || (slot.advance_on_control && control);
            if advance {
                slot.pos += 1;
                slot.count = 0;
                load_rule(slot, fabric.routers[i].slot_rules(slot_rel as usize));
            }
        }
    }
}

#[inline]
fn now_plus_ramp(fabric: &Fabric) -> u64 {
    fabric.cycle + fabric.params.ramp_latency
}

#[cfg(test)]
mod tests {
    use super::super::tests::{configure_message, message_fabric};
    use super::super::{EngineKind, Fabric, FabricError, FabricParams, RunReport};
    use crate::clock::NoiseModel;
    use crate::geometry::{Coord, Direction, DirectionSet, GridDim};
    use crate::program::{PeProgram, ReduceOp};
    use crate::router::{ColorScript, RouteRule};
    use crate::wavelet::Color;

    /// Like `fast::tests::assert_engines_agree`, but the fast engine is
    /// forced into the dense executor from cycle 0 (threshold 0), so every
    /// tested behaviour exercises the dense path end to end.
    fn assert_dense_agrees(
        build: impl Fn(&mut Fabric),
        dim: GridDim,
        params: FabricParams,
        noise: Option<NoiseModel>,
    ) -> Result<RunReport, FabricError> {
        let mut results = Vec::new();
        for (engine, threshold) in [(EngineKind::Reference, 101), (EngineKind::Fast, 0)] {
            let mut fabric =
                Fabric::new(dim, params.with_engine(engine).with_dense_threshold(threshold));
            build(&mut fabric);
            fabric.set_noise(noise.clone());
            let outcome = fabric.run();
            let locals: Vec<Vec<f32>> =
                (0..dim.num_pes()).map(|i| fabric.local(dim.coord(i)).to_vec()).collect();
            let finishes: Vec<Vec<u64>> = (0..dim.num_pes())
                .map(|i| fabric.instruction_finish(dim.coord(i)).to_vec())
                .collect();
            results.push((outcome, locals, finishes));
        }
        let (reference, dense) = (results.remove(0), results.remove(0));
        assert_eq!(reference.0, dense.0, "dense path disagrees on the run outcome");
        assert_eq!(reference.1, dense.1, "dense path disagrees on PE local memory");
        assert_eq!(reference.2, dense.2, "dense path disagrees on instruction finish cycles");
        reference.0
    }

    #[test]
    fn dense_matches_reference_on_messages() {
        for (p, b) in [(2u32, 1u32), (4, 8), (16, 64), (64, 16)] {
            assert_dense_agrees(
                |fabric| configure_message(fabric, p, b),
                GridDim::row(p),
                FabricParams::default(),
                None,
            )
            .expect("message runs succeed");
        }
    }

    #[test]
    fn dense_matches_reference_under_noise() {
        for seed in 0..8u64 {
            let noise = NoiseModel::new(0.05, seed);
            assert_dense_agrees(
                |fabric| configure_message(fabric, 6, 24),
                GridDim::row(6),
                FabricParams::default(),
                Some(noise),
            )
            .expect("noisy message runs succeed");
        }
    }

    #[test]
    fn dense_matches_reference_across_ramp_latencies() {
        for t_r in [0u64, 1, 2, 5, 9, 40] {
            assert_dense_agrees(
                |fabric| configure_message(fabric, 5, 17),
                GridDim::row(5),
                FabricParams::with_ramp_latency(t_r),
                None,
            )
            .expect("message runs succeed for every ramp latency");
        }
    }

    #[test]
    fn dense_matches_reference_on_errors() {
        // Program error detected by the plan pass: a RecvForward expecting
        // color 1 is fed color 0 by its own router. The scalar replay must
        // reproduce the reference error and the exact partial-cycle state
        // (compared via locals and finish records).
        let fwd_mismatch = assert_dense_agrees(
            |fabric| {
                let c0 = Color::new(0);
                let mut sender = PeProgram::new();
                sender.send(c0, 0, 2);
                fabric.set_program(Coord::new(1, 0), &sender);
                fabric.set_local(Coord::new(1, 0), &[1.0, 2.0]);
                fabric.set_router_script(
                    Coord::new(1, 0),
                    c0,
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::Ramp,
                        DirectionSet::single(Direction::West),
                    )]),
                );
                let mut forwarder = PeProgram::new();
                forwarder.recv_forward(Color::new(1), Color::new(2), 0, 2, ReduceOp::Sum, true);
                fabric.set_program(Coord::new(0, 0), &forwarder);
                fabric.set_router_script(
                    Coord::new(0, 0),
                    c0,
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::East,
                        DirectionSet::single(Direction::Ramp),
                    )]),
                );
            },
            GridDim::row(2),
            FabricParams::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(fwd_mismatch, FabricError::Program(_)), "got {fwd_mismatch:?}");

        // Wrong-color delivery: PE 0 expects color 1 but receives color 0.
        let wrong_color = assert_dense_agrees(
            |fabric| {
                let c0 = Color::new(0);
                let mut sender = PeProgram::new();
                sender.send(c0, 0, 2);
                fabric.set_program(Coord::new(1, 0), &sender);
                fabric.set_local(Coord::new(1, 0), &[1.0, 2.0]);
                fabric.set_router_script(
                    Coord::new(1, 0),
                    c0,
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::Ramp,
                        DirectionSet::single(Direction::West),
                    )]),
                );
                let mut receiver = PeProgram::new();
                receiver.recv_store(Color::new(1), 0, 2);
                fabric.set_program(Coord::new(0, 0), &receiver);
                fabric.set_local(Coord::new(0, 0), &[0.0, 0.0]);
                fabric.set_router_script(
                    Coord::new(0, 0),
                    c0,
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::East,
                        DirectionSet::single(Direction::Ramp),
                    )]),
                );
            },
            GridDim::row(2),
            FabricParams::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(wrong_color, FabricError::Program(_)), "got {wrong_color:?}");

        // Deadlock and cycle limit at the same cycles as the reference.
        let deadlock = assert_dense_agrees(
            |fabric| {
                let color = Color::new(0);
                let mut prog = PeProgram::new();
                prog.send(color, 0, 1);
                fabric.set_program(Coord::new(1, 0), &prog);
                fabric.set_local(Coord::new(1, 0), &[1.0]);
                fabric.set_router_script(
                    Coord::new(1, 0),
                    color,
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::West,
                        DirectionSet::single(Direction::East),
                    )]),
                );
            },
            GridDim::row(2),
            FabricParams::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(deadlock, FabricError::Deadlock { .. }));

        let limited = assert_dense_agrees(
            |fabric| configure_message(fabric, 8, 32),
            GridDim::row(8),
            FabricParams { max_cycles: 10, ..FabricParams::default() },
            None,
        )
        .unwrap_err();
        assert!(matches!(limited, FabricError::CycleLimitExceeded { limit: 10 }));
    }

    #[test]
    fn dense_handles_exchange_reduce_and_store() {
        // Two PEs running a full-duplex exchange — both modes.
        for store in [false, true] {
            assert_dense_agrees(
                |fabric| {
                    let (ca, cb) = (Color::new(0), Color::new(1));
                    let mode = if store {
                        crate::program::RecvMode::Store
                    } else {
                        crate::program::RecvMode::Reduce(ReduceOp::Sum)
                    };
                    for (x, tx, rx) in [(0u32, ca, cb), (1u32, cb, ca)] {
                        let at = Coord::new(x, 0);
                        let mut prog = PeProgram::new();
                        prog.exchange(tx, 0, rx, 4, 4, mode);
                        fabric.set_program(at, &prog);
                        let data: Vec<f32> = (0..8).map(|i| (x * 100 + i) as f32).collect();
                        fabric.set_local(at, &data);
                        let out = if x == 0 { Direction::East } else { Direction::West };
                        fabric.set_router_script(
                            at,
                            tx,
                            ColorScript::new(vec![RouteRule::forever(
                                Direction::Ramp,
                                DirectionSet::single(out),
                            )]),
                        );
                        fabric.set_router_script(
                            at,
                            rx,
                            ColorScript::new(vec![RouteRule::forever(
                                out,
                                DirectionSet::single(Direction::Ramp),
                            )]),
                        );
                    }
                },
                GridDim::row(2),
                FabricParams::default(),
                None,
            )
            .expect("exchange runs succeed");
        }
    }

    #[test]
    fn dense_engages_on_dense_workloads_by_default() {
        // Every PE of a 2-PE row is programmed: 100% density, above the
        // default threshold, so the default-parameter fast engine must enter
        // at least one dense segment.
        let before = super::segments_entered();
        let mut fabric = message_fabric(2, 4);
        assert_eq!(fabric.params().engine, EngineKind::Fast);
        fabric.run().expect("message run succeeds");
        assert!(super::segments_entered() > before, "dense segment never entered");
    }

    #[test]
    fn dense_exits_and_hands_back_to_the_event_driven_loop() {
        // Six PEs compute briefly; one then computes for a long tail. Density
        // starts at 100% and collapses to 1/6 < 20% (half the default 40%),
        // but the lone computing lane keeps making progress every cycle, so
        // the segment deliberately stays dense to completion — a flowing
        // fabric is cheaper here than in the event-driven loop. Results must
        // still match the reference engine exactly.
        let report = assert_dense_agrees(
            |fabric| {
                for x in 0..6 {
                    let mut prog = PeProgram::new();
                    prog.compute(3);
                    if x == 0 {
                        prog.compute(200);
                    }
                    fabric.set_program(Coord::new(x, 0), &prog);
                }
            },
            GridDim::row(6),
            FabricParams::default(),
            None,
        )
        .expect("two-phase compute run succeeds");
        assert_eq!(report.max_finish(), 202);

        // A long idle stretch at low density *does* hand back: one message
        // crawling up a 40-cycle ramp while the other five PEs are done is
        // exactly the gap the event-driven loop skips over.
        let handed = super::segments_handed_back();
        let mut fabric = Fabric::new(GridDim::row(6), FabricParams::with_ramp_latency(40));
        let color = Color::new(0);
        let mut sender = PeProgram::new();
        sender.send(color, 0, 1);
        fabric.set_program(Coord::new(1, 0), &sender);
        fabric.set_local(Coord::new(1, 0), &[7.5]);
        fabric.set_router_script(
            Coord::new(1, 0),
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::Ramp,
                DirectionSet::single(Direction::West),
            )]),
        );
        let mut receiver = PeProgram::new();
        receiver.recv_store(color, 0, 1);
        fabric.set_program(Coord::new(0, 0), &receiver);
        fabric.set_local(Coord::new(0, 0), &[0.0]);
        fabric.set_router_script(
            Coord::new(0, 0),
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::East,
                DirectionSet::single(Direction::Ramp),
            )]),
        );
        // Two computing PEs push the initial working density over the 40%
        // entry bar.
        for x in 2..4 {
            let mut prog = PeProgram::new();
            prog.compute(2);
            fabric.set_program(Coord::new(x, 0), &prog);
        }
        fabric.run().expect("ramp-latency message run succeeds");
        assert_eq!(fabric.local(Coord::new(0, 0)), &[7.5]);
        assert!(
            super::segments_handed_back() > handed,
            "an idle stretch at low density must hand back to the event-driven loop"
        );

        // And the same workload under the *default* threshold (not forced):
        // the default fast engine must agree with the reference too.
        let run = |engine: EngineKind| {
            let mut fabric =
                Fabric::new(GridDim::row(6), FabricParams::default().with_engine(engine));
            for x in 0..6 {
                let mut prog = PeProgram::new();
                prog.compute(3);
                if x == 0 {
                    prog.compute(200);
                }
                fabric.set_program(Coord::new(x, 0), &prog);
            }
            fabric.run().expect("run succeeds")
        };
        assert_eq!(run(EngineKind::Fast), run(EngineKind::Reference));
    }

    #[test]
    fn threshold_above_100_disables_dense_stepping() {
        let before = super::segments_entered();
        let mut fabric =
            Fabric::new(GridDim::row(2), FabricParams::default().with_dense_threshold(101));
        configure_message(&mut fabric, 2, 4);
        fabric.run().expect("message run succeeds");
        assert_eq!(super::segments_entered(), before, "dense must stay disabled");
    }

    #[test]
    fn dense_rerun_on_a_reset_fabric_reproduces_itself() {
        let mut fabric =
            Fabric::new(GridDim::row(6), FabricParams::default().with_dense_threshold(0));
        configure_message(&mut fabric, 6, 24);
        let first = fabric.run().expect("first dense run succeeds");
        fabric.reset();
        configure_message(&mut fabric, 6, 24);
        let again = fabric.run().expect("rerun succeeds");
        assert_eq!(first, again);
    }

    #[test]
    fn dense_resumes_a_hand_stepped_fabric() {
        // `run` may be called mid-flight: extraction must pick up partially
        // executed programs, in-flight ramp wavelets and advanced router
        // cursors. Hand-step the reference engine for a few cycles, then
        // finish under both engines and compare.
        let run_tail = |threshold: u32| {
            let mut fabric = Fabric::new(
                GridDim::row(4),
                FabricParams::default()
                    .with_engine(EngineKind::Fast)
                    .with_dense_threshold(threshold),
            );
            configure_message(&mut fabric, 4, 12);
            for _ in 0..5 {
                fabric.step().expect("hand step succeeds");
            }
            let report = fabric.run().expect("tail run succeeds");
            let locals: Vec<Vec<f32>> =
                (0..4).map(|i| fabric.local(Coord::new(i, 0)).to_vec()).collect();
            (report, locals)
        };
        assert_eq!(run_tail(0), run_tail(101));
    }
}
