//! The fabric engines: a reference cycle-stepper and a fast event-driven
//! engine, byte-identical in everything they report.
//!
//! Both engines advance the grid with the same per-cycle semantics:
//!
//! 1. every PE executes one cycle of its program (consuming at most one
//!    wavelet from its ramp and injecting at most one),
//! 2. every router moves at most one wavelet per input port, subject to the
//!    active routing rule, output-link bandwidth (one wavelet per direction
//!    per cycle) and downstream buffer space; multicast forwards are
//!    all-or-nothing, and
//! 3. wavelets handed to a neighbouring router become visible there in the
//!    next cycle.
//!
//! This reproduces the behaviour the performance model abstracts: one-hop
//! per cycle links, per-PE pipelining limited by the single ramp port,
//! contention stalls at over-subscribed PEs, and loose synchronisation
//! through routing-configuration switches.
//!
//! # The two engines
//!
//! [`EngineKind::Reference`] is the exhaustive stepper: every PE and all
//! five router input ports of every PE are visited every cycle, whether or
//! not they hold work. It is deliberately simple — its loop *is* the
//! semantics above — and stays the correctness oracle.
//!
//! [`EngineKind::Fast`], the default, visits only the PEs whose programs
//! have not finished and the routers that actually hold wavelets (an
//! *active set* maintained incrementally as wavelets move), and when the
//! earliest future event — a ramp-latency maturation or an inbuf head
//! becoming visible — is more than one cycle away it advances the clock in
//! one jump instead of idling through the gap. On large grids with sparse
//! traffic this removes almost all per-cycle work.
//!
//! # The dense regime
//!
//! Active sets and skip-ahead buy nothing when nearly every PE is busy —
//! exactly the regime of the paper's dense collectives. For that case the
//! fast engine owns a second gear (`engine/dense.rs`): when the fraction of
//! PEs that are unfinished *and still have program instructions* reaches
//! [`FabricParams::dense_threshold_pct`] (default 40%), the run switches to
//! a lane-batched executor that moves the hot per-PE state (program
//! counters, progress, ramp FIFOs, routing cursors) into struct-of-arrays
//! mirrors, steps cohorts of PEs executing the same instruction kind in
//! tight loops, applies [`crate::program::ReduceOp`]s through the chunked
//! kernels of [`crate::kernel`] over contiguous `f32` scratch slices, and
//! routes in two passes — a gather pass that collects each occupied input
//! port's visible head wavelet (turning the per-event chain of dependent
//! loads into independent, overlappable ones) and a commit pass that moves
//! them through per-rule destination caches and an L1-resident full-queue
//! bitset instead of per-wavelet linear scans. The executor hands control
//! back to the event-driven loop only when a cycle makes no progress while
//! the live-lane density has dropped below *half* the entry threshold: a
//! flowing pipeline is cheaper to step here regardless of density, but an
//! idle cycle at low density is exactly what skip-ahead exists for. A run
//! may alternate between the two gears any number of times. Setting the
//! knob above 100 disables the dense path, 0 forces it from the first cycle
//! (and, since the density clause then never fires, pins the whole run to
//! it).
//!
//! Dense stepping makes no skip-ahead jumps and is therefore also used
//! under a noise model. Byte-identity is preserved by construction: PE
//! phase-1 steps of one cycle are mutually independent (so cohort order does
//! not matter), routing replays the reference's exact ascending router /
//! port / fairness order against the mirrored state, and any cycle in which
//! a lane *would* raise a program error is abandoned before mutation and
//! replayed through the scalar [`crate::pe::PeState::step`] path, which
//! reproduces the reference's first-erroring-PE precedence exactly.
//!
//! # Equivalence contract
//!
//! The fast engine is *observably byte-identical* to the reference engine:
//! for any fabric configuration, with or without a [`NoiseModel`] attached,
//! both engines produce the same [`RunReport`] (cycle counts, per-PE finish
//! cycles, `energy_hops`, `links_used`, link loads, stall and no-op
//! counters), the same PE local memories, and the same [`FabricError`] on
//! failing configurations (deadlock declared at the same cycle, identical
//! cycle-limit and unconfigured-color errors). The contract is enforced by
//! the unit tests in this module, the property suite in
//! `crates/fabric/tests/property_fabric.rs` and the plan-level proptest
//! suite in `tests/engine_equivalence.rs`. The only tolerated divergence is
//! internal state *after* an error has been returned (e.g. the noise RNG
//! position), which no API reports and which [`Fabric::reset`] discards.

mod dense;
mod fast;
mod reference;

use std::collections::VecDeque;

use crate::clock::NoiseModel;
use crate::geometry::{Coord, Direction, GridDim};
use crate::pe::{PeError, PeState, PeStats, Wake};
use crate::program::PeProgram;
use crate::router::{ColorScript, RouteDecision, Router};
use crate::wavelet::{Color, Wavelet};

/// Capacity of each router input queue (per mesh direction and color). Two
/// entries are enough to sustain one wavelet per cycle through a full
/// pipeline while still providing backpressure.
const INBUF_CAPACITY: usize = 2;

/// The per-color input queues of one mesh port of a router.
///
/// The hardware keeps per-color state in the router; modelling the input
/// buffering per color (rather than as a single FIFO per port) is what
/// prevents head-of-line blocking between colors: a wavelet whose color is
/// currently stalled by the routing configuration must not block wavelets of
/// other colors that arrived behind it.
#[derive(Debug, Clone, Default)]
struct PortQueues {
    queues: Vec<(Color, VecDeque<(u64, Wavelet)>)>,
}

impl PortQueues {
    fn has_space(&self, color: Color) -> bool {
        self.queues.iter().find(|(c, _)| *c == color).is_none_or(|(_, q)| q.len() < INBUF_CAPACITY)
    }

    fn push(&mut self, arrival: u64, wavelet: Wavelet) {
        if let Some((_, q)) = self.queues.iter_mut().find(|(c, _)| *c == wavelet.color) {
            q.push_back((arrival, wavelet));
        } else {
            let mut q = VecDeque::with_capacity(INBUF_CAPACITY);
            q.push_back((arrival, wavelet));
            self.queues.push((wavelet.color, q));
        }
    }

    /// Number of per-color queues this port currently tracks (drained queues
    /// are kept, so this only grows).
    fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The head wavelet of the `k`-th queue in fairness order (queue order
    /// rotated by `offset`), if it is visible this cycle (arrived in an
    /// earlier cycle). Must only be called with `k < num_queues()`.
    fn visible_head_at(&self, now: u64, offset: usize, k: usize) -> Option<Wavelet> {
        let (color, q) = &self.queues[(k + offset) % self.queues.len()];
        match q.front() {
            Some(&(arrival, w)) if arrival < now => {
                debug_assert_eq!(w.color, *color);
                Some(w)
            }
            _ => None,
        }
    }

    /// The earliest cycle at which any queue head becomes visible, if any
    /// wavelet is queued (a head that arrived at cycle `a` is visible from
    /// `a + 1`).
    fn earliest_visibility(&self) -> Option<u64> {
        self.queues.iter().filter_map(|(_, q)| q.front().map(|&(arrival, _)| arrival + 1)).min()
    }

    fn pop(&mut self, color: Color) -> Wavelet {
        let (_, q) =
            self.queues.iter_mut().find(|(c, _)| *c == color).expect("pop of an unknown color");
        q.pop_front().expect("pop of an empty queue").1
    }

    fn is_empty(&self) -> bool {
        self.queues.iter().all(|(_, q)| q.is_empty())
    }

    fn clear(&mut self) {
        self.queues.clear();
    }
}

/// Base tolerance (in cycles) for consecutive no-progress cycles before
/// declaring a deadlock. The effective tolerance also scales with the grid
/// semi-perimeter — see [`FabricParams::deadlock_patience`].
const DEADLOCK_PATIENCE: u64 = 16;

/// Which engine [`Fabric::run`] uses to advance the fabric.
///
/// Both engines implement the identical architecture and are observably
/// byte-identical; see the [module docs](self) for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Event-driven engine: visits only PEs/routers with pending work and
    /// skips the clock ahead over event-free gaps. The default.
    #[default]
    Fast,
    /// Exhaustive cycle-stepper: visits every PE and every router port every
    /// cycle. The correctness oracle, and the engine behind [`Fabric::step`].
    Reference,
}

/// Hardware parameters of the simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FabricParams {
    /// Ramp latency `T_R` in cycles (2 on the WSE-2).
    pub ramp_latency: u64,
    /// Safety limit on the number of simulated cycles.
    pub max_cycles: u64,
    /// Engine used by [`Fabric::run`].
    pub engine: EngineKind,
    /// Consecutive no-progress cycles (beyond the ramp latency) tolerated
    /// before declaring a deadlock. `None` picks
    /// `max(16, grid width + grid height)`: large grids, whose legitimate
    /// quiet gaps grow with their diameter, cannot trip a false deadlock,
    /// while small grids keep the historical fixed 16.
    pub deadlock_patience: Option<u64>,
    /// Percentage (0–100) of PEs that must be unfinished *with instructions
    /// remaining* for [`EngineKind::Fast`] to switch to its lane-batched
    /// dense executor (see the [module docs](self)). The executor exits
    /// again, with hysteresis, when the live-lane fraction drops below half
    /// this value. `None` picks the default of 40. Values above 100 disable
    /// dense stepping; 0 forces it from the first cycle. Purely a
    /// performance knob: results are byte-identical for every setting.
    pub dense_threshold_pct: Option<u32>,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            ramp_latency: 2,
            max_cycles: 200_000_000,
            engine: EngineKind::default(),
            deadlock_patience: None,
            dense_threshold_pct: None,
        }
    }
}

impl FabricParams {
    /// Parameters with a custom ramp latency.
    pub fn with_ramp_latency(ramp_latency: u64) -> Self {
        FabricParams { ramp_latency, ..Default::default() }
    }

    /// The same parameters with a different engine.
    pub fn with_engine(self, engine: EngineKind) -> Self {
        FabricParams { engine, ..self }
    }

    /// The same parameters with a different dense-regime entry threshold
    /// (see [`FabricParams::dense_threshold_pct`]).
    pub fn with_dense_threshold(self, pct: u32) -> Self {
        FabricParams { dense_threshold_pct: Some(pct), ..self }
    }
}

/// A fatal simulation error.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// A PE raised a program error (wrong color, out-of-bounds access).
    Program(PeError),
    /// A wavelet reached a router that has no routing script for its color.
    UnconfiguredColor {
        /// Linear index of the router.
        pe: usize,
        /// Color of the offending wavelet.
        color: Color,
        /// Direction it arrived from.
        from: Direction,
    },
    /// A routing rule forwards off the edge of the grid.
    ForwardOffGrid {
        /// Linear index of the router.
        pe: usize,
        /// The direction that leaves the grid.
        direction: Direction,
    },
    /// No wavelet moved and no PE made progress for many cycles while the
    /// collective had not completed.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Indices of PEs that have not finished their programs.
        stuck_pes: Vec<usize>,
    },
    /// The safety cycle limit was exceeded.
    CycleLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Program(e) => write!(f, "PE {} program error: {}", e.pe, e.message),
            FabricError::UnconfiguredColor { pe, color, from } => {
                write!(f, "router {pe} has no script for {color} (wavelet from {from})")
            }
            FabricError::ForwardOffGrid { pe, direction } => {
                write!(f, "router {pe} forwards off the grid towards {direction}")
            }
            FabricError::Deadlock { cycle, stuck_pes } => {
                write!(f, "deadlock at cycle {cycle}: {} PEs stuck", stuck_pes.len())
            }
            FabricError::CycleLimitExceeded { limit } => {
                write!(f, "cycle limit of {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Aggregate statistics of a completed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Cycle at which the last PE finished and the fabric drained.
    pub cycles: u64,
    /// Per-PE cycle at which its program finished.
    pub pe_finish: Vec<u64>,
    /// Total number of router-to-router hops (the measured energy term).
    pub energy_hops: u64,
    /// Number of distinct directed links that carried at least one wavelet.
    pub links_used: u64,
    /// The largest number of wavelets carried by any single directed link.
    pub max_link_load: u64,
    /// The largest number of wavelets any PE received (measured contention).
    pub max_received: u64,
    /// The largest number of wavelets any PE sent.
    pub max_sent: u64,
    /// Total PE cycles spent stalled.
    pub stall_cycles: u64,
    /// Total thermal no-op cycles inserted by the noise model.
    pub noop_cycles: u64,
}

impl RunReport {
    /// The finish cycle of the PE with the given linear index.
    pub fn finish_of(&self, index: usize) -> u64 {
        self.pe_finish[index]
    }

    /// The latest finish cycle over all PEs (the collective's completion
    /// time as measured by the §8.3 methodology).
    pub fn max_finish(&self) -> u64 {
        self.pe_finish.iter().copied().max().unwrap_or(0)
    }
}

/// The simulated wafer fabric: a grid of PEs, their routers and the mesh
/// links between them.
#[derive(Debug)]
pub struct Fabric {
    dim: GridDim,
    params: FabricParams,
    pes: Vec<PeState>,
    routers: Vec<Router>,
    /// Input queues per PE and mesh direction (indexed by `Direction::index`).
    inbuf: Vec<[PortQueues; 4]>,
    /// Wavelets carried per PE and outgoing mesh direction.
    link_load: Vec<[u64; 4]>,
    cycle: u64,
    energy_hops: u64,
    noise: Option<NoiseModel>,
}

impl Fabric {
    /// Create an idle fabric of the given dimensions.
    pub fn new(dim: GridDim, params: FabricParams) -> Self {
        let n = dim.num_pes();
        Fabric {
            dim,
            params,
            pes: (0..n).map(|i| PeState::new(i, params.ramp_latency)).collect(),
            routers: vec![Router::new(); n],
            inbuf: vec![Default::default(); n],
            link_load: vec![[0; 4]; n],
            cycle: 0,
            energy_hops: 0,
            noise: None,
        }
    }

    /// The grid dimensions.
    pub fn dim(&self) -> GridDim {
        self.dim
    }

    /// Return the fabric to its post-construction state while keeping every
    /// allocation (PE local memories, router script tables, input queues).
    ///
    /// This is the reuse path for execution sessions: installing a plan on a
    /// reset fabric behaves identically to installing it on a freshly
    /// constructed one, but skips re-allocating the whole mesh. Programs and
    /// routing scripts are removed, local memories zeroed, queues drained and
    /// all counters (cycle, energy, link loads, per-PE statistics) cleared;
    /// the noise model is detached so a reused fabric does not silently
    /// inherit the previous run's noise.
    pub fn reset(&mut self) {
        for pe in &mut self.pes {
            pe.reset();
        }
        for router in &mut self.routers {
            router.clear();
        }
        for bufs in &mut self.inbuf {
            for queues in bufs.iter_mut() {
                queues.clear();
            }
        }
        for loads in &mut self.link_load {
            *loads = [0; 4];
        }
        self.cycle = 0;
        self.energy_hops = 0;
        self.noise = None;
    }

    /// The hardware parameters.
    pub fn params(&self) -> FabricParams {
        self.params
    }

    /// Attach a thermal-noise model (random no-op insertion, §8.1).
    pub fn set_noise(&mut self, noise: Option<NoiseModel>) {
        self.noise = noise;
    }

    /// Install the routing script of one color on one router.
    pub fn set_router_script(&mut self, at: Coord, color: Color, script: ColorScript) {
        let idx = self.dim.index(at);
        self.routers[idx].set_script(color, script);
    }

    /// Install the program of one PE.
    pub fn set_program(&mut self, at: Coord, program: &PeProgram) {
        let idx = self.dim.index(at);
        self.pes[idx].set_program(program);
    }

    /// Set the local input vector of one PE.
    pub fn set_local(&mut self, at: Coord, data: &[f32]) {
        let idx = self.dim.index(at);
        self.pes[idx].set_local(data);
    }

    /// Write an input slice into one PE's local memory starting at `offset`,
    /// leaving memory outside the slice untouched.
    pub fn set_local_at(&mut self, at: Coord, offset: u32, data: &[f32]) {
        let idx = self.dim.index(at);
        self.pes[idx].set_local_at(offset, data);
    }

    /// The local vector of a PE (result inspection after a run).
    pub fn local(&self, at: Coord) -> &[f32] {
        self.pes[self.dim.index(at)].local()
    }

    /// Per-PE statistics.
    pub fn pe_stats(&self, at: Coord) -> PeStats {
        self.pes[self.dim.index(at)].stats()
    }

    /// The cycle at which each instruction of the PE at `at` completed, in
    /// program order (used by the measurement methodology of §8.3).
    pub fn instruction_finish(&self, at: Coord) -> &[u64] {
        self.pes[self.dim.index(at)].instruction_finish()
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether every program has finished and every buffer has drained.
    pub fn finished(&self) -> bool {
        self.pes.iter().all(|pe| pe.finished() && pe.ramps_empty())
            && self.inbuf.iter().all(|bufs| bufs.iter().all(PortQueues::is_empty))
    }

    /// Run until completion with the engine selected by
    /// [`FabricParams::engine`], returning the run report.
    pub fn run(&mut self) -> Result<RunReport, FabricError> {
        match self.params.engine {
            EngineKind::Fast => fast::run(self),
            EngineKind::Reference => self.run_reference(),
        }
    }

    /// The no-progress tolerance both engines apply before declaring a
    /// deadlock: wavelets may legitimately sit in a ramp for `T_R` cycles,
    /// plus the configured (or diameter-scaled) patience on top.
    fn idle_tolerance(&self) -> u64 {
        let patience = self.params.deadlock_patience.unwrap_or_else(|| {
            DEADLOCK_PATIENCE.max(self.dim.width as u64 + self.dim.height as u64)
        });
        self.params.ramp_latency + patience
    }

    /// Build the deadlock error for the current cycle.
    fn deadlock_error(&self) -> FabricError {
        let stuck: Vec<usize> =
            self.pes.iter().enumerate().filter(|(_, pe)| !pe.finished()).map(|(i, _)| i).collect();
        FabricError::Deadlock { cycle: self.cycle, stuck_pes: stuck }
    }

    /// Draw this cycle's thermal no-ops for every PE, in PE index order.
    ///
    /// Both engines draw exactly one sample per PE per simulated cycle —
    /// including PEs whose programs have finished — so the noise RNG stream
    /// stays aligned between them.
    fn inject_noise_all(&mut self) {
        if let Some(noise) = &mut self.noise {
            for pe in &mut self.pes {
                let noops = noise.sample_noops();
                if noops > 0 {
                    pe.inject_noops(noops);
                }
            }
        }
    }

    /// Whether router `i` holds any wavelet (a non-empty input queue or a
    /// wavelet travelling up the PE's ramp). This is the fast engine's
    /// router-activity predicate.
    fn router_has_work(&self, i: usize) -> bool {
        !self.pes[i].ramp_up_is_empty() || self.inbuf[i].iter().any(|q| !q.is_empty())
    }

    /// The earliest cycle at which router `i` could have a visible candidate
    /// wavelet: `Wake::Now` if one is visible this cycle, `Wake::At` for a
    /// queued wavelet maturing later, `Wake::Never` if it holds nothing.
    fn router_wake(&self, i: usize, now: u64) -> Wake {
        let mut at = u64::MAX;
        if let Some(ready) = self.pes[i].ramp_up_ready() {
            if ready <= now {
                return Wake::Now;
            }
            at = ready;
        }
        for bufs in &self.inbuf[i] {
            if let Some(vis) = bufs.earliest_visibility() {
                if vis <= now {
                    return Wake::Now;
                }
                at = at.min(vis);
            }
        }
        if at == u64::MAX {
            Wake::Never
        } else {
            Wake::At(at)
        }
    }

    /// Route the input ports of router `i` for the current cycle: move at
    /// most one wavelet per input port, at most one per output direction,
    /// multicast all-or-nothing. Returns whether any wavelet moved; when
    /// `activated` is provided, pushes the linear index of every neighbour
    /// that received a wavelet (duplicates possible).
    ///
    /// Shared by both engines — the reference stepper calls it for every
    /// router, the fast engine only for routers that hold wavelets. It never
    /// reads or writes the mutable state of a wavelet-free router, which is
    /// what makes the fast engine's active-set subsetting exact.
    fn route_one(
        &mut self,
        i: usize,
        now: u64,
        mut activated: Option<&mut Vec<usize>>,
    ) -> Result<bool, FabricError> {
        let here = self.dim.coord(i);
        let mut progress = false;
        // One outgoing wavelet per direction per cycle, shared across this
        // router's five input ports.
        let mut out_used = [false; 5];
        for port in Direction::ALL {
            if port == Direction::Ramp {
                // The ramp input port has a single candidate: the ramp head.
                if let Some(w) = self.pes[i].ramp_up_head(now) {
                    progress |=
                        self.try_route(i, here, port, w, &mut out_used, activated.as_deref_mut())?;
                }
            } else {
                // Candidate wavelets of a mesh port: the visible head of each
                // per-color queue, in fairness order. Nothing mutates these
                // queues until a candidate commits, and the first commit ends
                // the port's turn, so reading heads lazily in place is
                // equivalent to snapshotting them up front (and allocates
                // nothing).
                let nq = self.inbuf[i][port.index()].num_queues();
                for k in 0..nq {
                    let Some(w) = self.inbuf[i][port.index()].visible_head_at(now, now as usize, k)
                    else {
                        continue;
                    };
                    if self.try_route(i, here, port, w, &mut out_used, activated.as_deref_mut())? {
                        progress = true;
                        // At most one wavelet per input port per cycle.
                        break;
                    }
                }
            }
        }
        Ok(progress)
    }

    /// Try to route candidate wavelet `w` sitting on input `port` of router
    /// `i`: commits the move and returns `Ok(true)` if the routing rule
    /// accepts it and every forward target has capacity, `Ok(false)` if it
    /// stalls or is infeasible this cycle.
    fn try_route(
        &mut self,
        i: usize,
        here: Coord,
        port: Direction,
        w: Wavelet,
        out_used: &mut [bool; 5],
        mut activated: Option<&mut Vec<usize>>,
    ) -> Result<bool, FabricError> {
        let forward = match self.routers[i].decide(w.color, port) {
            RouteDecision::Unconfigured => {
                return Err(FabricError::UnconfiguredColor { pe: i, color: w.color, from: port })
            }
            RouteDecision::Stall => return Ok(false),
            RouteDecision::Accept(set) => set,
        };

        // Check that every forward target can take the wavelet this cycle
        // (multicast is all-or-nothing).
        for d in forward.iter() {
            if out_used[d.index()] {
                return Ok(false);
            }
            if d == Direction::Ramp {
                if !self.pes[i].ramp_down_has_space() {
                    return Ok(false);
                }
            } else {
                let Some(nc) = self.dim.neighbor(here, d) else {
                    return Err(FabricError::ForwardOffGrid { pe: i, direction: d });
                };
                let ni = self.dim.index(nc);
                if !self.inbuf[ni][d.opposite().index()].has_space(w.color) {
                    return Ok(false);
                }
            }
        }

        // Commit the move.
        let now = self.cycle;
        let t_r = self.params.ramp_latency;
        let w = if port == Direction::Ramp {
            self.pes[i].pop_ramp_up()
        } else {
            self.inbuf[i][port.index()].pop(w.color)
        };
        self.routers[i].accept(&w, port);
        for d in forward.iter() {
            out_used[d.index()] = true;
            if d == Direction::Ramp {
                let ok = self.pes[i].offer_ramp_down(now + t_r, w);
                debug_assert!(ok, "ramp-down space checked above");
            } else {
                let ni = self.dim.index(self.dim.neighbor(here, d).unwrap());
                self.inbuf[ni][d.opposite().index()].push(now, w);
                self.energy_hops += 1;
                self.link_load[i][d.index()] += 1;
                if let Some(list) = activated.as_deref_mut() {
                    list.push(ni);
                }
            }
        }
        Ok(true)
    }

    /// Build the report for the current (completed) state.
    pub fn report(&self) -> RunReport {
        let pe_finish: Vec<u64> =
            self.pes.iter().map(|pe| pe.finish_cycle().unwrap_or(self.cycle)).collect();
        let mut links_used = 0u64;
        let mut max_link_load = 0u64;
        for loads in &self.link_load {
            for &l in loads {
                if l > 0 {
                    links_used += 1;
                    max_link_load = max_link_load.max(l);
                }
            }
        }
        let mut max_received = 0;
        let mut max_sent = 0;
        let mut stall_cycles = 0;
        let mut noop_cycles = 0;
        for pe in &self.pes {
            let s = pe.stats();
            max_received = max_received.max(s.received);
            max_sent = max_sent.max(s.sent);
            stall_cycles += s.stall_cycles;
            noop_cycles += s.noop_cycles;
        }
        RunReport {
            cycles: self.cycle,
            pe_finish,
            energy_hops: self.energy_hops,
            links_used,
            max_link_load,
            max_received,
            max_sent,
            stall_cycles,
            noop_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DirectionSet;
    use crate::program::{PeProgram, ReduceOp};
    use crate::router::RouteRule;

    fn c(id: u8) -> Color {
        Color::new(id)
    }

    fn west_ramp() -> DirectionSet {
        DirectionSet::single(Direction::West).with(Direction::Ramp)
    }

    /// Build a fabric where the rightmost PE of a row sends `b` elements to
    /// the leftmost PE (the Message primitive of §4.1).
    pub(super) fn message_fabric(p: u32, b: u32) -> Fabric {
        let dim = GridDim::row(p);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        configure_message(&mut fabric, p, b);
        fabric
    }

    /// Install the message configuration of [`message_fabric`] on an existing
    /// (fresh or reset) fabric.
    pub(super) fn configure_message(fabric: &mut Fabric, p: u32, b: u32) {
        let color = c(0);
        let data: Vec<f32> = (0..b).map(|i| i as f32 + 1.0).collect();

        // Sender: rightmost PE.
        let sender = Coord::new(p - 1, 0);
        let mut prog = PeProgram::new();
        prog.send(color, 0, b);
        fabric.set_program(sender, &prog);
        fabric.set_local(sender, &data);
        fabric.set_router_script(
            sender,
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::Ramp,
                DirectionSet::single(Direction::West),
            )]),
        );

        // Intermediate PEs forward westwards.
        for x in 1..p - 1 {
            fabric.set_router_script(
                Coord::new(x, 0),
                color,
                ColorScript::new(vec![RouteRule::forever(
                    Direction::East,
                    DirectionSet::single(Direction::West),
                )]),
            );
        }

        // Receiver: leftmost PE.
        let receiver = Coord::new(0, 0);
        let mut prog = PeProgram::new();
        prog.recv_store(color, 0, b);
        fabric.set_program(receiver, &prog);
        fabric.set_local(receiver, &vec![0.0; b as usize]);
        fabric.set_router_script(
            receiver,
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::East,
                DirectionSet::single(Direction::Ramp),
            )]),
        );
    }

    #[test]
    fn message_delivers_data_in_order() {
        let mut fabric = message_fabric(4, 8);
        let report = fabric.run().expect("run succeeds");
        let expected: Vec<f32> = (0..8).map(|i| i as f32 + 1.0).collect();
        assert_eq!(fabric.local(Coord::new(0, 0))[..8], expected[..]);
        assert_eq!(report.max_received, 8);
        assert_eq!(report.max_sent, 8);
        // Energy: 8 wavelets over 3 links.
        assert_eq!(report.energy_hops, 24);
        assert_eq!(report.links_used, 3);
        assert_eq!(report.max_link_load, 8);
    }

    #[test]
    fn message_runtime_tracks_the_model() {
        // T_Message = B + P + 2 T_R; the simulator adds a couple of cycles of
        // router pipelining, so check a tight band rather than equality.
        for (p, b) in [(4u32, 8u32), (16, 64), (64, 16), (32, 256)] {
            let mut fabric = message_fabric(p, b);
            let report = fabric.run().expect("run succeeds");
            let measured = report.finish_of(0) as f64;
            let model = (b + p) as f64 + 4.0;
            let rel = (measured - model).abs() / model;
            assert!(rel < 0.25, "p={p} b={b}: measured {measured} vs model {model} (rel {rel:.3})");
        }
    }

    #[test]
    fn broadcast_multicasts_to_every_pe() {
        // Flooding broadcast from the rightmost PE of a row (§4.2): every
        // router duplicates the stream to its processor and onwards.
        let p = 6u32;
        let b = 5u32;
        let dim = GridDim::row(p);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let color = c(3);
        let data: Vec<f32> = (0..b).map(|i| (i * i) as f32).collect();

        let root = Coord::new(p - 1, 0);
        let mut prog = PeProgram::new();
        prog.send(color, 0, b);
        fabric.set_program(root, &prog);
        fabric.set_local(root, &data);
        fabric.set_router_script(
            root,
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::Ramp,
                DirectionSet::single(Direction::West),
            )]),
        );

        for x in 0..p - 1 {
            let at = Coord::new(x, 0);
            let forward = if x == 0 { DirectionSet::single(Direction::Ramp) } else { west_ramp() };
            fabric.set_router_script(
                at,
                color,
                ColorScript::new(vec![RouteRule::forever(Direction::East, forward)]),
            );
            let mut prog = PeProgram::new();
            prog.recv_store(color, 0, b);
            fabric.set_program(at, &prog);
            fabric.set_local(at, &vec![0.0; b as usize]);
        }

        let report = fabric.run().expect("run succeeds");
        for x in 0..p - 1 {
            assert_eq!(fabric.local(Coord::new(x, 0))[..b as usize], data[..]);
        }
        // Broadcast energy matches a single message: B wavelets over P-1 links.
        assert_eq!(report.energy_hops, (b * (p - 1)) as u64);
        // Broadcast completes in about B + P + 2 T_R cycles.
        let model = (b + p) as f64 + 4.0;
        assert!((report.max_finish() as f64 - model).abs() / model < 0.35);
    }

    #[test]
    fn hand_built_chain_reduce_sums_vectors() {
        // Chain Reduce on a row of 4 PEs with alternating colors, root at x=0.
        let p = 4u32;
        let b = 6u32;
        let dim = GridDim::row(p);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let op = ReduceOp::Sum;
        let color_of = |x: u32| c((x % 2) as u8); // color a PE *sends* on

        for x in 0..p {
            let at = Coord::new(x, 0);
            let data: Vec<f32> = (0..b).map(|i| (x * 10 + i) as f32).collect();
            fabric.set_local(at, &data);
            let mut prog = PeProgram::new();
            if x == p - 1 {
                prog.send(color_of(x), 0, b);
            } else if x == 0 {
                prog.recv_reduce(color_of(x + 1), 0, b, op);
            } else {
                prog.recv_forward(color_of(x + 1), color_of(x), 0, b, op, false);
            }
            fabric.set_program(at, &prog);

            // Router: deliver the incoming color to the ramp, send own color west.
            if x < p - 1 {
                fabric.set_router_script(
                    at,
                    color_of(x + 1),
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::East,
                        DirectionSet::single(Direction::Ramp),
                    )]),
                );
            }
            if x > 0 {
                fabric.set_router_script(
                    at,
                    color_of(x),
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::Ramp,
                        DirectionSet::single(Direction::West),
                    )]),
                );
            }
        }

        let report = fabric.run().expect("run succeeds");
        let expected: Vec<f32> = (0..b).map(|i| (10 + 20 + 30 + 4 * i) as f32).collect();
        assert_eq!(fabric.local(Coord::new(0, 0))[..b as usize], expected[..]);
        // T_Chain = B + (2 T_R + 2)(P - 1) = 6 + 18 = 24; allow pipeline slack.
        let model = 24.0;
        let measured = report.finish_of(0) as f64;
        assert!((measured - model).abs() / model < 0.3, "measured {measured} vs model {model}");
        assert_eq!(report.max_received, b as u64);
    }

    #[test]
    fn unconfigured_color_is_an_error() {
        let dim = GridDim::row(2);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let mut prog = PeProgram::new();
        prog.send(c(0), 0, 1);
        fabric.set_program(Coord::new(1, 0), &prog);
        fabric.set_local(Coord::new(1, 0), &[1.0]);
        let err = fabric.run().unwrap_err();
        assert!(matches!(err, FabricError::UnconfiguredColor { pe: 1, .. }));
    }

    #[test]
    fn wrong_direction_rule_deadlocks() {
        let dim = GridDim::row(2);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let color = c(0);
        let mut prog = PeProgram::new();
        prog.send(color, 0, 1);
        fabric.set_program(Coord::new(1, 0), &prog);
        fabric.set_local(Coord::new(1, 0), &[1.0]);
        // The router only accepts from the West, but the wavelet arrives on
        // the ramp: it stalls forever.
        fabric.set_router_script(
            Coord::new(1, 0),
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::West,
                DirectionSet::single(Direction::East),
            )]),
        );
        let err = fabric.run().unwrap_err();
        assert!(matches!(err, FabricError::Deadlock { .. }));
    }

    #[test]
    fn forwarding_off_the_grid_is_an_error() {
        let dim = GridDim::row(2);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let color = c(0);
        let mut prog = PeProgram::new();
        prog.send(color, 0, 1);
        fabric.set_program(Coord::new(1, 0), &prog);
        fabric.set_local(Coord::new(1, 0), &[1.0]);
        fabric.set_router_script(
            Coord::new(1, 0),
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::Ramp,
                DirectionSet::single(Direction::East),
            )]),
        );
        let err = fabric.run().unwrap_err();
        assert!(matches!(err, FabricError::ForwardOffGrid { pe: 1, direction: Direction::East }));
    }

    #[test]
    fn counted_rules_serialise_two_senders() {
        // Two PEs send to a middle receiver on the same color; the receiver's
        // router first accepts everything from the East, then everything from
        // the West (Figure 3's loose synchronisation).
        let dim = GridDim::row(3);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let color = c(1);
        let b = 4u32;

        for (x, dir) in [(0u32, Direction::West), (2u32, Direction::East)] {
            let at = Coord::new(x, 0);
            let mut prog = PeProgram::new();
            prog.send(color, 0, b);
            fabric.set_program(at, &prog);
            fabric.set_local(at, &vec![x as f32 + 1.0; b as usize]);
            fabric.set_router_script(
                at,
                color,
                ColorScript::new(vec![RouteRule::forever(
                    Direction::Ramp,
                    DirectionSet::single(dir.opposite()),
                )]),
            );
        }

        let middle = Coord::new(1, 0);
        let mut prog = PeProgram::new();
        prog.recv_reduce(color, 0, b, ReduceOp::Sum);
        prog.recv_reduce(color, 0, b, ReduceOp::Sum);
        fabric.set_program(middle, &prog);
        fabric.set_local(middle, &vec![0.0; b as usize]);
        fabric.set_router_script(
            middle,
            color,
            ColorScript::new(vec![
                RouteRule::counted(
                    Direction::East,
                    DirectionSet::single(Direction::Ramp),
                    b as u64,
                ),
                RouteRule::counted(
                    Direction::West,
                    DirectionSet::single(Direction::Ramp),
                    b as u64,
                ),
            ]),
        );

        fabric.run().expect("run succeeds");
        assert_eq!(fabric.local(middle)[..b as usize], vec![4.0; b as usize][..]);
    }

    #[test]
    fn fabric_types_cross_thread_boundaries() {
        // Batch executors move whole fabrics (and their noise models and run
        // reports) between pool and worker threads; these bounds are part of
        // the crate's contract, so losing them (e.g. by introducing an `Rc`
        // or a raw pointer) must fail loudly here rather than in a
        // downstream crate.
        fn assert_send_sync_static<T: Send + Sync + 'static>() {}
        assert_send_sync_static::<Fabric>();
        assert_send_sync_static::<NoiseModel>();
        assert_send_sync_static::<RunReport>();
        assert_send_sync_static::<FabricParams>();
        assert_send_sync_static::<FabricError>();
        assert_send_sync_static::<EngineKind>();
    }

    #[test]
    fn reset_fabric_reruns_identically_to_a_fresh_one() {
        // A reused (reset) fabric must be indistinguishable from a fresh one:
        // same results, same report — including after a run that left router
        // cursors advanced and statistics populated.
        let mut reused = message_fabric(6, 24);
        let first = reused.run().expect("first run succeeds");

        reused.reset();
        assert_eq!(reused.cycle(), 0);
        assert!(reused.finished(), "a reset fabric has no pending work");

        configure_message(&mut reused, 6, 24);
        let again = reused.run().expect("rerun on the reset fabric succeeds");
        assert_eq!(again, first);
        let expected: Vec<f32> = (0..24).map(|i| i as f32 + 1.0).collect();
        assert_eq!(reused.local(Coord::new(0, 0))[..24], expected[..]);
    }

    #[test]
    fn reset_clears_leftover_local_memory() {
        let mut fabric = message_fabric(4, 8);
        fabric.run().expect("run succeeds");
        assert!(fabric.local(Coord::new(0, 0)).iter().any(|v| *v != 0.0));
        fabric.reset();
        for x in 0..4 {
            assert!(fabric.local(Coord::new(x, 0)).iter().all(|v| *v == 0.0));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut fabric = message_fabric(8, 32);
            fabric.run().expect("run succeeds")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn pipelining_sustains_one_wavelet_per_cycle() {
        // For a long vector over a short row the runtime must be close to B,
        // not 2B: the pipeline moves one wavelet per cycle per link.
        let b = 512u32;
        let mut fabric = message_fabric(3, b);
        let report = fabric.run().expect("run succeeds");
        assert!(
            (report.finish_of(0) as f64) < b as f64 * 1.1 + 20.0,
            "pipeline too slow: {} cycles for {} wavelets",
            report.finish_of(0),
            b
        );
    }

    #[test]
    fn default_patience_scales_with_grid_diameter() {
        // Small grids keep the historical fixed patience; grids whose
        // semi-perimeter exceeds it scale up so long quiet gaps on big
        // fabrics are not misread as deadlocks. An explicit patience wins
        // over both.
        let small = Fabric::new(GridDim::row(2), FabricParams::default());
        assert_eq!(small.idle_tolerance(), 2 + 16);
        let large = Fabric::new(GridDim::new(40, 30), FabricParams::default());
        assert_eq!(large.idle_tolerance(), 2 + 70);
        let pinned = Fabric::new(
            GridDim::new(40, 30),
            FabricParams { deadlock_patience: Some(5), ..FabricParams::default() },
        );
        assert_eq!(pinned.idle_tolerance(), 2 + 5);
    }
}
