//! # wse-fabric — a cycle-level simulator of a wafer-scale 2D mesh fabric
//!
//! This crate is the hardware substrate of the *Near-Optimal Wafer-Scale
//! Reduce* reproduction. The paper's experiments run on a Cerebras CS-2;
//! without that machine (or its proprietary toolchain and fabric simulator)
//! this crate provides a from-scratch, deterministic, cycle-stepped model of
//! the architectural features the paper's collectives rely on (§2.2):
//!
//! * a 2D mesh of PEs, each pairing a **router** with a **processor** and
//!   local memory,
//! * 32-bit **wavelets** routed by **color**, with per-color routing
//!   configurations that can switch at runtime (by wavelet count or control
//!   wavelets) and that **stall** wavelets arriving from directions the
//!   active rule does not accept,
//! * **multicast**: a router duplicates an accepted wavelet to several
//!   outputs at no extra cost,
//! * one wavelet per link direction per cycle (32 bits/cycle), one-hop
//!   per-cycle latency, and a **ramp latency** `T_R` between router and
//!   processor,
//! * per-PE **programs** built from vectorised send / receive-and-reduce /
//!   pipelined-forward operations (the DSD-style operations of CSL),
//! * per-PE **clock skew** and optional **thermal no-op** injection, plus the
//!   clock-synchronisation measurement methodology of §8.3.
//!
//! The companion crate `wse-collectives` compiles the paper's Reduce /
//! AllReduce / Broadcast algorithms into router scripts and PE programs and
//! executes them on this fabric; the measured cycle counts are then compared
//! with the analytic predictions of `wse-model`.
//!
//! ## Example: a two-PE message
//!
//! ```
//! use wse_fabric::geometry::{Coord, Direction, DirectionSet, GridDim};
//! use wse_fabric::program::PeProgram;
//! use wse_fabric::router::{ColorScript, RouteRule};
//! use wse_fabric::wavelet::Color;
//! use wse_fabric::{Fabric, FabricParams};
//!
//! let dim = GridDim::row(2);
//! let mut fabric = Fabric::new(dim, FabricParams::default());
//! let color = Color::new(0);
//!
//! // PE (1,0) sends four values westwards.
//! let mut sender = PeProgram::new();
//! sender.send(color, 0, 4);
//! fabric.set_program(Coord::new(1, 0), &sender);
//! fabric.set_local(Coord::new(1, 0), &[1.0, 2.0, 3.0, 4.0]);
//! fabric.set_router_script(
//!     Coord::new(1, 0),
//!     color,
//!     ColorScript::new(vec![RouteRule::forever(
//!         Direction::Ramp,
//!         DirectionSet::single(Direction::West),
//!     )]),
//! );
//!
//! // PE (0,0) receives them.
//! let mut receiver = PeProgram::new();
//! receiver.recv_store(color, 0, 4);
//! fabric.set_program(Coord::new(0, 0), &receiver);
//! fabric.set_local(Coord::new(0, 0), &[0.0; 4]);
//! fabric.set_router_script(
//!     Coord::new(0, 0),
//!     color,
//!     ColorScript::new(vec![RouteRule::forever(
//!         Direction::East,
//!         DirectionSet::single(Direction::Ramp),
//!     )]),
//! );
//!
//! let report = fabric.run().unwrap();
//! assert_eq!(fabric.local(Coord::new(0, 0)), &[1.0, 2.0, 3.0, 4.0]);
//! assert!(report.cycles > 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod clock;
pub mod engine;
pub mod geometry;
pub mod kernel;
pub mod measure;
pub mod pe;
pub mod program;
pub mod router;
pub mod wavelet;

pub use clock::{ClockModel, NoiseModel};
pub use engine::{EngineKind, Fabric, FabricError, FabricParams, RunReport};
pub use geometry::{Coord, Direction, DirectionSet, GridDim};
pub use program::{Instruction, PeProgram, RecvMode, ReduceOp};
pub use router::{ColorScript, RouteDecision, RouteRule, Router};
pub use wavelet::{Color, Wavelet};
