//! Clock skew and thermal-noise models.
//!
//! The CS-2's PEs run truly independent clocks at around 850 MHz and may
//! insert no-ops to regulate thermal stress (§8.1). These two effects are
//! the reason the paper needs the careful measurement methodology of §8.3.
//! The simulator reproduces both: a [`ClockModel`] turns the engine's true
//! cycle numbers into skewed per-PE local readings, and a [`NoiseModel`]
//! injects random no-op cycles into PE execution.

/// Small deterministic splitmix64 generator. The repository builds without
/// network access, so the clock and noise models use this in place of an
/// external RNG crate; determinism per seed is all they need.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[0, bound]`.
    ///
    /// Uses the widening-multiply method with rejection (Lemire's unbiased
    /// range reduction) rather than `next_u64() % (bound + 1)`: the modulo
    /// over-represents small values once the bound is no longer negligible
    /// against 2⁶⁴ — at `bound + 1 = 3·2⁶²` the smallest quarter of the
    /// range is drawn half again as often as the rest.
    fn below_inclusive(&mut self, bound: u64) -> u64 {
        if bound == u64::MAX {
            return self.next_u64();
        }
        let range = bound + 1;
        // 2⁶⁴ mod range: a draw whose low product word falls below this
        // belongs to the truncated final copy of `[0, range)` and must be
        // rejected to keep every value exactly equally likely.
        let threshold = range.wrapping_neg() % range;
        loop {
            let wide = (self.next_u64() as u128) * (range as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    fn gen_bool(&mut self, probability: f64) -> bool {
        self.next_f64() < probability
    }
}

/// Per-PE clock offsets: local reading = true cycle + offset.
///
/// Only offsets (not drift) are modelled; over the sub-microsecond intervals
/// of a single collective the relative drift of the 850 MHz oscillators is
/// far below one cycle.
#[derive(Debug, Clone)]
pub struct ClockModel {
    offsets: Vec<i64>,
}

impl ClockModel {
    /// A model where every PE shares the global clock (no skew).
    pub fn synchronized(num_pes: usize) -> Self {
        ClockModel { offsets: vec![0; num_pes] }
    }

    /// A model with uniformly random offsets in `[0, max_skew]`.
    ///
    /// Each PE's cycle counter starts when the PE comes up, so the offsets
    /// between local clocks are arbitrary non-negative values; what matters
    /// for the measurement methodology is only that they differ.
    pub fn random(num_pes: usize, max_skew: u64, seed: u64) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let offsets = (0..num_pes).map(|_| rng.below_inclusive(max_skew) as i64).collect();
        ClockModel { offsets }
    }

    /// A model with explicitly given offsets.
    pub fn with_offsets(offsets: Vec<i64>) -> Self {
        ClockModel { offsets }
    }

    /// Number of PEs covered by the model.
    pub fn num_pes(&self) -> usize {
        self.offsets.len()
    }

    /// The offset of one PE.
    pub fn offset(&self, pe: usize) -> i64 {
        self.offsets[pe]
    }

    /// The local clock reading of `pe` at the given true cycle.
    pub fn read(&self, pe: usize, true_cycle: u64) -> u64 {
        (true_cycle as i64 + self.offsets[pe]).max(0) as u64
    }
}

/// Random insertion of thermal no-ops into PE execution.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    probability: f64,
    seed: u64,
    rng: SplitMix64,
}

impl NoiseModel {
    /// A noise model that inserts a no-op before a PE cycle with the given
    /// probability.
    pub fn new(probability: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&probability), "no-op probability must be in [0, 1)");
        NoiseModel { probability, seed, rng: SplitMix64::seed_from_u64(seed) }
    }

    /// The configured no-op probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The base seed the model's stream was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An independent noise stream for run number `run_index`, derived from
    /// this model's *base* seed (the derivation ignores how much of the
    /// current stream has already been consumed).
    ///
    /// Execution sessions and batch executors attach `for_run(counter)` to
    /// the fabric instead of cloning the model, so that every run of a
    /// reused session sees a fresh thermal-noise realization while the whole
    /// session stays reproducible from its base seed. `for_run(0)` is the
    /// identity derivation: it equals a freshly constructed model, which
    /// keeps one-shot runs and the first run of a session byte-identical.
    pub fn for_run(&self, run_index: u64) -> NoiseModel {
        NoiseModel::new(self.probability, self.seed ^ run_index.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Sample how many no-op cycles to insert right now (0 or 1).
    pub fn sample_noops(&mut self) -> u32 {
        if self.probability > 0.0 && self.rng.gen_bool(self.probability) {
            1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_clock_reads_true_time() {
        let clock = ClockModel::synchronized(4);
        for pe in 0..4 {
            assert_eq!(clock.read(pe, 1234), 1234);
            assert_eq!(clock.offset(pe), 0);
        }
    }

    #[test]
    fn random_offsets_are_bounded_and_deterministic() {
        let a = ClockModel::random(64, 100, 7);
        let b = ClockModel::random(64, 100, 7);
        for pe in 0..64 {
            assert!((0..=100).contains(&a.offset(pe)));
            assert_eq!(a.offset(pe), b.offset(pe));
        }
        let c = ClockModel::random(64, 100, 8);
        assert!((0..64).any(|pe| a.offset(pe) != c.offset(pe)));
    }

    #[test]
    fn clock_reading_never_underflows() {
        let clock = ClockModel::with_offsets(vec![-50]);
        assert_eq!(clock.read(0, 10), 0);
        assert_eq!(clock.read(0, 60), 10);
    }

    #[test]
    fn noise_model_zero_probability_is_silent() {
        let mut noise = NoiseModel::new(0.0, 1);
        assert_eq!((0..100).map(|_| noise.sample_noops()).sum::<u32>(), 0);
    }

    #[test]
    fn noise_model_rate_matches_probability() {
        let mut noise = NoiseModel::new(0.25, 42);
        let n = 10_000;
        let hits: u32 = (0..n).map(|_| noise.sample_noops()).sum();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    #[should_panic]
    fn noise_probability_must_be_below_one() {
        let _ = NoiseModel::new(1.0, 0);
    }

    #[test]
    fn below_inclusive_has_no_modulo_bias_for_large_bounds() {
        // With range = 3·2⁶² the old `% range` draw returned values below
        // 2⁶² with probability 1/2 instead of the uniform 1/3 (those values
        // fit twice into 2⁶⁴, the rest only once). The unbiased draw must
        // put one third of the mass there.
        let bound = 3u64 << 62;
        let mut rng = SplitMix64::seed_from_u64(0xD1CE);
        let n = 20_000;
        let small = (0..n).filter(|_| rng.below_inclusive(bound - 1) < (1u64 << 62)).count();
        let fraction = small as f64 / n as f64;
        assert!(
            (fraction - 1.0 / 3.0).abs() < 0.02,
            "fraction below 2^62 was {fraction}, expected ~1/3 (modulo bias gives ~1/2)"
        );
    }

    #[test]
    fn below_inclusive_stays_in_range_at_the_extremes() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(rng.below_inclusive(0), 0);
            assert!(rng.below_inclusive(1) <= 1);
            assert!(rng.below_inclusive(u64::MAX - 1) < u64::MAX);
        }
        // bound == u64::MAX falls through to the raw generator.
        let a = SplitMix64::seed_from_u64(9).below_inclusive(u64::MAX);
        let b = SplitMix64::seed_from_u64(9).next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn below_inclusive_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = SplitMix64::seed_from_u64(seed);
            (0..32).map(|_| rng.below_inclusive(1_000_003)).collect::<Vec<u64>>()
        };
        assert_eq!(draw(11), draw(11));
        assert_ne!(draw(11), draw(12));
    }

    #[test]
    fn for_run_zero_is_the_identity_derivation() {
        let base = NoiseModel::new(0.2, 99);
        let mut fresh = NoiseModel::new(0.2, 99);
        let mut derived = base.for_run(0);
        let a: Vec<u32> = (0..200).map(|_| fresh.sample_noops()).collect();
        let b: Vec<u32> = (0..200).map(|_| derived.sample_noops()).collect();
        assert_eq!(a, b, "for_run(0) must replay the base stream exactly");
        assert_eq!(base.seed(), 99);
    }

    #[test]
    fn for_run_produces_distinct_but_reproducible_streams() {
        let base = NoiseModel::new(0.3, 42);
        let stream = |model: &NoiseModel, run: u64| {
            let mut m = model.for_run(run);
            (0..500).map(|_| m.sample_noops()).collect::<Vec<u32>>()
        };
        assert_ne!(stream(&base, 0), stream(&base, 1), "runs must decorrelate");
        assert_ne!(stream(&base, 1), stream(&base, 2));
        // The derivation depends only on (seed, run), not on consumed state.
        let mut consumed = NoiseModel::new(0.3, 42);
        for _ in 0..100 {
            consumed.sample_noops();
        }
        assert_eq!(stream(&base, 5), stream(&consumed, 5));
        assert_eq!(base.for_run(7).probability(), 0.3);
    }
}
