//! The per-PE program model.
//!
//! Real WSE kernels are written in CSL as dataflow tasks triggered by
//! arriving wavelets and described with data structure descriptors (DSDs).
//! For the collectives in the paper every PE executes a *statically known*
//! sequence of vectorised send/receive/accumulate operations whose lengths
//! are fixed at code-generation time, so this crate models a PE program as an
//! ordered list of [`Instruction`]s. Each instruction processes at most one
//! wavelet per cycle, which matches the single ramp port of the hardware
//! (§7: "we cannot send one packet on the y-axis and another on the x-axis
//! each cycle").

use crate::wavelet::Color;

/// The associative element-wise operation applied by a Reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReduceOp {
    /// Element-wise sum (the paper's default).
    #[default]
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
    /// Element-wise product.
    Prod,
}

impl ReduceOp {
    /// Apply the operation to two `f32` operands.
    pub fn apply(&self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Prod => a * b,
        }
    }

    /// The identity element of the operation.
    pub fn identity(&self) -> f32 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f32::NEG_INFINITY,
            ReduceOp::Min => f32::INFINITY,
            ReduceOp::Prod => 1.0,
        }
    }
}

/// What a PE does with a received wavelet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecvMode {
    /// Overwrite the local element (used by Broadcast and AllGather).
    Store,
    /// Combine with the local element using the reduce operation.
    Reduce(ReduceOp),
}

/// One vectorised operation of a PE program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// Send `len` consecutive local elements starting at `offset` on `color`,
    /// one wavelet per cycle. If `last_control` is set, the final wavelet is
    /// marked as a control wavelet (advancing downstream routing rules that
    /// wait for one).
    Send {
        /// Routing color of the outgoing wavelets.
        color: Color,
        /// First local element to send.
        offset: u32,
        /// Number of elements to send.
        len: u32,
        /// Mark the last wavelet as a control wavelet.
        last_control: bool,
    },
    /// Receive `len` wavelets on `color` and store/accumulate them into the
    /// local elements starting at `offset`.
    Recv {
        /// Routing color of the expected wavelets.
        color: Color,
        /// First local element to update.
        offset: u32,
        /// Number of elements to receive.
        len: u32,
        /// Whether to overwrite or accumulate.
        mode: RecvMode,
    },
    /// The pipelined chain step: for each of `len` elements, receive a
    /// wavelet on `recv_color`, combine it with the local element, forward
    /// the combined value on `send_color` in the same cycle, and (optionally)
    /// keep the combined value locally.
    RecvForward {
        /// Color the partial sums arrive on.
        recv_color: Color,
        /// Color the combined values leave on.
        send_color: Color,
        /// First local element to combine.
        offset: u32,
        /// Number of elements in the pipeline.
        len: u32,
        /// The combining operation.
        op: ReduceOp,
        /// Whether to keep the combined value in local memory (AllReduce-style
        /// chains keep it, pure Reduce chains may discard it).
        keep: bool,
        /// Mark the last forwarded wavelet as a control wavelet.
        last_control: bool,
    },
    /// Busy-wait for a number of cycles (local computation, or the calibrated
    /// start-staggering writes of the measurement methodology in §8.3).
    Compute {
        /// Number of cycles to spend.
        cycles: u32,
    },
    /// Full-duplex exchange used by the Ring AllReduce (§6.2): send `len`
    /// local elements starting at `send_offset` while simultaneously
    /// receiving `len` wavelets into the elements starting at `recv_offset`.
    /// Sending and receiving progress independently (one wavelet each per
    /// cycle), which is what prevents a ring of PEs that all "send first"
    /// from deadlocking on finite buffering.
    Exchange {
        /// Color of the outgoing wavelets.
        send_color: Color,
        /// First local element to send.
        send_offset: u32,
        /// Color of the expected incoming wavelets.
        recv_color: Color,
        /// First local element to update.
        recv_offset: u32,
        /// Number of elements exchanged in each direction.
        len: u32,
        /// How incoming wavelets are combined with local elements.
        mode: RecvMode,
    },
}

impl Instruction {
    /// Number of wavelets this instruction injects into the fabric.
    pub fn wavelets_sent(&self) -> u64 {
        match self {
            Instruction::Send { len, .. } => *len as u64,
            Instruction::RecvForward { len, .. } => *len as u64,
            Instruction::Exchange { len, .. } => *len as u64,
            _ => 0,
        }
    }

    /// Number of wavelets this instruction consumes from the fabric.
    pub fn wavelets_received(&self) -> u64 {
        match self {
            Instruction::Recv { len, .. } => *len as u64,
            Instruction::RecvForward { len, .. } => *len as u64,
            Instruction::Exchange { len, .. } => *len as u64,
            _ => 0,
        }
    }
}

/// An ordered list of instructions executed by one PE.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PeProgram {
    instructions: Vec<Instruction>,
}

impl PeProgram {
    /// An empty program (the PE participates only through its router).
    pub fn new() -> Self {
        PeProgram::default()
    }

    /// The instructions of the program.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Append a raw instruction.
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        self.instructions.push(instruction);
        self
    }

    /// Append a [`Instruction::Send`] of `len` elements at `offset`.
    pub fn send(&mut self, color: Color, offset: u32, len: u32) -> &mut Self {
        self.push(Instruction::Send { color, offset, len, last_control: false })
    }

    /// Append a [`Instruction::Send`] whose last wavelet is a control wavelet.
    pub fn send_with_control(&mut self, color: Color, offset: u32, len: u32) -> &mut Self {
        self.push(Instruction::Send { color, offset, len, last_control: true })
    }

    /// Append a [`Instruction::Recv`] that overwrites local elements.
    pub fn recv_store(&mut self, color: Color, offset: u32, len: u32) -> &mut Self {
        self.push(Instruction::Recv { color, offset, len, mode: RecvMode::Store })
    }

    /// Append a [`Instruction::Recv`] that accumulates into local elements.
    pub fn recv_reduce(&mut self, color: Color, offset: u32, len: u32, op: ReduceOp) -> &mut Self {
        self.push(Instruction::Recv { color, offset, len, mode: RecvMode::Reduce(op) })
    }

    /// Append a pipelined [`Instruction::RecvForward`].
    #[allow(clippy::too_many_arguments)]
    pub fn recv_forward(
        &mut self,
        recv_color: Color,
        send_color: Color,
        offset: u32,
        len: u32,
        op: ReduceOp,
        keep: bool,
    ) -> &mut Self {
        self.push(Instruction::RecvForward {
            recv_color,
            send_color,
            offset,
            len,
            op,
            keep,
            last_control: false,
        })
    }

    /// Append a [`Instruction::Compute`] busy-wait.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.push(Instruction::Compute { cycles })
    }

    /// Append a full-duplex [`Instruction::Exchange`].
    pub fn exchange(
        &mut self,
        send_color: Color,
        send_offset: u32,
        recv_color: Color,
        recv_offset: u32,
        len: u32,
        mode: RecvMode,
    ) -> &mut Self {
        self.push(Instruction::Exchange {
            send_color,
            send_offset,
            recv_color,
            recv_offset,
            len,
            mode,
        })
    }

    /// Total number of wavelets the program sends.
    pub fn total_sent(&self) -> u64 {
        self.instructions.iter().map(Instruction::wavelets_sent).sum()
    }

    /// Total number of wavelets the program receives.
    pub fn total_received(&self) -> u64 {
        self.instructions.iter().map(Instruction::wavelets_received).sum()
    }

    /// The smallest local vector length required by the program's offsets.
    pub fn required_memory(&self) -> u32 {
        self.instructions
            .iter()
            .map(|i| match i {
                Instruction::Send { offset, len, .. }
                | Instruction::Recv { offset, len, .. }
                | Instruction::RecvForward { offset, len, .. } => offset + len,
                Instruction::Exchange { send_offset, recv_offset, len, .. } => {
                    (send_offset + len).max(recv_offset + len)
                }
                Instruction::Compute { .. } => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_ops_apply_and_have_identities() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Prod.apply(2.0, 3.0), 6.0);
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod] {
            for v in [-3.5f32, 0.0, 7.25] {
                assert_eq!(op.apply(op.identity(), v), v);
            }
        }
    }

    #[test]
    fn builder_appends_in_order() {
        let c0 = Color::new(0);
        let c1 = Color::new(1);
        let mut p = PeProgram::new();
        p.recv_reduce(c0, 0, 16, ReduceOp::Sum).send(c1, 0, 16).compute(5);
        assert_eq!(p.len(), 3);
        assert!(matches!(p.instructions()[0], Instruction::Recv { .. }));
        assert!(matches!(p.instructions()[1], Instruction::Send { .. }));
        assert!(matches!(p.instructions()[2], Instruction::Compute { cycles: 5 }));
    }

    #[test]
    fn wavelet_accounting() {
        let c0 = Color::new(0);
        let c1 = Color::new(1);
        let mut p = PeProgram::new();
        p.recv_forward(c0, c1, 0, 32, ReduceOp::Sum, false);
        p.send(c1, 0, 8);
        p.recv_store(c0, 8, 4);
        assert_eq!(p.total_sent(), 40);
        assert_eq!(p.total_received(), 36);
        assert_eq!(p.required_memory(), 32);
    }

    #[test]
    fn empty_program_is_empty() {
        let p = PeProgram::new();
        assert!(p.is_empty());
        assert_eq!(p.total_sent(), 0);
        assert_eq!(p.required_memory(), 0);
    }

    #[test]
    fn control_send_is_marked() {
        let mut p = PeProgram::new();
        p.send_with_control(Color::new(2), 0, 10);
        match p.instructions()[0] {
            Instruction::Send { last_control, .. } => assert!(last_control),
            _ => panic!("expected a send"),
        }
    }
}
