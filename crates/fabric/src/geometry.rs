//! Grid geometry: coordinates, directions and direction sets.

use std::fmt;

/// One of the five router ports of a PE: the four mesh neighbours plus the
/// ramp that connects the router to its own processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Towards the row above (smaller `y`).
    North,
    /// Towards the next column (larger `x`).
    East,
    /// Towards the row below (larger `y`).
    South,
    /// Towards the previous column (smaller `x`).
    West,
    /// The ramp between the router and its processor.
    Ramp,
}

impl Direction {
    /// All five directions, in a fixed arbitration order.
    pub const ALL: [Direction; 5] =
        [Direction::West, Direction::East, Direction::North, Direction::South, Direction::Ramp];

    /// The four mesh directions (everything except the ramp).
    pub const MESH: [Direction; 4] =
        [Direction::West, Direction::East, Direction::North, Direction::South];

    /// The direction a wavelet arrives from at the neighbouring router after
    /// leaving through `self`. Panics for [`Direction::Ramp`].
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::Ramp => panic!("the ramp has no opposite direction"),
        }
    }

    /// Stable small index used for array-indexed per-port state.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
            Direction::Ramp => 4,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Ramp => "RAMP",
        };
        write!(f, "{s}")
    }
}

/// A set of directions, used for the multicast forward set of a routing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DirectionSet(u8);

impl DirectionSet {
    /// The empty set.
    pub const EMPTY: DirectionSet = DirectionSet(0);

    /// A set with a single direction.
    pub fn single(d: Direction) -> Self {
        DirectionSet(1 << d.index())
    }

    /// The set with `d` added.
    #[must_use]
    pub fn with(self, d: Direction) -> Self {
        DirectionSet(self.0 | (1 << d.index()))
    }

    /// Whether `d` is in the set.
    pub fn contains(self, d: Direction) -> bool {
        self.0 & (1 << d.index()) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of directions in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over the directions in the set.
    pub fn iter(self) -> impl Iterator<Item = Direction> {
        Direction::ALL.into_iter().filter(move |d| self.contains(*d))
    }
}

impl FromIterator<Direction> for DirectionSet {
    fn from_iter<I: IntoIterator<Item = Direction>>(iter: I) -> Self {
        let mut s = DirectionSet::EMPTY;
        for d in iter {
            s = s.with(d);
        }
        s
    }
}

impl fmt::Display for DirectionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for d in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Position of a PE in the grid. `x` is the column (grows towards the east),
/// `y` is the row (grows towards the south). The PE at `(0, 0)` is the
/// north-west corner, which the paper uses as the root of 2D collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl Coord {
    /// Construct a coordinate.
    pub fn new(x: u32, y: u32) -> Self {
        Coord { x, y }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// The rectangular extent of the simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDim {
    /// Number of columns.
    pub width: u32,
    /// Number of rows.
    pub height: u32,
}

impl GridDim {
    /// A grid with the given number of columns and rows.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width >= 1 && height >= 1, "the grid must be non-empty");
        GridDim { width, height }
    }

    /// A single row of `width` PEs (the 1D setting of §4–§6).
    pub fn row(width: u32) -> Self {
        GridDim::new(width, 1)
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Whether the coordinate lies inside the grid.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Linear index of a coordinate (row-major).
    pub fn index(&self, c: Coord) -> usize {
        debug_assert!(self.contains(c), "{c} outside {}x{} grid", self.width, self.height);
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Coordinate of a linear index.
    pub fn coord(&self, index: usize) -> Coord {
        debug_assert!(index < self.num_pes());
        Coord::new((index % self.width as usize) as u32, (index / self.width as usize) as u32)
    }

    /// The neighbouring coordinate in the given mesh direction, if it exists.
    pub fn neighbor(&self, c: Coord, d: Direction) -> Option<Coord> {
        let (x, y) = (c.x as i64, c.y as i64);
        let (nx, ny) = match d {
            Direction::North => (x, y - 1),
            Direction::South => (x, y + 1),
            Direction::East => (x + 1, y),
            Direction::West => (x - 1, y),
            Direction::Ramp => return None,
        };
        if nx < 0 || ny < 0 || nx >= self.width as i64 || ny >= self.height as i64 {
            None
        } else {
            Some(Coord::new(nx as u32, ny as u32))
        }
    }

    /// Manhattan distance between two PEs (the number of hops a wavelet needs).
    pub fn manhattan(&self, a: Coord, b: Coord) -> u32 {
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// Iterate over all coordinates in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let dim = *self;
        (0..dim.num_pes()).map(move |i| dim.coord(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposites_are_involutive() {
        for d in Direction::MESH {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    #[should_panic]
    fn ramp_has_no_opposite() {
        let _ = Direction::Ramp.opposite();
    }

    #[test]
    fn direction_indices_are_unique() {
        let mut seen = [false; 5];
        for d in Direction::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
    }

    #[test]
    fn direction_set_operations() {
        let s = DirectionSet::single(Direction::West).with(Direction::Ramp);
        assert!(s.contains(Direction::West));
        assert!(s.contains(Direction::Ramp));
        assert!(!s.contains(Direction::East));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), 2);
        assert_eq!(DirectionSet::EMPTY.len(), 0);
        let t = DirectionSet::from_iter([Direction::West, Direction::Ramp]);
        assert_eq!(s, t);
    }

    #[test]
    fn grid_indexing_roundtrips() {
        let g = GridDim::new(7, 5);
        for i in 0..g.num_pes() {
            assert_eq!(g.index(g.coord(i)), i);
        }
        assert_eq!(g.num_pes(), 35);
        assert_eq!(g.index(Coord::new(3, 2)), 2 * 7 + 3);
    }

    #[test]
    fn neighbors_respect_grid_bounds() {
        let g = GridDim::new(3, 2);
        assert_eq!(g.neighbor(Coord::new(0, 0), Direction::West), None);
        assert_eq!(g.neighbor(Coord::new(0, 0), Direction::North), None);
        assert_eq!(g.neighbor(Coord::new(0, 0), Direction::East), Some(Coord::new(1, 0)));
        assert_eq!(g.neighbor(Coord::new(1, 0), Direction::South), Some(Coord::new(1, 1)));
        assert_eq!(g.neighbor(Coord::new(2, 1), Direction::East), None);
        assert_eq!(g.neighbor(Coord::new(2, 1), Direction::South), None);
        assert_eq!(g.neighbor(Coord::new(1, 1), Direction::Ramp), None);
    }

    #[test]
    fn row_grid_is_one_dimensional() {
        let g = GridDim::row(16);
        assert_eq!(g.height, 1);
        assert_eq!(g.num_pes(), 16);
        assert_eq!(g.neighbor(Coord::new(5, 0), Direction::North), None);
        assert_eq!(g.neighbor(Coord::new(5, 0), Direction::South), None);
    }

    #[test]
    fn manhattan_distance() {
        let g = GridDim::new(10, 10);
        assert_eq!(g.manhattan(Coord::new(0, 0), Coord::new(9, 9)), 18);
        assert_eq!(g.manhattan(Coord::new(3, 4), Coord::new(3, 4)), 0);
        assert_eq!(g.manhattan(Coord::new(2, 7), Coord::new(5, 1)), 9);
    }

    #[test]
    fn iteration_covers_every_pe_once() {
        let g = GridDim::new(4, 3);
        let coords: Vec<_> = g.iter().collect();
        assert_eq!(coords.len(), 12);
        assert_eq!(coords[0], Coord::new(0, 0));
        assert_eq!(coords[11], Coord::new(3, 2));
    }
}
