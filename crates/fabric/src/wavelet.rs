//! Wavelets and colors: the 32-bit routed packets of the fabric.

use std::fmt;

/// A routing color. The CS-2 offers 24 colors to applications; the routing
/// configuration of every router is maintained per color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Color(pub u8);

impl Color {
    /// Number of colors available on the modelled hardware.
    pub const MAX_COLORS: u8 = 24;

    /// Construct a color, panicking if it exceeds the hardware limit.
    pub fn new(id: u8) -> Self {
        assert!(
            id < Self::MAX_COLORS,
            "color {id} exceeds the hardware limit of {} colors",
            Self::MAX_COLORS
        );
        Color(id)
    }

    /// The raw color id.
    pub fn id(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A 32-bit wavelet travelling through the fabric.
///
/// The payload is an opaque 32-bit word; collectives store IEEE-754 `f32`
/// values (the paper's experiments use 32-bit floats throughout). The
/// `control` flag marks wavelets that advance the routing configuration of
/// the routers they traverse (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wavelet {
    /// The 32-bit payload.
    pub data: u32,
    /// The routing color.
    pub color: Color,
    /// Whether this is a control wavelet.
    pub control: bool,
}

impl Wavelet {
    /// A data wavelet carrying a raw 32-bit word.
    pub fn data(color: Color, data: u32) -> Self {
        Wavelet { data, color, control: false }
    }

    /// A data wavelet carrying an `f32` value.
    pub fn from_f32(color: Color, value: f32) -> Self {
        Wavelet { data: value.to_bits(), color, control: false }
    }

    /// Interpret the payload as an `f32`.
    pub fn as_f32(&self) -> f32 {
        f32::from_bits(self.data)
    }

    /// Mark this wavelet as a control wavelet.
    #[must_use]
    pub fn with_control(mut self, control: bool) -> Self {
        self.control = control;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_limit_matches_hardware() {
        assert_eq!(Color::MAX_COLORS, 24);
        let c = Color::new(23);
        assert_eq!(c.id(), 23);
    }

    #[test]
    #[should_panic]
    fn color_beyond_limit_panics() {
        let _ = Color::new(24);
    }

    #[test]
    fn f32_payload_roundtrips() {
        let c = Color::new(3);
        for v in [0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE, -0.0] {
            let w = Wavelet::from_f32(c, v);
            assert_eq!(w.as_f32().to_bits(), v.to_bits());
            assert!(!w.control);
        }
    }

    #[test]
    fn control_flag_is_preserved() {
        let w = Wavelet::data(Color::new(0), 42).with_control(true);
        assert!(w.control);
        assert_eq!(w.data, 42);
        let w2 = w.with_control(false);
        assert!(!w2.control);
    }
}
