//! Chunked, autovectorization-friendly `f32` reduce kernels.
//!
//! The dense-regime executor of the fast engine (`engine/dense.rs`) gathers
//! the operands of every PE performing the same [`ReduceOp`] this cycle into
//! contiguous scratch slices and combines them here in one call. Each lane is
//! exactly one binary-operator application — no reassociation, no horizontal
//! reduction — so the results are bitwise identical to applying
//! [`ReduceOp::apply`] element by element, whether or not the compiler
//! vectorizes the loop. The fixed-width inner loop over [`LANES`] elements is
//! what makes the vectorization reliable: `chunks_exact` gives LLVM a
//! constant trip count and slices it can prove disjoint.
//!
//! The `reduce_kernel` bench bin in `crates/bench` microbenchmarks these
//! kernels against a plain element-at-a-time loop so an accidental
//! de-vectorization (e.g. an added branch in the hot loop) shows up as a
//! throughput regression.

use crate::program::ReduceOp;

/// Lane count of the chunked inner loop (256-bit SIMD worth of `f32`s).
pub const LANES: usize = 8;

/// Combine `incoming` into `acc` element-wise: `acc[i] = op(acc[i], incoming[i])`.
///
/// Bitwise identical to a scalar loop over [`ReduceOp::apply`] — including
/// `Max`/`Min` NaN propagation, which follows [`f32::max`]/[`f32::min`] per
/// lane.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn reduce_into(op: ReduceOp, acc: &mut [f32], incoming: &[f32]) {
    assert_eq!(acc.len(), incoming.len(), "reduce_into needs equal-length slices");
    match op {
        ReduceOp::Sum => combine(acc, incoming, |a, b| a + b),
        ReduceOp::Max => combine(acc, incoming, |a, b| a.max(b)),
        ReduceOp::Min => combine(acc, incoming, |a, b| a.min(b)),
        ReduceOp::Prod => combine(acc, incoming, |a, b| a * b),
    }
}

#[inline(always)]
fn combine(acc: &mut [f32], incoming: &[f32], f: impl Fn(f32, f32) -> f32 + Copy) {
    let mut chunks = acc.chunks_exact_mut(LANES);
    let mut inc_chunks = incoming.chunks_exact(LANES);
    for (a, b) in (&mut chunks).zip(&mut inc_chunks) {
        for i in 0..LANES {
            a[i] = f(a[i], b[i]);
        }
    }
    for (a, b) in chunks.into_remainder().iter_mut().zip(inc_chunks.remainder()) {
        *a = f(*a, *b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod];

    #[test]
    fn matches_scalar_apply_for_every_op_and_length() {
        for op in OPS {
            // Straddle the chunk boundary on both sides.
            for len in [0usize, 1, 7, 8, 9, 16, 33] {
                let mut acc: Vec<f32> = (0..len).map(|i| i as f32 * 0.75 - 3.0).collect();
                let incoming: Vec<f32> = (0..len).map(|i| 10.0 - i as f32 * 1.25).collect();
                let expected: Vec<f32> =
                    acc.iter().zip(&incoming).map(|(&a, &b)| op.apply(a, b)).collect();
                reduce_into(op, &mut acc, &incoming);
                assert_eq!(
                    acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{op:?} len {len}"
                );
            }
        }
    }

    #[test]
    fn nan_handling_matches_scalar_max_min() {
        for op in [ReduceOp::Max, ReduceOp::Min] {
            let mut acc = vec![f32::NAN, 1.0, f32::NAN, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
            let incoming = vec![1.0, f32::NAN, f32::NAN, 2.0, 1.0, 9.0, 0.0, 6.0, 8.0];
            let expected: Vec<f32> =
                acc.iter().zip(&incoming).map(|(&a, &b)| op.apply(a, b)).collect();
            reduce_into(op, &mut acc, &incoming);
            assert_eq!(
                acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{op:?}"
            );
        }
    }
}
