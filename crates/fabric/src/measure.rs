//! The time-measurement methodology of §8.3.
//!
//! Measuring a sub-microsecond collective on a machine without a shared
//! clock requires (a) translating per-PE local clock readings onto a common
//! epoch and (b) making all PEs *start* the collective at (almost) the same
//! true time. The paper achieves this with:
//!
//! 1. a reference broadcast from PE `(0, 0)`: when it reaches PE `(i, j)`
//!    (after about `i + j + 2` cycles) the PE samples its local clock,
//!    giving the reference reading `T_R(i, j)`,
//! 2. a start-staggering loop: PE `(i, j)` performs `α·(M + N − i − j)`
//!    writes so that PEs that received the broadcast early wait longer,
//! 3. sampling the start clock `T_S`, running the collective, and sampling
//!    the end clock `T_E`,
//! 4. correcting every reading onto the broadcast epoch and reporting
//!    `max T_E' − min T_S'`.
//!
//! The wait parameter `α` is calibrated in a loop until the corrected start
//! times agree to within a small number of cycles (the paper reports < 57
//! cycles in 1D and < 129 cycles in 2D); `α` compensates for thermal no-ops
//! that make a "one-cycle" write take slightly longer on average.

use crate::clock::ClockModel;
use crate::geometry::{Coord, GridDim};

/// Local-clock readings collected by every PE during one measured run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timestamps {
    /// Reading taken when the reference broadcast arrived.
    pub reference: Vec<u64>,
    /// Reading taken right before the collective started.
    pub start: Vec<u64>,
    /// Reading taken right after the collective finished.
    pub end: Vec<u64>,
}

impl Timestamps {
    /// Build local-clock readings from true (global) cycle times using a
    /// clock model.
    pub fn from_true_times(
        clock: &ClockModel,
        reference: &[u64],
        start: &[u64],
        end: &[u64],
    ) -> Self {
        assert_eq!(reference.len(), clock.num_pes());
        assert_eq!(start.len(), clock.num_pes());
        assert_eq!(end.len(), clock.num_pes());
        let read = |values: &[u64]| {
            values.iter().enumerate().map(|(pe, &t)| clock.read(pe, t)).collect::<Vec<u64>>()
        };
        Timestamps { reference: read(reference), start: read(start), end: read(end) }
    }
}

/// The outcome of one calibrated measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// The reported collective runtime: `max T_E' − min T_S'`.
    pub duration: u64,
    /// Spread of the corrected start times: `max T_S' − min T_S'`.
    pub start_spread: u64,
}

/// The number of cycles after the broadcast start at which PE `(i, j)`
/// samples its reference clock (§8.3 uses `i + j + 2`).
pub fn reference_delay(at: Coord) -> u64 {
    at.x as u64 + at.y as u64 + 2
}

/// Number of staggering writes PE `(i, j)` performs for a wait parameter
/// `α`: `α·(M + N − i − j)`.
pub fn stagger_writes(dims: GridDim, at: Coord, alpha: f64) -> u64 {
    let slots = (dims.width as u64 + dims.height as u64).saturating_sub(at.x as u64 + at.y as u64);
    (alpha * slots as f64).round().max(0.0) as u64
}

/// Correct local readings onto the common broadcast epoch.
///
/// For each PE the reference reading was taken `i + j + 2` cycles after the
/// broadcast epoch, so `T' = T − T_R + (i + j + 2)` expresses `T` in cycles
/// since the epoch. (The paper's Eq. in §8.3 writes the correction with a
/// flipped sign on the delay term; the variant used here is the one that
/// actually cancels the per-PE clock offset.)
pub fn correct(dims: GridDim, ts: &Timestamps) -> (Vec<i64>, Vec<i64>) {
    let mut start = Vec::with_capacity(ts.start.len());
    let mut end = Vec::with_capacity(ts.end.len());
    for (idx, c) in dims.iter().enumerate() {
        let delay = reference_delay(c) as i64;
        let reference = ts.reference[idx] as i64;
        start.push(ts.start[idx] as i64 - reference + delay);
        end.push(ts.end[idx] as i64 - reference + delay);
    }
    (start, end)
}

/// Apply the correction and report the measured duration and start spread.
pub fn measure(dims: GridDim, ts: &Timestamps) -> Measurement {
    let (start, end) = correct(dims, ts);
    let min_start = start.iter().copied().min().unwrap_or(0);
    let max_start = start.iter().copied().max().unwrap_or(0);
    let max_end = end.iter().copied().max().unwrap_or(0);
    Measurement {
        duration: (max_end - min_start).max(0) as u64,
        start_spread: (max_start - min_start).max(0) as u64,
    }
}

/// One step of the `α` calibration: regress the corrected start times on the
/// number of staggering slots and return the adjusted `α`.
///
/// If a "one-cycle" write actually costs `κ` cycles on average (because of
/// thermal no-ops), the corrected start of PE `(i, j)` grows linearly with
/// `κ·α − 1` times its slot count; setting `α ← α / (slope + 1)` therefore
/// converges to `α = 1/κ`, which makes every PE start at the same time.
pub fn next_alpha(dims: GridDim, alpha: f64, corrected_start: &[i64]) -> f64 {
    let mut xs = Vec::with_capacity(corrected_start.len());
    for c in dims.iter() {
        xs.push((dims.width as u64 + dims.height as u64 - c.x as u64 - c.y as u64) as f64);
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = corrected_start.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (x, &y) in xs.iter().zip(corrected_start) {
        cov += (x - mean_x) * (y as f64 - mean_y);
        var += (x - mean_x) * (x - mean_x);
    }
    if var <= f64::EPSILON {
        return alpha;
    }
    // slope ≈ κ·α − 1 (cycles of extra start delay per staggering slot),
    // hence κ ≈ (slope + 1)/α and the calibrated wait parameter is 1/κ.
    let slope = cov / var;
    let kappa = ((slope + 1.0) / alpha).max(0.1);
    (1.0 / kappa).clamp(0.05, 16.0)
}

/// Result of the calibration loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The final wait parameter.
    pub alpha: f64,
    /// Number of calibration runs performed.
    pub iterations: usize,
    /// The measurement of the final run.
    pub measurement: Measurement,
}

/// Run the calibration loop of §8.3: starting from `α = 1`, run the
/// measured collective (via `run`, which receives the candidate `α` and
/// returns the local-clock readings), adjust `α` until the corrected start
/// spread drops below `threshold`, and return the final measurement.
pub fn calibrate<F>(dims: GridDim, threshold: u64, max_iterations: usize, mut run: F) -> Calibration
where
    F: FnMut(f64) -> Timestamps,
{
    let mut alpha = 1.0f64;
    let mut iterations = 0;
    let mut best: Option<Calibration> = None;
    loop {
        iterations += 1;
        let ts = run(alpha);
        let m = measure(dims, &ts);
        let candidate = Calibration { alpha, iterations, measurement: m };
        if best.is_none_or(|b| m.start_spread < b.measurement.start_spread) {
            best = Some(candidate);
        }
        if m.start_spread <= threshold || iterations >= max_iterations {
            return best.unwrap_or(candidate);
        }
        let (start, _) = correct(dims, &ts);
        alpha = next_alpha(dims, alpha, &start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesise the true timeline of a measured run: the reference
    /// broadcast arrives at `i + j + 2`, every staggering write costs
    /// `kappa` cycles, the collective itself takes `duration` true cycles.
    fn synthetic_timestamps(
        dims: GridDim,
        clock: &ClockModel,
        alpha: f64,
        kappa: f64,
        duration: u64,
    ) -> Timestamps {
        let mut reference = Vec::new();
        let mut start = Vec::new();
        let mut end = Vec::new();
        for c in dims.iter() {
            let arrival = reference_delay(c);
            let writes = stagger_writes(dims, c, alpha);
            let start_true = arrival + (writes as f64 * kappa).round() as u64;
            reference.push(arrival);
            start.push(start_true);
            end.push(start_true + duration);
        }
        Timestamps::from_true_times(clock, &reference, &start, &end)
    }

    #[test]
    fn correction_cancels_clock_offsets() {
        let dims = GridDim::new(8, 4);
        let skewed = ClockModel::random(dims.num_pes(), 10_000, 3);
        let sync = ClockModel::synchronized(dims.num_pes());
        let ts_skewed = synthetic_timestamps(dims, &skewed, 1.0, 1.0, 500);
        let ts_sync = synthetic_timestamps(dims, &sync, 1.0, 1.0, 500);
        assert_eq!(measure(dims, &ts_skewed), measure(dims, &ts_sync));
    }

    #[test]
    fn ideal_system_has_zero_start_spread_at_alpha_one() {
        // With κ = 1 (no thermal no-ops) and α = 1, every PE starts at
        // exactly the same corrected time (§8.3).
        let dims = GridDim::new(16, 1);
        let clock = ClockModel::random(dims.num_pes(), 999, 11);
        let ts = synthetic_timestamps(dims, &clock, 1.0, 1.0, 300);
        let m = measure(dims, &ts);
        assert_eq!(m.start_spread, 0);
        assert_eq!(m.duration, 300);
    }

    #[test]
    fn measured_duration_includes_start_skew_when_uncalibrated() {
        // With κ > 1 and α = 1 the starts drift apart and the measured
        // duration overestimates the true runtime.
        let dims = GridDim::new(16, 1);
        let clock = ClockModel::synchronized(dims.num_pes());
        let ts = synthetic_timestamps(dims, &clock, 1.0, 1.25, 300);
        let m = measure(dims, &ts);
        assert!(m.start_spread > 0);
        assert!(m.duration > 300);
    }

    #[test]
    fn calibration_recovers_true_duration_under_noops() {
        let dims = GridDim::new(16, 8);
        let clock = ClockModel::random(dims.num_pes(), 5_000, 123);
        let kappa = 1.3; // every write costs 1.3 cycles on average
        let true_duration = 777;
        let calib = calibrate(dims, 4, 10, |alpha| {
            synthetic_timestamps(dims, &clock, alpha, kappa, true_duration)
        });
        assert!(calib.measurement.start_spread <= 4, "spread {:?}", calib.measurement);
        assert!(
            (calib.measurement.duration as i64 - true_duration as i64).abs() <= 6,
            "duration {:?}",
            calib.measurement
        );
        assert!((calib.alpha - 1.0 / kappa).abs() < 0.1, "alpha {}", calib.alpha);
        assert!(calib.iterations <= 4);
    }

    #[test]
    fn stagger_writes_match_formula() {
        let dims = GridDim::new(8, 4);
        assert_eq!(stagger_writes(dims, Coord::new(0, 0), 1.0), 12);
        assert_eq!(stagger_writes(dims, Coord::new(7, 3), 1.0), 2);
        assert_eq!(stagger_writes(dims, Coord::new(3, 1), 2.0), 16);
    }

    #[test]
    fn reference_delay_matches_paper() {
        assert_eq!(reference_delay(Coord::new(0, 0)), 2);
        assert_eq!(reference_delay(Coord::new(5, 7)), 14);
    }
}
