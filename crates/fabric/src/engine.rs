//! The cycle-stepped fabric engine.
//!
//! The engine advances the whole grid one cycle at a time:
//!
//! 1. every PE executes one cycle of its program (consuming at most one
//!    wavelet from its ramp and injecting at most one),
//! 2. every router moves at most one wavelet per input port, subject to the
//!    active routing rule, output-link bandwidth (one wavelet per direction
//!    per cycle) and downstream buffer space; multicast forwards are
//!    all-or-nothing, and
//! 3. wavelets handed to a neighbouring router become visible there in the
//!    next cycle.
//!
//! This reproduces the behaviour the performance model abstracts: one-hop
//! per cycle links, per-PE pipelining limited by the single ramp port,
//! contention stalls at over-subscribed PEs, and loose synchronisation
//! through routing-configuration switches.

use std::collections::VecDeque;

use crate::clock::NoiseModel;
use crate::geometry::{Coord, Direction, GridDim};
use crate::pe::{PeError, PeState, PeStats};
use crate::program::PeProgram;
use crate::router::{ColorScript, RouteDecision, Router};
use crate::wavelet::{Color, Wavelet};

/// Capacity of each router input queue (per mesh direction and color). Two
/// entries are enough to sustain one wavelet per cycle through a full
/// pipeline while still providing backpressure.
const INBUF_CAPACITY: usize = 2;

/// The per-color input queues of one mesh port of a router.
///
/// The hardware keeps per-color state in the router; modelling the input
/// buffering per color (rather than as a single FIFO per port) is what
/// prevents head-of-line blocking between colors: a wavelet whose color is
/// currently stalled by the routing configuration must not block wavelets of
/// other colors that arrived behind it.
#[derive(Debug, Clone, Default)]
struct PortQueues {
    queues: Vec<(Color, VecDeque<(u64, Wavelet)>)>,
}

impl PortQueues {
    fn has_space(&self, color: Color) -> bool {
        self.queues.iter().find(|(c, _)| *c == color).is_none_or(|(_, q)| q.len() < INBUF_CAPACITY)
    }

    fn push(&mut self, arrival: u64, wavelet: Wavelet) {
        if let Some((_, q)) = self.queues.iter_mut().find(|(c, _)| *c == wavelet.color) {
            q.push_back((arrival, wavelet));
        } else {
            let mut q = VecDeque::with_capacity(INBUF_CAPACITY);
            q.push_back((arrival, wavelet));
            self.queues.push((wavelet.color, q));
        }
    }

    /// The colors whose head wavelet is visible this cycle (arrived in an
    /// earlier cycle), in queue order starting at `offset` for fairness.
    fn visible_heads(&self, now: u64, offset: usize) -> Vec<(Color, Wavelet)> {
        let n = self.queues.len();
        let mut out = Vec::new();
        for k in 0..n {
            let (color, q) = &self.queues[(k + offset) % n];
            if let Some(&(arrival, w)) = q.front() {
                if arrival < now {
                    debug_assert_eq!(w.color, *color);
                    out.push((*color, w));
                }
            }
        }
        out
    }

    fn pop(&mut self, color: Color) -> Wavelet {
        let (_, q) =
            self.queues.iter_mut().find(|(c, _)| *c == color).expect("pop of an unknown color");
        q.pop_front().expect("pop of an empty queue").1
    }

    fn is_empty(&self) -> bool {
        self.queues.iter().all(|(_, q)| q.is_empty())
    }

    fn clear(&mut self) {
        self.queues.clear();
    }
}

/// How many consecutive cycles without any state change (and without
/// anything in flight on a ramp) are tolerated before declaring a deadlock.
const DEADLOCK_PATIENCE: u64 = 16;

/// Hardware parameters of the simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FabricParams {
    /// Ramp latency `T_R` in cycles (2 on the WSE-2).
    pub ramp_latency: u64,
    /// Safety limit on the number of simulated cycles.
    pub max_cycles: u64,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams { ramp_latency: 2, max_cycles: 200_000_000 }
    }
}

impl FabricParams {
    /// Parameters with a custom ramp latency.
    pub fn with_ramp_latency(ramp_latency: u64) -> Self {
        FabricParams { ramp_latency, ..Default::default() }
    }
}

/// A fatal simulation error.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// A PE raised a program error (wrong color, out-of-bounds access).
    Program(PeError),
    /// A wavelet reached a router that has no routing script for its color.
    UnconfiguredColor {
        /// Linear index of the router.
        pe: usize,
        /// Color of the offending wavelet.
        color: Color,
        /// Direction it arrived from.
        from: Direction,
    },
    /// A routing rule forwards off the edge of the grid.
    ForwardOffGrid {
        /// Linear index of the router.
        pe: usize,
        /// The direction that leaves the grid.
        direction: Direction,
    },
    /// No wavelet moved and no PE made progress for many cycles while the
    /// collective had not completed.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Indices of PEs that have not finished their programs.
        stuck_pes: Vec<usize>,
    },
    /// The safety cycle limit was exceeded.
    CycleLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Program(e) => write!(f, "PE {} program error: {}", e.pe, e.message),
            FabricError::UnconfiguredColor { pe, color, from } => {
                write!(f, "router {pe} has no script for {color} (wavelet from {from})")
            }
            FabricError::ForwardOffGrid { pe, direction } => {
                write!(f, "router {pe} forwards off the grid towards {direction}")
            }
            FabricError::Deadlock { cycle, stuck_pes } => {
                write!(f, "deadlock at cycle {cycle}: {} PEs stuck", stuck_pes.len())
            }
            FabricError::CycleLimitExceeded { limit } => {
                write!(f, "cycle limit of {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Aggregate statistics of a completed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Cycle at which the last PE finished and the fabric drained.
    pub cycles: u64,
    /// Per-PE cycle at which its program finished.
    pub pe_finish: Vec<u64>,
    /// Total number of router-to-router hops (the measured energy term).
    pub energy_hops: u64,
    /// Number of distinct directed links that carried at least one wavelet.
    pub links_used: u64,
    /// The largest number of wavelets carried by any single directed link.
    pub max_link_load: u64,
    /// The largest number of wavelets any PE received (measured contention).
    pub max_received: u64,
    /// The largest number of wavelets any PE sent.
    pub max_sent: u64,
    /// Total PE cycles spent stalled.
    pub stall_cycles: u64,
    /// Total thermal no-op cycles inserted by the noise model.
    pub noop_cycles: u64,
}

impl RunReport {
    /// The finish cycle of the PE with the given linear index.
    pub fn finish_of(&self, index: usize) -> u64 {
        self.pe_finish[index]
    }

    /// The latest finish cycle over all PEs (the collective's completion
    /// time as measured by the §8.3 methodology).
    pub fn max_finish(&self) -> u64 {
        self.pe_finish.iter().copied().max().unwrap_or(0)
    }
}

/// The simulated wafer fabric: a grid of PEs, their routers and the mesh
/// links between them.
#[derive(Debug)]
pub struct Fabric {
    dim: GridDim,
    params: FabricParams,
    pes: Vec<PeState>,
    routers: Vec<Router>,
    /// Input queues per PE and mesh direction (indexed by `Direction::index`).
    inbuf: Vec<[PortQueues; 4]>,
    /// Wavelets carried per PE and outgoing mesh direction.
    link_load: Vec<[u64; 4]>,
    cycle: u64,
    energy_hops: u64,
    noise: Option<NoiseModel>,
}

impl Fabric {
    /// Create an idle fabric of the given dimensions.
    pub fn new(dim: GridDim, params: FabricParams) -> Self {
        let n = dim.num_pes();
        Fabric {
            dim,
            params,
            pes: (0..n).map(|i| PeState::new(i, params.ramp_latency)).collect(),
            routers: vec![Router::new(); n],
            inbuf: vec![Default::default(); n],
            link_load: vec![[0; 4]; n],
            cycle: 0,
            energy_hops: 0,
            noise: None,
        }
    }

    /// The grid dimensions.
    pub fn dim(&self) -> GridDim {
        self.dim
    }

    /// Return the fabric to its post-construction state while keeping every
    /// allocation (PE local memories, router script tables, input queues).
    ///
    /// This is the reuse path for execution sessions: installing a plan on a
    /// reset fabric behaves identically to installing it on a freshly
    /// constructed one, but skips re-allocating the whole mesh. Programs and
    /// routing scripts are removed, local memories zeroed, queues drained and
    /// all counters (cycle, energy, link loads, per-PE statistics) cleared;
    /// the noise model is detached so a reused fabric does not silently
    /// inherit the previous run's noise.
    pub fn reset(&mut self) {
        for pe in &mut self.pes {
            pe.reset();
        }
        for router in &mut self.routers {
            router.clear();
        }
        for bufs in &mut self.inbuf {
            for queues in bufs.iter_mut() {
                queues.clear();
            }
        }
        for loads in &mut self.link_load {
            *loads = [0; 4];
        }
        self.cycle = 0;
        self.energy_hops = 0;
        self.noise = None;
    }

    /// The hardware parameters.
    pub fn params(&self) -> FabricParams {
        self.params
    }

    /// Attach a thermal-noise model (random no-op insertion, §8.1).
    pub fn set_noise(&mut self, noise: Option<NoiseModel>) {
        self.noise = noise;
    }

    /// Install the routing script of one color on one router.
    pub fn set_router_script(&mut self, at: Coord, color: Color, script: ColorScript) {
        let idx = self.dim.index(at);
        self.routers[idx].set_script(color, script);
    }

    /// Install the program of one PE.
    pub fn set_program(&mut self, at: Coord, program: &PeProgram) {
        let idx = self.dim.index(at);
        self.pes[idx].set_program(program);
    }

    /// Set the local input vector of one PE.
    pub fn set_local(&mut self, at: Coord, data: &[f32]) {
        let idx = self.dim.index(at);
        self.pes[idx].set_local(data);
    }

    /// The local vector of a PE (result inspection after a run).
    pub fn local(&self, at: Coord) -> &[f32] {
        self.pes[self.dim.index(at)].local()
    }

    /// Per-PE statistics.
    pub fn pe_stats(&self, at: Coord) -> PeStats {
        self.pes[self.dim.index(at)].stats()
    }

    /// The cycle at which each instruction of the PE at `at` completed, in
    /// program order (used by the measurement methodology of §8.3).
    pub fn instruction_finish(&self, at: Coord) -> &[u64] {
        self.pes[self.dim.index(at)].instruction_finish()
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether every program has finished and every buffer has drained.
    pub fn finished(&self) -> bool {
        self.pes.iter().all(|pe| pe.finished() && pe.ramps_empty())
            && self.inbuf.iter().all(|bufs| bufs.iter().all(PortQueues::is_empty))
    }

    /// Advance the fabric by one cycle. Returns whether any architectural
    /// state changed.
    pub fn step(&mut self) -> Result<bool, FabricError> {
        let mut progress = false;
        let now = self.cycle;
        let t_r = self.params.ramp_latency;

        // Phase 1: processor execution.
        for i in 0..self.pes.len() {
            if let Some(noise) = &mut self.noise {
                let noops = noise.sample_noops();
                if noops > 0 {
                    self.pes[i].inject_noops(noops);
                }
            }
            match self.pes[i].step(now, t_r) {
                Ok(adv) => progress |= adv,
                Err(e) => return Err(FabricError::Program(e)),
            }
        }

        // Phase 2: routing. A wavelet handed to a neighbouring router is
        // stamped with the current cycle and only becomes visible there in
        // the next cycle, so every hop takes at least one cycle. Each input
        // port and each output port move at most one wavelet per cycle
        // (32 bits/cycle/direction); multicast forwards are all-or-nothing.
        let n = self.pes.len();
        let mut out_used = vec![[false; 5]; n];

        // An index loop over the PEs: the body reads and writes several
        // per-PE arrays (`pes`, `inbuf`, `routers`, `out_used`) including
        // entries of *other* PEs, which rules out a simple iterator.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let here = self.dim.coord(i);
            for port in Direction::ALL {
                // Candidate wavelets on this input port: the ramp head, or
                // the visible head of each per-color queue.
                let candidates: Vec<Wavelet> = if port == Direction::Ramp {
                    self.pes[i].ramp_up_head(now).into_iter().collect()
                } else {
                    self.inbuf[i][port.index()]
                        .visible_heads(now, self.cycle as usize)
                        .into_iter()
                        .map(|(_, w)| w)
                        .collect()
                };
                for w in candidates {
                    let decision = self.routers[i].decide(w.color, port);
                    let forward = match decision {
                        RouteDecision::Unconfigured => {
                            return Err(FabricError::UnconfiguredColor {
                                pe: i,
                                color: w.color,
                                from: port,
                            })
                        }
                        RouteDecision::Stall => continue,
                        RouteDecision::Accept(set) => set,
                    };

                    // Check that every forward target can take the wavelet
                    // this cycle (multicast is all-or-nothing).
                    let mut feasible = true;
                    for d in forward.iter() {
                        if out_used[i][d.index()] {
                            feasible = false;
                            break;
                        }
                        if d == Direction::Ramp {
                            if !self.pes[i].ramp_down_has_space() {
                                feasible = false;
                                break;
                            }
                        } else {
                            let Some(nc) = self.dim.neighbor(here, d) else {
                                return Err(FabricError::ForwardOffGrid { pe: i, direction: d });
                            };
                            let ni = self.dim.index(nc);
                            let slot = d.opposite().index();
                            if !self.inbuf[ni][slot].has_space(w.color) {
                                feasible = false;
                                break;
                            }
                        }
                    }
                    if !feasible {
                        continue;
                    }

                    // Commit the move.
                    let w = if port == Direction::Ramp {
                        self.pes[i].pop_ramp_up()
                    } else {
                        self.inbuf[i][port.index()].pop(w.color)
                    };
                    self.routers[i].accept(&w, port);
                    for d in forward.iter() {
                        out_used[i][d.index()] = true;
                        if d == Direction::Ramp {
                            let ok = self.pes[i].offer_ramp_down(now + t_r, w);
                            debug_assert!(ok, "ramp-down space checked above");
                        } else {
                            let ni = self.dim.index(self.dim.neighbor(here, d).unwrap());
                            let slot = d.opposite().index();
                            self.inbuf[ni][slot].push(now, w);
                            self.energy_hops += 1;
                            self.link_load[i][d.index()] += 1;
                        }
                    }
                    progress = true;
                    // At most one wavelet per input port per cycle.
                    break;
                }
            }
        }

        self.cycle += 1;
        Ok(progress)
    }

    /// Run until completion, returning the run report.
    pub fn run(&mut self) -> Result<RunReport, FabricError> {
        let mut idle_cycles = 0u64;
        while !self.finished() {
            if self.cycle >= self.params.max_cycles {
                return Err(FabricError::CycleLimitExceeded { limit: self.params.max_cycles });
            }
            let progress = self.step()?;
            if progress {
                idle_cycles = 0;
            } else {
                idle_cycles += 1;
                // Wavelets may legitimately sit in a ramp for `t_r` cycles
                // before becoming visible; beyond that, no progress means no
                // progress ever (the system is deterministic and monotone).
                if idle_cycles > self.params.ramp_latency + DEADLOCK_PATIENCE {
                    let stuck: Vec<usize> = self
                        .pes
                        .iter()
                        .enumerate()
                        .filter(|(_, pe)| !pe.finished())
                        .map(|(i, _)| i)
                        .collect();
                    return Err(FabricError::Deadlock { cycle: self.cycle, stuck_pes: stuck });
                }
            }
        }
        Ok(self.report())
    }

    /// Build the report for the current (completed) state.
    pub fn report(&self) -> RunReport {
        let pe_finish: Vec<u64> =
            self.pes.iter().map(|pe| pe.finish_cycle().unwrap_or(self.cycle)).collect();
        let mut links_used = 0u64;
        let mut max_link_load = 0u64;
        for loads in &self.link_load {
            for &l in loads {
                if l > 0 {
                    links_used += 1;
                    max_link_load = max_link_load.max(l);
                }
            }
        }
        let mut max_received = 0;
        let mut max_sent = 0;
        let mut stall_cycles = 0;
        let mut noop_cycles = 0;
        for pe in &self.pes {
            let s = pe.stats();
            max_received = max_received.max(s.received);
            max_sent = max_sent.max(s.sent);
            stall_cycles += s.stall_cycles;
            noop_cycles += s.noop_cycles;
        }
        RunReport {
            cycles: self.cycle,
            pe_finish,
            energy_hops: self.energy_hops,
            links_used,
            max_link_load,
            max_received,
            max_sent,
            stall_cycles,
            noop_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DirectionSet;
    use crate::program::{PeProgram, ReduceOp};
    use crate::router::RouteRule;

    fn c(id: u8) -> Color {
        Color::new(id)
    }

    fn west_ramp() -> DirectionSet {
        DirectionSet::single(Direction::West).with(Direction::Ramp)
    }

    /// Build a fabric where the rightmost PE of a row sends `b` elements to
    /// the leftmost PE (the Message primitive of §4.1).
    fn message_fabric(p: u32, b: u32) -> Fabric {
        let dim = GridDim::row(p);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        configure_message(&mut fabric, p, b);
        fabric
    }

    /// Install the message configuration of [`message_fabric`] on an existing
    /// (fresh or reset) fabric.
    fn configure_message(fabric: &mut Fabric, p: u32, b: u32) {
        let color = c(0);
        let data: Vec<f32> = (0..b).map(|i| i as f32 + 1.0).collect();

        // Sender: rightmost PE.
        let sender = Coord::new(p - 1, 0);
        let mut prog = PeProgram::new();
        prog.send(color, 0, b);
        fabric.set_program(sender, &prog);
        fabric.set_local(sender, &data);
        fabric.set_router_script(
            sender,
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::Ramp,
                DirectionSet::single(Direction::West),
            )]),
        );

        // Intermediate PEs forward westwards.
        for x in 1..p - 1 {
            fabric.set_router_script(
                Coord::new(x, 0),
                color,
                ColorScript::new(vec![RouteRule::forever(
                    Direction::East,
                    DirectionSet::single(Direction::West),
                )]),
            );
        }

        // Receiver: leftmost PE.
        let receiver = Coord::new(0, 0);
        let mut prog = PeProgram::new();
        prog.recv_store(color, 0, b);
        fabric.set_program(receiver, &prog);
        fabric.set_local(receiver, &vec![0.0; b as usize]);
        fabric.set_router_script(
            receiver,
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::East,
                DirectionSet::single(Direction::Ramp),
            )]),
        );
    }

    #[test]
    fn message_delivers_data_in_order() {
        let mut fabric = message_fabric(4, 8);
        let report = fabric.run().expect("run succeeds");
        let expected: Vec<f32> = (0..8).map(|i| i as f32 + 1.0).collect();
        assert_eq!(fabric.local(Coord::new(0, 0))[..8], expected[..]);
        assert_eq!(report.max_received, 8);
        assert_eq!(report.max_sent, 8);
        // Energy: 8 wavelets over 3 links.
        assert_eq!(report.energy_hops, 24);
        assert_eq!(report.links_used, 3);
        assert_eq!(report.max_link_load, 8);
    }

    #[test]
    fn message_runtime_tracks_the_model() {
        // T_Message = B + P + 2 T_R; the simulator adds a couple of cycles of
        // router pipelining, so check a tight band rather than equality.
        for (p, b) in [(4u32, 8u32), (16, 64), (64, 16), (32, 256)] {
            let mut fabric = message_fabric(p, b);
            let report = fabric.run().expect("run succeeds");
            let measured = report.finish_of(0) as f64;
            let model = (b + p) as f64 + 4.0;
            let rel = (measured - model).abs() / model;
            assert!(rel < 0.25, "p={p} b={b}: measured {measured} vs model {model} (rel {rel:.3})");
        }
    }

    #[test]
    fn broadcast_multicasts_to_every_pe() {
        // Flooding broadcast from the rightmost PE of a row (§4.2): every
        // router duplicates the stream to its processor and onwards.
        let p = 6u32;
        let b = 5u32;
        let dim = GridDim::row(p);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let color = c(3);
        let data: Vec<f32> = (0..b).map(|i| (i * i) as f32).collect();

        let root = Coord::new(p - 1, 0);
        let mut prog = PeProgram::new();
        prog.send(color, 0, b);
        fabric.set_program(root, &prog);
        fabric.set_local(root, &data);
        fabric.set_router_script(
            root,
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::Ramp,
                DirectionSet::single(Direction::West),
            )]),
        );

        for x in 0..p - 1 {
            let at = Coord::new(x, 0);
            let forward = if x == 0 { DirectionSet::single(Direction::Ramp) } else { west_ramp() };
            fabric.set_router_script(
                at,
                color,
                ColorScript::new(vec![RouteRule::forever(Direction::East, forward)]),
            );
            let mut prog = PeProgram::new();
            prog.recv_store(color, 0, b);
            fabric.set_program(at, &prog);
            fabric.set_local(at, &vec![0.0; b as usize]);
        }

        let report = fabric.run().expect("run succeeds");
        for x in 0..p - 1 {
            assert_eq!(fabric.local(Coord::new(x, 0))[..b as usize], data[..]);
        }
        // Broadcast energy matches a single message: B wavelets over P-1 links.
        assert_eq!(report.energy_hops, (b * (p - 1)) as u64);
        // Broadcast completes in about B + P + 2 T_R cycles.
        let model = (b + p) as f64 + 4.0;
        assert!((report.max_finish() as f64 - model).abs() / model < 0.35);
    }

    #[test]
    fn hand_built_chain_reduce_sums_vectors() {
        // Chain Reduce on a row of 4 PEs with alternating colors, root at x=0.
        let p = 4u32;
        let b = 6u32;
        let dim = GridDim::row(p);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let op = ReduceOp::Sum;
        let color_of = |x: u32| c((x % 2) as u8); // color a PE *sends* on

        for x in 0..p {
            let at = Coord::new(x, 0);
            let data: Vec<f32> = (0..b).map(|i| (x * 10 + i) as f32).collect();
            fabric.set_local(at, &data);
            let mut prog = PeProgram::new();
            if x == p - 1 {
                prog.send(color_of(x), 0, b);
            } else if x == 0 {
                prog.recv_reduce(color_of(x + 1), 0, b, op);
            } else {
                prog.recv_forward(color_of(x + 1), color_of(x), 0, b, op, false);
            }
            fabric.set_program(at, &prog);

            // Router: deliver the incoming color to the ramp, send own color west.
            if x < p - 1 {
                fabric.set_router_script(
                    at,
                    color_of(x + 1),
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::East,
                        DirectionSet::single(Direction::Ramp),
                    )]),
                );
            }
            if x > 0 {
                fabric.set_router_script(
                    at,
                    color_of(x),
                    ColorScript::new(vec![RouteRule::forever(
                        Direction::Ramp,
                        DirectionSet::single(Direction::West),
                    )]),
                );
            }
        }

        let report = fabric.run().expect("run succeeds");
        let expected: Vec<f32> = (0..b).map(|i| (10 + 20 + 30 + 4 * i) as f32).collect();
        assert_eq!(fabric.local(Coord::new(0, 0))[..b as usize], expected[..]);
        // T_Chain = B + (2 T_R + 2)(P - 1) = 6 + 18 = 24; allow pipeline slack.
        let model = 24.0;
        let measured = report.finish_of(0) as f64;
        assert!((measured - model).abs() / model < 0.3, "measured {measured} vs model {model}");
        assert_eq!(report.max_received, b as u64);
    }

    #[test]
    fn unconfigured_color_is_an_error() {
        let dim = GridDim::row(2);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let mut prog = PeProgram::new();
        prog.send(c(0), 0, 1);
        fabric.set_program(Coord::new(1, 0), &prog);
        fabric.set_local(Coord::new(1, 0), &[1.0]);
        let err = fabric.run().unwrap_err();
        assert!(matches!(err, FabricError::UnconfiguredColor { pe: 1, .. }));
    }

    #[test]
    fn wrong_direction_rule_deadlocks() {
        let dim = GridDim::row(2);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let color = c(0);
        let mut prog = PeProgram::new();
        prog.send(color, 0, 1);
        fabric.set_program(Coord::new(1, 0), &prog);
        fabric.set_local(Coord::new(1, 0), &[1.0]);
        // The router only accepts from the West, but the wavelet arrives on
        // the ramp: it stalls forever.
        fabric.set_router_script(
            Coord::new(1, 0),
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::West,
                DirectionSet::single(Direction::East),
            )]),
        );
        let err = fabric.run().unwrap_err();
        assert!(matches!(err, FabricError::Deadlock { .. }));
    }

    #[test]
    fn forwarding_off_the_grid_is_an_error() {
        let dim = GridDim::row(2);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let color = c(0);
        let mut prog = PeProgram::new();
        prog.send(color, 0, 1);
        fabric.set_program(Coord::new(1, 0), &prog);
        fabric.set_local(Coord::new(1, 0), &[1.0]);
        fabric.set_router_script(
            Coord::new(1, 0),
            color,
            ColorScript::new(vec![RouteRule::forever(
                Direction::Ramp,
                DirectionSet::single(Direction::East),
            )]),
        );
        let err = fabric.run().unwrap_err();
        assert!(matches!(err, FabricError::ForwardOffGrid { pe: 1, direction: Direction::East }));
    }

    #[test]
    fn counted_rules_serialise_two_senders() {
        // Two PEs send to a middle receiver on the same color; the receiver's
        // router first accepts everything from the East, then everything from
        // the West (Figure 3's loose synchronisation).
        let dim = GridDim::row(3);
        let mut fabric = Fabric::new(dim, FabricParams::default());
        let color = c(1);
        let b = 4u32;

        for (x, dir) in [(0u32, Direction::West), (2u32, Direction::East)] {
            let at = Coord::new(x, 0);
            let mut prog = PeProgram::new();
            prog.send(color, 0, b);
            fabric.set_program(at, &prog);
            fabric.set_local(at, &vec![x as f32 + 1.0; b as usize]);
            fabric.set_router_script(
                at,
                color,
                ColorScript::new(vec![RouteRule::forever(
                    Direction::Ramp,
                    DirectionSet::single(dir.opposite()),
                )]),
            );
        }

        let middle = Coord::new(1, 0);
        let mut prog = PeProgram::new();
        prog.recv_reduce(color, 0, b, ReduceOp::Sum);
        prog.recv_reduce(color, 0, b, ReduceOp::Sum);
        fabric.set_program(middle, &prog);
        fabric.set_local(middle, &vec![0.0; b as usize]);
        fabric.set_router_script(
            middle,
            color,
            ColorScript::new(vec![
                RouteRule::counted(
                    Direction::East,
                    DirectionSet::single(Direction::Ramp),
                    b as u64,
                ),
                RouteRule::counted(
                    Direction::West,
                    DirectionSet::single(Direction::Ramp),
                    b as u64,
                ),
            ]),
        );

        fabric.run().expect("run succeeds");
        assert_eq!(fabric.local(middle)[..b as usize], vec![4.0; b as usize][..]);
    }

    #[test]
    fn fabric_types_cross_thread_boundaries() {
        // Batch executors move whole fabrics (and their noise models and run
        // reports) between pool and worker threads; these bounds are part of
        // the crate's contract, so losing them (e.g. by introducing an `Rc`
        // or a raw pointer) must fail loudly here rather than in a
        // downstream crate.
        fn assert_send_sync_static<T: Send + Sync + 'static>() {}
        assert_send_sync_static::<Fabric>();
        assert_send_sync_static::<NoiseModel>();
        assert_send_sync_static::<RunReport>();
        assert_send_sync_static::<FabricParams>();
        assert_send_sync_static::<FabricError>();
    }

    #[test]
    fn reset_fabric_reruns_identically_to_a_fresh_one() {
        // A reused (reset) fabric must be indistinguishable from a fresh one:
        // same results, same report — including after a run that left router
        // cursors advanced and statistics populated.
        let mut reused = message_fabric(6, 24);
        let first = reused.run().expect("first run succeeds");

        reused.reset();
        assert_eq!(reused.cycle(), 0);
        assert!(reused.finished(), "a reset fabric has no pending work");

        configure_message(&mut reused, 6, 24);
        let again = reused.run().expect("rerun on the reset fabric succeeds");
        assert_eq!(again, first);
        let expected: Vec<f32> = (0..24).map(|i| i as f32 + 1.0).collect();
        assert_eq!(reused.local(Coord::new(0, 0))[..24], expected[..]);
    }

    #[test]
    fn reset_clears_leftover_local_memory() {
        let mut fabric = message_fabric(4, 8);
        fabric.run().expect("run succeeds");
        assert!(fabric.local(Coord::new(0, 0)).iter().any(|v| *v != 0.0));
        fabric.reset();
        for x in 0..4 {
            assert!(fabric.local(Coord::new(x, 0)).iter().all(|v| *v == 0.0));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut fabric = message_fabric(8, 32);
            fabric.run().expect("run succeeds")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn pipelining_sustains_one_wavelet_per_cycle() {
        // For a long vector over a short row the runtime must be close to B,
        // not 2B: the pipeline moves one wavelet per cycle per link.
        let b = 512u32;
        let mut fabric = message_fabric(3, b);
        let report = fabric.run().expect("run succeeds");
        assert!(
            (report.finish_of(0) as f64) < b as f64 * 1.1 + 20.0,
            "pipeline too slow: {} cycles for {} wavelets",
            report.finish_of(0),
            b
        );
    }
}
