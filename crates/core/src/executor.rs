//! Parallel batch execution of independent collective requests.
//!
//! A [`crate::session::Session`] amortises plan generation and fabric
//! construction but executes strictly serially: one mutable session, one
//! collective in flight. Serving-scale traffic is dominated by *independent*
//! requests, and the simulator parallelises trivially across them — so the
//! [`Executor`] turns the session's serving path concurrent:
//!
//! * requests resolve through a **shared, lock-guarded plan cache**
//!   ([`crate::cache::SharedPlanCache`]); plans are `Arc`ed, so a cache hit
//!   is clone-free and the lock is held only for the map lookup,
//! * execution happens on a **fabric pool**: reset [`Fabric`]s per grid
//!   shape, checked out by worker threads and returned (reset again) after
//!   each run — the mesh for a hot shape is allocated once, not per run,
//! * workers are plain scoped threads ([`std::thread::scope`]); no external
//!   runtime or channel crate is involved.
//!
//! ## Determinism
//!
//! Parallelism must not change results. A batch runs in two phases: every
//! item is first resolved and validated (in parallel), then noise-run
//! indices are assigned **only to the items that will actually execute** —
//! the `k`-th valid item of the batch gets index `base + k`, where `base` is
//! the executor's run counter (advanced by the number of valid items). The
//! thermal-noise realization each item sees is therefore a pure function of
//! its *position among executed runs*, never of thread scheduling, and a
//! rejected item consumes no run index — exactly like a
//! [`crate::session::Session`], whose statistics (and run counter) a
//! rejected call leaves untouched. A fresh executor thus produces
//! byte-identical outcomes — outputs *and* [`wse_fabric::RunReport`]s — to a
//! fresh session running the same batch in order, *including* batches
//! containing rejected items.

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use wse_fabric::geometry::GridDim;
use wse_fabric::{Fabric, FabricParams};
use wse_model::Machine;

use crate::cache::SharedPlanCache;
use crate::error::CollectiveError;
use crate::request::{CollectiveRequest, ResolvedPlan};
use crate::runner::{check_inputs, execute_on, RunOutcome};
use crate::session::SessionConfig;

/// One request of a batch: what to run and its per-data-PE input vectors.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The collective to execute.
    pub request: CollectiveRequest,
    /// One vector per data PE of the resolved plan, in plan order.
    pub inputs: Vec<Vec<f32>>,
}

impl BatchItem {
    /// Bundle a request with its inputs.
    pub fn new(request: CollectiveRequest, inputs: Vec<Vec<f32>>) -> Self {
        BatchItem { request, inputs }
    }
}

/// A batch item whose noise-run index was assigned by the caller — the
/// execution form used by the admission-controlled serving path, where
/// indices are stamped at *admission* time so cost-aware reordering cannot
/// change which thermal-noise realization an item sees.
#[derive(Debug, Clone)]
pub struct StampedItem {
    /// The request and its inputs.
    pub item: BatchItem,
    /// The noise-run index this item executes under (see
    /// [`Executor::reserve_run_index`]). Ignored for items that fail
    /// preparation — an invalid item never touches a fabric.
    pub run_index: u64,
    /// The cost model's predicted cycles stamped at admission, if the
    /// admission layer priced this item; measured against the run's actual
    /// cycles to feed [`PredictionSummary`].
    pub predicted_cycles: Option<u64>,
}

/// Configuration of an [`Executor`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Machine model, fabric parameters / noise, and plan-cache capacity —
    /// the same knobs a [`crate::session::Session`] takes, with the same
    /// meaning.
    pub session: SessionConfig,
    /// Worker threads per batch. `None` uses the host's available
    /// parallelism. A batch never spawns more workers than it has items.
    pub workers: Option<NonZeroUsize>,
    /// Upper bound on *idle* pooled fabrics kept per grid shape; fabrics
    /// checked in beyond it are dropped. Bounds pool memory when traffic
    /// shifts between shapes.
    pub max_pooled_per_shape: usize,
    /// Upper bound on the number of grid shapes holding idle fabrics. When a
    /// check-in would exceed it, the least-recently-used shapes are evicted
    /// wholesale (their idle fabrics dropped, counted in
    /// [`ExecutorStats::pool_shape_evictions`]). Bounds pool memory when
    /// traffic moves on from old shapes entirely.
    pub max_pooled_shapes: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            session: SessionConfig::default(),
            workers: None,
            max_pooled_per_shape: 64,
            max_pooled_shapes: 16,
        }
    }
}

impl ExecutorConfig {
    /// The same configuration with a different fabric engine (see
    /// [`crate::runner::RunConfig::with_engine`]).
    pub fn with_engine(mut self, engine: wse_fabric::EngineKind) -> Self {
        self.session = self.session.with_engine(engine);
        self
    }
}

/// Counters describing how much work an executor amortised. Mirrors
/// [`crate::session::SessionStats`] plus the batch count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecutorStats {
    /// Requests answered from the shared plan cache.
    pub plan_hits: u64,
    /// Requests that had to generate a plan.
    pub plan_misses: u64,
    /// Plans evicted to respect the cache capacity.
    pub plan_evictions: u64,
    /// Collective executions performed.
    pub runs: u64,
    /// Runs that reused a pooled fabric.
    pub fabric_reuses: u64,
    /// Fabrics allocated for new checkouts.
    pub fabrics_created: u64,
    /// Cold grid shapes reclaimed from the fabric pool (LRU eviction).
    pub pool_shape_evictions: u64,
    /// Batches executed.
    pub batches: u64,
    /// How well the cost model's predictions track measured runtimes, over
    /// the runs that carried a prediction stamp ([`Executor::run_stamped`]).
    pub prediction: PredictionSummary,
}

/// Predicted-vs-measured cycle accounting: how far the admission layer's
/// cost-model predictions drift from the cycles the fabric actually took.
///
/// Fed by [`Executor::run_stamped`] from each run's measured
/// [`wse_fabric::RunReport`] cycles against the prediction stamped at
/// admission. An executor that never runs stamped work (admission disabled)
/// reports zero samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PredictionSummary {
    /// Stamped runs accounted so far.
    pub samples: u64,
    /// Mean of `predicted − measured` in cycles over all samples: positive
    /// when the model over-prices work, negative when it under-prices.
    pub mean_signed_error_cycles: f64,
    /// 99th-percentile (nearest-rank) of `|predicted − measured| /
    /// measured`, over a sliding window of the most recent
    /// [`PREDICTION_WINDOW`] samples.
    pub p99_abs_relative_error: f64,
}

/// Lock-free accumulators behind [`ExecutorStats`]: workers bump these
/// concurrently, `snapshot` reads them relaxed (counters are monotone and
/// independent; a snapshot taken between two bumps is still a valid state).
#[derive(Debug, Default)]
struct AtomicStats {
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_evictions: AtomicU64,
    runs: AtomicU64,
    fabric_reuses: AtomicU64,
    fabrics_created: AtomicU64,
    pool_shape_evictions: AtomicU64,
    batches: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ExecutorStats {
        ExecutorStats {
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            plan_evictions: self.plan_evictions.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
            fabric_reuses: self.fabric_reuses.load(Ordering::Relaxed),
            fabrics_created: self.fabrics_created.load(Ordering::Relaxed),
            pool_shape_evictions: self.pool_shape_evictions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            prediction: PredictionSummary::default(),
        }
    }
}

/// Sliding-window size for the p99 relative-error percentile — the same
/// bound the serving latency histogram uses.
pub const PREDICTION_WINDOW: usize = 8192;

/// Accumulator behind [`PredictionSummary`]: a running signed-error sum for
/// the mean plus a bounded ring of recent relative errors for the
/// percentile. Mutex-guarded — stamped runs record one sample each, so the
/// critical section is two float writes, never a sort.
#[derive(Debug, Default)]
struct PredictionState {
    samples: u64,
    signed_error_sum: f64,
    rel_window: Vec<f64>,
    next: usize,
}

impl PredictionState {
    fn record(&mut self, predicted: u64, measured: u64) {
        self.samples += 1;
        self.signed_error_sum += predicted as f64 - measured as f64;
        // Relative error against the measured cycles, clamping the
        // denominator so a (theoretical) zero-cycle run cannot poison the
        // window with a NaN/inf.
        let rel = (predicted as f64 - measured as f64).abs() / (measured.max(1) as f64);
        if self.rel_window.len() < PREDICTION_WINDOW {
            self.rel_window.push(rel);
        } else {
            self.rel_window[self.next] = rel;
            self.next = (self.next + 1) % PREDICTION_WINDOW;
        }
    }

    fn summary(&self) -> PredictionSummary {
        if self.samples == 0 {
            return PredictionSummary::default();
        }
        let mut sorted = self.rel_window.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        // Nearest-rank p99, mirroring the serving latency percentiles.
        let rank = ((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len());
        PredictionSummary {
            samples: self.samples,
            mean_signed_error_cycles: self.signed_error_sum / self.samples as f64,
            p99_abs_relative_error: sorted[rank - 1],
        }
    }
}

/// The idle fabrics of one grid shape, with a recency stamp for LRU
/// reclamation.
#[derive(Debug, Default)]
struct ShapeEntry {
    fabrics: Vec<Fabric>,
    /// Value of the pool's tick counter at this shape's last checkout or
    /// check-in. Higher = more recently used.
    last_used: u64,
}

/// A pool of idle, reset fabrics keyed by grid shape.
///
/// Invariant: every fabric in the pool is in its post-[`Fabric::reset`]
/// state (no programs, scripts, noise, or counters), so a checkout is
/// immediately installable — the reset cost is paid at check-in, off the
/// critical path of the *next* request for that shape.
///
/// Memory is bounded along two axes: at most `max_per_shape` idle fabrics
/// per shape (excess check-ins are dropped), and at most `max_shapes` shapes
/// holding idle fabrics — beyond that, whole least-recently-used shapes are
/// reclaimed, so traffic that moved on from a shape does not pin its meshes
/// forever. A shape entry exists only while it holds idle fabrics.
#[derive(Debug, Default)]
struct PoolState {
    shapes: HashMap<GridDim, ShapeEntry>,
    tick: u64,
}

#[derive(Debug, Default)]
struct FabricPool {
    idle: Mutex<PoolState>,
}

impl FabricPool {
    /// Take an idle fabric of the given shape, or build one. Returns the
    /// fabric and whether it came from the pool.
    fn checkout(&self, dim: GridDim, params: FabricParams) -> (Fabric, bool) {
        let pooled = {
            let mut state = self.lock();
            state.tick += 1;
            let tick = state.tick;
            match state.shapes.get_mut(&dim) {
                Some(entry) => {
                    entry.last_used = tick;
                    let fabric = entry.fabrics.pop();
                    if entry.fabrics.is_empty() {
                        state.shapes.remove(&dim);
                    }
                    fabric
                }
                None => None,
            }
        };
        match pooled {
            Some(fabric) => (fabric, true),
            None => (Fabric::new(dim, params), false),
        }
    }

    /// Reset a fabric and return it to the pool (or drop it if the shape's
    /// idle list is already at `max_per_shape`). If pooling it pushes the
    /// number of shapes past `max_shapes`, least-recently-used shapes are
    /// reclaimed wholesale; the number of shapes evicted is returned.
    fn check_in(&self, mut fabric: Fabric, max_per_shape: usize, max_shapes: usize) -> u64 {
        if max_per_shape == 0 || max_shapes == 0 {
            return 0;
        }
        fabric.reset();
        let dim = fabric.dim();
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        let entry = state.shapes.entry(dim).or_default();
        entry.last_used = tick;
        if entry.fabrics.len() < max_per_shape {
            entry.fabrics.push(fabric);
        }
        let mut evicted = 0;
        while state.shapes.len() > max_shapes {
            // The just-used shape carries the newest stamp, so the minimum is
            // always some other (colder) shape.
            let coldest = state
                .shapes
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(dim, _)| *dim)
                .expect("len > max_shapes >= 1 implies a nonempty map");
            state.shapes.remove(&coldest);
            evicted += 1;
        }
        evicted
    }

    fn pooled(&self) -> usize {
        self.lock().shapes.values().map(|entry| entry.fabrics.len()).sum()
    }

    fn pooled_shapes(&self) -> usize {
        self.lock().shapes.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.idle.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A thread-safe batch executor: the concurrent counterpart of
/// [`crate::session::Session`].
///
/// All methods take `&self`; an `Executor` can be shared across threads
/// (e.g. behind an `Arc`) and keeps amortising across batches — the plan
/// cache and fabric pool persist for its lifetime.
///
/// ```
/// use wse_collectives::prelude::*;
///
/// let executor = Executor::new();
/// let batch: Vec<BatchItem> = (0..8)
///     .map(|i| {
///         let request = CollectiveRequest::reduce(Topology::line(8), 32);
///         let inputs = (0..8).map(|p| vec![(p + i) as f32; 32]).collect();
///         BatchItem::new(request, inputs)
///     })
///     .collect();
/// let results = executor.run_batch(&batch);
/// assert!(results.iter().all(Result::is_ok));
/// // Eight runs served by one cached plan. (`plan_misses` is not asserted
/// // here: workers racing on a previously unseen request may generate the
/// // plan more than once — see the shared-cache docs — so only the cache
/// // contents are deterministic under the default worker count.)
/// assert_eq!(executor.stats().runs, 8);
/// assert_eq!(executor.cached_plans(), 1);
/// ```
#[derive(Debug)]
pub struct Executor {
    config: ExecutorConfig,
    cache: SharedPlanCache,
    pool: FabricPool,
    stats: AtomicStats,
    prediction: Mutex<PredictionState>,
    run_counter: AtomicU64,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// An executor targeting the paper's WSE-2 machine with default
    /// settings.
    pub fn new() -> Self {
        Executor::with_config(ExecutorConfig::default())
    }

    /// An executor reusing a session's configuration (machine, fabric
    /// parameters, noise, plan-cache capacity).
    pub fn with_session_config(session: SessionConfig) -> Self {
        Executor::with_config(ExecutorConfig { session, ..ExecutorConfig::default() })
    }

    /// An executor with full configuration control.
    pub fn with_config(config: ExecutorConfig) -> Self {
        Executor {
            config,
            cache: SharedPlanCache::default(),
            pool: FabricPool::default(),
            stats: AtomicStats::default(),
            prediction: Mutex::new(PredictionState::default()),
            run_counter: AtomicU64::new(0),
        }
    }

    /// The machine model requests are resolved against.
    pub fn machine(&self) -> &Machine {
        &self.config.session.machine
    }

    /// Amortisation counters accumulated so far.
    pub fn stats(&self) -> ExecutorStats {
        let mut stats = self.stats.snapshot();
        stats.prediction = self.lock_prediction().summary();
        stats
    }

    /// Number of plans currently in the shared cache.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Number of idle fabrics currently pooled across all shapes.
    pub fn pooled_fabrics(&self) -> usize {
        self.pool.pooled()
    }

    /// Number of grid shapes currently holding idle pooled fabrics.
    pub fn pooled_shapes(&self) -> usize {
        self.pool.pooled_shapes()
    }

    /// Drop every cached plan (the fabric pool and statistics are kept).
    pub fn clear_plan_cache(&self) {
        self.cache.clear();
    }

    /// Resolve a request into an executable plan through the shared cache.
    pub fn plan(&self, request: &CollectiveRequest) -> Result<Arc<ResolvedPlan>, CollectiveError> {
        let (plan, outcome) = self.cache.resolve(
            request,
            &self.config.session.machine,
            self.config.session.plan_cache_capacity,
        )?;
        if outcome.hit {
            self.stats.plan_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.plan_misses.fetch_add(1, Ordering::Relaxed);
            self.stats.plan_evictions.fetch_add(outcome.evictions, Ordering::Relaxed);
        }
        Ok(plan)
    }

    /// Look up a request's plan in the shared cache **without generating on
    /// a miss** (and without touching LRU recency or the hit/miss counters).
    ///
    /// This is the admission controller's prediction source on the submit
    /// path: a warm plan's recorded model [`wse_model::Choice`] prices the
    /// request for free, and a cold request falls back to the pure cost
    /// model ([`CollectiveRequest::predicted_cycles`]) — plan generation is
    /// never pulled onto the submit path.
    pub fn cached_plan(&self, request: &CollectiveRequest) -> Option<Arc<ResolvedPlan>> {
        self.cache.peek(request)
    }

    /// Claim the next noise-run index. The admission-controlled serving path
    /// stamps each *valid* item as it is admitted (then executes it via
    /// [`Executor::run_stamped`]); [`Executor::run_batch`] claims indices
    /// from the same counter, so the two entry points can share an executor
    /// without replaying noise streams.
    pub fn reserve_run_index(&self) -> u64 {
        self.run_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Execute a batch whose noise-run indices (and optional cost
    /// predictions) were stamped by the caller, returning one result per
    /// item, in item order.
    ///
    /// The cost-aware scheduler reorders items between admission and
    /// execution; because each item carries its own index, reordering (or
    /// splitting a window into several batches) never changes the noise
    /// realization an item sees. Successful runs with a stamped prediction
    /// feed [`ExecutorStats::prediction`].
    pub fn run_stamped(&self, batch: &[StampedItem]) -> Vec<Result<RunOutcome, CollectiveError>> {
        let n = batch.len();
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        let workers = self.worker_count(n);
        let prepared = parallel_map(n, workers, |i| self.prepare(&batch[i].item));
        let results = parallel_map(n, workers, |i| match &prepared[i] {
            Ok(resolved) => self.execute_one(resolved, &batch[i].item.inputs, batch[i].run_index),
            Err(error) => Err(error.clone()),
        });
        for (stamped, result) in batch.iter().zip(&results) {
            if let (Some(predicted), Ok(outcome)) = (stamped.predicted_cycles, result) {
                self.lock_prediction().record(predicted, outcome.runtime_cycles());
            }
        }
        results
    }

    fn lock_prediction(&self) -> std::sync::MutexGuard<'_, PredictionState> {
        self.prediction.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Execute a batch of independent requests in parallel, returning one
    /// result per item, in item order.
    ///
    /// Items are claimed by worker threads off a shared counter, so a slow
    /// item never leaves workers idle while others wait. Failures are
    /// per-item: an invalid request occupies its slot with a typed
    /// [`CollectiveError`] and does not affect its neighbours — and it does
    /// not consume a noise-run index, so mixed-validity batches stay
    /// byte-identical to a sequential [`crate::session::Session`] (see the
    /// module docs).
    pub fn run_batch(&self, batch: &[BatchItem]) -> Vec<Result<RunOutcome, CollectiveError>> {
        let n = batch.len();
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        let workers = self.worker_count(n);
        // Phase 1: resolve plans (through the shared cache) and validate
        // inputs, so we know which items will execute before any run index
        // is handed out.
        let prepared = parallel_map(n, workers, |i| self.prepare(&batch[i]));
        // Run indices go to valid items only, in batch order: the k-th item
        // that executes gets `base + k`, matching a session whose counter a
        // rejected call leaves untouched.
        let valid = prepared.iter().filter(|r| r.is_ok()).count() as u64;
        let base = self.run_counter.fetch_add(valid, Ordering::Relaxed);
        let mut rank = 0u64;
        let run_indices: Vec<u64> = prepared
            .iter()
            .map(|r| {
                let index = base + rank;
                rank += u64::from(r.is_ok());
                index
            })
            .collect();
        // Phase 2: execute the valid items.
        parallel_map(n, workers, |i| match &prepared[i] {
            Ok(resolved) => self.execute_one(resolved, &batch[i].inputs, run_indices[i]),
            Err(error) => Err(error.clone()),
        })
    }

    /// Resolve an item's plan through the shared cache and validate its
    /// inputs against it, without executing anything.
    fn prepare(&self, item: &BatchItem) -> Result<Arc<ResolvedPlan>, CollectiveError> {
        let resolved = self.plan(&item.request)?;
        check_inputs(&resolved.plan, &item.inputs)?;
        Ok(resolved)
    }

    /// Execute an already-validated item with an explicit noise-run index.
    fn execute_one(
        &self,
        resolved: &ResolvedPlan,
        inputs: &[Vec<f32>],
        run_index: u64,
    ) -> Result<RunOutcome, CollectiveError> {
        let run = &self.config.session.run;
        let (mut fabric, reused) = self.pool.checkout(resolved.plan.dim(), run.params);
        if reused {
            self.stats.fabric_reuses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.fabrics_created.fetch_add(1, Ordering::Relaxed);
        }
        fabric.set_noise(run.noise.as_ref().map(|noise| noise.for_run(run_index)));
        self.stats.runs.fetch_add(1, Ordering::Relaxed);
        let result = execute_on(&mut fabric, &resolved.plan, inputs);
        let evicted = self.pool.check_in(
            fabric,
            self.config.max_pooled_per_shape,
            self.config.max_pooled_shapes,
        );
        if evicted > 0 {
            self.stats.pool_shape_evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        result
    }

    fn worker_count(&self, items: usize) -> usize {
        let configured = match self.config.workers {
            Some(workers) => workers.get(),
            None => std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
        };
        configured.min(items).max(1)
    }
}

/// Evaluate `f(0..n)` on a pool of scoped worker threads (or inline when a
/// single worker suffices), returning results in index order. Indices are
/// claimed off a shared counter, so a slow item never leaves workers idle.
fn parallel_map<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send + Sync,
    F: Fn(usize) -> R + Sync,
{
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let results: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let _ = results[i].set(f(i));
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index was claimed by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReducePattern;
    use crate::request::{Schedule, Topology};
    use crate::session::Session;
    use wse_fabric::program::ReduceOp;
    use wse_fabric::NoiseModel;

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| ((i * 5 + j) % 11) as f32 * 0.25 - 1.0).collect()).collect()
    }

    fn mixed_batch() -> Vec<BatchItem> {
        let mut batch = Vec::new();
        for round in 0..2 {
            batch.push(BatchItem::new(
                CollectiveRequest::reduce(Topology::line(12), 32 + round),
                inputs(12, 32 + round as usize),
            ));
            batch.push(BatchItem::new(
                CollectiveRequest::allreduce(Topology::line(8), 24),
                inputs(8, 24),
            ));
            batch.push(BatchItem::new(
                CollectiveRequest::reduce(Topology::grid(4, 3), 16)
                    .with_schedule(Schedule::Reduce2d(crate::reduce::Reduce2dPattern::Snake)),
                inputs(12, 16),
            ));
            batch.push(BatchItem::new(
                CollectiveRequest::broadcast(Topology::line(9), 12),
                inputs(1, 12),
            ));
            batch.push(BatchItem::new(
                CollectiveRequest::reduce(Topology::line(12), 32 + round)
                    .with_op(ReduceOp::Max)
                    .with_schedule(Schedule::Reduce1d(ReducePattern::Tree)),
                inputs(12, 32 + round as usize),
            ));
        }
        batch
    }

    fn assert_equivalent(
        parallel: &[Result<RunOutcome, CollectiveError>],
        sequential: &[Result<RunOutcome, CollectiveError>],
    ) {
        assert_eq!(parallel.len(), sequential.len());
        for (i, (p, s)) in parallel.iter().zip(sequential).enumerate() {
            match (p, s) {
                (Ok(p), Ok(s)) => {
                    assert_eq!(p.report, s.report, "item {i}: reports diverge");
                    assert_eq!(p.outputs, s.outputs, "item {i}: outputs diverge");
                }
                (Err(p), Err(s)) => assert_eq!(p, s, "item {i}: errors diverge"),
                _ => panic!("item {i}: one path failed, the other did not"),
            }
        }
    }

    #[test]
    fn batch_results_are_byte_identical_to_a_sequential_session() {
        let batch = mixed_batch();
        let executor = Executor::new();
        let parallel = executor.run_batch(&batch);
        let sequential = Session::new().run_batch(&batch);
        assert_equivalent(&parallel, &sequential);
    }

    #[test]
    fn noisy_batches_stay_equivalent_and_decorrelated() {
        let mut config = SessionConfig::default();
        config.run.noise = Some(NoiseModel::new(0.1, 21));
        let batch: Vec<BatchItem> = (0..6)
            .map(|_| {
                BatchItem::new(CollectiveRequest::reduce(Topology::line(8), 48), inputs(8, 48))
            })
            .collect();

        let executor = Executor::with_session_config(config.clone());
        let parallel = executor.run_batch(&batch);
        let sequential = Session::with_config(config).run_batch(&batch);
        assert_equivalent(&parallel, &sequential);

        // Same request, different batch positions: different realizations.
        let a = parallel[0].as_ref().unwrap();
        let b = parallel[1].as_ref().unwrap();
        assert_ne!(
            (a.report.noop_cycles, &a.report.pe_finish),
            (b.report.noop_cycles, &b.report.pe_finish),
            "items of one batch must not replay one noise stream"
        );
    }

    #[test]
    fn run_indices_continue_across_batches() {
        // Two batches on one executor must see the same noise sequence as
        // one session running all items back to back.
        let mut config = SessionConfig::default();
        config.run.noise = Some(NoiseModel::new(0.08, 5));
        let batch: Vec<BatchItem> = (0..4)
            .map(|_| {
                BatchItem::new(CollectiveRequest::reduce(Topology::line(6), 20), inputs(6, 20))
            })
            .collect();
        let executor = Executor::with_session_config(config.clone());
        let mut parallel = executor.run_batch(&batch);
        parallel.extend(executor.run_batch(&batch));
        let mut session = Session::with_config(config);
        let mut sequential = session.run_batch(&batch);
        sequential.extend(session.run_batch(&batch));
        assert_equivalent(&parallel, &sequential);
    }

    #[test]
    fn plans_are_shared_and_fabrics_are_pooled() {
        let executor = Executor::with_config(ExecutorConfig {
            workers: Some(NonZeroUsize::new(1).unwrap()),
            ..ExecutorConfig::default()
        });
        let batch: Vec<BatchItem> = (0..6)
            .map(|_| {
                BatchItem::new(CollectiveRequest::reduce(Topology::line(10), 16), inputs(10, 16))
            })
            .collect();
        let results = executor.run_batch(&batch);
        assert!(results.iter().all(Result::is_ok));
        let stats = executor.stats();
        assert_eq!(stats.plan_misses, 1, "one plan generation for six identical requests");
        assert_eq!(stats.plan_hits, 5);
        assert_eq!(stats.runs, 6);
        assert_eq!(stats.fabrics_created, 1, "a single worker reuses one pooled fabric");
        assert_eq!(stats.fabric_reuses, 5);
        assert_eq!(stats.batches, 1);
        assert_eq!(executor.cached_plans(), 1);
        assert_eq!(executor.pooled_fabrics(), 1);
    }

    #[test]
    fn pool_bound_caps_idle_fabrics() {
        let executor = Executor::with_config(ExecutorConfig {
            max_pooled_per_shape: 1,
            ..ExecutorConfig::default()
        });
        let batch: Vec<BatchItem> = (0..8)
            .map(|_| BatchItem::new(CollectiveRequest::reduce(Topology::line(6), 8), inputs(6, 8)))
            .collect();
        executor.run_batch(&batch);
        assert!(executor.pooled_fabrics() <= 1);
    }

    #[test]
    fn cold_shapes_are_reclaimed_lru() {
        // One worker, shape cap of 2: run shapes A, B, refresh A, then C.
        // B is the least recently used shape and must be the one evicted.
        let executor = Executor::with_config(ExecutorConfig {
            workers: Some(NonZeroUsize::new(1).unwrap()),
            max_pooled_shapes: 2,
            ..ExecutorConfig::default()
        });
        let item = |pes: u32| {
            BatchItem::new(
                CollectiveRequest::reduce(Topology::line(pes), 8),
                inputs(pes as usize, 8),
            )
        };
        executor.run_batch(&[item(4)]); // A
        executor.run_batch(&[item(5)]); // B
        executor.run_batch(&[item(4)]); // refresh A
        executor.run_batch(&[item(6)]); // C -> evicts B
        assert_eq!(executor.pooled_shapes(), 2);
        assert_eq!(executor.stats().pool_shape_evictions, 1);

        // A survived (reuse), B did not (fresh allocation).
        let created = executor.stats().fabrics_created;
        executor.run_batch(&[item(4)]);
        assert_eq!(executor.stats().fabrics_created, created, "hot shape A was kept");
        executor.run_batch(&[item(5)]);
        assert_eq!(executor.stats().fabrics_created, created + 1, "cold shape B was reclaimed");
    }

    #[test]
    fn reference_engine_batches_match_the_fast_default() {
        // EngineKind threads through ExecutorConfig; both engines must give
        // byte-identical batch results.
        let batch = mixed_batch();
        let fast = Executor::new().run_batch(&batch);
        let reference = Executor::with_config(
            ExecutorConfig::default().with_engine(wse_fabric::EngineKind::Reference),
        )
        .run_batch(&batch);
        assert_equivalent(&fast, &reference);
    }

    #[test]
    fn failures_are_per_item() {
        let executor = Executor::new();
        let good = BatchItem::new(CollectiveRequest::reduce(Topology::line(4), 8), inputs(4, 8));
        let wrong_count =
            BatchItem::new(CollectiveRequest::reduce(Topology::line(4), 8), inputs(3, 8));
        let bad_request =
            BatchItem::new(CollectiveRequest::reduce(Topology::line(4), 0), inputs(4, 8));
        let results = executor.run_batch(&[good.clone(), wrong_count, bad_request, good]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CollectiveError::InputCountMismatch { .. })));
        assert!(matches!(results[2], Err(CollectiveError::InvalidRequest { .. })));
        assert!(results[3].is_ok());
        assert_eq!(executor.stats().runs, 2, "rejected items never touch a fabric");
    }

    #[test]
    fn rejected_items_do_not_consume_noise_run_indices() {
        // Regression for the PR 4 divergence: a rejected item used to
        // advance the executor's run counter but not a session's, so noisy
        // mixed-validity batches diverged from the first rejection onwards.
        let mut config = SessionConfig::default();
        config.run.noise = Some(NoiseModel::new(0.12, 33));
        let good = BatchItem::new(CollectiveRequest::reduce(Topology::line(7), 24), inputs(7, 24));
        let wrong_count =
            BatchItem::new(CollectiveRequest::reduce(Topology::line(7), 24), inputs(5, 24));
        let bad_request =
            BatchItem::new(CollectiveRequest::reduce(Topology::line(7), 0), inputs(7, 24));
        let batch =
            vec![good.clone(), wrong_count.clone(), good.clone(), bad_request, good.clone()];

        let executor = Executor::with_session_config(config.clone());
        let parallel = executor.run_batch(&batch);
        let sequential = Session::with_config(config).run_batch(&batch);
        assert_equivalent(&parallel, &sequential);
        assert_eq!(executor.stats().runs, 3, "only the valid items execute");

        // The next batch continues the executed-run numbering (3, 4, ...).
        let follow_up = executor.run_batch(&[good.clone(), good]);
        assert!(follow_up.iter().all(Result::is_ok));
        assert_eq!(executor.stats().runs, 5);
    }

    #[test]
    fn stamped_batches_match_run_batch_under_any_execution_order() {
        // The same items executed via run_stamped — in a *different* order,
        // but with the indices run_batch would have assigned — must produce
        // the exact same per-item results: the noise stream follows the
        // stamp, not the execution position.
        let mut config = SessionConfig::default();
        config.run.noise = Some(NoiseModel::new(0.1, 9));
        let batch: Vec<BatchItem> = (0..5)
            .map(|i| {
                BatchItem::new(
                    CollectiveRequest::reduce(Topology::line(6), 16 + i),
                    inputs(6, 16 + i as usize),
                )
            })
            .collect();
        let reference = Executor::with_session_config(config.clone()).run_batch(&batch);

        let executor = Executor::with_session_config(config);
        let mut stamped: Vec<StampedItem> = batch
            .iter()
            .map(|item| StampedItem {
                item: item.clone(),
                run_index: executor.reserve_run_index(),
                predicted_cycles: None,
            })
            .collect();
        stamped.reverse();
        let mut results = executor.run_stamped(&stamped);
        results.reverse();
        assert_equivalent(&results, &reference);
    }

    #[test]
    fn stamped_predictions_feed_the_drift_summary() {
        let executor = Executor::new();
        let item = BatchItem::new(CollectiveRequest::reduce(Topology::line(8), 32), inputs(8, 32));
        let measured =
            executor.run_batch(std::slice::from_ref(&item))[0].as_ref().unwrap().runtime_cycles();

        // One exact prediction, one double: mean signed error is half the
        // measured cycles and the window p99 is the worse (100%) sample.
        let stamped = vec![
            StampedItem {
                item: item.clone(),
                run_index: executor.reserve_run_index(),
                predicted_cycles: Some(measured),
            },
            StampedItem {
                item: item.clone(),
                run_index: executor.reserve_run_index(),
                predicted_cycles: Some(2 * measured),
            },
        ];
        let results = executor.run_stamped(&stamped);
        assert!(results.iter().all(Result::is_ok));
        let summary = executor.stats().prediction;
        assert_eq!(summary.samples, 2);
        assert!((summary.mean_signed_error_cycles - measured as f64 / 2.0).abs() < 1e-9);
        assert!((summary.p99_abs_relative_error - 1.0).abs() < 1e-9);

        // Invalid stamped items contribute neither a run nor a sample.
        let invalid = StampedItem {
            item: BatchItem::new(CollectiveRequest::reduce(Topology::line(8), 0), inputs(8, 32)),
            run_index: 0,
            predicted_cycles: Some(1),
        };
        let results = executor.run_stamped(&[invalid]);
        assert!(matches!(results[0], Err(CollectiveError::InvalidRequest { .. })));
        assert_eq!(executor.stats().prediction.samples, 2);
    }

    #[test]
    fn cached_plan_peeks_without_generating() {
        let executor = Executor::new();
        let request = CollectiveRequest::reduce(Topology::line(8), 16);
        assert!(executor.cached_plan(&request).is_none());
        assert_eq!(executor.cached_plans(), 0, "a peek must not generate");
        assert_eq!(executor.stats().plan_misses, 0, "a peek is not a cache miss");
        executor.run_batch(&[BatchItem::new(request, inputs(8, 16))]);
        let peeked = executor.cached_plan(&request).expect("warm peek hits");
        assert!(peeked.choice.is_some());
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let executor = Executor::new();
        assert!(executor.run_batch(&[]).is_empty());
        assert_eq!(executor.stats().runs, 0);
        assert_eq!(executor.stats().batches, 1);
    }

    #[test]
    fn executor_is_shareable_across_threads() {
        let executor = Arc::new(Executor::new());
        let batch: Vec<BatchItem> = (0..3)
            .map(|_| {
                BatchItem::new(CollectiveRequest::reduce(Topology::line(8), 16), inputs(8, 16))
            })
            .collect();
        let reference = Session::new().run_batch(&batch);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let executor = Arc::clone(&executor);
                let batch = &batch;
                let reference = &reference;
                scope.spawn(move || {
                    // No noise configured: every batch is equivalent to the
                    // same fresh sequential session regardless of the
                    // interleaving of the three submitters.
                    assert_equivalent(&executor.run_batch(batch), reference);
                });
            }
        });
        assert_eq!(executor.stats().runs, 9);
    }
}
