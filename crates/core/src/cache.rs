//! Plan caching: the LRU map behind [`crate::session::Session`] and the
//! sharded, lock-guarded variant behind [`crate::executor::Executor`].
//!
//! Plan generation (model evaluation, Auto-Gen DP, routing-script
//! construction) is the expensive half of serving a collective request, so
//! both execution front-ends amortise it through a cache keyed by the full
//! [`CollectiveRequest`]. The single-threaded [`PlanCache`] is a plain LRU
//! map; [`SharedPlanCache`] splits the key space over [`SHARD_COUNT`]
//! independently locked shards (selected by the request's hash) so
//! concurrent service traffic on *distinct* requests does not serialize on
//! one lock. Cached plans are handed out as [`Arc<ResolvedPlan>`], so a
//! cache hit never copies plan bytes and a shard lock is held only for the
//! map lookup — plan *generation* happens outside any critical section.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use wse_model::Machine;

use crate::error::CollectiveError;
use crate::request::{CollectiveRequest, ResolvedPlan};

/// An LRU map from request to resolved plan.
///
/// Hand-rolled on `HashMap` plus a monotone use counter: capacities are
/// small (tens of plans), so eviction scans are cheap and we avoid an
/// external LRU dependency.
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    entries: HashMap<CollectiveRequest, (Arc<ResolvedPlan>, u64)>,
    tick: u64,
}

impl PlanCache {
    pub(crate) fn get(&mut self, request: &CollectiveRequest) -> Option<Arc<ResolvedPlan>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(request).map(|(plan, last_used)| {
            *last_used = tick;
            Arc::clone(plan)
        })
    }

    /// Insert a plan, evicting the least-recently-used entry if `capacity`
    /// would be exceeded. Returns the number of evictions.
    pub(crate) fn insert(
        &mut self,
        request: CollectiveRequest,
        plan: Arc<ResolvedPlan>,
        capacity: usize,
    ) -> u64 {
        self.tick += 1;
        let mut evictions = 0;
        while self.entries.len() >= capacity.max(1) && !self.entries.contains_key(&request) {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(key, _)| *key)
            else {
                break;
            };
            self.entries.remove(&oldest);
            evictions += 1;
        }
        self.entries.insert(request, (plan, self.tick));
        evictions
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }
}

/// What a [`SharedPlanCache::resolve`] call had to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ResolveOutcome {
    /// Whether the plan was answered from the cache.
    pub hit: bool,
    /// Entries evicted while inserting a freshly generated plan.
    pub evictions: u64,
}

/// Number of independently locked shards of a [`SharedPlanCache`]. A small
/// power of two: enough to spread a serving mix of a few dozen distinct
/// request shapes over distinct locks, small enough that per-shard LRU
/// capacities stay meaningful.
pub(crate) const SHARD_COUNT: usize = 8;

/// A thread-safe plan cache shared by the workers of an executor, sharded
/// by request hash.
///
/// Each shard is its own `Mutex<PlanCache>`; a request maps to a shard by
/// its hash, so concurrent resolutions of distinct requests usually touch
/// distinct locks and do not serialize. A shard's mutex guards only its LRU
/// map; the expensive [`CollectiveRequest::resolve`] call runs outside any
/// lock. Two workers racing on the same *previously unseen* request may
/// therefore both generate the plan — plan generation is deterministic, so
/// either copy is correct and the second insert simply refreshes the entry.
/// That trade keeps distinct requests fully parallel, which matters far
/// more for serving throughput than the rare duplicated generation.
///
/// The configured capacity is split evenly over the shards
/// (`ceil(capacity / SHARD_COUNT)`, at least 1 per shard), so the total
/// number of cached plans is bounded by `capacity` rounded up to shard
/// granularity.
#[derive(Debug)]
pub(crate) struct SharedPlanCache {
    shards: [Mutex<PlanCache>; SHARD_COUNT],
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        SharedPlanCache { shards: std::array::from_fn(|_| Mutex::new(PlanCache::default())) }
    }
}

impl SharedPlanCache {
    /// Resolve `request` through its shard, generating (outside any lock)
    /// on a miss.
    pub(crate) fn resolve(
        &self,
        request: &CollectiveRequest,
        machine: &Machine,
        capacity: usize,
    ) -> Result<(Arc<ResolvedPlan>, ResolveOutcome), CollectiveError> {
        let shard = self.shard_for(request);
        if let Some(cached) = self.lock(shard).get(request) {
            return Ok((cached, ResolveOutcome { hit: true, evictions: 0 }));
        }
        let resolved = Arc::new(request.resolve(machine)?);
        let per_shard = capacity.div_ceil(SHARD_COUNT).max(1);
        let evictions = self.lock(shard).insert(*request, Arc::clone(&resolved), per_shard);
        Ok((resolved, ResolveOutcome { hit: false, evictions }))
    }

    /// Look up a cached plan **without generating on a miss** (and without
    /// touching LRU recency — a peek is an observation, not a use).
    ///
    /// This is the admission controller's view of the cache: the submit path
    /// wants a warm plan's recorded model choice when one exists, but must
    /// never pay for plan generation itself.
    pub(crate) fn peek(&self, request: &CollectiveRequest) -> Option<Arc<ResolvedPlan>> {
        let shard = self.shard_for(request);
        let guard = self.lock(shard);
        guard.entries.get(request).map(|(plan, _)| Arc::clone(plan))
    }

    /// Number of plans currently cached across all shards.
    pub(crate) fn len(&self) -> usize {
        (0..SHARD_COUNT).map(|shard| self.lock(shard).len()).sum()
    }

    /// Drop every cached plan.
    pub(crate) fn clear(&self) {
        for shard in 0..SHARD_COUNT {
            self.lock(shard).clear();
        }
    }

    /// The shard a request's plan lives in.
    fn shard_for(&self, request: &CollectiveRequest) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        request.hash(&mut hasher);
        hasher.finish() as usize % SHARD_COUNT
    }

    fn lock(&self, shard: usize) -> std::sync::MutexGuard<'_, PlanCache> {
        // The cache never panics while mutating (insert/get are infallible
        // map operations), so a poisoned lock can only mean a *caller*
        // panicked elsewhere while holding it; the data is still consistent.
        self.shards[shard].lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Topology;

    fn request(p: u32) -> CollectiveRequest {
        CollectiveRequest::reduce(Topology::line(p), 8)
    }

    #[test]
    fn shared_cache_hits_return_the_same_arc() {
        let cache = SharedPlanCache::default();
        let machine = Machine::wse2();
        let (first, outcome) = cache.resolve(&request(8), &machine, 4).unwrap();
        assert!(!outcome.hit);
        let (second, outcome) = cache.resolve(&request(8), &machine, 4).unwrap();
        assert!(outcome.hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_cache_respects_capacity() {
        // The shared cache splits its capacity over SHARD_COUNT shards, so
        // the exact resident set depends on how requests hash — the bound is
        // `per-shard capacity × shards`, and every insert beyond a full
        // shard evicts.
        let cache = SharedPlanCache::default();
        let machine = Machine::wse2();
        let capacity = 3usize;
        let per_shard = capacity.div_ceil(SHARD_COUNT).max(1);
        let distinct = 3 * SHARD_COUNT as u32;
        let mut evictions = 0;
        for p in 2..2 + distinct {
            let (_, outcome) = cache.resolve(&request(p), &machine, capacity).unwrap();
            evictions += outcome.evictions;
        }
        assert!(cache.len() <= per_shard * SHARD_COUNT);
        assert_eq!(cache.len() as u64 + evictions, distinct as u64, "every insert is accounted");
        assert!(evictions > 0, "inserting far beyond capacity must evict");
        cache.clear();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn shared_cache_spreads_requests_over_shards() {
        // A serving mix of distinct shapes must not all land in one shard
        // (that would reintroduce the single global lock).
        let cache = SharedPlanCache::default();
        let shards: std::collections::HashSet<usize> =
            (2..34).map(|p| cache.shard_for(&request(p))).collect();
        assert!(shards.len() > SHARD_COUNT / 2, "32 requests hit only {} shards", shards.len());
    }

    #[test]
    fn shared_cache_serves_concurrent_resolutions() {
        let cache = SharedPlanCache::default();
        let machine = Machine::wse2();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for p in 2..10 {
                        let (plan, _) = cache.resolve(&request(p), &machine, 32).unwrap();
                        assert_eq!(plan.plan.dim().num_pes(), p as usize);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn peek_never_generates_and_never_touches_recency() {
        let cache = SharedPlanCache::default();
        let machine = Machine::wse2();
        assert!(cache.peek(&request(8)).is_none());
        assert_eq!(cache.len(), 0, "a cold peek must not generate a plan");
        let (resolved, _) = cache.resolve(&request(8), &machine, 4).unwrap();
        let peeked = cache.peek(&request(8)).expect("warm peek hits");
        assert!(Arc::ptr_eq(&resolved, &peeked));
        let tick_before = cache.lock(cache.shard_for(&request(8))).tick;
        cache.peek(&request(8));
        let tick_after = cache.lock(cache.shard_for(&request(8))).tick;
        assert_eq!(tick_before, tick_after, "peeks are not LRU uses");
    }

    #[test]
    fn reinserting_a_present_key_does_not_evict() {
        // Regression: the LRU eviction loop must not evict a victim when the
        // inserted key is already present (a racing double-generation in the
        // shared cache refreshes the entry instead of shrinking the cache).
        let mut cache = PlanCache::default();
        let machine = Machine::wse2();
        for p in [2u32, 3, 4] {
            let plan = Arc::new(request(p).resolve(&machine).unwrap());
            cache.insert(request(p), plan, 3);
        }
        let again = Arc::new(request(3).resolve(&machine).unwrap());
        let evictions = cache.insert(request(3), again, 3);
        assert_eq!(evictions, 0);
        assert_eq!(cache.len(), 3);
    }
}
