//! Plan builders for the inference collective suite: ReduceScatter,
//! AllGather, Gather, Scatter and All-to-All on a 1D line.
//!
//! All five are assembled from the shared phase builders of
//! [`crate::phases`] (plus plain counted line streams for the rooted pair)
//! and share one memory layout: vectors of `B = vector_len` elements split
//! into `p` chunks of `B / p`, with **shard `i` at local offset
//! `i * chunk`** on every PE. That uniform *shard-at-index* contract is what
//! lets the kinds chain without host-side reshuffling — a ReduceScatter's
//! outputs are valid AllGather inputs as-is, and `Scatter → compute →
//! ReduceScatter → AllGather` forms the WaferLLM-style layer pipeline of
//! `examples/mlp_layer.rs`.
//!
//! Per-kind I/O shape contracts (enforced end to end through
//! [`CollectivePlan::input_specs`]/[`CollectivePlan::output_specs`]):
//!
//! | kind          | input per PE `x`     | output per PE `x`              |
//! |---------------|----------------------|--------------------------------|
//! | ReduceScatter | `B` at offset 0      | chunk at `x * chunk`           |
//! | AllGather     | chunk at `x * chunk` | `B` at offset 0                |
//! | Gather        | chunk at `x * chunk` | root only: `B` at offset 0     |
//! | Scatter       | root only: `B` at 0  | chunk at `x * chunk`           |
//! | AllToAll      | `B` at offset 0      | `B` at offset 0                |
//!
//! # Panics
//!
//! Every builder panics when `p < 2` or `vector_len` is not divisible by
//! `p`, mirroring [`crate::allreduce::ring_allreduce_plan`]; the request
//! API rejects the same shapes with a typed
//! [`crate::error::CollectiveError::InvalidRequest`] before reaching these
//! builders.

use wse_fabric::geometry::{Coord, Direction, DirectionSet, GridDim};
use wse_fabric::program::{RecvMode, ReduceOp};
use wse_fabric::router::RouteRule;
use wse_fabric::wavelet::Color;

use crate::phases::{
    append_allgather_rounds, append_reduce_scatter_rounds, append_ring_rotation,
    append_ring_routes, chunk_index, RingColors,
};
use crate::plan::CollectivePlan;

/// Validate the line shape shared by every suite builder and return the
/// chunk size `vector_len / p`.
fn checked_chunk(kind: &str, p: u32, vector_len: u32) -> u32 {
    assert!(p >= 2, "{kind} needs at least two PEs");
    assert_eq!(
        vector_len % p,
        0,
        "{kind} requires the vector length to be divisible by the PE count"
    );
    vector_len / p
}

/// Build a ring ReduceScatter plan on a row of `p` PEs: every PE
/// contributes a full `vector_len` vector and ends up with the fully
/// reduced shard `x` (chunk `x` of the element-wise reduction) at offset
/// `x * chunk`.
///
/// The `p - 1` reduce-scatter rounds are the exact first half of the Ring
/// AllReduce (§6.2) — same ring, same accumulation order, so the shards
/// are bit-identical to the corresponding chunks of a Ring AllReduce — and
/// one extra Store rotation moves the finished chunk from PE
/// `(x - 1) mod p` onto its home PE `x`.
pub fn reduce_scatter_ring_plan(p: u32, vector_len: u32, op: ReduceOp) -> CollectivePlan {
    let chunk = checked_chunk("the ring reduce-scatter", p, vector_len);
    let colors = RingColors::default();
    let mut plan = CollectivePlan::new(
        format!("reduce-scatter-1d-Ring-p{p}-b{vector_len}"),
        GridDim::row(p),
        Coord::new(0, 0),
        vector_len,
    );
    append_ring_routes(&mut plan, p, &colors);
    append_reduce_scatter_rounds(&mut plan, p, chunk, op, &colors);
    // After the reduce-scatter rounds PE x holds the finished chunk
    // (x + 1) mod p; the first all-gather rotation (base 1, Store) delivers
    // chunk x to PE x, establishing the shard-at-index contract.
    append_ring_rotation(&mut plan, p, chunk, &colors, 1, 0, RecvMode::Store);
    for x in 0..p {
        let at = Coord::new(x, 0);
        plan.add_data_pe(at);
        plan.add_result_pe_slice(at, x * chunk, chunk);
    }
    plan
}

/// Build a ring AllGather plan on a row of `p` PEs: every PE contributes
/// its shard `x` (one chunk at offset `x * chunk`) and ends up with the
/// full concatenated vector.
///
/// This is the all-gather half of the Ring AllReduce (§6.2) anchored at
/// base 0: each PE starts by circulating its own shard.
pub fn allgather_ring_plan(p: u32, vector_len: u32) -> CollectivePlan {
    let chunk = checked_chunk("the ring all-gather", p, vector_len);
    let colors = RingColors::default();
    let mut plan = CollectivePlan::new(
        format!("allgather-1d-Ring-p{p}-b{vector_len}"),
        GridDim::row(p),
        Coord::new(0, 0),
        vector_len,
    );
    append_ring_routes(&mut plan, p, &colors);
    append_allgather_rounds(&mut plan, p, chunk, &colors, 0);
    for x in 0..p {
        let at = Coord::new(x, 0);
        plan.add_data_pe_slice(at, x * chunk, chunk);
        plan.add_result_pe(at);
    }
    plan
}

/// Build a line Gather plan on a row of `p` PEs rooted at `(0, 0)`: every
/// PE contributes its shard `x` and the root ends up with the full
/// concatenated vector.
///
/// Shards stream westwards on a single color, pipelined hop by hop: each
/// PE first injects its own shard, then forwards everything arriving from
/// the east, so the root receives shards `1..p` in index order directly
/// behind one another (`(p - 1) * chunk + P + 2 T_R` cycles, the counting
/// bound of §5 up to the chunk the root already owns).
pub fn gather_line_plan(p: u32, vector_len: u32) -> CollectivePlan {
    let chunk = checked_chunk("the line gather", p, vector_len);
    let color = Color::new(0);
    let root = Coord::new(0, 0);
    let mut plan = CollectivePlan::new(
        format!("gather-1d-Line-p{p}-b{vector_len}"),
        GridDim::row(p),
        root,
        vector_len,
    );
    // Root: consume shards 1..p into their home offsets.
    plan.push_rule(
        root,
        color,
        RouteRule::counted(
            Direction::East,
            DirectionSet::single(Direction::Ramp),
            (p as u64 - 1) * chunk as u64,
        ),
    );
    plan.program_mut(root).recv_store(color, chunk, (p - 1) * chunk);
    // Every other PE: inject the local shard first, then pass the eastern
    // shards through (westwards), which sequences arrivals by PE index.
    for m in 1..p {
        let at = Coord::new(m, 0);
        plan.push_rule(
            at,
            color,
            RouteRule::counted(
                Direction::Ramp,
                DirectionSet::single(Direction::West),
                chunk as u64,
            ),
        );
        if m < p - 1 {
            plan.push_rule(
                at,
                color,
                RouteRule::counted(
                    Direction::East,
                    DirectionSet::single(Direction::West),
                    (p - 1 - m) as u64 * chunk as u64,
                ),
            );
        }
        plan.program_mut(at).send(color, m * chunk, chunk);
    }
    for x in 0..p {
        plan.add_data_pe_slice(Coord::new(x, 0), x * chunk, chunk);
    }
    plan.add_result_pe(root);
    plan
}

/// Build a line Scatter plan on a row of `p` PEs rooted at `(0, 0)`: the
/// root contributes the full vector and every PE ends up with its shard
/// `x` at offset `x * chunk`.
///
/// The mirror image of [`gather_line_plan`]: the root streams shards
/// `1..p` eastwards in index order on one color; each PE peels off the
/// first chunk that reaches it and forwards the rest.
pub fn scatter_line_plan(p: u32, vector_len: u32) -> CollectivePlan {
    let chunk = checked_chunk("the line scatter", p, vector_len);
    let color = Color::new(0);
    let root = Coord::new(0, 0);
    let mut plan = CollectivePlan::new(
        format!("scatter-1d-Line-p{p}-b{vector_len}"),
        GridDim::row(p),
        root,
        vector_len,
    );
    plan.push_rule(
        root,
        color,
        RouteRule::counted(
            Direction::Ramp,
            DirectionSet::single(Direction::East),
            (p as u64 - 1) * chunk as u64,
        ),
    );
    plan.program_mut(root).send(color, chunk, (p - 1) * chunk);
    for m in 1..p {
        let at = Coord::new(m, 0);
        // The first chunk arriving from the west is shard m (shards
        // 1..m were peeled off upstream); everything after it passes on.
        plan.push_rule(
            at,
            color,
            RouteRule::counted(
                Direction::West,
                DirectionSet::single(Direction::Ramp),
                chunk as u64,
            ),
        );
        if m < p - 1 {
            plan.push_rule(
                at,
                color,
                RouteRule::counted(
                    Direction::West,
                    DirectionSet::single(Direction::East),
                    (p - 1 - m) as u64 * chunk as u64,
                ),
            );
        }
        plan.program_mut(at).recv_store(color, m * chunk, chunk);
    }
    plan.add_data_pe(root);
    for x in 0..p {
        plan.add_result_pe_slice(Coord::new(x, 0), x * chunk, chunk);
    }
    plan
}

/// Build a rotation All-to-All plan on a row of `p` PEs: every PE
/// contributes a full vector whose chunk `d` is destined to PE `d`, and
/// ends up with the full vector whose chunk `s` came from PE `s`.
///
/// Store-and-forward rotation on the ring routes of
/// [`append_ring_routes`]: in each of `p - 1` phases every chunk still in
/// flight moves one hop towards its destination. Phase `k` exchanges
/// `p - k` chunks per PE, ordered by descending remaining distance, so the
/// *last* chunk received in a phase is always the one that just arrived
/// (from source `(x - k) mod p`, stored straight into its home offset)
/// while the rest land in one of two alternating transit buffers above the
/// vector region. Total traffic is `p (p - 1) / 2` chunks per link — the
/// ring pays roughly twice the bisection bound in exchange for using only
/// nearest-neighbour links and three colors.
///
/// `p = 2` degenerates to an in-place pairwise exchange, built from
/// element-wise sends/receives with a lookahead window instead (a
/// full-duplex [`wse_fabric::program::Instruction::Exchange`] with equal
/// send and receive offsets could overwrite elements that have not been
/// sent yet when thermal noise stalls one side's sends while its receives
/// keep draining).
pub fn all_to_all_rotate_plan(p: u32, vector_len: u32) -> CollectivePlan {
    let chunk = checked_chunk("the rotation all-to-all", p, vector_len);
    if p == 2 {
        return all_to_all_pair_plan(vector_len);
    }
    let colors = RingColors::default();
    let mut plan = CollectivePlan::new(
        format!("all-to-all-1d-Rotate-p{p}-b{vector_len}"),
        GridDim::row(p),
        Coord::new(0, 0),
        vector_len,
    );
    append_ring_routes(&mut plan, p, &colors);
    let transit = |buf: u32, slot: u32| vector_len + buf * (p - 2) * chunk + slot * chunk;
    for x in 0..p {
        let at = Coord::new(x, 0);
        let sc = colors.send_color(x, p);
        let rc = colors.recv_color(x, p);
        let my = x as i64;
        let program = plan.program_mut(at);
        // Phase 1: the p - 1 outgoing chunks leave the input region in
        // descending remaining distance, i.e. destinations x-1, x-2, ..,
        // x+1 (mod p). The last chunk received is the predecessor's
        // shortest-distance chunk — destined here, stored at its source's
        // home offset; the first p - 2 go to transit buffer 0 in order.
        for j in 0..p - 1 {
            let send_off = chunk_index(my - 1 - j as i64, p) * chunk;
            let recv_off = if j < p - 2 { transit(0, j) } else { chunk_index(my - 1, p) * chunk };
            program.exchange(sc, send_off, rc, recv_off, chunk, RecvMode::Store);
        }
        // Phases 2..p-1: forward the previous phase's transit chunks (their
        // arrival order already is descending remaining distance); again
        // the last received chunk has arrived — its source is (x - k) mod p
        // — and the rest fill the other transit buffer. Reading one buffer
        // while receiving into the other keeps every exchange's send and
        // receive regions disjoint.
        for k in 2..p {
            let prev = k % 2;
            let cur = 1 - prev;
            for j in 0..p - k {
                let send_off = transit(prev, j);
                let recv_off = if j < p - k - 1 {
                    transit(cur, j)
                } else {
                    chunk_index(my - k as i64, p) * chunk
                };
                program.exchange(sc, send_off, rc, recv_off, chunk, RecvMode::Store);
            }
        }
        plan.add_data_pe(at);
        plan.add_result_pe(at);
    }
    plan
}

/// The `p = 2` All-to-All: the two PEs swap their peer-destined chunks in
/// place, element by element with a lookahead window of two. Element `i` of
/// the outgoing chunk is overwritten by the incoming one only after
/// elements `i` and `i + 1` have been sent (program order), so no data can
/// be clobbered before it leaves; and since at most two wavelets per
/// direction are outstanding at any time — well under the ramp capacity —
/// the pair cannot deadlock.
fn all_to_all_pair_plan(vector_len: u32) -> CollectivePlan {
    let chunk = vector_len / 2;
    let east = Color::new(0);
    let west = Color::new(1);
    let mut plan = CollectivePlan::new(
        format!("all-to-all-1d-Rotate-p2-b{vector_len}"),
        GridDim::row(2),
        Coord::new(0, 0),
        vector_len,
    );
    let pe0 = Coord::new(0, 0);
    let pe1 = Coord::new(1, 0);
    plan.push_rule(
        pe0,
        east,
        RouteRule::forever(Direction::Ramp, DirectionSet::single(Direction::East)),
    );
    plan.push_rule(
        pe1,
        east,
        RouteRule::forever(Direction::West, DirectionSet::single(Direction::Ramp)),
    );
    plan.push_rule(
        pe1,
        west,
        RouteRule::forever(Direction::Ramp, DirectionSet::single(Direction::West)),
    );
    plan.push_rule(
        pe0,
        west,
        RouteRule::forever(Direction::East, DirectionSet::single(Direction::Ramp)),
    );
    for x in 0..2u32 {
        let at = Coord::new(x, 0);
        let (sc, rc) = if x == 0 { (east, west) } else { (west, east) };
        let off = (1 - x) * chunk;
        let program = plan.program_mut(at);
        if chunk == 1 {
            program.send(sc, off, 1);
            program.recv_store(rc, off, 1);
        } else {
            program.send(sc, off, 1);
            program.send(sc, off + 1, 1);
            for i in 0..chunk - 2 {
                program.recv_store(rc, off + i, 1);
                program.send(sc, off + i + 2, 1);
            }
            program.recv_store(rc, off + chunk - 2, 1);
            program.recv_store(rc, off + chunk - 1, 1);
        }
        plan.add_data_pe(at);
        plan.add_result_pe(at);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::ring_allreduce_plan;
    use crate::runner::{run_plan, RunConfig};
    use wse_fabric::{EngineKind, NoiseModel};

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| ((i * b + j) % 23) as f32 * 0.25 - 1.5).collect()).collect()
    }

    /// The reference All-to-All: output of PE x holds, at offset s*chunk,
    /// the chunk of PE s's input destined to x.
    fn expected_all_to_all(data: &[Vec<f32>], chunk: usize) -> Vec<Vec<f32>> {
        let p = data.len();
        (0..p)
            .map(|x| {
                (0..p).flat_map(|s| data[s][x * chunk..(x + 1) * chunk].iter().copied()).collect()
            })
            .collect()
    }

    #[test]
    fn reduce_scatter_emits_bit_identical_allreduce_shards() {
        for (p, b) in [(2u32, 8u32), (4, 16), (5, 20), (8, 32)] {
            let chunk = (b / p) as usize;
            let data = inputs(p as usize, b as usize);
            let rs = run_plan(
                &reduce_scatter_ring_plan(p, b, ReduceOp::Sum),
                &data,
                &RunConfig::default(),
            )
            .unwrap_or_else(|e| panic!("reduce-scatter p={p} b={b}: {e}"));
            let ar =
                run_plan(&ring_allreduce_plan(p, b, ReduceOp::Sum), &data, &RunConfig::default())
                    .unwrap();
            assert_eq!(rs.outputs.len(), p as usize);
            for (x, (at, shard)) in rs.outputs.iter().enumerate() {
                assert_eq!(*at, Coord::new(x as u32, 0));
                assert_eq!(shard.len(), chunk);
                // Same ring, same accumulation order: the shard must be
                // bit-identical to the AllReduce's chunk x, not merely close.
                let full = &ar.outputs[x].1;
                assert_eq!(
                    shard.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    full[x * chunk..(x + 1) * chunk]
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    "p={p} b={b} shard {x}"
                );
            }
        }
    }

    #[test]
    fn allgather_concatenates_shards_everywhere() {
        for (p, b) in [(2u32, 6u32), (3, 12), (6, 24)] {
            let chunk = (b / p) as usize;
            let full = inputs(1, b as usize).remove(0);
            let shards: Vec<Vec<f32>> =
                (0..p as usize).map(|x| full[x * chunk..(x + 1) * chunk].to_vec()).collect();
            let outcome = run_plan(&allgather_ring_plan(p, b), &shards, &RunConfig::default())
                .unwrap_or_else(|e| panic!("allgather p={p} b={b}: {e}"));
            assert_eq!(outcome.outputs.len(), p as usize);
            for (_, out) in &outcome.outputs {
                assert_eq!(out, &full);
            }
        }
    }

    #[test]
    fn gather_collects_shards_at_the_root_in_index_order() {
        for (p, b) in [(2u32, 4u32), (4, 16), (7, 21)] {
            let chunk = (b / p) as usize;
            let full = inputs(1, b as usize).remove(0);
            let shards: Vec<Vec<f32>> =
                (0..p as usize).map(|x| full[x * chunk..(x + 1) * chunk].to_vec()).collect();
            let outcome = run_plan(&gather_line_plan(p, b), &shards, &RunConfig::default())
                .unwrap_or_else(|e| panic!("gather p={p} b={b}: {e}"));
            assert_eq!(outcome.outputs.len(), 1);
            assert_eq!(outcome.outputs[0].0, Coord::new(0, 0));
            assert_eq!(outcome.outputs[0].1, full);
        }
    }

    #[test]
    fn scatter_distributes_shards_and_inverts_gather() {
        for (p, b) in [(2u32, 4u32), (4, 16), (7, 21)] {
            let chunk = (b / p) as usize;
            let full = inputs(1, b as usize).remove(0);
            let outcome = run_plan(
                &scatter_line_plan(p, b),
                std::slice::from_ref(&full),
                &RunConfig::default(),
            )
            .unwrap_or_else(|e| panic!("scatter p={p} b={b}: {e}"));
            assert_eq!(outcome.outputs.len(), p as usize);
            for (x, (at, shard)) in outcome.outputs.iter().enumerate() {
                assert_eq!(*at, Coord::new(x as u32, 0));
                assert_eq!(shard, &full[x * chunk..(x + 1) * chunk]);
            }
            // Scatter's outputs are valid Gather inputs as-is (the shared
            // shard-at-index contract); the roundtrip recovers the vector.
            let shards: Vec<Vec<f32>> =
                outcome.outputs.into_iter().map(|(_, shard)| shard).collect();
            let back = run_plan(&gather_line_plan(p, b), &shards, &RunConfig::default()).unwrap();
            assert_eq!(back.outputs[0].1, full);
        }
    }

    #[test]
    fn all_to_all_transposes_chunks() {
        for (p, b) in [(2u32, 8u32), (3, 9), (4, 16), (5, 40), (8, 32)] {
            let chunk = (b / p) as usize;
            let data = inputs(p as usize, b as usize);
            let expected = expected_all_to_all(&data, chunk);
            let outcome = run_plan(&all_to_all_rotate_plan(p, b), &data, &RunConfig::default())
                .unwrap_or_else(|e| panic!("all-to-all p={p} b={b}: {e}"));
            assert_eq!(outcome.outputs.len(), p as usize);
            for (x, (at, out)) in outcome.outputs.iter().enumerate() {
                assert_eq!(*at, Coord::new(x as u32, 0));
                assert_eq!(out, &expected[x], "p={p} b={b} PE {x}");
            }
        }
    }

    #[test]
    fn all_to_all_survives_thermal_noise_on_both_engines() {
        // The pairwise (p = 2) exchange overwrites its outgoing chunk in
        // place; noise-staggered stalls must never let a receive clobber an
        // unsent element, on either engine.
        for p in [2u32, 4] {
            let b = 8 * p;
            let chunk = (b / p) as usize;
            let data = inputs(p as usize, b as usize);
            let expected = expected_all_to_all(&data, chunk);
            for engine in [EngineKind::Fast, EngineKind::Reference] {
                for seed in 0..4u64 {
                    let mut config = RunConfig::default().with_engine(engine);
                    config.noise = Some(NoiseModel::new(0.05, seed));
                    let outcome = run_plan(&all_to_all_rotate_plan(p, b), &data, &config)
                        .unwrap_or_else(|e| panic!("p={p} seed={seed}: {e}"));
                    for (x, (_, out)) in outcome.outputs.iter().enumerate() {
                        assert_eq!(out, &expected[x], "p={p} seed={seed} PE {x}");
                    }
                }
            }
        }
    }

    #[test]
    fn suite_shape_contracts_are_declared() {
        let (p, b) = (4u32, 16u32);
        let chunk = b / p;
        let rs = reduce_scatter_ring_plan(p, b, ReduceOp::Sum);
        assert!(rs.input_specs().iter().all(|&s| s == (0, b)));
        assert_eq!(
            rs.output_specs(),
            (0..p).map(|x| (x * chunk, chunk)).collect::<Vec<_>>().as_slice()
        );
        let ag = allgather_ring_plan(p, b);
        assert_eq!(
            ag.input_specs(),
            (0..p).map(|x| (x * chunk, chunk)).collect::<Vec<_>>().as_slice()
        );
        assert!(ag.output_specs().iter().all(|&s| s == (0, b)));
        let gather = gather_line_plan(p, b);
        assert_eq!(gather.result_pes(), &[Coord::new(0, 0)]);
        assert_eq!(gather.output_specs(), &[(0, b)]);
        let scatter = scatter_line_plan(p, b);
        assert_eq!(scatter.data_pes(), &[Coord::new(0, 0)]);
        assert_eq!(scatter.input_specs(), &[(0, b)]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn suite_rejects_indivisible_vectors() {
        let _ = all_to_all_rotate_plan(3, 10);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn suite_rejects_single_pe_lines() {
        let _ = reduce_scatter_ring_plan(1, 8, ReduceOp::Sum);
    }
}
