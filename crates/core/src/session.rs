//! Reusable execution sessions with an LRU plan cache.
//!
//! Serving heavy repeated collective traffic has two per-request costs the
//! one-shot free functions pay every time: *plan generation* (model
//! evaluation, Auto-Gen DP, routing-script construction) and *fabric
//! construction* (allocating the whole simulated mesh). A [`Session`]
//! amortises both — the production pattern of build once, select by model,
//! execute many times:
//!
//! * plans are resolved through an LRU cache keyed by the full
//!   [`CollectiveRequest`] (kind, topology, vector length, op, schedule,
//!   root); the session's machine parameters are fixed at construction, so
//!   they are implicitly part of every key and a repeated request reuses
//!   the exact plan bytes it generated the first time, and
//! * execution reuses one resettable [`Fabric`] per grid shape
//!   ([`Fabric::reset`]) instead of reallocating the mesh per run.
//!
//! [`SessionStats`] exposes hit/miss and reuse counters so callers (and the
//! integration tests) can verify the amortisation actually happens.

use std::collections::HashMap;
use std::sync::Arc;

use wse_fabric::geometry::GridDim;
use wse_fabric::Fabric;
use wse_model::Machine;

use crate::cache::PlanCache;
use crate::error::CollectiveError;
use crate::request::{CollectiveRequest, ResolvedPlan};
use crate::runner::{check_inputs, execute_on, RunConfig, RunOutcome};

/// Configuration of a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The machine model used for `Schedule::Auto` selection and Auto-Gen
    /// tree generation. Fixed for the session's lifetime — the plan cache is
    /// keyed by request only, which is sound precisely because the machine
    /// cannot change under it; if a mutable machine is ever introduced, the
    /// machine must join the cache key.
    pub machine: Machine,
    /// Fabric parameters and optional noise applied to every run.
    pub run: RunConfig,
    /// Maximum number of resolved plans kept in the cache.
    pub plan_cache_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            machine: Machine::wse2(),
            run: RunConfig::default(),
            plan_cache_capacity: 64,
        }
    }
}

impl SessionConfig {
    /// The same configuration with a different fabric engine (see
    /// [`RunConfig::with_engine`]).
    pub fn with_engine(mut self, engine: wse_fabric::EngineKind) -> Self {
        self.run = self.run.with_engine(engine);
        self
    }
}

/// Counters describing how much work a session amortised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests answered from the plan cache.
    pub plan_hits: u64,
    /// Requests that had to generate a plan.
    pub plan_misses: u64,
    /// Plans evicted to respect the cache capacity.
    pub plan_evictions: u64,
    /// Collective executions performed.
    pub runs: u64,
    /// Runs that reused (reset) an existing fabric.
    pub fabric_reuses: u64,
    /// Fabrics allocated for new grid shapes.
    pub fabrics_created: u64,
}

/// A reusable executor for collective requests.
///
/// ```
/// use wse_collectives::prelude::*;
///
/// let mut session = Session::new();
/// let request = CollectiveRequest::reduce(Topology::line(8), 32)
///     .with_schedule(Schedule::Reduce1d(ReducePattern::Chain));
/// let inputs: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32; 32]).collect();
///
/// // First run generates the plan; subsequent runs hit the cache and reuse
/// // the session's fabric.
/// for _ in 0..3 {
///     let outcome = session.run(&request, &inputs).unwrap();
///     assert_outputs_close(&outcome, &expected_reduce(&inputs, ReduceOp::Sum), 1e-4);
/// }
/// assert_eq!(session.stats().plan_misses, 1);
/// assert_eq!(session.stats().plan_hits, 2);
/// ```
#[derive(Debug)]
pub struct Session {
    config: SessionConfig,
    cache: PlanCache,
    fabrics: HashMap<GridDim, Fabric>,
    stats: SessionStats,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A session targeting the paper's WSE-2 machine with default settings.
    pub fn new() -> Self {
        Session::with_config(SessionConfig::default())
    }

    /// A session targeting a specific machine model.
    pub fn with_machine(machine: Machine) -> Self {
        Session::with_config(SessionConfig { machine, ..SessionConfig::default() })
    }

    /// A session with full configuration control.
    pub fn with_config(config: SessionConfig) -> Self {
        Session {
            config,
            cache: PlanCache::default(),
            fabrics: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// The machine model requests are resolved against.
    pub fn machine(&self) -> &Machine {
        &self.config.machine
    }

    /// Amortisation counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Drop every cached plan (the fabrics and statistics are kept).
    pub fn clear_plan_cache(&mut self) {
        self.cache.clear();
    }

    /// Resolve a request into an executable plan through the plan cache.
    ///
    /// The first resolution of a distinct request generates the plan
    /// (`plan_misses`); later resolutions return the cached plan unchanged
    /// (`plan_hits`). The returned [`Arc`] stays valid even if the entry is
    /// later evicted.
    pub fn plan(
        &mut self,
        request: &CollectiveRequest,
    ) -> Result<Arc<ResolvedPlan>, CollectiveError> {
        if let Some(cached) = self.cache.get(request) {
            self.stats.plan_hits += 1;
            return Ok(cached);
        }
        let resolved = Arc::new(request.resolve(&self.config.machine)?);
        self.stats.plan_misses += 1;
        self.stats.plan_evictions +=
            self.cache.insert(*request, Arc::clone(&resolved), self.config.plan_cache_capacity);
        Ok(resolved)
    }

    /// Resolve (through the cache) and execute a request.
    ///
    /// `inputs` provides one vector per data PE of the resolved plan, in
    /// plan order — for Reduce/AllReduce that is every PE of the topology in
    /// row-major order, for Broadcast just the root. Execution reuses the
    /// session's fabric for the request's grid shape, resetting it in place
    /// instead of allocating a fresh mesh.
    pub fn run(
        &mut self,
        request: &CollectiveRequest,
        inputs: &[Vec<f32>],
    ) -> Result<RunOutcome, CollectiveError> {
        let resolved = self.plan(request)?;
        self.run_resolved(&resolved, inputs)
    }

    /// Execute an already-resolved plan on the session's fabrics.
    ///
    /// When the session's [`RunConfig`] carries a noise model, every run
    /// draws a *fresh* thermal-noise realization: the model attached to the
    /// fabric is derived from the configured base seed and the session's run
    /// counter ([`wse_fabric::NoiseModel::for_run`]). Two noisy runs of the
    /// same request therefore differ (as on the real machine), while two
    /// sessions with the same configuration still reproduce each other
    /// exactly, run for run.
    pub fn run_resolved(
        &mut self,
        resolved: &ResolvedPlan,
        inputs: &[Vec<f32>],
    ) -> Result<RunOutcome, CollectiveError> {
        // Validate before counting anything or touching a fabric: a rejected
        // call must leave the amortisation statistics untouched.
        check_inputs(&resolved.plan, inputs)?;
        let dim = resolved.plan.dim();
        let Session { config, fabrics, stats, .. } = self;
        let fabric = match fabrics.entry(dim) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                stats.fabric_reuses += 1;
                let fabric = entry.into_mut();
                fabric.reset();
                fabric
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                stats.fabrics_created += 1;
                entry.insert(Fabric::new(dim, config.run.params))
            }
        };
        fabric.set_noise(config.run.noise.as_ref().map(|noise| noise.for_run(stats.runs)));
        stats.runs += 1;
        execute_on(fabric, &resolved.plan, inputs)
    }

    /// Resolve and execute a batch of requests sequentially, in order.
    ///
    /// This is the serial counterpart of
    /// [`crate::executor::Executor::run_batch`]: a batch run on a fresh
    /// session and the same batch run on a fresh executor produce
    /// byte-identical outcomes — both assign noise-run indices to the items
    /// that actually execute, in order, and neither consumes an index for a
    /// rejected item — which is what the equivalence tests and the
    /// throughput benchmark compare.
    pub fn run_batch(
        &mut self,
        batch: &[crate::executor::BatchItem],
    ) -> Vec<Result<RunOutcome, CollectiveError>> {
        batch.iter().map(|item| self.run(&item.request, &item.inputs)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReducePattern;
    use crate::request::{Schedule, Topology};
    use crate::runner::{assert_outputs_close, expected_reduce, run_plan};
    use wse_fabric::program::ReduceOp;

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| ((i * 7 + j) % 13) as f32 * 0.5 - 2.0).collect()).collect()
    }

    #[test]
    fn session_results_match_one_shot_run_plan_for_every_pattern() {
        // Satellite requirement: a session run must agree with the one-shot
        // `run_plan` path for every 1D Reduce pattern on a 16-PE row.
        let mut session = Session::new();
        let p = 16u32;
        let b = 48u32;
        let data = inputs(p as usize, b as usize);
        for pattern in ReducePattern::all() {
            let request = CollectiveRequest::reduce(Topology::line(p), b)
                .with_schedule(Schedule::Reduce1d(pattern));
            let session_outcome = session.run(&request, &data).unwrap();

            let resolved = request.resolve(session.machine()).unwrap();
            let one_shot = run_plan(&resolved.plan, &data, &RunConfig::default()).unwrap();

            assert_eq!(session_outcome.report, one_shot.report, "{}", pattern.name());
            assert_eq!(session_outcome.outputs, one_shot.outputs, "{}", pattern.name());
        }
    }

    #[test]
    fn repeated_requests_hit_the_cache_and_reuse_the_fabric() {
        let mut session = Session::new();
        let request = CollectiveRequest::allreduce(Topology::line(8), 32);
        let data = inputs(8, 32);
        for _ in 0..4 {
            let outcome = session.run(&request, &data).unwrap();
            assert_outputs_close(&outcome, &expected_reduce(&data, ReduceOp::Sum), 1e-4);
        }
        let stats = session.stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.plan_hits, 3);
        assert_eq!(stats.runs, 4);
        assert_eq!(stats.fabrics_created, 1);
        assert_eq!(stats.fabric_reuses, 3);
    }

    #[test]
    fn cache_returns_the_identical_plan_object() {
        let mut session = Session::new();
        let request = CollectiveRequest::reduce(Topology::line(12), 16);
        let first = session.plan(&request).unwrap();
        let second = session.plan(&request).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "a cache hit returns the same Arc");
    }

    #[test]
    fn distinct_requests_occupy_distinct_cache_entries() {
        let mut session = Session::new();
        let base = CollectiveRequest::reduce(Topology::line(8), 16);
        session.plan(&base).unwrap();
        session.plan(&base.with_op(ReduceOp::Max)).unwrap();
        session.plan(&base.with_schedule(Schedule::Reduce1d(ReducePattern::Star))).unwrap();
        session.plan(&CollectiveRequest::allreduce(Topology::line(8), 16)).unwrap();
        assert_eq!(session.cached_plans(), 4);
        assert_eq!(session.stats().plan_misses, 4);
        assert_eq!(session.stats().plan_hits, 0);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let mut session = Session::with_config(SessionConfig {
            plan_cache_capacity: 2,
            ..SessionConfig::default()
        });
        let a = CollectiveRequest::reduce(Topology::line(4), 8);
        let b = CollectiveRequest::reduce(Topology::line(5), 8);
        let c = CollectiveRequest::reduce(Topology::line(6), 8);
        session.plan(&a).unwrap();
        session.plan(&b).unwrap();
        session.plan(&a).unwrap(); // refresh a; b is now least recent
        session.plan(&c).unwrap(); // evicts b
        assert_eq!(session.cached_plans(), 2);
        assert_eq!(session.stats().plan_evictions, 1);
        session.plan(&a).unwrap();
        assert_eq!(session.stats().plan_hits, 2, "a must have survived the eviction");
        session.plan(&b).unwrap();
        assert_eq!(session.stats().plan_misses, 4, "b was evicted and rebuilt");
    }

    #[test]
    fn sessions_reuse_one_fabric_per_grid_shape() {
        let mut session = Session::new();
        let line = CollectiveRequest::reduce(Topology::line(6), 8);
        let grid = CollectiveRequest::reduce(Topology::grid(3, 2), 8);
        session.run(&line, &inputs(6, 8)).unwrap();
        session.run(&grid, &inputs(6, 8)).unwrap();
        session.run(&line, &inputs(6, 8)).unwrap();
        session.run(&grid, &inputs(6, 8)).unwrap();
        let stats = session.stats();
        assert_eq!(stats.fabrics_created, 2, "one fabric per distinct grid shape");
        assert_eq!(stats.fabric_reuses, 2);
    }

    #[test]
    fn interleaved_requests_on_a_shared_fabric_stay_correct() {
        // Back-to-back different plans on the same grid exercise the reset
        // path: leftovers from the previous plan (router cursors, local
        // memory) must never leak into the next run.
        let mut session = Session::new();
        let p = 10u32;
        let b = 20u32;
        let data = inputs(p as usize, b as usize);
        let expected = expected_reduce(&data, ReduceOp::Sum);
        let patterns = [
            ReducePattern::Star,
            ReducePattern::Chain,
            ReducePattern::TwoPhase,
            ReducePattern::Star,
            ReducePattern::Tree,
            ReducePattern::Chain,
        ];
        for pattern in patterns {
            let request = CollectiveRequest::reduce(Topology::line(p), b)
                .with_schedule(Schedule::Reduce1d(pattern));
            let outcome = session.run(&request, &data).unwrap();
            assert_outputs_close(&outcome, &expected, 1e-4);
        }
        assert_eq!(session.stats().fabrics_created, 1);
    }

    #[test]
    fn rejected_runs_leave_execution_stats_untouched() {
        let mut session = Session::new();
        let request = CollectiveRequest::reduce(Topology::line(4), 8);
        let err = session.run(&request, &[vec![0.0; 3]]).unwrap_err();
        assert!(matches!(err, CollectiveError::InputCountMismatch { .. }));
        let stats = session.stats();
        assert_eq!(stats.runs, 0, "a rejected run is not an execution");
        assert_eq!(stats.fabrics_created, 0);
        assert_eq!(stats.fabric_reuses, 0);
        // Planning still happened (the request itself is valid).
        assert_eq!(stats.plan_misses, 1);
    }

    fn noisy_config(probability: f64, seed: u64) -> SessionConfig {
        let mut config = SessionConfig::default();
        config.run.noise = Some(wse_fabric::NoiseModel::new(probability, seed));
        config
    }

    #[test]
    fn noisy_runs_see_fresh_noise_realizations() {
        // Regression for the session noise-replay bug: cloning the configured
        // noise model into the fabric on every run replayed the identical
        // no-op sequence, so repeated noisy runs were byte-identical instead
        // of independent draws.
        let mut session = Session::with_config(noisy_config(0.2, 42));
        let request = CollectiveRequest::reduce(Topology::line(8), 64)
            .with_schedule(Schedule::Reduce1d(ReducePattern::Chain));
        let data = inputs(8, 64);
        let first = session.run(&request, &data).unwrap();
        let second = session.run(&request, &data).unwrap();
        assert!(first.report.noop_cycles > 0, "noise must actually fire");
        assert_ne!(
            (first.report.noop_cycles, &first.report.pe_finish),
            (second.report.noop_cycles, &second.report.pe_finish),
            "two noisy runs must draw different noise realizations"
        );
        // The data outcome is unaffected by noise either way.
        let expected = expected_reduce(&data, ReduceOp::Sum);
        assert_outputs_close(&first, &expected, 1e-4);
        assert_outputs_close(&second, &expected, 1e-4);
    }

    #[test]
    fn equally_seeded_sessions_reproduce_each_other_exactly() {
        let request = CollectiveRequest::allreduce(Topology::line(6), 32);
        let data = inputs(6, 32);
        let run_session = || {
            let mut session = Session::with_config(noisy_config(0.15, 7));
            (0..3).map(|_| session.run(&request, &data).unwrap()).collect::<Vec<_>>()
        };
        let a = run_session();
        let b = run_session();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.report, y.report, "same seed + same run counter = same realization");
            assert_eq!(x.outputs, y.outputs);
        }
    }

    #[test]
    fn first_noisy_session_run_matches_the_one_shot_path() {
        // `NoiseModel::for_run(0)` is the identity derivation, so run 0 of a
        // session must stay byte-identical to `run_plan` with the same
        // config — reseeding only kicks in from run 1 onwards.
        let config = noisy_config(0.1, 99);
        let request = CollectiveRequest::reduce(Topology::line(10), 24);
        let data = inputs(10, 24);
        let mut session = Session::with_config(config.clone());
        let session_outcome = session.run(&request, &data).unwrap();
        let resolved = request.resolve(&config.machine).unwrap();
        let one_shot = run_plan(&resolved.plan, &data, &config.run).unwrap();
        assert_eq!(session_outcome.report, one_shot.report);
        assert_eq!(session_outcome.outputs, one_shot.outputs);
    }

    #[test]
    fn clear_plan_cache_forces_regeneration() {
        let mut session = Session::new();
        let request = CollectiveRequest::reduce(Topology::line(8), 8);
        session.plan(&request).unwrap();
        session.clear_plan_cache();
        assert_eq!(session.cached_plans(), 0);
        session.plan(&request).unwrap();
        assert_eq!(session.stats().plan_misses, 2);
    }
}
