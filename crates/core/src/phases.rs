//! Composable plan phases: the reusable building blocks collectives are
//! assembled from.
//!
//! The paper's collectives decompose into a small set of recurring phases:
//! the ring's reduce-scatter and all-gather rounds (§6.2), single ring
//! rotations (one full-duplex neighbour exchange of every PE with its ring
//! successor), and the flooding broadcast (§4.2/§7.1). Historically those
//! phases were private emission loops inside `allreduce.rs`; this module
//! makes them first-class so [`crate::allreduce::ring_allreduce_plan`] and
//! every collective of [`crate::collectives`] are built from the same
//! audited pieces.
//!
//! All ring phases target a row of `p` PEs (a 1D line) whose logical ring
//! successor of PE `x` is PE `(x + 1) mod p`: ordinary streams travel one
//! hop eastwards while the wrap-around stream of the last PE travels
//! westwards across the whole row ([`append_ring_routes`]). Vectors are
//! split into `p` chunks of `vector_len / p` elements; chunk `i` lives at
//! local offset `i * chunk` on every PE (the *shard-at-index* layout shared
//! by every collective built on these phases).

use wse_fabric::geometry::{Coord, Direction, DirectionSet};
use wse_fabric::program::{RecvMode, ReduceOp};
use wse_fabric::router::RouteRule;
use wse_fabric::wavelet::Color;

pub use crate::broadcast::{append_flood_broadcast, append_flood_broadcast_2d};

use crate::plan::CollectivePlan;

/// The three colors a ring phase occupies on a row of PEs.
///
/// Neighbouring PEs must talk on different colors (a router accepts each
/// color from a single direction at a time), so eastward streams alternate
/// between two colors by sender parity while the wrap-around stream from
/// the last PE back to PE 0 uses a third.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingColors {
    /// Color of eastward streams sent by even-indexed PEs.
    pub east_even: Color,
    /// Color of eastward streams sent by odd-indexed PEs.
    pub east_odd: Color,
    /// Color of the wrap-around stream (last PE westwards to PE 0).
    pub wrap: Color,
}

impl Default for RingColors {
    fn default() -> Self {
        RingColors { east_even: Color::new(0), east_odd: Color::new(1), wrap: Color::new(2) }
    }
}

impl RingColors {
    /// The color PE `x` sends on (towards its ring successor).
    pub fn send_color(&self, x: u32, p: u32) -> Color {
        if x == p - 1 {
            self.wrap
        } else if x.is_multiple_of(2) {
            self.east_even
        } else {
            self.east_odd
        }
    }

    /// The color PE `x` receives on (from its ring predecessor).
    pub fn recv_color(&self, x: u32, p: u32) -> Color {
        if x == 0 {
            self.wrap
        } else {
            self.send_color(x - 1, p)
        }
    }
}

/// Append the static ring routing for a row of `p` PEs: every PE forwards
/// its own stream to its ring successor and delivers its predecessor's
/// stream to the processor; the wrap-around stream from the last PE travels
/// westwards across the whole row.
///
/// The rules are `forever` rules, so any number of ring phases (rotations,
/// reduce-scatter or all-gather rounds) can share one set of routes.
pub fn append_ring_routes(plan: &mut CollectivePlan, p: u32, colors: &RingColors) {
    assert!(p >= 2, "a ring needs at least two PEs");
    for x in 0..p {
        let at = Coord::new(x, 0);
        if x < p - 1 {
            plan.push_rule(
                at,
                colors.send_color(x, p),
                RouteRule::forever(Direction::Ramp, DirectionSet::single(Direction::East)),
            );
        } else {
            plan.push_rule(
                at,
                colors.wrap,
                RouteRule::forever(Direction::Ramp, DirectionSet::single(Direction::West)),
            );
        }
        if x > 0 {
            plan.push_rule(
                at,
                colors.recv_color(x, p),
                RouteRule::forever(Direction::West, DirectionSet::single(Direction::Ramp)),
            );
        } else {
            plan.push_rule(
                at,
                colors.wrap,
                RouteRule::forever(Direction::East, DirectionSet::single(Direction::Ramp)),
            );
        }
        // Intermediate PEs pass the wrap-around stream through.
        if x > 0 && x < p - 1 {
            plan.push_rule(
                at,
                colors.wrap,
                RouteRule::forever(Direction::East, DirectionSet::single(Direction::West)),
            );
        }
    }
}

/// Chunk index `v` reduced into `0..p` (ring arithmetic).
pub(crate) fn chunk_index(v: i64, p: u32) -> u32 {
    v.rem_euclid(p as i64) as u32
}

/// Append one ring rotation: every PE `x` exchanges a full chunk with its
/// ring neighbours — it sends chunk `(x + base - round) mod p` to its
/// successor while receiving chunk `(x + base - round - 1) mod p` from its
/// predecessor, combining according to `mode`.
///
/// `base` anchors which chunk circulates: round `r` of the reduce-scatter
/// phase is `base = 0`, round `r` of the all-gather phase that follows a
/// reduce-scatter is `base = 1` (each PE then holds the finished chunk
/// `(x + 1) mod p` and starts circulating it). Requires the routes of
/// [`append_ring_routes`] (same `colors`) on the plan.
pub fn append_ring_rotation(
    plan: &mut CollectivePlan,
    p: u32,
    chunk: u32,
    colors: &RingColors,
    base: i64,
    round: i64,
    mode: RecvMode,
) {
    for x in 0..p {
        let at = Coord::new(x, 0);
        let my = x as i64;
        let send_chunk = chunk_index(my + base - round, p);
        let recv_chunk = chunk_index(my + base - round - 1, p);
        plan.program_mut(at).exchange(
            colors.send_color(x, p),
            send_chunk * chunk,
            colors.recv_color(x, p),
            recv_chunk * chunk,
            chunk,
            mode,
        );
    }
}

/// Append the `p - 1` reduce-scatter rounds of §6.2: after them, PE `x`
/// holds the fully reduced chunk `(x + 1) mod p` (accumulated in ring
/// order, i.e. left-to-right starting from PE `(x + 2) mod p`'s
/// contribution... the order is fixed by the ring, which is what makes a
/// standalone ReduceScatter bit-identical to the first half of the Ring
/// AllReduce).
pub fn append_reduce_scatter_rounds(
    plan: &mut CollectivePlan,
    p: u32,
    chunk: u32,
    op: ReduceOp,
    colors: &RingColors,
) {
    for r in 0..p as i64 - 1 {
        append_ring_rotation(plan, p, chunk, colors, 0, r, RecvMode::Reduce(op));
    }
}

/// Append the `p - 1` all-gather rounds of §6.2: each PE circulates its
/// chunk around the ring, storing every chunk it sees. `base` names the
/// chunk PE `x` holds at the start: `base = 1` after the reduce-scatter
/// rounds (PE `x` finished chunk `(x + 1) mod p`), `base = 0` for a
/// standalone AllGather whose PE `x` starts with its own shard `x`.
pub fn append_allgather_rounds(
    plan: &mut CollectivePlan,
    p: u32,
    chunk: u32,
    colors: &RingColors,
    base: i64,
) {
    for r in 0..p as i64 - 1 {
        append_ring_rotation(plan, p, chunk, colors, base, r, RecvMode::Store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_fabric::geometry::GridDim;
    use wse_fabric::program::Instruction;

    #[test]
    fn ring_colors_alternate_and_wrap() {
        let c = RingColors::default();
        let p = 5;
        assert_eq!(c.send_color(0, p), c.east_even);
        assert_eq!(c.send_color(1, p), c.east_odd);
        assert_eq!(c.send_color(2, p), c.east_even);
        assert_eq!(c.send_color(4, p), c.wrap);
        assert_eq!(c.recv_color(0, p), c.wrap);
        assert_eq!(c.recv_color(1, p), c.east_even);
        assert_eq!(c.recv_color(4, p), c.east_odd);
        // Adjacent PEs never share a send color with their successor's send.
        for x in 0..p - 1 {
            assert_ne!(c.send_color(x, p), c.send_color(x + 1, p));
        }
    }

    #[test]
    fn routes_use_three_colors_and_rotation_is_full_duplex() {
        let p = 4;
        let colors = RingColors::default();
        let mut plan = CollectivePlan::new("phase-test", GridDim::row(p), Coord::new(0, 0), 8);
        append_ring_routes(&mut plan, p, &colors);
        assert_eq!(plan.colors_used().len(), 3);
        append_ring_rotation(&mut plan, p, 2, &colors, 0, 0, RecvMode::Store);
        for x in 0..p {
            let program = plan.program(Coord::new(x, 0));
            assert_eq!(program.len(), 1);
            assert!(matches!(program.instructions()[0], Instruction::Exchange { len: 2, .. }));
        }
    }

    /// The Ring AllReduce plan emitted exactly as before the phase
    /// refactor (a frozen copy of the original per-PE emission loops),
    /// used as the golden artefact the phase builders must reproduce.
    fn golden_ring_allreduce(p: u32, vector_len: u32, op: ReduceOp) -> CollectivePlan {
        let dim = GridDim::row(p);
        let chunk = vector_len / p;
        let east_even = Color::new(0);
        let east_odd = Color::new(1);
        let wrap = Color::new(2);
        let mut plan = CollectivePlan::new(
            format!("allreduce-1d-Ring-p{p}-b{vector_len}"),
            dim,
            Coord::new(0, 0),
            vector_len,
        );
        let send_color = |x: u32| {
            if x == p - 1 {
                wrap
            } else if x.is_multiple_of(2) {
                east_even
            } else {
                east_odd
            }
        };
        let recv_color = |x: u32| if x == 0 { wrap } else { send_color(x - 1) };
        for x in 0..p {
            let at = Coord::new(x, 0);
            if x < p - 1 {
                plan.push_rule(
                    at,
                    send_color(x),
                    RouteRule::forever(Direction::Ramp, DirectionSet::single(Direction::East)),
                );
            } else {
                plan.push_rule(
                    at,
                    wrap,
                    RouteRule::forever(Direction::Ramp, DirectionSet::single(Direction::West)),
                );
            }
            if x > 0 {
                plan.push_rule(
                    at,
                    recv_color(x),
                    RouteRule::forever(Direction::West, DirectionSet::single(Direction::Ramp)),
                );
            } else {
                plan.push_rule(
                    at,
                    wrap,
                    RouteRule::forever(Direction::East, DirectionSet::single(Direction::Ramp)),
                );
            }
            if x > 0 && x < p - 1 {
                plan.push_rule(
                    at,
                    wrap,
                    RouteRule::forever(Direction::East, DirectionSet::single(Direction::West)),
                );
            }
        }
        for x in 0..p {
            let at = Coord::new(x, 0);
            let sc = send_color(x);
            let rc = recv_color(x);
            let my = x as i64;
            let pp = p as i64;
            let ci = |v: i64| (v.rem_euclid(pp)) as u32;
            let program = plan.program_mut(at);
            for r in 0..p as i64 - 1 {
                program.exchange(
                    sc,
                    ci(my - r) * chunk,
                    rc,
                    ci(my - r - 1) * chunk,
                    chunk,
                    RecvMode::Reduce(op),
                );
            }
            for r in 0..p as i64 - 1 {
                program.exchange(
                    sc,
                    ci(my + 1 - r) * chunk,
                    rc,
                    ci(my - r) * chunk,
                    chunk,
                    RecvMode::Store,
                );
            }
            plan.add_data_pe(at);
            plan.add_result_pe(at);
        }
        plan
    }

    #[test]
    fn phase_built_ring_allreduce_is_byte_identical_to_the_original_emission() {
        // The refactored ring_allreduce_plan (routes + RS rounds + AG
        // rounds with base 1) must reproduce the pre-refactor plan byte for
        // byte: same programs, routing scripts and data/result PEs, so plan
        // caches and engine-equivalence baselines are unaffected.
        for (p, b) in [(2u32, 8u32), (4, 16), (5, 10), (8, 32)] {
            for op in [ReduceOp::Sum, ReduceOp::Max] {
                assert_eq!(
                    crate::allreduce::ring_allreduce_plan(p, b, op),
                    golden_ring_allreduce(p, b, op),
                    "p={p} b={b}"
                );
            }
        }
    }
}
