//! Typed errors for plan construction, request resolution and execution.
//!
//! The seed of this reproduction used `Result<_, String>` for path
//! validation and the raw `FabricError` for execution; everything now flows
//! through one [`CollectiveError`] enum so callers can match on failure
//! causes instead of parsing messages. The enum is hand-rolled (no
//! `thiserror`) because the workspace builds without external dependencies.

use wse_fabric::engine::FabricError;
use wse_fabric::geometry::Coord;

use crate::request::{CollectiveKind, Schedule, Topology};

/// Everything that can go wrong building or executing a collective.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveError {
    /// A [`crate::path::LinePath`] must contain at least one PE.
    EmptyPath,
    /// A path coordinate lies outside the grid.
    PathOutsideGrid {
        /// The offending coordinate.
        coord: Coord,
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
    },
    /// Two consecutive path positions are not mesh neighbours.
    PathNotAdjacent {
        /// Earlier position.
        a: Coord,
        /// Later position.
        b: Coord,
    },
    /// A coordinate appears twice in a path.
    PathDuplicate {
        /// The repeated coordinate.
        coord: Coord,
    },
    /// A request names a schedule that does not fit its collective kind or
    /// topology (e.g. a 2D pattern on a 1D line).
    ScheduleMismatch {
        /// The requested collective.
        kind: CollectiveKind,
        /// The requested topology.
        topology: Topology,
        /// The incompatible schedule.
        schedule: Schedule,
    },
    /// A request parameter is outside the supported domain (zero-length
    /// vectors, empty topologies, non-canonical roots, indivisible ring
    /// vectors, ...).
    InvalidRequest {
        /// What was wrong with the request.
        reason: String,
    },
    /// A root PE was specified for a collective that has no root — every
    /// participant of an AllReduce, ReduceScatter, AllGather or All-to-All
    /// plays the same role, so `with_root` on these kinds is a programming
    /// error rather than a silently ignored hint.
    RootlessCollective {
        /// The rootless collective the root was offered to.
        kind: CollectiveKind,
    },
    /// The number of input vectors does not match the plan's data PEs.
    InputCountMismatch {
        /// Data PEs of the plan.
        expected: usize,
        /// Input vectors supplied.
        got: usize,
    },
    /// An input vector's length does not match the plan's vector length.
    InputLengthMismatch {
        /// Index of the offending input vector.
        index: usize,
        /// The plan's vector length.
        expected: u32,
        /// The supplied vector's length.
        got: usize,
    },
    /// The cost model prices the request above the service's per-request
    /// admission ceiling (`AdmissionConfig::max_predicted_cycles`): the
    /// request is rejected at submission, before any plan is built or any
    /// fabric is touched — the serving analogue of an out-of-gas
    /// transaction.
    OverBudget {
        /// The model's predicted runtime for the request, in cycles.
        predicted: u64,
        /// The service's per-request ceiling, in cycles.
        limit: u64,
    },
    /// A service's bounded submission queue is at capacity — the caller is
    /// being backpressured. Retry later, or use the blocking
    /// `CollectiveService::submit` to wait for a slot instead.
    QueueFull {
        /// The queue's capacity (the number of requests it holds when full).
        capacity: usize,
    },
    /// The service has been shut down and no longer accepts requests.
    ServiceStopped,
    /// The clock model attached to a measurement covers a different number
    /// of PEs than the plan's grid.
    ClockModelMismatch {
        /// PEs covered by the clock model.
        clock_pes: usize,
        /// PEs of the plan's grid.
        plan_pes: usize,
    },
    /// The fabric simulation failed.
    Fabric(FabricError),
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::EmptyPath => {
                write!(f, "a path must contain at least one PE")
            }
            CollectiveError::PathOutsideGrid { coord, width, height } => {
                write!(f, "coordinate {coord} lies outside the {width}x{height} grid")
            }
            CollectiveError::PathNotAdjacent { a, b } => {
                write!(f, "path positions {a} and {b} are not adjacent")
            }
            CollectiveError::PathDuplicate { coord } => {
                write!(f, "coordinate {coord} appears twice in the path")
            }
            CollectiveError::ScheduleMismatch { kind, topology, schedule } => {
                write!(
                    f,
                    "schedule {schedule:?} cannot realise a {kind:?} on topology {topology:?}"
                )
            }
            CollectiveError::InvalidRequest { reason } => {
                write!(f, "invalid collective request: {reason}")
            }
            CollectiveError::RootlessCollective { kind } => {
                write!(f, "{kind:?} has no root PE; with_root only applies to rooted collectives")
            }
            CollectiveError::InputCountMismatch { expected, got } => {
                write!(f, "plan requires {expected} input vectors, got {got}")
            }
            CollectiveError::InputLengthMismatch { index, expected, got } => {
                write!(
                    f,
                    "input vector {index} has {got} elements, the plan's vector length is {expected}"
                )
            }
            CollectiveError::OverBudget { predicted, limit } => {
                write!(
                    f,
                    "request rejected by admission control: predicted {predicted} cycles \
                     exceeds the per-request ceiling of {limit}"
                )
            }
            CollectiveError::QueueFull { capacity } => {
                write!(f, "the submission queue is full ({capacity} requests queued)")
            }
            CollectiveError::ServiceStopped => {
                write!(f, "the service has been shut down and no longer accepts requests")
            }
            CollectiveError::ClockModelMismatch { clock_pes, plan_pes } => {
                write!(
                    f,
                    "the clock model covers {clock_pes} PEs but the plan's grid has {plan_pes}"
                )
            }
            CollectiveError::Fabric(e) => write!(f, "fabric execution failed: {e}"),
        }
    }
}

impl std::error::Error for CollectiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CollectiveError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for CollectiveError {
    fn from(e: FabricError) -> Self {
        CollectiveError::Fabric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CollectiveError::PathOutsideGrid { coord: Coord::new(5, 0), width: 4, height: 4 };
        assert!(e.to_string().contains("outside the 4x4 grid"));
        let e = CollectiveError::InputCountMismatch { expected: 4, got: 3 };
        assert!(e.to_string().contains("4 input vectors"));
        let e = CollectiveError::ClockModelMismatch { clock_pes: 16, plan_pes: 64 };
        assert!(e.to_string().contains("16 PEs"));
        assert!(e.to_string().contains("64"));
        let e = CollectiveError::QueueFull { capacity: 128 };
        assert!(e.to_string().contains("128 requests"));
        let e = CollectiveError::OverBudget { predicted: 9000, limit: 4096 };
        assert!(e.to_string().contains("9000 cycles"));
        assert!(e.to_string().contains("ceiling of 4096"));
        assert!(CollectiveError::ServiceStopped.to_string().contains("shut down"));
        let e = CollectiveError::RootlessCollective { kind: CollectiveKind::AllReduce };
        assert!(e.to_string().contains("AllReduce"));
        assert!(e.to_string().contains("no root"));
    }

    #[test]
    fn fabric_errors_convert_and_chain() {
        let inner = FabricError::CycleLimitExceeded { limit: 10 };
        let e: CollectiveError = inner.clone().into();
        assert_eq!(e, CollectiveError::Fabric(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
