//! Linear embeddings of collectives into the grid.
//!
//! All 1D collectives of the paper operate on a *line* of PEs: a row, a
//! column, or — for the Snake Reduce of §7.3 — a boustrophedon path covering
//! the whole grid. A [`LinePath`] is an ordered list of grid coordinates,
//! position 0 being the root, in which consecutive positions are adjacent in
//! the mesh. Plan builders lay communication out along such a path, so the
//! same code realises row, column and snake variants of every pattern.

use wse_fabric::geometry::{Coord, Direction, GridDim};

use crate::error::CollectiveError;

/// An ordered, mesh-adjacent list of PE coordinates; position 0 is the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinePath {
    dim: GridDim,
    coords: Vec<Coord>,
}

impl LinePath {
    /// Build a path from explicit coordinates, validating adjacency and
    /// uniqueness.
    pub fn new(dim: GridDim, coords: Vec<Coord>) -> Result<Self, CollectiveError> {
        if coords.is_empty() {
            return Err(CollectiveError::EmptyPath);
        }
        for c in &coords {
            if !dim.contains(*c) {
                return Err(CollectiveError::PathOutsideGrid {
                    coord: *c,
                    width: dim.width,
                    height: dim.height,
                });
            }
        }
        for w in coords.windows(2) {
            if dim.manhattan(w[0], w[1]) != 1 {
                return Err(CollectiveError::PathNotAdjacent { a: w[0], b: w[1] });
            }
        }
        let mut seen = vec![false; dim.num_pes()];
        for c in &coords {
            let idx = dim.index(*c);
            if seen[idx] {
                return Err(CollectiveError::PathDuplicate { coord: *c });
            }
            seen[idx] = true;
        }
        Ok(LinePath { dim, coords })
    }

    /// A full row of the grid, rooted at the leftmost PE (`x = 0`).
    ///
    /// # Panics
    ///
    /// Panics when `y` lies outside the grid. Use [`LinePath::new`] for a
    /// typed-error path over arbitrary (possibly invalid) coordinates.
    pub fn row(dim: GridDim, y: u32) -> Self {
        assert!(y < dim.height, "row {y} outside the grid");
        let coords = (0..dim.width).map(|x| Coord::new(x, y)).collect();
        LinePath { dim, coords }
    }

    /// A prefix of a row: the `len` leftmost PEs of row `y`.
    ///
    /// # Panics
    ///
    /// Panics when `y` lies outside the grid or `len` is zero or exceeds
    /// the grid width.
    pub fn row_prefix(dim: GridDim, y: u32, len: u32) -> Self {
        assert!(y < dim.height && len >= 1 && len <= dim.width);
        let coords = (0..len).map(|x| Coord::new(x, y)).collect();
        LinePath { dim, coords }
    }

    /// A full column of the grid, rooted at the topmost PE (`y = 0`).
    ///
    /// # Panics
    ///
    /// Panics when `x` lies outside the grid. Use [`LinePath::new`] for a
    /// typed-error path over arbitrary (possibly invalid) coordinates.
    pub fn column(dim: GridDim, x: u32) -> Self {
        assert!(x < dim.width, "column {x} outside the grid");
        let coords = (0..dim.height).map(|y| Coord::new(x, y)).collect();
        LinePath { dim, coords }
    }

    /// The boustrophedon (snake) path over the whole grid used by the Snake
    /// Reduce (§7.3): row 0 west→east, row 1 east→west, and so on, rooted at
    /// `(0, 0)`.
    pub fn snake(dim: GridDim) -> Self {
        let mut coords = Vec::with_capacity(dim.num_pes());
        for y in 0..dim.height {
            if y % 2 == 0 {
                for x in 0..dim.width {
                    coords.push(Coord::new(x, y));
                }
            } else {
                for x in (0..dim.width).rev() {
                    coords.push(Coord::new(x, y));
                }
            }
        }
        LinePath { dim, coords }
    }

    /// The grid the path is embedded in.
    pub fn dim(&self) -> GridDim {
        self.dim
    }

    /// Number of PEs on the path.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the path is a single PE.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The coordinate at a path position.
    pub fn coord(&self, position: usize) -> Coord {
        self.coords[position]
    }

    /// The root coordinate (path position 0).
    pub fn root(&self) -> Coord {
        self.coords[0]
    }

    /// All coordinates in path order.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// The mesh direction leading from path position `from` towards path
    /// position `from - 1` (one step closer to the root).
    pub fn towards_root(&self, from: usize) -> Direction {
        assert!(from >= 1 && from < self.coords.len());
        direction_between(self.coords[from], self.coords[from - 1])
    }

    /// The mesh direction leading from path position `from` towards path
    /// position `from + 1` (one step away from the root).
    pub fn away_from_root(&self, from: usize) -> Direction {
        assert!(from + 1 < self.coords.len());
        direction_between(self.coords[from], self.coords[from + 1])
    }
}

/// The direction of travel from `a` to an adjacent coordinate `b`.
pub fn direction_between(a: Coord, b: Coord) -> Direction {
    if b.x == a.x + 1 && b.y == a.y {
        Direction::East
    } else if a.x == b.x + 1 && a.y == b.y {
        Direction::West
    } else if b.y == a.y + 1 && b.x == a.x {
        Direction::South
    } else if a.y == b.y + 1 && b.x == a.x {
        Direction::North
    } else {
        panic!("{a} and {b} are not adjacent");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_column_paths() {
        let dim = GridDim::new(6, 4);
        let row = LinePath::row(dim, 2);
        assert_eq!(row.len(), 6);
        assert_eq!(row.root(), Coord::new(0, 2));
        assert_eq!(row.towards_root(3), Direction::West);
        assert_eq!(row.away_from_root(3), Direction::East);

        let col = LinePath::column(dim, 5);
        assert_eq!(col.len(), 4);
        assert_eq!(col.root(), Coord::new(5, 0));
        assert_eq!(col.towards_root(1), Direction::North);
        assert_eq!(col.away_from_root(0), Direction::South);
    }

    #[test]
    fn row_prefix_limits_length() {
        let dim = GridDim::new(8, 1);
        let p = LinePath::row_prefix(dim, 0, 5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.coord(4), Coord::new(4, 0));
    }

    #[test]
    fn snake_path_covers_grid_and_alternates() {
        let dim = GridDim::new(4, 3);
        let snake = LinePath::snake(dim);
        assert_eq!(snake.len(), 12);
        assert_eq!(snake.root(), Coord::new(0, 0));
        // End of row 0 connects downwards, row 1 runs east to west.
        assert_eq!(snake.coord(3), Coord::new(3, 0));
        assert_eq!(snake.coord(4), Coord::new(3, 1));
        assert_eq!(snake.coord(7), Coord::new(0, 1));
        assert_eq!(snake.coord(8), Coord::new(0, 2));
        // Adjacency holds everywhere (validated by constructing via `new`).
        assert!(LinePath::new(dim, snake.coords().to_vec()).is_ok());
    }

    #[test]
    fn invalid_paths_are_rejected_with_typed_errors() {
        use crate::error::CollectiveError;

        let dim = GridDim::new(4, 4);
        assert_eq!(
            LinePath::new(dim, vec![Coord::new(0, 0), Coord::new(2, 0)]).unwrap_err(),
            CollectiveError::PathNotAdjacent { a: Coord::new(0, 0), b: Coord::new(2, 0) }
        );
        assert_eq!(
            LinePath::new(dim, vec![Coord::new(5, 0)]).unwrap_err(),
            CollectiveError::PathOutsideGrid { coord: Coord::new(5, 0), width: 4, height: 4 }
        );
        assert_eq!(
            LinePath::new(dim, vec![Coord::new(0, 0), Coord::new(1, 0), Coord::new(0, 0)])
                .unwrap_err(),
            CollectiveError::PathDuplicate { coord: Coord::new(0, 0) }
        );
        assert_eq!(LinePath::new(dim, vec![]).unwrap_err(), CollectiveError::EmptyPath);
    }

    #[test]
    fn direction_between_adjacent_coords() {
        assert_eq!(direction_between(Coord::new(1, 1), Coord::new(2, 1)), Direction::East);
        assert_eq!(direction_between(Coord::new(1, 1), Coord::new(0, 1)), Direction::West);
        assert_eq!(direction_between(Coord::new(1, 1), Coord::new(1, 2)), Direction::South);
        assert_eq!(direction_between(Coord::new(1, 1), Coord::new(1, 0)), Direction::North);
    }

    #[test]
    #[should_panic]
    fn direction_between_non_adjacent_panics() {
        let _ = direction_between(Coord::new(0, 0), Coord::new(2, 2));
    }
}
