//! # wse-collectives — near-optimal wafer-scale Reduce, AllReduce and Broadcast
//!
//! This crate is the primary contribution of the *Near-Optimal Wafer-Scale
//! Reduce* (HPDC 2024) reproduction: executable implementations of every
//! collective the paper designs and evaluates, targeting the cycle-level
//! mesh simulator of `wse-fabric` and driven by the performance model of
//! `wse-model`.
//!
//! ## The request API
//!
//! The paper's workflow is *model → select → generate → run* (§1.3, §10).
//! The library exposes it as one coherent pipeline:
//!
//! * a [`CollectiveRequest`] describes any collective — `Reduce` /
//!   `AllReduce` / `Broadcast`, on a 1D [`Topology::Line`] or a 2D
//!   [`Topology::Grid`], with a vector length, a [`ReduceOp`] and a
//!   [`Schedule`] that is either an explicit pattern or [`Schedule::Auto`]
//!   model-driven selection;
//! * a [`Session`] resolves requests into executable [`CollectivePlan`]s
//!   through an LRU **plan cache** and executes them on a reused,
//!   resettable fabric — generate once, run many times;
//! * an [`Executor`] serves a **batch** of independent requests in
//!   parallel: worker threads share the plan cache (sharded by request
//!   hash, `Arc`ed plans) and check fabrics out of a per-shape **pool**,
//!   with results byte-identical to the sequential session (see
//!   [`executor`]);
//! * a [`CollectiveService`] is the **serving loop** on top: a bounded
//!   submission queue accepting requests continuously, a batcher thread
//!   forming batches by deadline or size, completion handles
//!   ([`ResponseHandle`]) with per-request latency, backpressure and
//!   graceful draining shutdown (see [`serve`]).
//!
//! ## Quickstart
//!
//! ```
//! use wse_collectives::prelude::*;
//!
//! // Reduce 1 KiB vectors (256 f32 values) across a row of 16 PEs with the
//! // Two-Phase schedule.
//! let mut session = Session::new();
//! let request = CollectiveRequest::reduce(Topology::line(16), 256)
//!     .with_schedule(Schedule::Reduce1d(ReducePattern::TwoPhase));
//!
//! let inputs: Vec<Vec<f32>> = (0..16).map(|i| vec![i as f32; 256]).collect();
//! let outcome = session.run(&request, &inputs).unwrap();
//!
//! let expected = expected_reduce(&inputs, ReduceOp::Sum);
//! assert_outputs_close(&outcome, &expected, 1e-4);
//! println!("runtime: {} cycles", outcome.runtime_cycles());
//!
//! // Let the model pick the algorithm instead (§1.3/§10): the same request
//! // with the default `Schedule::Auto`, over the same session. Repeated
//! // requests hit the plan cache — plan generation happened once per
//! // distinct request.
//! let auto = CollectiveRequest::allreduce(Topology::line(16), 256);
//! for _ in 0..3 {
//!     let outcome = session.run(&auto, &inputs).unwrap();
//!     assert_outputs_close(&outcome, &expected, 1e-4);
//! }
//! assert_eq!(session.stats().plan_misses, 2); // two distinct requests
//! assert_eq!(session.stats().plan_hits, 2);   // two repeat runs
//! ```
//!
//! ## What is implemented
//!
//! * **1D Broadcast** — the flooding broadcast of §4.2, which multicast makes
//!   as cheap as a single message ([`broadcast`]).
//! * **1D Reduce** — Star (§5.1), Chain (§5.2, the vendor pattern), binary
//!   Tree (§5.3), Two-Phase (§5.4) and the model-generated Auto-Gen schedule
//!   (§5.5), all compiled through a single reduction-tree-to-plan code
//!   generator ([`reduce`], [`tree_plan`]).
//! * **1D AllReduce** — Reduce-then-Broadcast (§6.1) and the Ring (§6.2),
//!   built from the composable phase builders of [`phases`]
//!   ([`allreduce`]).
//! * **The inference collective suite** — ReduceScatter, AllGather, Gather,
//!   Scatter and All-to-All as first-class request kinds with per-kind I/O
//!   shape contracts, assembled from the same phase builders
//!   ([`collectives`]; see the table in [`request`]).
//! * **2D collectives** — the 2D flooding broadcast (§7.1), X-Y Reduce
//!   (§7.2), Snake Reduce (§7.3) and 2D AllReduce (§7.4).
//! * **Model-driven selection** — [`Schedule::Auto`] resolves through the
//!   performance model's structured [`wse_model::Choice`]; the legacy
//!   free-function interface survives in [`select`] as thin shims.
//! * **Measurement methodology** — the clock-synchronised, calibrated timing
//!   procedure of §8.3, run against simulated clock skew and thermal noise
//!   ([`measured`]).
//!
//! All failures are reported as the typed [`CollectiveError`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod allreduce;
pub mod broadcast;
mod cache;
pub mod collectives;
pub mod error;
pub mod executor;
pub mod measured;
pub mod path;
pub mod phases;
pub mod plan;
pub mod reduce;
pub mod request;
pub mod runner;
pub mod select;
pub mod serve;
pub mod session;
pub mod tree_plan;

pub use allreduce::{
    allreduce_1d_plan, allreduce_2d_plan, ring_allreduce_plan, xy_allreduce_2d_plan,
    AllReducePattern,
};
pub use broadcast::{flood_broadcast_2d_plan, flood_broadcast_plan};
pub use collectives::{
    all_to_all_rotate_plan, allgather_ring_plan, gather_line_plan, reduce_scatter_ring_plan,
    scatter_line_plan,
};
pub use error::CollectiveError;
pub use executor::{
    BatchItem, Executor, ExecutorConfig, ExecutorStats, PredictionSummary, StampedItem,
};
pub use measured::{measured_run, MeasureConfig, MeasuredRun};
pub use path::LinePath;
pub use plan::CollectivePlan;
pub use reduce::{reduce_1d_plan, reduce_2d_plan, Reduce2dPattern, ReducePattern};
pub use request::{CollectiveKind, CollectiveRequest, ResolvedPlan, Schedule, TenantId, Topology};
pub use runner::{
    assert_outputs_close, expected_reduce, max_relative_error, run_plan, RunConfig, RunOutcome,
};
pub use select::{
    select_allreduce_1d, select_allreduce_2d, select_reduce_1d, select_reduce_2d, SelectedPlan,
};
pub use serve::{
    AdmissionConfig, AdmissionInfo, AdmissionOutcome, BatchOrder, CollectiveService, FlushReason,
    LatencySummary, Response, ResponseHandle, ServiceConfig, ServiceStats, TenantBudget,
};
pub use session::{Session, SessionConfig, SessionStats};
pub use wse_fabric::EngineKind;

/// Convenience re-exports for applications.
pub mod prelude {
    pub use crate::allreduce::{allreduce_1d_plan, allreduce_2d_plan, AllReducePattern};
    pub use crate::broadcast::{flood_broadcast_2d_plan, flood_broadcast_plan};
    pub use crate::collectives::{
        all_to_all_rotate_plan, allgather_ring_plan, gather_line_plan, reduce_scatter_ring_plan,
        scatter_line_plan,
    };
    pub use crate::error::CollectiveError;
    pub use crate::executor::{
        BatchItem, Executor, ExecutorConfig, ExecutorStats, PredictionSummary, StampedItem,
    };
    pub use crate::path::LinePath;
    pub use crate::plan::CollectivePlan;
    pub use crate::reduce::{reduce_1d_plan, reduce_2d_plan, Reduce2dPattern, ReducePattern};
    pub use crate::request::{
        CollectiveKind, CollectiveRequest, ResolvedPlan, Schedule, TenantId, Topology,
    };
    pub use crate::runner::{
        assert_outputs_close, expected_reduce, run_plan, RunConfig, RunOutcome,
    };
    pub use crate::select::{
        select_allreduce_1d, select_allreduce_2d, select_reduce_1d, select_reduce_2d,
    };
    pub use crate::serve::{
        AdmissionConfig, AdmissionInfo, AdmissionOutcome, BatchOrder, CollectiveService,
        LatencySummary, Response, ResponseHandle, ServiceConfig, ServiceStats, TenantBudget,
    };
    pub use crate::session::{Session, SessionConfig, SessionStats};
    pub use wse_fabric::geometry::{Coord, GridDim};
    pub use wse_fabric::program::ReduceOp;
    pub use wse_fabric::EngineKind;
    pub use wse_model::Machine;
}
