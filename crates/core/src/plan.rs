//! Executable collective plans: per-PE programs plus router scripts.
//!
//! A [`CollectivePlan`] is the output of "code generation" for one
//! collective on one set of parameters: for every PE it holds the program
//! the processor runs and the routing scripts its router needs, exactly like
//! the per-PE CSL sources and routing configurations the paper's generator
//! emits. Plans are built by the algorithm modules of this crate and
//! executed on the `wse-fabric` simulator by [`crate::runner`].

use std::collections::BTreeSet;

use wse_fabric::geometry::{Coord, GridDim};
use wse_fabric::program::PeProgram;
use wse_fabric::router::{ColorScript, RouteRule};
use wse_fabric::wavelet::Color;
use wse_fabric::Fabric;

/// A fully generated collective schedule, ready to be applied to a fabric.
///
/// `PartialEq` compares the full generated artefact — programs, routing
/// scripts, data/result PEs — which is what the plan-cache tests use to
/// check that a cache hit is byte-identical to a cold build.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectivePlan {
    name: String,
    dim: GridDim,
    root: Coord,
    vector_len: u32,
    programs: Vec<PeProgram>,
    scripts: Vec<Vec<(Color, ColorScript)>>,
    data_pes: Vec<Coord>,
    result_pes: Vec<Coord>,
    /// Per data PE (same order as `data_pes`): the `(offset, len)` slice of
    /// local memory its input vector is installed at. Full-vector collectives
    /// use `(0, vector_len)`; sharded kinds (ReduceScatter output, AllGather
    /// input, Scatter/Gather shards) use chunk-sized slices.
    input_specs: Vec<(u32, u32)>,
    /// Per result PE (same order as `result_pes`): the `(offset, len)` slice
    /// of local memory the output vector is read from.
    output_specs: Vec<(u32, u32)>,
}

impl CollectivePlan {
    /// An empty plan for a grid, rooted at `root`, operating on vectors of
    /// `vector_len` wavelets.
    pub fn new(name: impl Into<String>, dim: GridDim, root: Coord, vector_len: u32) -> Self {
        assert!(dim.contains(root), "root {root} outside the grid");
        assert!(vector_len >= 1, "collectives operate on at least one wavelet");
        CollectivePlan {
            name: name.into(),
            dim,
            root,
            vector_len,
            programs: vec![PeProgram::new(); dim.num_pes()],
            scripts: vec![Vec::new(); dim.num_pes()],
            data_pes: Vec::new(),
            result_pes: Vec::new(),
            input_specs: Vec::new(),
            output_specs: Vec::new(),
        }
    }

    /// Human-readable name (used by the benchmark harnesses).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grid the plan targets.
    pub fn dim(&self) -> GridDim {
        self.dim
    }

    /// The root PE of the collective.
    pub fn root(&self) -> Coord {
        self.root
    }

    /// Vector length in wavelets (32-bit elements) per participating PE.
    pub fn vector_len(&self) -> u32 {
        self.vector_len
    }

    /// The PEs that contribute an input vector.
    pub fn data_pes(&self) -> &[Coord] {
        &self.data_pes
    }

    /// The PEs that hold the result after the collective.
    pub fn result_pes(&self) -> &[Coord] {
        &self.result_pes
    }

    /// Per data PE (parallel to [`CollectivePlan::data_pes`]): the
    /// `(offset, len)` slice of local memory each input vector occupies —
    /// the plan's input shape contract.
    pub fn input_specs(&self) -> &[(u32, u32)] {
        &self.input_specs
    }

    /// Per result PE (parallel to [`CollectivePlan::result_pes`]): the
    /// `(offset, len)` slice of local memory each output vector is read
    /// from — the plan's output shape contract.
    pub fn output_specs(&self) -> &[(u32, u32)] {
        &self.output_specs
    }

    /// Declare a PE as holding a full-length input vector (at offset 0).
    pub fn add_data_pe(&mut self, at: Coord) {
        let len = self.vector_len;
        self.add_data_pe_slice(at, 0, len);
    }

    /// Declare a PE as holding an input slice of `len` elements installed at
    /// local `offset` (sharded inputs, e.g. AllGather consuming one chunk
    /// per PE).
    pub fn add_data_pe_slice(&mut self, at: Coord, offset: u32, len: u32) {
        debug_assert!(self.dim.contains(at));
        debug_assert!(len >= 1, "an input slice holds at least one element");
        self.data_pes.push(at);
        self.input_specs.push((offset, len));
    }

    /// Declare a PE as holding the full-length result (at offset 0) after
    /// the collective.
    pub fn add_result_pe(&mut self, at: Coord) {
        let len = self.vector_len;
        self.add_result_pe_slice(at, 0, len);
    }

    /// Declare a PE as holding an output slice of `len` elements at local
    /// `offset` (sharded outputs, e.g. ReduceScatter emitting one chunk per
    /// PE).
    pub fn add_result_pe_slice(&mut self, at: Coord, offset: u32, len: u32) {
        debug_assert!(self.dim.contains(at));
        debug_assert!(len >= 1, "an output slice holds at least one element");
        self.result_pes.push(at);
        self.output_specs.push((offset, len));
    }

    /// Remove all result-PE declarations and their output specs (used when a
    /// composition changes where the result lives, e.g. Reduce extended to
    /// AllReduce).
    pub fn clear_result_pes(&mut self) {
        self.result_pes.clear();
        self.output_specs.clear();
    }

    /// Mutable access to the program of a PE.
    pub fn program_mut(&mut self, at: Coord) -> &mut PeProgram {
        let idx = self.dim.index(at);
        &mut self.programs[idx]
    }

    /// The program of a PE.
    pub fn program(&self, at: Coord) -> &PeProgram {
        &self.programs[self.dim.index(at)]
    }

    /// Append a routing rule to the script of `color` at `at` (creating the
    /// script if necessary). Rules are applied by the router in the order
    /// they are appended.
    pub fn push_rule(&mut self, at: Coord, color: Color, rule: RouteRule) {
        let idx = self.dim.index(at);
        let scripts = &mut self.scripts[idx];
        if let Some((_, script)) = scripts.iter_mut().find(|(c, _)| *c == color) {
            script.push(rule);
        } else {
            scripts.push((color, ColorScript::new(vec![rule])));
        }
    }

    /// The routing scripts of a PE.
    pub fn scripts(&self, at: Coord) -> &[(Color, ColorScript)] {
        &self.scripts[self.dim.index(at)]
    }

    /// Replace the most recently appended rule of `color` at `at` (used by
    /// plan builders to merge adjacent identical rules).
    pub fn replace_last_rule(&mut self, at: Coord, color: Color, rule: RouteRule) {
        let idx = self.dim.index(at);
        let (_, script) = self.scripts[idx]
            .iter_mut()
            .find(|(c, _)| *c == color)
            .expect("replace_last_rule: no script for this color");
        let mut rules = script.rules().to_vec();
        *rules.last_mut().expect("replace_last_rule: empty script") = rule;
        *script = ColorScript::new(rules);
    }

    /// The set of colors the plan uses anywhere.
    pub fn colors_used(&self) -> BTreeSet<Color> {
        let mut colors = BTreeSet::new();
        for scripts in &self.scripts {
            for (c, _) in scripts {
                colors.insert(*c);
            }
        }
        colors
    }

    /// Total number of wavelets injected by all PE programs.
    pub fn total_wavelets_sent(&self) -> u64 {
        self.programs.iter().map(PeProgram::total_sent).sum()
    }

    /// Total number of wavelets consumed by all PE programs.
    pub fn total_wavelets_received(&self) -> u64 {
        self.programs.iter().map(PeProgram::total_received).sum()
    }

    /// Install the plan's programs and routing scripts on a fabric.
    ///
    /// Input data is *not* installed here; see [`crate::runner::run_plan`].
    ///
    /// # Panics
    ///
    /// Panics when the fabric's grid differs from the plan's. The session
    /// and executor execution paths allocate (or pool) fabrics by the
    /// plan's own grid shape, so they cannot hit this; it guards hand-built
    /// fabrics only.
    pub fn apply(&self, fabric: &mut Fabric) {
        assert_eq!(fabric.dim(), self.dim, "plan and fabric dimensions differ");
        for i in 0..self.dim.num_pes() {
            let at = self.dim.coord(i);
            fabric.set_program(at, &self.programs[i]);
            for (color, script) in &self.scripts[i] {
                fabric.set_router_script(at, *color, script.clone());
            }
        }
    }

    /// Sequentially compose two plans (e.g. Reduce followed by Broadcast).
    ///
    /// The phases must use disjoint colors so their routing scripts cannot
    /// interfere; each PE simply runs the first phase's program followed by
    /// the second phase's.
    pub fn then(mut self, other: &CollectivePlan, name: impl Into<String>) -> CollectivePlan {
        assert_eq!(self.dim, other.dim, "composed plans must share the grid");
        assert_eq!(
            self.vector_len, other.vector_len,
            "composed plans must share the vector length"
        );
        let own_colors = self.colors_used();
        let other_colors = other.colors_used();
        assert!(
            own_colors.is_disjoint(&other_colors),
            "composed plans must use disjoint colors ({:?} vs {:?})",
            own_colors,
            other_colors
        );
        for i in 0..self.dim.num_pes() {
            for instruction in other.programs[i].instructions() {
                self.programs[i].push(*instruction);
            }
            for (color, script) in &other.scripts[i] {
                for rule in script.rules() {
                    let at = self.dim.coord(i);
                    self.push_rule(at, *color, *rule);
                }
            }
        }
        self.name = name.into();
        self.result_pes = other.result_pes.clone();
        self.output_specs = other.output_specs.clone();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_fabric::geometry::{Direction, DirectionSet};
    use wse_fabric::program::ReduceOp;
    use wse_fabric::FabricParams;

    fn simple_plan(name: &str, color: u8) -> CollectivePlan {
        let dim = GridDim::row(2);
        let c = Color::new(color);
        let mut plan = CollectivePlan::new(name, dim, Coord::new(0, 0), 4);
        plan.program_mut(Coord::new(1, 0)).send(c, 0, 4);
        plan.program_mut(Coord::new(0, 0)).recv_reduce(c, 0, 4, ReduceOp::Sum);
        plan.push_rule(
            Coord::new(1, 0),
            c,
            RouteRule::forever(Direction::Ramp, DirectionSet::single(Direction::West)),
        );
        plan.push_rule(
            Coord::new(0, 0),
            c,
            RouteRule::forever(Direction::East, DirectionSet::single(Direction::Ramp)),
        );
        plan.add_data_pe(Coord::new(0, 0));
        plan.add_data_pe(Coord::new(1, 0));
        plan.add_result_pe(Coord::new(0, 0));
        plan
    }

    #[test]
    fn plan_bookkeeping() {
        let plan = simple_plan("test", 0);
        assert_eq!(plan.vector_len(), 4);
        assert_eq!(plan.data_pes().len(), 2);
        assert_eq!(plan.result_pes(), &[Coord::new(0, 0)]);
        assert_eq!(plan.colors_used().len(), 1);
        assert_eq!(plan.total_wavelets_sent(), 4);
        assert_eq!(plan.total_wavelets_received(), 4);
        assert_eq!(plan.scripts(Coord::new(0, 0)).len(), 1);
    }

    #[test]
    fn push_rule_appends_to_existing_script() {
        let dim = GridDim::row(2);
        let c = Color::new(5);
        let mut plan = CollectivePlan::new("p", dim, Coord::new(0, 0), 1);
        let at = Coord::new(0, 0);
        plan.push_rule(
            at,
            c,
            RouteRule::counted(Direction::East, DirectionSet::single(Direction::Ramp), 3),
        );
        plan.push_rule(
            at,
            c,
            RouteRule::forever(Direction::West, DirectionSet::single(Direction::Ramp)),
        );
        assert_eq!(plan.scripts(at).len(), 1);
        assert_eq!(plan.scripts(at)[0].1.len(), 2);
    }

    #[test]
    fn apply_and_run_a_trivial_plan() {
        let plan = simple_plan("apply", 2);
        let mut fabric = Fabric::new(plan.dim(), FabricParams::default());
        plan.apply(&mut fabric);
        fabric.set_local(Coord::new(0, 0), &[1.0, 2.0, 3.0, 4.0]);
        fabric.set_local(Coord::new(1, 0), &[10.0, 20.0, 30.0, 40.0]);
        fabric.run().expect("plan runs");
        assert_eq!(fabric.local(Coord::new(0, 0))[..4], [11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn composition_requires_disjoint_colors() {
        let a = simple_plan("a", 0);
        let b = simple_plan("b", 1);
        let composed = a.then(&b, "a-then-b");
        assert_eq!(composed.colors_used().len(), 2);
        assert_eq!(composed.program(Coord::new(1, 0)).len(), 2);
        assert_eq!(composed.name(), "a-then-b");
    }

    #[test]
    #[should_panic(expected = "disjoint colors")]
    fn composition_rejects_overlapping_colors() {
        let a = simple_plan("a", 0);
        let b = simple_plan("b", 0);
        let _ = a.then(&b, "broken");
    }
}
