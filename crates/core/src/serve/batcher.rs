//! Deadline/size/cost batch formation.
//!
//! The batcher accumulates submitted requests and flushes a batch to the
//! executor when either trigger fires:
//!
//! * **size** — the accumulator reaches `max_batch` items (throughput
//!   under load: full batches maximise executor parallelism), or
//! * **deadline** — `max_wait` has elapsed since the *oldest* accumulated
//!   item arrived (tail latency under light load: a lone request is never
//!   held longer than the batch window).
//!
//! With an active admission policy ([`Batcher::with_policy`]) the flush is
//! additionally *cost-aware*: items carry the predicted cycles stamped at
//! admission, the cut can order them shortest-predicted-first
//! ([`BatchOrder::ShortestPredictedFirst`], stable — arrival order breaks
//! ties), and `max_batch_cycles` stops the cut when the batch's summed
//! predicted cycles would exceed the cap (always taking at least one item,
//! so progress is guaranteed). Items left behind by a capped cut keep their
//! original arrival times, so the deadline stays anchored at the oldest
//! *remaining* item and a cut-out request cannot wait a whole extra window.
//!
//! The accumulator is pure state driven by explicit [`Instant`]s — the
//! service thread feeds it the real clock, the unit tests feed it a
//! deterministic one — so the flush conditions are testable without timing
//! races.

use std::time::{Duration, Instant};

use super::admit::BatchOrder;

/// Why a batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The accumulator reached `max_batch` items.
    Size,
    /// `max_wait` elapsed since the oldest accumulated item arrived.
    Deadline,
    /// The service is shutting down and drained its remaining items.
    Shutdown,
}

/// One accumulated item with the cost metadata the cut policy needs.
#[derive(Debug)]
struct Entry<T> {
    item: T,
    /// Predicted cycles (0 on the plain, cost-blind path).
    cost: u64,
    arrived: Instant,
}

/// The deadline/size accumulator. Generic over the item type so the flush
/// logic can be unit-tested with plain values.
#[derive(Debug)]
pub(crate) struct Batcher<T> {
    max_batch: usize,
    max_wait: Duration,
    order: BatchOrder,
    max_batch_cycles: Option<u64>,
    entries: Vec<Entry<T>>,
}

impl<T> Batcher<T> {
    /// A plain FIFO batcher with no cycle cap (the PR 6 behavior).
    pub(crate) fn new(max_batch: usize, max_wait: Duration) -> Self {
        Batcher::with_policy(max_batch, max_wait, BatchOrder::Fifo, None)
    }

    /// A batcher cutting batches under an admission policy: `order` decides
    /// how a cut is ordered, `max_batch_cycles` where it stops.
    pub(crate) fn with_policy(
        max_batch: usize,
        max_wait: Duration,
        order: BatchOrder,
        max_batch_cycles: Option<u64>,
    ) -> Self {
        Batcher {
            max_batch: max_batch.max(1),
            max_wait,
            order,
            max_batch_cycles,
            entries: Vec::new(),
        }
    }

    /// Number of accumulated (not yet flushed) items.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Accept an item arriving at `now`; returns a full batch if this item
    /// completed one (the size trigger).
    pub(crate) fn push(&mut self, item: T, now: Instant) -> Option<(Vec<T>, FlushReason)> {
        self.push_costed(item, 0, now);
        (self.entries.len() >= self.max_batch).then(|| self.cut(FlushReason::Size))
    }

    /// Accept an item with its predicted cost, without flushing — the
    /// admission-aware service loop drives flushes through
    /// [`Batcher::flush_ready`] so a cycle-capped cut can leave a remainder.
    pub(crate) fn push_costed(&mut self, item: T, cost: u64, now: Instant) {
        self.entries.push(Entry { item, cost, arrived: now });
    }

    /// The instant at which the current partial batch must flush: `max_wait`
    /// after its oldest item arrived. `None` while the accumulator is empty
    /// (nothing is waiting, so there is nothing to deadline).
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.entries.iter().map(|entry| entry.arrived).min().map(|oldest| oldest + self.max_wait)
    }

    /// Cut a batch if a trigger is due at `now`: size first, then deadline.
    /// Call in a loop — a cycle-capped cut can leave a still-due remainder.
    pub(crate) fn flush_ready(&mut self, now: Instant) -> Option<(Vec<T>, FlushReason)> {
        if self.entries.len() >= self.max_batch {
            return Some(self.cut(FlushReason::Size));
        }
        match self.deadline() {
            Some(deadline) if now >= deadline => Some(self.cut(FlushReason::Deadline)),
            _ => None,
        }
    }

    /// Flush the partial batch if its deadline has passed at `now`.
    pub(crate) fn flush_due(&mut self, now: Instant) -> Option<(Vec<T>, FlushReason)> {
        match self.deadline() {
            Some(deadline) if now >= deadline => Some(self.cut(FlushReason::Deadline)),
            _ => None,
        }
    }

    /// Flush accumulated items regardless of deadline (shutdown drain);
    /// `None` when empty. Call in a loop when a cycle cap is set — each cut
    /// honours the cap, so the drain may take several batches.
    pub(crate) fn flush_remaining(&mut self) -> Option<(Vec<T>, FlushReason)> {
        (!self.entries.is_empty()).then(|| self.cut(FlushReason::Shutdown))
    }

    /// Cut one batch out of the accumulator under the configured policy.
    ///
    /// The cut visits items in policy order (arrival, or stable
    /// shortest-cost-first) and stops at `max_batch` items or where adding
    /// the next item would push the summed cost over `max_batch_cycles` —
    /// but always takes at least one item. FIFO with a cap *stops* rather
    /// than skips past an oversized head: admitting later items around it
    /// would silently reorder a policy whose contract is arrival order.
    /// Unselected items stay accumulated with their original arrival times.
    fn cut(&mut self, reason: FlushReason) -> (Vec<T>, FlushReason) {
        let mut visit: Vec<usize> = (0..self.entries.len()).collect();
        if self.order == BatchOrder::ShortestPredictedFirst {
            // Stable: equal costs keep arrival order.
            visit.sort_by_key(|&index| self.entries[index].cost);
        }
        let mut selected = Vec::new();
        let mut cycles: u64 = 0;
        for &index in &visit {
            if selected.len() >= self.max_batch {
                break;
            }
            let cost = self.entries[index].cost;
            if let Some(cap) = self.max_batch_cycles {
                if !selected.is_empty() && cycles.saturating_add(cost) > cap {
                    break;
                }
            }
            selected.push(index);
            cycles = cycles.saturating_add(cost);
        }
        let mut slots: Vec<Option<Entry<T>>> =
            std::mem::take(&mut self.entries).into_iter().map(Some).collect();
        let batch = selected
            .iter()
            .map(|&index| slots[index].take().expect("cut indices are distinct").item)
            .collect();
        self.entries = slots.into_iter().flatten().collect();
        (batch, reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAIT: Duration = Duration::from_millis(10);

    fn at(base: Instant, millis: u64) -> Instant {
        base + Duration::from_millis(millis)
    }

    /// Deterministic-clock proof of the size path: the `max_batch`-th item
    /// flushes the batch immediately, well before the deadline.
    #[test]
    fn size_trigger_flushes_a_full_batch() {
        let base = Instant::now();
        let mut batcher = Batcher::new(3, WAIT);
        assert!(batcher.push('a', at(base, 0)).is_none());
        assert!(batcher.push('b', at(base, 1)).is_none());
        let (batch, reason) = batcher.push('c', at(base, 2)).expect("third item fills the batch");
        assert_eq!(batch, vec!['a', 'b', 'c']);
        assert_eq!(reason, FlushReason::Size);
        assert_eq!(batcher.len(), 0);
        assert_eq!(batcher.deadline(), None, "a flushed accumulator has no deadline");
    }

    /// Deterministic-clock proof of the deadline path: a partial batch
    /// flushes exactly at `opened_at + max_wait`, not before, and the
    /// deadline is anchored at the *oldest* item.
    #[test]
    fn deadline_trigger_flushes_a_partial_batch_at_max_wait() {
        let base = Instant::now();
        let mut batcher = Batcher::new(16, WAIT);
        assert!(batcher.push(1u32, at(base, 0)).is_none());
        // A later item does not push the deadline out.
        assert!(batcher.push(2u32, at(base, 7)).is_none());
        assert_eq!(batcher.deadline(), Some(at(base, 10)));
        // One tick early: not due yet.
        assert!(batcher.flush_due(at(base, 9)).is_none());
        assert_eq!(batcher.len(), 2);
        // At the deadline: the partial batch flushes.
        let (batch, reason) = batcher.flush_due(at(base, 10)).expect("due at max_wait");
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(reason, FlushReason::Deadline);
        // The next arrival opens a fresh window anchored at its own time.
        assert!(batcher.push(3u32, at(base, 25)).is_none());
        assert_eq!(batcher.deadline(), Some(at(base, 35)));
    }

    #[test]
    fn shutdown_drains_whatever_is_accumulated() {
        let base = Instant::now();
        let mut batcher = Batcher::new(16, WAIT);
        assert!(batcher.flush_remaining().is_none(), "nothing to drain when empty");
        batcher.push('x', at(base, 0));
        let (batch, reason) = batcher.flush_remaining().unwrap();
        assert_eq!(batch, vec!['x']);
        assert_eq!(reason, FlushReason::Shutdown);
    }

    #[test]
    fn max_batch_of_one_flushes_every_push() {
        let base = Instant::now();
        let mut batcher = Batcher::new(1, WAIT);
        let (batch, reason) = batcher.push(9u8, at(base, 0)).unwrap();
        assert_eq!((batch, reason), (vec![9], FlushReason::Size));
    }

    /// SJF cut: items leave shortest-predicted-first, arrival order breaking
    /// ties, and the flush trigger itself is unchanged.
    #[test]
    fn shortest_predicted_first_orders_the_cut_stably() {
        let base = Instant::now();
        let mut batcher = Batcher::with_policy(16, WAIT, BatchOrder::ShortestPredictedFirst, None);
        batcher.push_costed('a', 500, at(base, 0));
        batcher.push_costed('b', 20, at(base, 1));
        batcher.push_costed('c', 500, at(base, 2));
        batcher.push_costed('d', 5, at(base, 3));
        assert!(batcher.flush_ready(at(base, 9)).is_none(), "not due before the deadline");
        let (batch, reason) = batcher.flush_ready(at(base, 10)).expect("deadline due");
        assert_eq!(batch, vec!['d', 'b', 'a', 'c'], "cost order; equal costs keep arrival order");
        assert_eq!(reason, FlushReason::Deadline);
    }

    /// The cycle cap cuts the batch early; the remainder stays accumulated
    /// with its original arrival anchoring and flushes in a follow-up cut.
    #[test]
    fn max_batch_cycles_cuts_and_the_remainder_keeps_its_deadline() {
        let base = Instant::now();
        let mut batcher =
            Batcher::with_policy(16, WAIT, BatchOrder::ShortestPredictedFirst, Some(100));
        batcher.push_costed(1u32, 60, at(base, 0));
        batcher.push_costed(2u32, 1000, at(base, 1));
        batcher.push_costed(3u32, 30, at(base, 2));
        let (batch, _) = batcher.flush_ready(at(base, 10)).expect("deadline due");
        assert_eq!(batch, vec![3, 1], "30 + 60 fits under 100; 1000 does not");
        // The oversized item is still anchored at its arrival: due already.
        assert_eq!(batcher.deadline(), Some(at(base, 11)));
        let (batch, _) = batcher.flush_ready(at(base, 11)).expect("remainder still due");
        assert_eq!(batch, vec![2], "an over-cap item still flushes alone");
        assert_eq!(batcher.len(), 0);
    }

    /// FIFO with a cap stops at an oversized head instead of skipping past
    /// it — a FIFO policy must never reorder.
    #[test]
    fn fifo_cycle_cap_never_reorders_around_an_expensive_head() {
        let base = Instant::now();
        let mut batcher = Batcher::with_policy(16, WAIT, BatchOrder::Fifo, Some(100));
        batcher.push_costed("big", 90, at(base, 0));
        batcher.push_costed("mid", 50, at(base, 1));
        batcher.push_costed("sml", 10, at(base, 2));
        let (batch, _) = batcher.flush_ready(at(base, 10)).expect("deadline due");
        assert_eq!(batch, vec!["big"], "90 + 50 would exceed the cap; FIFO does not skip");
        let (batch, _) = batcher.flush_ready(at(base, 11)).expect("remainder due");
        assert_eq!(batch, vec!["mid", "sml"]);
    }

    /// A capped shutdown drain takes several cuts but loses nothing.
    #[test]
    fn capped_shutdown_drain_takes_multiple_batches() {
        let base = Instant::now();
        let mut batcher = Batcher::with_policy(16, WAIT, BatchOrder::Fifo, Some(50));
        for (index, cost) in [40u64, 40, 40].into_iter().enumerate() {
            batcher.push_costed(index, cost, at(base, index as u64));
        }
        let mut drained = Vec::new();
        while let Some((batch, reason)) = batcher.flush_remaining() {
            assert_eq!(reason, FlushReason::Shutdown);
            drained.extend(batch);
        }
        assert_eq!(drained, vec![0, 1, 2]);
    }
}
