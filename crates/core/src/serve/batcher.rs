//! Deadline/size batch formation.
//!
//! The batcher accumulates submitted requests and flushes a batch to the
//! executor when either trigger fires:
//!
//! * **size** — the accumulator reaches `max_batch` items (throughput
//!   under load: full batches maximise executor parallelism), or
//! * **deadline** — `max_wait` has elapsed since the *oldest* accumulated
//!   item arrived (tail latency under light load: a lone request is never
//!   held longer than the batch window).
//!
//! The accumulator is pure state driven by explicit [`Instant`]s — the
//! service thread feeds it the real clock, the unit tests feed it a
//! deterministic one — so the flush conditions are testable without timing
//! races.

use std::time::{Duration, Instant};

/// Why a batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The accumulator reached `max_batch` items.
    Size,
    /// `max_wait` elapsed since the oldest accumulated item arrived.
    Deadline,
    /// The service is shutting down and drained its remaining items.
    Shutdown,
}

/// The deadline/size accumulator. Generic over the item type so the flush
/// logic can be unit-tested with plain values.
#[derive(Debug)]
pub(crate) struct Batcher<T> {
    max_batch: usize,
    max_wait: Duration,
    items: Vec<T>,
    opened_at: Option<Instant>,
}

impl<T> Batcher<T> {
    pub(crate) fn new(max_batch: usize, max_wait: Duration) -> Self {
        Batcher { max_batch: max_batch.max(1), max_wait, items: Vec::new(), opened_at: None }
    }

    /// Number of accumulated (not yet flushed) items.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    /// Accept an item arriving at `now`; returns a full batch if this item
    /// completed one (the size trigger).
    pub(crate) fn push(&mut self, item: T, now: Instant) -> Option<(Vec<T>, FlushReason)> {
        if self.items.is_empty() {
            self.opened_at = Some(now);
        }
        self.items.push(item);
        (self.items.len() >= self.max_batch).then(|| (self.take(), FlushReason::Size))
    }

    /// The instant at which the current partial batch must flush: `max_wait`
    /// after its oldest item arrived. `None` while the accumulator is empty
    /// (nothing is waiting, so there is nothing to deadline).
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.opened_at.map(|opened_at| opened_at + self.max_wait)
    }

    /// Flush the partial batch if its deadline has passed at `now`.
    pub(crate) fn flush_due(&mut self, now: Instant) -> Option<(Vec<T>, FlushReason)> {
        match self.deadline() {
            Some(deadline) if now >= deadline => Some((self.take(), FlushReason::Deadline)),
            _ => None,
        }
    }

    /// Flush whatever is accumulated, regardless of deadline (shutdown
    /// drain). `None` when empty.
    pub(crate) fn flush_remaining(&mut self) -> Option<(Vec<T>, FlushReason)> {
        (!self.items.is_empty()).then(|| (self.take(), FlushReason::Shutdown))
    }

    fn take(&mut self) -> Vec<T> {
        self.opened_at = None;
        std::mem::take(&mut self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAIT: Duration = Duration::from_millis(10);

    fn at(base: Instant, millis: u64) -> Instant {
        base + Duration::from_millis(millis)
    }

    /// Deterministic-clock proof of the size path: the `max_batch`-th item
    /// flushes the batch immediately, well before the deadline.
    #[test]
    fn size_trigger_flushes_a_full_batch() {
        let base = Instant::now();
        let mut batcher = Batcher::new(3, WAIT);
        assert!(batcher.push('a', at(base, 0)).is_none());
        assert!(batcher.push('b', at(base, 1)).is_none());
        let (batch, reason) = batcher.push('c', at(base, 2)).expect("third item fills the batch");
        assert_eq!(batch, vec!['a', 'b', 'c']);
        assert_eq!(reason, FlushReason::Size);
        assert_eq!(batcher.len(), 0);
        assert_eq!(batcher.deadline(), None, "a flushed accumulator has no deadline");
    }

    /// Deterministic-clock proof of the deadline path: a partial batch
    /// flushes exactly at `opened_at + max_wait`, not before, and the
    /// deadline is anchored at the *oldest* item.
    #[test]
    fn deadline_trigger_flushes_a_partial_batch_at_max_wait() {
        let base = Instant::now();
        let mut batcher = Batcher::new(16, WAIT);
        assert!(batcher.push(1u32, at(base, 0)).is_none());
        // A later item does not push the deadline out.
        assert!(batcher.push(2u32, at(base, 7)).is_none());
        assert_eq!(batcher.deadline(), Some(at(base, 10)));
        // One tick early: not due yet.
        assert!(batcher.flush_due(at(base, 9)).is_none());
        assert_eq!(batcher.len(), 2);
        // At the deadline: the partial batch flushes.
        let (batch, reason) = batcher.flush_due(at(base, 10)).expect("due at max_wait");
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(reason, FlushReason::Deadline);
        // The next arrival opens a fresh window anchored at its own time.
        assert!(batcher.push(3u32, at(base, 25)).is_none());
        assert_eq!(batcher.deadline(), Some(at(base, 35)));
    }

    #[test]
    fn shutdown_drains_whatever_is_accumulated() {
        let base = Instant::now();
        let mut batcher = Batcher::new(16, WAIT);
        assert!(batcher.flush_remaining().is_none(), "nothing to drain when empty");
        batcher.push('x', at(base, 0));
        let (batch, reason) = batcher.flush_remaining().unwrap();
        assert_eq!(batch, vec!['x']);
        assert_eq!(reason, FlushReason::Shutdown);
    }

    #[test]
    fn max_batch_of_one_flushes_every_push() {
        let base = Instant::now();
        let mut batcher = Batcher::new(1, WAIT);
        let (batch, reason) = batcher.push(9u8, at(base, 0)).unwrap();
        assert_eq!((batch, reason), (vec![9], FlushReason::Size));
    }
}
