//! The bounded submission queue between submitters and the batcher thread.
//!
//! A plain `Mutex<VecDeque>` with two condition variables: `not_empty` wakes
//! the batcher when work (or shutdown) arrives, `not_full` wakes blocked
//! submitters when the batcher drains a slot. The bound is the service's
//! backpressure mechanism — [`SubmissionQueue::try_push`] reports a full
//! queue to the caller (surfaced as [`crate::CollectiveError::QueueFull`]),
//! [`SubmissionQueue::push`] blocks until a slot frees up.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Why a non-blocking push did not enqueue. The rejected item is handed
/// back so the caller keeps ownership of its inputs.
#[derive(Debug)]
pub(crate) enum TryPushError<T> {
    /// The queue is at capacity (backpressure).
    Full(T),
    /// The queue is closed (service shut down).
    Closed(T),
}

/// What a batcher-side pop observed.
#[derive(Debug)]
pub(crate) enum Popped<T> {
    /// The oldest queued item.
    Item(T),
    /// The deadline passed with the queue still empty.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// A consumer wakeup was requested without an item (see
    /// [`SubmissionQueue::kick`]); cleared when a pop observes it.
    kicked: bool,
}

/// A bounded MPSC queue: many submitters, one batcher.
#[derive(Debug)]
pub(crate) struct SubmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> SubmissionQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        SubmissionQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false, kicked: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued (not yet popped) items.
    pub(crate) fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Enqueue without blocking; a full or closed queue hands the item back.
    pub(crate) fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, blocking while the queue is at capacity. Returns the item
    /// back if the queue is (or becomes, while waiting) closed.
    pub(crate) fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.wait_not_full(state);
        }
    }

    /// Dequeue the oldest item, waiting until one arrives, `deadline`
    /// passes, or the queue is closed *and* drained — a closed queue still
    /// yields its remaining items first, which is what lets shutdown drain
    /// in-flight work.
    pub(crate) fn pop(&self, deadline: Option<Instant>) -> Popped<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Popped::Item(item);
            }
            if state.closed {
                return Popped::Closed;
            }
            if state.kicked {
                state.kicked = false;
                return Popped::TimedOut;
            }
            match deadline {
                None => state = self.wait_not_empty(state),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Popped::TimedOut;
                    }
                    state = self
                        .not_empty
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0;
                }
            }
        }
    }

    /// Pop the oldest queued item if one is immediately available, without
    /// waiting. Used by the batcher to ingest work that arrived while a
    /// batch executed, so the next cut can reorder it ahead of leftovers.
    pub(crate) fn try_pop(&self) -> Option<T> {
        let mut state = self.lock();
        let item = state.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Wake the consumer without enqueueing anything: the next (or a
    /// currently blocked) [`SubmissionQueue::pop`] on an empty queue
    /// returns [`Popped::TimedOut`] so the consumer re-evaluates its
    /// deadlines. Used by the admission layer when a deferral is created
    /// while the batcher may be sleeping with a stale (or absent) wakeup
    /// time. Queued items still drain first — a kick never starves work.
    pub(crate) fn kick(&self) {
        self.lock().kicked = true;
        self.not_empty.notify_all();
    }

    /// Close the queue: future pushes fail, pops drain what is left and
    /// then report [`Popped::Closed`]. Wakes every waiter on both sides.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn wait_not_empty<'a>(
        &'a self,
        state: MutexGuard<'a, QueueState<T>>,
    ) -> MutexGuard<'a, QueueState<T>> {
        self.not_empty.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn wait_not_full<'a>(
        &'a self,
        state: MutexGuard<'a, QueueState<T>>,
    ) -> MutexGuard<'a, QueueState<T>> {
        self.not_full.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn try_push_reports_full_at_capacity_and_hands_the_item_back() {
        let queue = SubmissionQueue::new(2);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        match queue.try_push(3) {
            Err(TryPushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(queue.len(), 2);
        // Draining one slot makes room again.
        assert!(matches!(queue.pop(None), Popped::Item(1)));
        queue.try_push(3).unwrap();
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn pop_times_out_on_an_empty_queue() {
        let queue: SubmissionQueue<u32> = SubmissionQueue::new(4);
        let start = Instant::now();
        let deadline = start + Duration::from_millis(5);
        assert!(matches!(queue.pop(Some(deadline)), Popped::TimedOut));
        assert!(Instant::now() >= deadline);
    }

    #[test]
    fn closed_queue_drains_before_reporting_closed() {
        let queue = SubmissionQueue::new(4);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        queue.close();
        assert!(matches!(queue.try_push(3), Err(TryPushError::Closed(3))));
        assert!(matches!(queue.push(4), Err(4)));
        assert!(matches!(queue.pop(None), Popped::Item(1)));
        assert!(matches!(queue.pop(None), Popped::Item(2)));
        assert!(matches!(queue.pop(None), Popped::Closed));
    }

    #[test]
    fn kick_wakes_an_idle_consumer_without_an_item() {
        let queue: SubmissionQueue<u32> = SubmissionQueue::new(4);
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| queue.pop(None));
            std::thread::sleep(Duration::from_millis(2));
            queue.kick();
            assert!(matches!(popper.join().unwrap(), Popped::TimedOut));
        });
        // Items still take precedence over a pending kick.
        queue.kick();
        queue.try_push(7).unwrap();
        assert!(matches!(queue.pop(None), Popped::Item(7)));
    }

    #[test]
    fn blocking_push_waits_for_a_slot() {
        let queue = SubmissionQueue::new(1);
        queue.try_push(1).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Blocks until the main thread pops.
                queue.push(2).unwrap();
            });
            std::thread::sleep(Duration::from_millis(2));
            assert!(matches!(queue.pop(None), Popped::Item(1)));
            assert!(matches!(queue.pop(None), Popped::Item(2)));
        });
    }

    #[test]
    fn close_unblocks_a_waiting_producer() {
        let queue = SubmissionQueue::new(1);
        queue.try_push(1).unwrap();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| queue.push(2));
            std::thread::sleep(Duration::from_millis(2));
            queue.close();
            assert_eq!(waiter.join().unwrap(), Err(2));
        });
    }
}
