//! Completion handles: the caller's side of an in-flight request.
//!
//! Submitting a request to a [`crate::serve::CollectiveService`] returns a
//! [`ResponseHandle`] immediately; the batcher thread fulfils the handle's
//! shared slot when the request's batch completes. A handle can be blocked
//! on ([`ResponseHandle::wait`]) or polled ([`ResponseHandle::try_get`],
//! [`ResponseHandle::is_ready`]), and the delivered [`Response`] carries the
//! request's end-to-end latency (enqueue to completion) next to its result.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::error::CollectiveError;
use crate::runner::RunOutcome;
use crate::serve::admit::AdmissionInfo;

/// The completed form of a submitted request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's outcome: the run's outputs and report, or the typed
    /// error that rejected it.
    pub result: Result<RunOutcome, CollectiveError>,
    /// Wall-clock time from submission (enqueue) to completion, including
    /// queueing, batching delay and execution.
    pub latency: Duration,
    /// How admission control handled the request: `None` when the service
    /// runs without an active [`crate::serve::AdmissionConfig`], `Some`
    /// with the tenant, predicted cycles, deferral outcome and stamped
    /// noise-run index otherwise.
    pub admission: Option<AdmissionInfo>,
}

/// The shared slot a batcher fulfils and a handle observes.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    state: Mutex<Option<Response>>,
    ready: Condvar,
}

impl ResponseSlot {
    /// Deliver the response and wake every waiter. Called exactly once per
    /// accepted request (the service drains on shutdown, so every accepted
    /// request is eventually completed).
    pub(crate) fn fulfil(&self, response: Response) {
        *self.lock() = Some(response);
        self.ready.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<Response>> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A completion handle for one submitted request.
///
/// Handles are single-owner (not `Clone`): [`wait`](ResponseHandle::wait)
/// consumes the handle and moves the response out without copying;
/// [`try_get`](ResponseHandle::try_get) polls without consuming and clones
/// the response if it is ready, so a poller can keep the handle and still
/// `wait` later.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    /// A handle plus the slot the service will fulfil.
    pub(crate) fn new() -> (Self, Arc<ResponseSlot>) {
        let slot = Arc::new(ResponseSlot::default());
        (ResponseHandle { slot: Arc::clone(&slot) }, slot)
    }

    /// Block until the request completes and take its response.
    pub fn wait(self) -> Response {
        let mut state = self.slot.lock();
        loop {
            if let Some(response) = state.take() {
                return response;
            }
            state = self.slot.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Block up to `timeout` for the request to complete. Returns the
    /// response, or `None` (keeping the result available for a later
    /// [`wait`](ResponseHandle::wait) or `try_get`) if the timeout elapses
    /// first.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Response> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.slot.lock();
        loop {
            if state.is_some() {
                return state.clone();
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            state = self
                .slot
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// Poll for the response without blocking. Returns a clone if the
    /// request has completed, `None` otherwise; the handle stays usable
    /// either way.
    pub fn try_get(&self) -> Option<Response> {
        self.slot.lock().clone()
    }

    /// Whether the request has completed (a subsequent
    /// [`wait`](ResponseHandle::wait) will not block).
    pub fn is_ready(&self) -> bool {
        self.slot.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_response(micros: u64) -> Response {
        Response {
            result: Err(CollectiveError::ServiceStopped), // any result works for slot tests
            latency: Duration::from_micros(micros),
            admission: None,
        }
    }

    #[test]
    fn try_get_polls_and_wait_takes() {
        let (handle, slot) = ResponseHandle::new();
        assert!(!handle.is_ready());
        assert!(handle.try_get().is_none());
        slot.fulfil(ok_response(7));
        assert!(handle.is_ready());
        let polled = handle.try_get().expect("fulfilled slot polls ready");
        assert_eq!(polled.latency, Duration::from_micros(7));
        // Polling does not consume: wait still delivers.
        assert_eq!(handle.wait().latency, Duration::from_micros(7));
    }

    #[test]
    fn wait_blocks_until_fulfilled() {
        let (handle, slot) = ResponseHandle::new();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                slot.fulfil(ok_response(3));
            });
            assert_eq!(handle.wait().latency, Duration::from_micros(3));
        });
    }

    #[test]
    fn wait_timeout_expires_without_consuming() {
        let (handle, slot) = ResponseHandle::new();
        assert!(handle.wait_timeout(Duration::from_millis(1)).is_none());
        slot.fulfil(ok_response(1));
        assert!(handle.wait_timeout(Duration::from_millis(1)).is_some());
        assert!(handle.is_ready(), "wait_timeout never consumes the response");
    }
}
