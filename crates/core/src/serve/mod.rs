//! The async serving front-end: a continuously accepting collective
//! service.
//!
//! [`crate::executor::Executor::run_batch`] is synchronous and
//! caller-assembled: someone has to gather a batch before anything runs. A
//! [`CollectiveService`] closes that gap — it is the serving loop that turns
//! the parallel library into a service:
//!
//! * submitters hand in [`CollectiveRequest`]s continuously through a
//!   **bounded submission queue** ([`queue`]) and immediately get a
//!   [`ResponseHandle`] back ([`handle`]);
//! * a dedicated **batcher thread** forms batches by *deadline or size*
//!   ([`batcher`]): a batch is dispatched to the executor as soon as it
//!   holds `max_batch` requests, or `max_wait` after its oldest request
//!   arrived, whichever comes first;
//! * the queue bound is the **backpressure** mechanism:
//!   [`CollectiveService::try_submit`] fails fast with
//!   [`CollectiveError::QueueFull`], [`CollectiveService::submit`] blocks
//!   until a slot frees up;
//! * [`CollectiveService::shutdown`] closes the queue, **drains** every
//!   already-accepted request, fulfils its handle and joins the batcher —
//!   no accepted request is ever dropped;
//! * [`ServiceStats`] ([`stats`]) exposes queue depth, batch formation
//!   (count, flush reasons, size histogram) and enqueue-to-complete
//!   latency (p50/p99/mean/max).
//!
//! ## Determinism
//!
//! Batching must not change results. The batcher dispatches batches in
//! submission order and the executor assigns noise-run indices only to
//! items that actually execute, so the responses a service produces are
//! byte-identical to a fresh sequential [`crate::session::Session`] running
//! the same requests in submission order — regardless of how the traffic
//! happened to be cut into batches, and including rejected requests (which
//! consume no run index on either path). The integration proptests submit
//! under randomised batch windows and verify exactly this.
//!
//! ```
//! use std::time::Duration;
//! use wse_collectives::prelude::*;
//!
//! let service = CollectiveService::with_config(ServiceConfig {
//!     max_batch: 8,
//!     max_wait: Duration::from_micros(200),
//!     ..ServiceConfig::default()
//! });
//! let handles: Vec<ResponseHandle> = (0..16)
//!     .map(|i| {
//!         let request = CollectiveRequest::reduce(Topology::line(8), 32);
//!         let inputs = (0..8).map(|p| vec![(p + i) as f32; 32]).collect();
//!         service.submit(request, inputs).expect("service accepts while running")
//!     })
//!     .collect();
//! for handle in handles {
//!     let response = handle.wait();
//!     assert!(response.result.is_ok());
//!     assert!(response.latency > Duration::ZERO);
//! }
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 16);
//! assert!(stats.batches >= 2, "16 requests cannot fit one batch of 8");
//! ```

pub mod batcher;
pub mod handle;
pub mod queue;
pub mod stats;

pub use batcher::FlushReason;
pub use handle::{Response, ResponseHandle};
pub use stats::{LatencySummary, ServiceStats};

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::CollectiveError;
use crate::executor::{BatchItem, Executor, ExecutorConfig, ExecutorStats};
use crate::request::CollectiveRequest;

use batcher::Batcher;
use handle::ResponseSlot;
use queue::{Popped, SubmissionQueue, TryPushError};
use stats::StatsRecorder;

/// Configuration of a [`CollectiveService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The executor backing the service: machine model, fabric parameters /
    /// noise, plan-cache capacity, worker count, fabric-pool bound.
    pub executor: ExecutorConfig,
    /// Bound of the submission queue. A full queue backpressures:
    /// [`CollectiveService::try_submit`] fails with
    /// [`CollectiveError::QueueFull`], [`CollectiveService::submit`] blocks.
    pub queue_capacity: usize,
    /// Dispatch a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Dispatch a partial batch this long after its oldest request arrived,
    /// even if it is not full — the tail-latency bound a lone request pays
    /// under light load.
    pub max_wait: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            executor: ExecutorConfig::default(),
            queue_capacity: 256,
            max_batch: 16,
            max_wait: Duration::from_micros(500),
        }
    }
}

impl ServiceConfig {
    /// The same configuration with a different fabric engine (see
    /// [`crate::runner::RunConfig::with_engine`]). The default
    /// [`wse_fabric::EngineKind::Fast`] engine is byte-identical to the
    /// reference cycle-stepper, so this knob changes throughput only.
    pub fn with_engine(mut self, engine: wse_fabric::EngineKind) -> Self {
        self.executor = self.executor.with_engine(engine);
        self
    }
}

/// One accepted request travelling from the queue to the executor.
#[derive(Debug)]
struct Pending {
    request: CollectiveRequest,
    inputs: Vec<Vec<f32>>,
    slot: Arc<ResponseSlot>,
    submitted_at: Instant,
}

/// State shared between submitters and the batcher thread.
#[derive(Debug)]
struct Shared {
    queue: SubmissionQueue<Pending>,
    executor: Executor,
    stats: StatsRecorder,
    max_batch: usize,
    max_wait: Duration,
}

/// A continuously serving collective front-end. See the [module
/// docs](self) for the architecture.
///
/// The service is `Sync`: submitters on any number of threads share one
/// `&CollectiveService` (or an `Arc`). Dropping the service shuts it down
/// gracefully (drain, then join).
#[derive(Debug)]
pub struct CollectiveService {
    shared: Arc<Shared>,
    batcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Default for CollectiveService {
    fn default() -> Self {
        CollectiveService::new()
    }
}

impl CollectiveService {
    /// A service over the paper's WSE-2 machine with default batching.
    pub fn new() -> Self {
        CollectiveService::with_config(ServiceConfig::default())
    }

    /// A service with full configuration control. Spawns the batcher
    /// thread immediately; the service accepts requests as soon as this
    /// returns.
    pub fn with_config(config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: SubmissionQueue::new(config.queue_capacity),
            executor: Executor::with_config(config.executor),
            stats: StatsRecorder::default(),
            max_batch: config.max_batch.max(1),
            max_wait: config.max_wait,
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("collective-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawning the batcher thread")
        };
        CollectiveService { shared, batcher: Mutex::new(Some(batcher)) }
    }

    /// Submit a request, blocking while the queue is at capacity.
    ///
    /// Returns the completion handle immediately once the request is
    /// queued; fails with [`CollectiveError::ServiceStopped`] if the
    /// service has been shut down (including while blocked waiting for a
    /// slot).
    pub fn submit(
        &self,
        request: CollectiveRequest,
        inputs: Vec<Vec<f32>>,
    ) -> Result<ResponseHandle, CollectiveError> {
        let (pending, handle) = self.pending(request, inputs);
        match self.shared.queue.push(pending) {
            Ok(()) => {
                self.shared.stats.record_submitted();
                Ok(handle)
            }
            Err(_) => Err(CollectiveError::ServiceStopped),
        }
    }

    /// Submit a request without blocking.
    ///
    /// Fails fast with [`CollectiveError::QueueFull`] when the queue is at
    /// capacity (the backpressure signal — retry later or fall back to the
    /// blocking [`submit`](CollectiveService::submit)), or
    /// [`CollectiveError::ServiceStopped`] after shutdown.
    pub fn try_submit(
        &self,
        request: CollectiveRequest,
        inputs: Vec<Vec<f32>>,
    ) -> Result<ResponseHandle, CollectiveError> {
        let (pending, handle) = self.pending(request, inputs);
        match self.shared.queue.try_push(pending) {
            Ok(()) => {
                self.shared.stats.record_submitted();
                Ok(handle)
            }
            Err(TryPushError::Full(_)) => {
                self.shared.stats.record_rejected();
                Err(CollectiveError::QueueFull { capacity: self.shared.queue.capacity() })
            }
            Err(TryPushError::Closed(_)) => Err(CollectiveError::ServiceStopped),
        }
    }

    /// A point-in-time snapshot of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats.snapshot(self.shared.queue.len())
    }

    /// Amortisation counters of the backing executor (plan cache, fabric
    /// pool).
    pub fn executor_stats(&self) -> ExecutorStats {
        self.shared.executor.stats()
    }

    /// Shut down gracefully: stop accepting, drain every already-accepted
    /// request (their handles are fulfilled), join the batcher thread and
    /// return the final statistics. Idempotent — later calls (and the
    /// implicit shutdown on drop) are no-ops.
    pub fn shutdown(&self) -> ServiceStats {
        self.shared.queue.close();
        let batcher = self.batcher.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).take();
        if let Some(batcher) = batcher {
            let _ = batcher.join();
        }
        self.stats()
    }

    fn pending(
        &self,
        request: CollectiveRequest,
        inputs: Vec<Vec<f32>>,
    ) -> (Pending, ResponseHandle) {
        let (handle, slot) = ResponseHandle::new();
        (Pending { request, inputs, slot, submitted_at: Instant::now() }, handle)
    }
}

impl Drop for CollectiveService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The batcher thread: pop → accumulate → flush on size/deadline → execute,
/// until the queue is closed and drained.
fn batcher_loop(shared: &Shared) {
    let mut batcher: Batcher<Pending> = Batcher::new(shared.max_batch, shared.max_wait);
    loop {
        match shared.queue.pop(batcher.deadline()) {
            Popped::Item(pending) => {
                if let Some((batch, reason)) = batcher.push(pending, Instant::now()) {
                    execute_batch(shared, batch, reason);
                }
            }
            Popped::TimedOut => {
                if let Some((batch, reason)) = batcher.flush_due(Instant::now()) {
                    execute_batch(shared, batch, reason);
                }
            }
            Popped::Closed => {
                // Shutdown drain: the queue is empty and closed; whatever
                // is still accumulated forms the final batch.
                if let Some((batch, reason)) = batcher.flush_remaining() {
                    execute_batch(shared, batch, reason);
                }
                return;
            }
        }
    }
}

/// Dispatch one formed batch to the executor and fulfil its handles.
fn execute_batch(shared: &Shared, batch: Vec<Pending>, reason: FlushReason) {
    shared.stats.record_batch(batch.len(), reason);
    let mut slots = Vec::with_capacity(batch.len());
    let items: Vec<BatchItem> = batch
        .into_iter()
        .map(|pending| {
            slots.push((pending.slot, pending.submitted_at));
            BatchItem::new(pending.request, pending.inputs)
        })
        .collect();
    let results = shared.executor.run_batch(&items);
    let completed_at = Instant::now();
    for ((slot, submitted_at), result) in slots.into_iter().zip(results) {
        let latency = completed_at.duration_since(submitted_at);
        shared.stats.record_completion(latency);
        slot.fulfil(Response { result, latency });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Topology;
    use crate::session::SessionConfig;

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| ((i * 3 + j) % 17) as f32 * 0.5 - 4.0).collect()).collect()
    }

    fn reduce_request(p: u32, b: u32) -> CollectiveRequest {
        CollectiveRequest::reduce(Topology::line(p), b)
    }

    #[test]
    fn size_trigger_completes_without_waiting_for_the_deadline() {
        // max_wait is far longer than the test: completion can only come
        // from the size flush.
        let service = CollectiveService::with_config(ServiceConfig {
            max_batch: 2,
            max_wait: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let a = service.submit(reduce_request(6, 8), inputs(6, 8)).unwrap();
        let b = service.submit(reduce_request(6, 8), inputs(6, 8)).unwrap();
        assert!(a.wait().result.is_ok());
        assert!(b.wait().result.is_ok());
        let stats = service.stats();
        assert_eq!(stats.size_flushes, 1);
        assert_eq!(stats.deadline_flushes, 0);
        assert_eq!(stats.batch_size_histogram, vec![0, 1]);
    }

    #[test]
    fn deadline_trigger_flushes_a_partial_batch() {
        // One request, a roomy batch: only the deadline can flush it.
        let service = CollectiveService::with_config(ServiceConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        });
        let handle = service.submit(reduce_request(5, 6), inputs(5, 6)).unwrap();
        let response = handle.wait();
        assert!(response.result.is_ok());
        assert!(response.latency >= Duration::from_millis(1), "paid at least the batch window");
        let stats = service.stats();
        assert_eq!(stats.deadline_flushes, 1);
        assert_eq!(stats.size_flushes, 0);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let service = CollectiveService::with_config(ServiceConfig {
            max_batch: 64,
            max_wait: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let handles: Vec<ResponseHandle> =
            (0..5).map(|_| service.submit(reduce_request(4, 4), inputs(4, 4)).unwrap()).collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 5, "shutdown fulfils every accepted request");
        assert!(stats.shutdown_flushes >= 1);
        for handle in handles {
            assert!(handle.wait().result.is_ok());
        }
    }

    #[test]
    fn submit_after_shutdown_is_service_stopped() {
        let service = CollectiveService::new();
        service.shutdown();
        let err = service.submit(reduce_request(4, 4), inputs(4, 4)).unwrap_err();
        assert_eq!(err, CollectiveError::ServiceStopped);
        let err = service.try_submit(reduce_request(4, 4), inputs(4, 4)).unwrap_err();
        assert_eq!(err, CollectiveError::ServiceStopped);
        // Shutdown is idempotent.
        service.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_through_their_handles() {
        let service = CollectiveService::with_config(ServiceConfig {
            max_wait: Duration::from_micros(100),
            ..ServiceConfig::default()
        });
        let bad_request = service.submit(reduce_request(4, 0), inputs(4, 4)).unwrap();
        let wrong_inputs = service.submit(reduce_request(4, 4), inputs(3, 4)).unwrap();
        assert!(matches!(bad_request.wait().result, Err(CollectiveError::InvalidRequest { .. })));
        assert!(matches!(
            wrong_inputs.wait().result,
            Err(CollectiveError::InputCountMismatch { .. })
        ));
        service.shutdown();
    }

    #[test]
    fn service_results_match_a_sequential_session() {
        // Deterministic smoke of the byte-identity contract (the proptests
        // cover randomised traffic): mixed requests, noise attached.
        let mut session_config = SessionConfig::default();
        session_config.run.noise = Some(wse_fabric::NoiseModel::new(0.1, 11));
        let requests: Vec<(CollectiveRequest, Vec<Vec<f32>>)> = (0..7)
            .map(|i| {
                let p = 4 + (i % 3) as u32;
                let b = 6 + (i % 2) as u32 * 4;
                (reduce_request(p, b), inputs(p as usize, b as usize))
            })
            .collect();

        let service = CollectiveService::with_config(ServiceConfig {
            executor: ExecutorConfig {
                session: session_config.clone(),
                ..ExecutorConfig::default()
            },
            max_batch: 3,
            max_wait: Duration::from_micros(200),
            ..ServiceConfig::default()
        });
        let handles: Vec<ResponseHandle> = requests
            .iter()
            .map(|(request, data)| service.submit(*request, data.clone()).unwrap())
            .collect();
        let served: Vec<Response> = handles.into_iter().map(ResponseHandle::wait).collect();
        service.shutdown();

        let mut session = crate::session::Session::with_config(session_config);
        for ((request, data), response) in requests.iter().zip(&served) {
            let expected = session.run(request, data).unwrap();
            let got = response.result.as_ref().unwrap();
            assert_eq!(got.report, expected.report);
            assert_eq!(got.outputs, expected.outputs);
        }
    }
}
