//! The async serving front-end: a continuously accepting collective
//! service.
//!
//! [`crate::executor::Executor::run_batch`] is synchronous and
//! caller-assembled: someone has to gather a batch before anything runs. A
//! [`CollectiveService`] closes that gap — it is the serving loop that turns
//! the parallel library into a service:
//!
//! * submitters hand in [`CollectiveRequest`]s continuously through a
//!   **bounded submission queue** ([`queue`]) and immediately get a
//!   [`ResponseHandle`] back ([`handle`]);
//! * a dedicated **batcher thread** forms batches by *deadline or size*
//!   ([`batcher`]): a batch is dispatched to the executor as soon as it
//!   holds `max_batch` requests, or `max_wait` after its oldest request
//!   arrived, whichever comes first;
//! * the queue bound is the **backpressure** mechanism:
//!   [`CollectiveService::try_submit`] fails fast with
//!   [`CollectiveError::QueueFull`], [`CollectiveService::submit`] blocks
//!   until a slot frees up;
//! * [`CollectiveService::shutdown`] closes the queue, **drains** every
//!   already-accepted request, fulfils its handle and joins the batcher —
//!   no accepted request is ever dropped;
//! * [`ServiceStats`] ([`stats`]) exposes queue depth, batch formation
//!   (count, flush reasons, size histogram) and enqueue-to-complete
//!   latency (p50/p99/mean/max);
//! * an optional **admission layer** ([`admit`]) prices every submission
//!   with the paper's cost model *before* it is queued and enforces a
//!   per-request cycle ceiling, per-tenant token-bucket budgets (deferring,
//!   not dropping, over-budget tenants) and cost-aware batch formation
//!   (shortest-predicted-job-first, per-batch cycle caps). The default
//!   [`AdmissionConfig::disabled`] keeps the plain path below untouched.
//!
//! ## Determinism
//!
//! Batching must not change results. The batcher dispatches batches in
//! submission order and the executor assigns noise-run indices only to
//! items that actually execute, so the responses a service produces are
//! byte-identical to a fresh sequential [`crate::session::Session`] running
//! the same requests in submission order — regardless of how the traffic
//! happened to be cut into batches, and including rejected requests (which
//! consume no run index on either path). The integration proptests submit
//! under randomised batch windows and verify exactly this.
//!
//! With an active admission policy the invariant generalises: each item's
//! noise-run index is stamped when it enters the batch accumulator (its
//! *admission* to execution order — deferral releases and queue pops
//! interleave there), and [`crate::executor::Executor::run_stamped`]
//! honours the stamp through any cost-aware reordering. Responses are then
//! byte-identical to a sequential session running the requests in
//! admission order, which the handles expose via
//! [`AdmissionInfo::run_index`].
//!
//! ```
//! use std::time::Duration;
//! use wse_collectives::prelude::*;
//!
//! let service = CollectiveService::with_config(ServiceConfig {
//!     max_batch: 8,
//!     max_wait: Duration::from_micros(200),
//!     ..ServiceConfig::default()
//! });
//! let handles: Vec<ResponseHandle> = (0..16)
//!     .map(|i| {
//!         let request = CollectiveRequest::reduce(Topology::line(8), 32);
//!         let inputs = (0..8).map(|p| vec![(p + i) as f32; 32]).collect();
//!         service.submit(request, inputs).expect("service accepts while running")
//!     })
//!     .collect();
//! for handle in handles {
//!     let response = handle.wait();
//!     assert!(response.result.is_ok());
//!     assert!(response.latency > Duration::ZERO);
//! }
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 16);
//! assert!(stats.batches >= 2, "16 requests cannot fit one batch of 8");
//! ```

pub mod admit;
pub mod batcher;
pub mod handle;
pub mod queue;
pub mod stats;

pub use admit::{AdmissionConfig, AdmissionInfo, AdmissionOutcome, BatchOrder, TenantBudget};
pub use batcher::FlushReason;
pub use handle::{Response, ResponseHandle};
pub use stats::{LatencySummary, ServiceStats};

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::CollectiveError;
use crate::executor::{BatchItem, Executor, ExecutorConfig, ExecutorStats, StampedItem};
use crate::request::{CollectiveRequest, TenantId};

use admit::{AdmissionController, Charge, DeferError};
use batcher::Batcher;
use handle::ResponseSlot;
use queue::{Popped, SubmissionQueue, TryPushError};
use stats::StatsRecorder;

/// Configuration of a [`CollectiveService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The executor backing the service: machine model, fabric parameters /
    /// noise, plan-cache capacity, worker count, fabric-pool bound.
    pub executor: ExecutorConfig,
    /// Bound of the submission queue. A full queue backpressures:
    /// [`CollectiveService::try_submit`] fails with
    /// [`CollectiveError::QueueFull`], [`CollectiveService::submit`] blocks.
    pub queue_capacity: usize,
    /// Dispatch a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Dispatch a partial batch this long after its oldest request arrived,
    /// even if it is not full — the tail-latency bound a lone request pays
    /// under light load.
    pub max_wait: Duration,
    /// Admission control and cost-aware scheduling policy (see [`admit`]).
    /// The default, [`AdmissionConfig::disabled`], keeps the service on the
    /// plain path: no predictions are computed at submit, batches are cut
    /// FIFO, and responses carry no admission info.
    pub admission: AdmissionConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            executor: ExecutorConfig::default(),
            queue_capacity: 256,
            max_batch: 16,
            max_wait: Duration::from_micros(500),
            admission: AdmissionConfig::disabled(),
        }
    }
}

impl ServiceConfig {
    /// The same configuration with a different fabric engine (see
    /// [`crate::runner::RunConfig::with_engine`]). The default
    /// [`wse_fabric::EngineKind::Fast`] engine is byte-identical to the
    /// reference cycle-stepper, so this knob changes throughput only.
    pub fn with_engine(mut self, engine: wse_fabric::EngineKind) -> Self {
        self.executor = self.executor.with_engine(engine);
        self
    }
}

/// One accepted request travelling from the queue to the executor.
#[derive(Debug)]
struct Pending {
    request: CollectiveRequest,
    inputs: Vec<Vec<f32>>,
    slot: Arc<ResponseSlot>,
    submitted_at: Instant,
    /// Admission metadata, present only when the service runs with an
    /// active [`AdmissionConfig`] (the plain path pays nothing for it).
    admit: Option<AdmitMeta>,
}

/// What the admission layer resolved about a request at submission, carried
/// alongside it to execution.
#[derive(Debug)]
struct AdmitMeta {
    tenant: TenantId,
    /// Predicted cycles (warm plan choice, else the pure cost model).
    /// `None` when no prediction was computable (malformed request).
    predicted: Option<u64>,
    /// Whether [`CollectiveRequest::check_submission`] accepted the
    /// request+inputs — i.e. whether execution will consume a noise-run
    /// index. Resolved plan-free at submit.
    valid: bool,
    /// The noise-run index, stamped when the item enters the batch
    /// accumulator (its admission to execution order), `None` until then
    /// and for invalid items forever.
    run_index: Option<u64>,
    /// Time spent in the deferred queue, set when a deferral is released.
    deferred_wait: Option<Duration>,
}

impl AdmitMeta {
    /// Cycles charged against the tenant's bucket: the prediction for items
    /// that will execute, zero for items that will be rejected at execution
    /// (they consume no fabric time).
    fn charge_cost(&self) -> u64 {
        if self.valid {
            self.predicted.unwrap_or(0)
        } else {
            0
        }
    }
}

/// The admission side of the shared state (present only when active).
#[derive(Debug)]
struct AdmissionShared {
    config: AdmissionConfig,
    controller: AdmissionController<Pending>,
}

/// State shared between submitters and the batcher thread.
#[derive(Debug)]
struct Shared {
    queue: SubmissionQueue<Pending>,
    executor: Executor,
    stats: StatsRecorder,
    max_batch: usize,
    max_wait: Duration,
    admission: Option<AdmissionShared>,
}

/// A continuously serving collective front-end. See the [module
/// docs](self) for the architecture.
///
/// The service is `Sync`: submitters on any number of threads share one
/// `&CollectiveService` (or an `Arc`). Dropping the service shuts it down
/// gracefully (drain, then join).
#[derive(Debug)]
pub struct CollectiveService {
    shared: Arc<Shared>,
    batcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Default for CollectiveService {
    fn default() -> Self {
        CollectiveService::new()
    }
}

impl CollectiveService {
    /// A service over the paper's WSE-2 machine with default batching.
    pub fn new() -> Self {
        CollectiveService::with_config(ServiceConfig::default())
    }

    /// A service with full configuration control. Spawns the batcher
    /// thread immediately; the service accepts requests as soon as this
    /// returns.
    pub fn with_config(config: ServiceConfig) -> Self {
        let admission = config.admission.is_active().then(|| AdmissionShared {
            controller: AdmissionController::new(&config.admission),
            config: config.admission.clone(),
        });
        let shared = Arc::new(Shared {
            queue: SubmissionQueue::new(config.queue_capacity),
            executor: Executor::with_config(config.executor),
            stats: StatsRecorder::default(),
            max_batch: config.max_batch.max(1),
            max_wait: config.max_wait,
            admission,
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("collective-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawning the batcher thread")
        };
        CollectiveService { shared, batcher: Mutex::new(Some(batcher)) }
    }

    /// Submit a request, blocking while the queue is at capacity.
    ///
    /// Returns the completion handle immediately once the request is
    /// queued; fails with [`CollectiveError::ServiceStopped`] if the
    /// service has been shut down (including while blocked waiting for a
    /// slot). With an active admission policy this accounts the request to
    /// [`TenantId::DEFAULT`] — see
    /// [`submit_as`](CollectiveService::submit_as).
    pub fn submit(
        &self,
        request: CollectiveRequest,
        inputs: Vec<Vec<f32>>,
    ) -> Result<ResponseHandle, CollectiveError> {
        self.submit_as(request, inputs, TenantId::DEFAULT)
    }

    /// Submit a request on behalf of `tenant`, blocking while the queue is
    /// at capacity.
    ///
    /// With an active admission policy the request is priced by the cost
    /// model before it is queued (a warm plan's recorded choice when one is
    /// cached, the pure model otherwise — never a plan generation):
    ///
    /// * priced above `max_predicted_cycles` →
    ///   [`CollectiveError::OverBudget`] immediately;
    /// * tenant bucket cannot afford it (or the tenant has earlier deferred
    ///   requests) → the request is **deferred**, the handle is still
    ///   returned, and the request runs once the budget refills;
    /// * deferred queue at capacity → [`CollectiveError::QueueFull`] with
    ///   the deferred capacity.
    pub fn submit_as(
        &self,
        request: CollectiveRequest,
        inputs: Vec<Vec<f32>>,
        tenant: TenantId,
    ) -> Result<ResponseHandle, CollectiveError> {
        let Some(admission) = &self.shared.admission else {
            let (pending, handle) = self.pending(request, inputs, None);
            return match self.shared.queue.push(pending) {
                Ok(()) => {
                    self.shared.stats.record_submitted();
                    Ok(handle)
                }
                Err(_) => Err(CollectiveError::ServiceStopped),
            };
        };
        let meta = self.admission_meta(admission, &request, &inputs, tenant)?;
        let cost = meta.charge_cost();
        let (pending, handle) = self.pending(request, inputs, Some(meta));
        match admission.controller.try_charge(tenant, cost, Instant::now()) {
            Charge::Admitted => match self.shared.queue.push(pending) {
                Ok(()) => {
                    self.shared.stats.record_submitted();
                    Ok(handle)
                }
                Err(_) => Err(CollectiveError::ServiceStopped),
            },
            Charge::Defer => self.defer(admission, pending, handle, tenant, cost),
        }
    }

    /// Submit a request without blocking.
    ///
    /// Fails fast with [`CollectiveError::QueueFull`] when the queue is at
    /// capacity (the backpressure signal — retry later or fall back to the
    /// blocking [`submit`](CollectiveService::submit)), or
    /// [`CollectiveError::ServiceStopped`] after shutdown. With an active
    /// admission policy this accounts the request to [`TenantId::DEFAULT`].
    pub fn try_submit(
        &self,
        request: CollectiveRequest,
        inputs: Vec<Vec<f32>>,
    ) -> Result<ResponseHandle, CollectiveError> {
        self.try_submit_as(request, inputs, TenantId::DEFAULT)
    }

    /// Submit a request on behalf of `tenant` without blocking. Admission
    /// behaves as in [`submit_as`](CollectiveService::submit_as); a charge
    /// rolled back by a full queue is refunded to the tenant's bucket.
    pub fn try_submit_as(
        &self,
        request: CollectiveRequest,
        inputs: Vec<Vec<f32>>,
        tenant: TenantId,
    ) -> Result<ResponseHandle, CollectiveError> {
        let Some(admission) = &self.shared.admission else {
            let (pending, handle) = self.pending(request, inputs, None);
            return match self.shared.queue.try_push(pending) {
                Ok(()) => {
                    self.shared.stats.record_submitted();
                    Ok(handle)
                }
                Err(TryPushError::Full(_)) => {
                    self.shared.stats.record_rejected();
                    Err(CollectiveError::QueueFull { capacity: self.shared.queue.capacity() })
                }
                Err(TryPushError::Closed(_)) => Err(CollectiveError::ServiceStopped),
            };
        };
        let meta = self.admission_meta(admission, &request, &inputs, tenant)?;
        let cost = meta.charge_cost();
        let (pending, handle) = self.pending(request, inputs, Some(meta));
        match admission.controller.try_charge(tenant, cost, Instant::now()) {
            Charge::Admitted => match self.shared.queue.try_push(pending) {
                Ok(()) => {
                    self.shared.stats.record_submitted();
                    Ok(handle)
                }
                Err(TryPushError::Full(_)) => {
                    admission.controller.refund(tenant, cost, Instant::now());
                    self.shared.stats.record_rejected();
                    Err(CollectiveError::QueueFull { capacity: self.shared.queue.capacity() })
                }
                Err(TryPushError::Closed(_)) => Err(CollectiveError::ServiceStopped),
            },
            Charge::Defer => self.defer(admission, pending, handle, tenant, cost),
        }
    }

    /// Park a request the tenant cannot currently afford in the deferred
    /// queue, kicking the batcher so it recomputes its release deadline.
    fn defer(
        &self,
        admission: &AdmissionShared,
        pending: Pending,
        handle: ResponseHandle,
        tenant: TenantId,
        cost: u64,
    ) -> Result<ResponseHandle, CollectiveError> {
        match admission.controller.defer(tenant, cost, pending, Instant::now()) {
            Ok(()) => {
                self.shared.stats.record_submitted();
                self.shared.stats.record_deferred();
                self.shared.queue.kick();
                Ok(handle)
            }
            Err(DeferError::Overflow(_)) => {
                self.shared.stats.record_deferral_overflow();
                Err(CollectiveError::QueueFull { capacity: admission.config.deferred_capacity })
            }
            Err(DeferError::Closed(_)) => Err(CollectiveError::ServiceStopped),
        }
    }

    /// Resolve the admission metadata for one submission: plan-free
    /// validity, the predicted cycles, and the per-request ceiling. The
    /// ceiling applies only to requests that would actually execute —
    /// invalid ones flow through to their handles so callers get the
    /// specific typed error rather than a budget rejection.
    fn admission_meta(
        &self,
        admission: &AdmissionShared,
        request: &CollectiveRequest,
        inputs: &[Vec<f32>],
        tenant: TenantId,
    ) -> Result<AdmitMeta, CollectiveError> {
        let valid = request.check_submission(inputs).is_ok();
        let predicted = self
            .shared
            .executor
            .cached_plan(request)
            .and_then(|plan| plan.predicted_cycles())
            .or_else(|| request.predicted_cycles(self.shared.executor.machine()).ok())
            .map(|cycles| cycles.max(0.0).ceil() as u64);
        if valid {
            if let (Some(predicted), Some(limit)) =
                (predicted, admission.config.max_predicted_cycles)
            {
                if predicted > limit {
                    self.shared.stats.record_over_budget();
                    return Err(CollectiveError::OverBudget { predicted, limit });
                }
            }
        }
        Ok(AdmitMeta { tenant, predicted, valid, run_index: None, deferred_wait: None })
    }

    /// A point-in-time snapshot of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats.snapshot(self.shared.queue.len())
    }

    /// Amortisation counters of the backing executor (plan cache, fabric
    /// pool).
    pub fn executor_stats(&self) -> ExecutorStats {
        self.shared.executor.stats()
    }

    /// Shut down gracefully: stop accepting, drain every already-accepted
    /// request (their handles are fulfilled), join the batcher thread and
    /// return the final statistics. Idempotent — later calls (and the
    /// implicit shutdown on drop) are no-ops.
    pub fn shutdown(&self) -> ServiceStats {
        self.shared.queue.close();
        let batcher = self.batcher.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).take();
        if let Some(batcher) = batcher {
            let _ = batcher.join();
        }
        self.stats()
    }

    fn pending(
        &self,
        request: CollectiveRequest,
        inputs: Vec<Vec<f32>>,
        admit: Option<AdmitMeta>,
    ) -> (Pending, ResponseHandle) {
        let (handle, slot) = ResponseHandle::new();
        (Pending { request, inputs, slot, submitted_at: Instant::now(), admit }, handle)
    }
}

impl Drop for CollectiveService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The batcher thread: pop → accumulate → flush on size/deadline → execute,
/// until the queue is closed and drained. Dispatches to the admission-aware
/// loop when a policy is active.
fn batcher_loop(shared: &Shared) {
    if let Some(admission) = &shared.admission {
        return admission_batcher_loop(shared, admission);
    }
    let mut batcher: Batcher<Pending> = Batcher::new(shared.max_batch, shared.max_wait);
    loop {
        match shared.queue.pop(batcher.deadline()) {
            Popped::Item(pending) => {
                if let Some((batch, reason)) = batcher.push(pending, Instant::now()) {
                    execute_batch(shared, batch, reason);
                }
            }
            Popped::TimedOut => {
                if let Some((batch, reason)) = batcher.flush_due(Instant::now()) {
                    execute_batch(shared, batch, reason);
                }
            }
            Popped::Closed => {
                // Shutdown drain: the queue is empty and closed; whatever
                // is still accumulated forms the final batch.
                if let Some((batch, reason)) = batcher.flush_remaining() {
                    execute_batch(shared, batch, reason);
                }
                return;
            }
        }
    }
}

/// The admission-aware batcher loop: release affordable deferrals, stamp
/// run indices as items enter the accumulator, cut cost-aware batches, and
/// sleep until the earlier of the batch deadline and the next budget
/// release.
fn admission_batcher_loop(shared: &Shared, admission: &AdmissionShared) {
    let mut batcher: Batcher<Pending> = Batcher::with_policy(
        shared.max_batch,
        shared.max_wait,
        admission.config.order,
        admission.config.max_batch_cycles,
    );
    loop {
        // Budget releases first: a deferral released now was submitted
        // before anything still sitting in the queue behind it.
        ingest_releases(shared, admission, &mut batcher);
        flush_and_ingest(shared, admission, &mut batcher);
        let deadline =
            min_deadline(batcher.deadline(), admission.controller.next_release_at(Instant::now()));
        match shared.queue.pop(deadline) {
            Popped::Item(pending) => {
                accumulate(shared, &mut batcher, pending);
                flush_and_ingest(shared, admission, &mut batcher);
            }
            Popped::TimedOut => {
                // Deadline or kick: the loop head re-evaluates releases and
                // due flushes.
            }
            Popped::Closed => {
                // Shutdown: close the controller (no new deferrals can slip
                // in), force-drain every deferred item regardless of budget
                // — no accepted request is ever dropped — and flush.
                admission.controller.close();
                let now = Instant::now();
                for (mut pending, wait) in admission.controller.drain(now) {
                    if let Some(meta) = pending.admit.as_mut() {
                        meta.deferred_wait = Some(wait);
                    }
                    accumulate(shared, &mut batcher, pending);
                }
                while let Some((batch, reason)) = batcher.flush_remaining() {
                    execute_batch_stamped(shared, batch, reason);
                }
                return;
            }
        }
    }
}

/// Move every budget deferral whose release is due into the accumulator.
fn ingest_releases(shared: &Shared, admission: &AdmissionShared, batcher: &mut Batcher<Pending>) {
    let now = Instant::now();
    for (mut pending, wait) in admission.controller.release_due(now) {
        if let Some(meta) = pending.admit.as_mut() {
            meta.deferred_wait = Some(wait);
        }
        accumulate(shared, batcher, pending);
    }
}

/// Flush every ready batch, ingesting work that arrived while each batch
/// executed — newly due budget releases and anything sitting in the
/// submission queue — before the next cut. Without this the accumulator's
/// leftovers (the expensive requests a cost-aware cut passed over) would
/// execute back-to-back while cheap requests pile up unseen in the queue,
/// re-creating exactly the head-of-line blocking the policy is meant to
/// remove.
fn flush_and_ingest(shared: &Shared, admission: &AdmissionShared, batcher: &mut Batcher<Pending>) {
    while let Some((batch, reason)) = batcher.flush_ready(Instant::now()) {
        execute_batch_stamped(shared, batch, reason);
        ingest_releases(shared, admission, batcher);
        while let Some(pending) = shared.queue.try_pop() {
            accumulate(shared, batcher, pending);
        }
    }
}

/// Admit one item to the batch accumulator: stamp its noise-run index (only
/// items that will execute consume one — this is the moment "admission
/// order" is defined) and record its predicted cost for the cut policy.
fn accumulate(shared: &Shared, batcher: &mut Batcher<Pending>, mut pending: Pending) {
    let mut cost = 0;
    if let Some(meta) = pending.admit.as_mut() {
        if meta.valid {
            meta.run_index = Some(shared.executor.reserve_run_index());
            cost = meta.predicted.unwrap_or(0);
        }
    }
    batcher.push_costed(pending, cost, Instant::now());
}

/// The earlier of two optional deadlines.
fn min_deadline(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

/// Dispatch one formed batch to the executor and fulfil its handles.
fn execute_batch(shared: &Shared, batch: Vec<Pending>, reason: FlushReason) {
    shared.stats.record_batch(batch.len(), reason);
    let mut slots = Vec::with_capacity(batch.len());
    let items: Vec<BatchItem> = batch
        .into_iter()
        .map(|pending| {
            slots.push((pending.slot, pending.submitted_at));
            BatchItem::new(pending.request, pending.inputs)
        })
        .collect();
    let results = shared.executor.run_batch(&items);
    let completed_at = Instant::now();
    for ((slot, submitted_at), result) in slots.into_iter().zip(results) {
        let latency = completed_at.duration_since(submitted_at);
        shared.stats.record_completion(latency);
        slot.fulfil(Response { result, latency, admission: None });
    }
}

/// Dispatch one cost-aware batch through the stamped executor entry point
/// (the pre-assigned run indices survive any reordering) and fulfil each
/// handle with its admission info.
fn execute_batch_stamped(shared: &Shared, batch: Vec<Pending>, reason: FlushReason) {
    shared.stats.record_batch(batch.len(), reason);
    let mut slots = Vec::with_capacity(batch.len());
    let items: Vec<StampedItem> = batch
        .into_iter()
        .map(|pending| {
            let Pending { request, inputs, slot, submitted_at, admit } = pending;
            let meta = admit.expect("admission path always attaches metadata");
            let info = AdmissionInfo {
                outcome: match meta.deferred_wait {
                    Some(wait) => AdmissionOutcome::DeferredThenAdmitted { wait },
                    None => AdmissionOutcome::Admitted,
                },
                tenant: meta.tenant,
                predicted_cycles: meta.predicted,
                run_index: meta.run_index,
            };
            slots.push((slot, submitted_at, info));
            StampedItem {
                item: BatchItem::new(request, inputs),
                run_index: meta.run_index.unwrap_or(0),
                predicted_cycles: if meta.valid { meta.predicted } else { None },
            }
        })
        .collect();
    let results = shared.executor.run_stamped(&items);
    let completed_at = Instant::now();
    for ((slot, submitted_at, info), result) in slots.into_iter().zip(results) {
        let latency = completed_at.duration_since(submitted_at);
        shared.stats.record_completion(latency);
        slot.fulfil(Response { result, latency, admission: Some(info) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Topology;
    use crate::session::SessionConfig;

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| ((i * 3 + j) % 17) as f32 * 0.5 - 4.0).collect()).collect()
    }

    fn reduce_request(p: u32, b: u32) -> CollectiveRequest {
        CollectiveRequest::reduce(Topology::line(p), b)
    }

    #[test]
    fn size_trigger_completes_without_waiting_for_the_deadline() {
        // max_wait is far longer than the test: completion can only come
        // from the size flush.
        let service = CollectiveService::with_config(ServiceConfig {
            max_batch: 2,
            max_wait: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let a = service.submit(reduce_request(6, 8), inputs(6, 8)).unwrap();
        let b = service.submit(reduce_request(6, 8), inputs(6, 8)).unwrap();
        assert!(a.wait().result.is_ok());
        assert!(b.wait().result.is_ok());
        let stats = service.stats();
        assert_eq!(stats.size_flushes, 1);
        assert_eq!(stats.deadline_flushes, 0);
        assert_eq!(stats.batch_size_histogram, vec![0, 1]);
    }

    #[test]
    fn deadline_trigger_flushes_a_partial_batch() {
        // One request, a roomy batch: only the deadline can flush it.
        let service = CollectiveService::with_config(ServiceConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        });
        let handle = service.submit(reduce_request(5, 6), inputs(5, 6)).unwrap();
        let response = handle.wait();
        assert!(response.result.is_ok());
        assert!(response.latency >= Duration::from_millis(1), "paid at least the batch window");
        let stats = service.stats();
        assert_eq!(stats.deadline_flushes, 1);
        assert_eq!(stats.size_flushes, 0);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let service = CollectiveService::with_config(ServiceConfig {
            max_batch: 64,
            max_wait: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let handles: Vec<ResponseHandle> =
            (0..5).map(|_| service.submit(reduce_request(4, 4), inputs(4, 4)).unwrap()).collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 5, "shutdown fulfils every accepted request");
        assert!(stats.shutdown_flushes >= 1);
        for handle in handles {
            assert!(handle.wait().result.is_ok());
        }
    }

    #[test]
    fn submit_after_shutdown_is_service_stopped() {
        let service = CollectiveService::new();
        service.shutdown();
        let err = service.submit(reduce_request(4, 4), inputs(4, 4)).unwrap_err();
        assert_eq!(err, CollectiveError::ServiceStopped);
        let err = service.try_submit(reduce_request(4, 4), inputs(4, 4)).unwrap_err();
        assert_eq!(err, CollectiveError::ServiceStopped);
        // Shutdown is idempotent.
        service.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_through_their_handles() {
        let service = CollectiveService::with_config(ServiceConfig {
            max_wait: Duration::from_micros(100),
            ..ServiceConfig::default()
        });
        let bad_request = service.submit(reduce_request(4, 0), inputs(4, 4)).unwrap();
        let wrong_inputs = service.submit(reduce_request(4, 4), inputs(3, 4)).unwrap();
        assert!(matches!(bad_request.wait().result, Err(CollectiveError::InvalidRequest { .. })));
        assert!(matches!(
            wrong_inputs.wait().result,
            Err(CollectiveError::InputCountMismatch { .. })
        ));
        service.shutdown();
    }

    #[test]
    fn disabled_admission_keeps_responses_bare() {
        let service = CollectiveService::with_config(ServiceConfig {
            max_wait: Duration::from_micros(100),
            ..ServiceConfig::default()
        });
        let handle = service.submit(reduce_request(4, 8), inputs(4, 8)).unwrap();
        let response = handle.wait();
        assert!(response.result.is_ok());
        assert!(response.admission.is_none(), "no admission info without a policy");
        let stats = service.shutdown();
        assert_eq!((stats.over_budget, stats.deferred, stats.deferral_overflow), (0, 0, 0));
    }

    #[test]
    fn over_budget_requests_are_rejected_at_submit() {
        let request = reduce_request(8, 64);
        let predicted =
            request.predicted_cycles(&wse_model::Machine::wse2()).unwrap().ceil() as u64;
        let service = CollectiveService::with_config(ServiceConfig {
            admission: AdmissionConfig::disabled().with_max_predicted_cycles(predicted - 1),
            max_wait: Duration::from_micros(100),
            ..ServiceConfig::default()
        });
        match service.submit(request, inputs(8, 64)) {
            Err(CollectiveError::OverBudget { predicted: got, limit }) => {
                assert_eq!(got, predicted, "the error reports the model's price");
                assert_eq!(limit, predicted - 1);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
        // A request at the ceiling is admitted, and its response carries the
        // prediction that admitted it.
        let cheap = reduce_request(4, 8);
        let handle = service.submit(cheap, inputs(4, 8)).unwrap();
        let response = handle.wait();
        assert!(response.result.is_ok());
        let info = response.admission.expect("active admission annotates responses");
        assert_eq!(info.outcome, AdmissionOutcome::Admitted);
        assert_eq!(
            info.predicted_cycles,
            Some(cheap.predicted_cycles(&wse_model::Machine::wse2()).unwrap().ceil() as u64)
        );
        assert_eq!(info.run_index, Some(0), "first executed item claims index 0");
        let stats = service.shutdown();
        assert_eq!(stats.over_budget, 1);
        assert_eq!(stats.submitted, 1, "the rejected request never entered the queue");
    }

    #[test]
    fn invalid_requests_bypass_the_ceiling_for_their_typed_error() {
        // Ceiling of 1 cycle: every valid request is over budget, but an
        // invalid one still reaches its handle with the specific error.
        let service = CollectiveService::with_config(ServiceConfig {
            admission: AdmissionConfig::disabled().with_max_predicted_cycles(1),
            max_wait: Duration::from_micros(100),
            ..ServiceConfig::default()
        });
        let wrong_inputs = service.submit(reduce_request(4, 4), inputs(3, 4)).unwrap();
        let response = wrong_inputs.wait();
        assert!(matches!(response.result, Err(CollectiveError::InputCountMismatch { .. })));
        let info = response.admission.unwrap();
        assert_eq!(info.run_index, None, "rejected items consume no noise-run index");
        service.shutdown();
    }

    #[test]
    fn tenant_budgets_defer_until_the_shutdown_drain() {
        // Zero refill rate: the deferral can only be released by the
        // shutdown force-drain, which makes the test fully deterministic.
        let request = reduce_request(6, 16);
        let predicted =
            request.predicted_cycles(&wse_model::Machine::wse2()).unwrap().ceil() as u64;
        let tenant = TenantId(7);
        let service = CollectiveService::with_config(ServiceConfig {
            admission: AdmissionConfig::disabled()
                .with_tenant_budget(tenant, TenantBudget::new(predicted, 0.0))
                .with_deferred_capacity(1),
            max_wait: Duration::from_micros(100),
            ..ServiceConfig::default()
        });
        let first = service.submit_as(request, inputs(6, 16), tenant).unwrap();
        let second = service.submit_as(request, inputs(6, 16), tenant).unwrap();
        // The bucket is drained and the side queue full: overflow.
        match service.submit_as(request, inputs(6, 16), tenant) {
            Err(CollectiveError::QueueFull { capacity }) => assert_eq!(capacity, 1),
            other => panic!("expected QueueFull from deferral overflow, got {other:?}"),
        }
        // An unmetered tenant is unaffected by tenant 7's empty bucket.
        let other = service.submit_as(request, inputs(6, 16), TenantId(8)).unwrap();
        assert!(other.wait().result.is_ok());

        let stats = service.shutdown();
        assert_eq!(stats.deferred, 1);
        assert_eq!(stats.deferral_overflow, 1);
        assert_eq!(stats.completed, 3, "the deferred request drained, the overflowed never ran");
        assert!(first.wait().result.is_ok());
        let response = second.wait();
        assert!(response.result.is_ok(), "no accepted request is dropped at shutdown");
        assert!(matches!(
            response.admission.unwrap().outcome,
            AdmissionOutcome::DeferredThenAdmitted { .. }
        ));
    }

    #[test]
    fn sjf_service_still_matches_the_sequential_session() {
        // Cost-aware reordering with noise on: responses must match a
        // sequential session replayed in admission (run-index) order.
        let mut session_config = SessionConfig::default();
        session_config.run.noise = Some(wse_fabric::NoiseModel::new(0.15, 23));
        let traffic: Vec<(CollectiveRequest, Vec<Vec<f32>>)> = (0..8)
            .map(|i| {
                // Alternate small and large so SJF actually reorders.
                let (p, b) = if i % 2 == 0 { (4, 8) } else { (8, 32) };
                (reduce_request(p, b), inputs(p as usize, b as usize))
            })
            .collect();
        let service = CollectiveService::with_config(ServiceConfig {
            executor: ExecutorConfig {
                session: session_config.clone(),
                ..ExecutorConfig::default()
            },
            max_batch: 4,
            max_wait: Duration::from_micros(300),
            admission: AdmissionConfig::disabled().with_order(BatchOrder::ShortestPredictedFirst),
            ..ServiceConfig::default()
        });
        let handles: Vec<ResponseHandle> = traffic
            .iter()
            .map(|(request, data)| service.submit(*request, data.clone()).unwrap())
            .collect();
        let served: Vec<Response> = handles.into_iter().map(ResponseHandle::wait).collect();
        service.shutdown();

        let mut order: Vec<usize> = (0..served.len()).collect();
        order.sort_by_key(|&i| served[i].admission.unwrap().run_index.unwrap());
        let mut session = crate::session::Session::with_config(session_config);
        for &i in &order {
            let expected = session.run(&traffic[i].0, &traffic[i].1).unwrap();
            let got = served[i].result.as_ref().unwrap();
            assert_eq!(got.report, expected.report, "item {i} diverges from admission order");
            assert_eq!(got.outputs, expected.outputs);
        }
    }

    #[test]
    fn service_results_match_a_sequential_session() {
        // Deterministic smoke of the byte-identity contract (the proptests
        // cover randomised traffic): mixed requests, noise attached.
        let mut session_config = SessionConfig::default();
        session_config.run.noise = Some(wse_fabric::NoiseModel::new(0.1, 11));
        let requests: Vec<(CollectiveRequest, Vec<Vec<f32>>)> = (0..7)
            .map(|i| {
                let p = 4 + (i % 3) as u32;
                let b = 6 + (i % 2) as u32 * 4;
                (reduce_request(p, b), inputs(p as usize, b as usize))
            })
            .collect();

        let service = CollectiveService::with_config(ServiceConfig {
            executor: ExecutorConfig {
                session: session_config.clone(),
                ..ExecutorConfig::default()
            },
            max_batch: 3,
            max_wait: Duration::from_micros(200),
            ..ServiceConfig::default()
        });
        let handles: Vec<ResponseHandle> = requests
            .iter()
            .map(|(request, data)| service.submit(*request, data.clone()).unwrap())
            .collect();
        let served: Vec<Response> = handles.into_iter().map(ResponseHandle::wait).collect();
        service.shutdown();

        let mut session = crate::session::Session::with_config(session_config);
        for ((request, data), response) in requests.iter().zip(&served) {
            let expected = session.run(request, data).unwrap();
            let got = response.result.as_ref().unwrap();
            assert_eq!(got.report, expected.report);
            assert_eq!(got.outputs, expected.outputs);
        }
    }
}
