//! Model-driven admission control: the "gas meter" in front of the batcher.
//!
//! The paper's cost model (Eq. 1) prices a collective *before anything
//! touches the fabric*. This module spends that prediction the way a
//! blockchain VM spends gas estimates — work is priced at the door, metered
//! per tenant, and scheduled by cost — so the serving front-end stops
//! cutting batches blind:
//!
//! * **Per-request ceiling** (`max_predicted_cycles`) — the analogue of a
//!   transaction gas limit. A request the model prices above the ceiling is
//!   rejected at submission with [`crate::error::CollectiveError::OverBudget`]; no plan is
//!   built, no queue slot is consumed, the caller learns *why* immediately.
//! * **Per-tenant token buckets** ([`TenantBudget`]) — the analogue of an
//!   account balance with a drip refill. Each tenant's bucket holds up to
//!   `burst_cycles` and refills at `refill_cycles_per_sec`; an admitted
//!   request debits its predicted cycles. A briefly over-budget tenant is
//!   not hard-failed: its requests are **deferred** to a bounded side queue
//!   and released, in per-tenant FIFO order, as the bucket refills.
//! * **Cost-aware batch formation** ([`BatchOrder`], `max_batch_cycles`) —
//!   the analogue of packing a block by gas: inside a batch window the
//!   scheduler can order by predicted runtime (shortest-predicted-job-first)
//!   and cut the batch when its summed predicted cycles would exceed
//!   `max_batch_cycles`, so one giant all-to-all does not ride in a batch of
//!   latency-sensitive reduces.
//!
//! Predictions come from [`crate::executor::Executor::cached_plan`] (a warm
//! plan's recorded model choice) with a fallback to the pure cost model
//! ([`crate::request::CollectiveRequest::predicted_cycles`]); the submit
//! path never generates a plan.
//!
//! ## Determinism
//!
//! Cost-aware reordering must not change results. Noise-run indices are
//! stamped when an item enters the batch accumulator (its *admission* to
//! execution order), and travel with the item through any reordering — see
//! [`crate::executor::Executor::run_stamped`]. The service's integration
//! proptests pin that an SJF-ordered service produces, per request, exactly
//! the bytes a sequential [`crate::session::Session`] produces in admission
//! order — and that a service with [`AdmissionConfig::disabled`] (the
//! default) stays byte-identical to the plain PR 6 serving path.
//!
//! ## Honest limitations
//!
//! * Shortest-predicted-first can **starve** large requests under sustained
//!   overload (the classic SJF property): as long as smaller work keeps
//!   arriving inside the window, a large item keeps losing the sort. The
//!   deadline trigger bounds this *per window* — once the oldest accumulated
//!   item's `max_wait` expires, a flush happens regardless — but a large
//!   item can still be cut out of that flush by `max_batch_cycles`; it then
//!   flushes in a follow-up batch (every cut takes at least one item, so
//!   progress is guaranteed).
//! * A request priced above a tenant's `burst_cycles` can never be afforded
//!   outright; it is admitted when the bucket is *full* and drives the level
//!   negative ("borrowing"), so the tenant pays for it by waiting longer
//!   afterwards. A zero refill rate with an empty bucket defers until
//!   shutdown (which force-drains — no accepted request is ever dropped).

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::request::TenantId;

/// How the batcher orders items when it cuts a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchOrder {
    /// Arrival order (the PR 6 behavior).
    #[default]
    Fifo,
    /// Shortest predicted runtime first (ties broken by arrival), so small
    /// latency-sensitive requests are not stuck behind a giant one inside
    /// the same window.
    ShortestPredictedFirst,
}

/// A tenant's cycle budget: a token bucket holding up to `burst_cycles`
/// and refilling continuously at `refill_cycles_per_sec`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantBudget {
    /// Predicted cycles this tenant may spend in a burst (bucket capacity).
    pub burst_cycles: u64,
    /// Continuous refill rate in predicted cycles per wall-clock second.
    pub refill_cycles_per_sec: f64,
}

impl TenantBudget {
    /// A budget allowing `burst_cycles` at once, refilling at
    /// `refill_cycles_per_sec`.
    pub fn new(burst_cycles: u64, refill_cycles_per_sec: f64) -> Self {
        TenantBudget { burst_cycles, refill_cycles_per_sec }
    }
}

/// Admission-control policy of a [`crate::serve::CollectiveService`]. The
/// default ([`AdmissionConfig::disabled`]) enforces nothing and keeps the
/// serving path byte-identical to a service without an admission layer.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Reject any request the model prices above this many cycles with
    /// [`crate::error::CollectiveError::OverBudget`]. `None` = no ceiling.
    pub max_predicted_cycles: Option<u64>,
    /// Batch-formation order within a window.
    pub order: BatchOrder,
    /// Cut a batch when its summed predicted cycles would exceed this
    /// (every cut still takes at least one item). `None` = no cycle cut.
    pub max_batch_cycles: Option<u64>,
    /// Per-tenant budgets. Tenants not listed fall back to
    /// `default_budget`, or run unmetered if that is `None` too.
    pub tenant_budgets: Vec<(TenantId, TenantBudget)>,
    /// Budget applied to tenants without an explicit entry.
    pub default_budget: Option<TenantBudget>,
    /// Bound of the deferred side queue (across all tenants). A deferral
    /// that would exceed it is rejected with
    /// [`crate::error::CollectiveError::QueueFull`].
    pub deferred_capacity: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::disabled()
    }
}

impl AdmissionConfig {
    /// No admission control at all: no ceiling, FIFO batches, no cycle cut,
    /// no budgets. The service takes the plain PR 6 path — predictions are
    /// not even computed.
    pub fn disabled() -> Self {
        AdmissionConfig {
            max_predicted_cycles: None,
            order: BatchOrder::Fifo,
            max_batch_cycles: None,
            tenant_budgets: Vec::new(),
            default_budget: None,
            deferred_capacity: 64,
        }
    }

    /// Whether any policy is enabled (the service only routes through the
    /// admission layer when one is).
    pub fn is_active(&self) -> bool {
        self.max_predicted_cycles.is_some()
            || self.order != BatchOrder::Fifo
            || self.max_batch_cycles.is_some()
            || !self.tenant_budgets.is_empty()
            || self.default_budget.is_some()
    }

    /// This policy with a per-request cycle ceiling.
    pub fn with_max_predicted_cycles(mut self, limit: u64) -> Self {
        self.max_predicted_cycles = Some(limit);
        self
    }

    /// This policy with a batch-formation order.
    pub fn with_order(mut self, order: BatchOrder) -> Self {
        self.order = order;
        self
    }

    /// This policy with a per-batch predicted-cycle cut.
    pub fn with_max_batch_cycles(mut self, limit: u64) -> Self {
        self.max_batch_cycles = Some(limit);
        self
    }

    /// This policy with a budget for one tenant (replacing any earlier
    /// entry for the same tenant).
    pub fn with_tenant_budget(mut self, tenant: TenantId, budget: TenantBudget) -> Self {
        self.tenant_budgets.retain(|(t, _)| *t != tenant);
        self.tenant_budgets.push((tenant, budget));
        self
    }

    /// This policy with a budget for every tenant not listed explicitly.
    pub fn with_default_budget(mut self, budget: TenantBudget) -> Self {
        self.default_budget = Some(budget);
        self
    }

    /// This policy with a different deferred-queue bound.
    pub fn with_deferred_capacity(mut self, capacity: usize) -> Self {
        self.deferred_capacity = capacity.max(1);
        self
    }
}

/// Why a completed request was (or was not) delayed by admission control —
/// carried on [`crate::serve::Response`] so callers can see why a request
/// was slow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Admitted straight onto the queue.
    Admitted,
    /// Held in the deferred queue until the tenant's budget refilled.
    DeferredThenAdmitted {
        /// Time spent deferred before release.
        wait: Duration,
    },
}

/// The admission layer's view of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionInfo {
    /// Whether the request was deferred before admission, and for how long.
    pub outcome: AdmissionOutcome,
    /// The tenant the request was accounted to.
    pub tenant: TenantId,
    /// The cycles the cost model predicted at submission (`None` when no
    /// prediction was computable, e.g. a malformed request).
    pub predicted_cycles: Option<u64>,
    /// The noise-run index stamped at admission (`None` for requests that
    /// were rejected at execution and so consumed no index).
    pub run_index: Option<u64>,
}

/// What [`AdmissionController::try_charge`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Charge {
    /// The tenant's bucket covered the cost (or the tenant is unmetered).
    Admitted,
    /// The tenant cannot afford the cost right now (or has earlier deferred
    /// items — per-tenant FIFO): the item must join the deferred queue.
    Defer,
}

/// Why a deferral was refused; the item is handed back either way.
#[derive(Debug)]
pub(crate) enum DeferError<T> {
    /// The deferred queue is at capacity.
    Overflow(T),
    /// The controller was closed by shutdown.
    Closed(T),
}

/// A tenant's token bucket. `level` may go negative: a request priced above
/// `burst_cycles` is admitted when the bucket is full and borrows, making
/// the tenant wait proportionally longer afterwards.
#[derive(Debug)]
struct Bucket {
    level: f64,
    last_refill: Instant,
}

#[derive(Debug)]
struct DeferredItem<T> {
    tenant: TenantId,
    cost: u64,
    since: Instant,
    item: T,
}

#[derive(Debug)]
struct ControllerState<T> {
    buckets: HashMap<TenantId, Bucket>,
    deferred: VecDeque<DeferredItem<T>>,
    closed: bool,
}

/// The token-bucket + deferral engine, generic over the queued item so the
/// policy is unit-testable with plain values and deterministic clocks
/// (every method takes an explicit `now`).
#[derive(Debug)]
pub(crate) struct AdmissionController<T> {
    budgets: HashMap<TenantId, TenantBudget>,
    default_budget: Option<TenantBudget>,
    deferred_capacity: usize,
    state: Mutex<ControllerState<T>>,
}

impl<T> AdmissionController<T> {
    pub(crate) fn new(config: &AdmissionConfig) -> Self {
        AdmissionController {
            budgets: config.tenant_budgets.iter().copied().collect(),
            default_budget: config.default_budget,
            deferred_capacity: config.deferred_capacity.max(1),
            state: Mutex::new(ControllerState {
                buckets: HashMap::new(),
                deferred: VecDeque::new(),
                closed: false,
            }),
        }
    }

    /// The budget metering `tenant`, if any.
    fn budget_for(&self, tenant: TenantId) -> Option<TenantBudget> {
        self.budgets.get(&tenant).copied().or(self.default_budget)
    }

    /// Charge `cost` predicted cycles to `tenant`'s bucket, refilled to
    /// `now`. [`Charge::Defer`] means the caller must queue the item via
    /// [`AdmissionController::defer`]; a tenant with items already deferred
    /// always defers (per-tenant FIFO — later requests must not overtake a
    /// deferred earlier one).
    pub(crate) fn try_charge(&self, tenant: TenantId, cost: u64, now: Instant) -> Charge {
        let Some(budget) = self.budget_for(tenant) else {
            return Charge::Admitted;
        };
        let mut state = self.lock();
        if state.deferred.iter().any(|d| d.tenant == tenant) {
            return Charge::Defer;
        }
        if Self::afford(&mut state, tenant, budget, cost, now) {
            Charge::Admitted
        } else {
            Charge::Defer
        }
    }

    /// Refill `tenant`'s bucket to `now` and, if it can afford `cost`,
    /// debit it. The affordability threshold is `min(cost, burst)`: a cost
    /// above the burst is admitted from a full bucket and borrows.
    fn afford(
        state: &mut ControllerState<T>,
        tenant: TenantId,
        budget: TenantBudget,
        cost: u64,
        now: Instant,
    ) -> bool {
        let bucket = state
            .buckets
            .entry(tenant)
            .or_insert(Bucket { level: budget.burst_cycles as f64, last_refill: now });
        refill(bucket, budget, now);
        if bucket.level >= (cost as f64).min(budget.burst_cycles as f64) {
            bucket.level -= cost as f64;
            true
        } else {
            false
        }
    }

    /// Return `cost` cycles to `tenant`'s bucket (a charged submission that
    /// could not be enqueued — e.g. a non-blocking push into a full queue).
    /// Capped at the burst, so a refund racing a refill never overfills.
    pub(crate) fn refund(&self, tenant: TenantId, cost: u64, now: Instant) {
        let Some(budget) = self.budget_for(tenant) else {
            return;
        };
        let mut state = self.lock();
        if let Some(bucket) = state.buckets.get_mut(&tenant) {
            refill(bucket, budget, now);
            bucket.level = (bucket.level + cost as f64).min(budget.burst_cycles as f64);
        }
    }

    /// Queue an item the tenant could not afford. Fails when the deferred
    /// queue is at capacity or the controller was closed by shutdown.
    pub(crate) fn defer(
        &self,
        tenant: TenantId,
        cost: u64,
        item: T,
        now: Instant,
    ) -> Result<(), DeferError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(DeferError::Closed(item));
        }
        if state.deferred.len() >= self.deferred_capacity {
            return Err(DeferError::Overflow(item));
        }
        state.deferred.push_back(DeferredItem { tenant, cost, since: now, item });
        Ok(())
    }

    /// Release every deferred item whose tenant can now afford it, charging
    /// the buckets. Items are scanned in deferral order; a tenant whose
    /// head item is still unaffordable blocks *its own* later items (FIFO
    /// per tenant) but never another tenant's. Returns each released item
    /// with the time it spent deferred.
    pub(crate) fn release_due(&self, now: Instant) -> Vec<(T, Duration)> {
        let mut state = self.lock();
        let mut blocked: Vec<TenantId> = Vec::new();
        let mut released = Vec::new();
        let mut remaining = VecDeque::new();
        for entry in std::mem::take(&mut state.deferred) {
            let budget =
                self.budget_for(entry.tenant).expect("only metered tenants are ever deferred");
            if !blocked.contains(&entry.tenant)
                && Self::afford(&mut state, entry.tenant, budget, entry.cost, now)
            {
                released.push((entry.item, now.duration_since(entry.since)));
            } else {
                blocked.push(entry.tenant);
                remaining.push_back(entry);
            }
        }
        state.deferred = remaining;
        released
    }

    /// When the earliest blocked deferral becomes affordable — the wakeup
    /// deadline the batcher combines with its batch deadline. `None` when
    /// nothing is deferred, or every blocked tenant has a zero refill rate
    /// (only shutdown will move those).
    pub(crate) fn next_release_at(&self, now: Instant) -> Option<Instant> {
        let mut state = self.lock();
        let mut seen: Vec<TenantId> = Vec::new();
        let mut earliest: Option<Instant> = None;
        let entries: Vec<(TenantId, u64)> =
            state.deferred.iter().map(|d| (d.tenant, d.cost)).collect();
        for (tenant, cost) in entries {
            if seen.contains(&tenant) {
                continue;
            }
            seen.push(tenant);
            let budget = self.budget_for(tenant).expect("only metered tenants are ever deferred");
            let bucket = state
                .buckets
                .entry(tenant)
                .or_insert(Bucket { level: budget.burst_cycles as f64, last_refill: now });
            refill(bucket, budget, now);
            let needed = (cost as f64).min(budget.burst_cycles as f64) - bucket.level;
            let at = if needed <= 0.0 {
                now
            } else if budget.refill_cycles_per_sec > 0.0 {
                now + Duration::from_secs_f64(needed / budget.refill_cycles_per_sec)
            } else {
                continue;
            };
            earliest = Some(earliest.map_or(at, |e| e.min(at)));
        }
        earliest
    }

    /// Mark the controller closed (shutdown): later
    /// [`AdmissionController::defer`] calls fail with
    /// [`DeferError::Closed`]. Closing and draining under one lock is what
    /// guarantees no item can slip into the deferred queue after the drain.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
    }

    /// Take every deferred item regardless of budget (the shutdown drain:
    /// no accepted request is ever dropped). Buckets are not charged —
    /// the service is going away.
    pub(crate) fn drain(&self, now: Instant) -> Vec<(T, Duration)> {
        let mut state = self.lock();
        std::mem::take(&mut state.deferred)
            .into_iter()
            .map(|entry| (entry.item, now.duration_since(entry.since)))
            .collect()
    }

    /// Number of currently deferred items (across all tenants).
    #[cfg(test)]
    pub(crate) fn deferred_len(&self) -> usize {
        self.lock().deferred.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ControllerState<T>> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Refill a bucket to `now`: `rate × elapsed`, capped at the burst.
fn refill(bucket: &mut Bucket, budget: TenantBudget, now: Instant) {
    let elapsed = now.saturating_duration_since(bucket.last_refill);
    bucket.last_refill = now;
    bucket.level = (bucket.level + budget.refill_cycles_per_sec * elapsed.as_secs_f64())
        .min(budget.burst_cycles as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TenantId = TenantId(0);
    const T1: TenantId = TenantId(1);

    fn at(base: Instant, millis: u64) -> Instant {
        base + Duration::from_millis(millis)
    }

    fn config_with_budget(tenant: TenantId, burst: u64, rate: f64) -> AdmissionConfig {
        AdmissionConfig::disabled().with_tenant_budget(tenant, TenantBudget::new(burst, rate))
    }

    #[test]
    fn disabled_config_is_inactive_and_every_policy_activates() {
        assert!(!AdmissionConfig::disabled().is_active());
        assert!(AdmissionConfig::disabled().with_max_predicted_cycles(1).is_active());
        assert!(AdmissionConfig::disabled()
            .with_order(BatchOrder::ShortestPredictedFirst)
            .is_active());
        assert!(AdmissionConfig::disabled().with_max_batch_cycles(1).is_active());
        assert!(config_with_budget(T0, 1, 0.0).is_active());
        assert!(AdmissionConfig::disabled()
            .with_default_budget(TenantBudget::new(1, 0.0))
            .is_active());
    }

    #[test]
    fn unmetered_tenants_always_admit() {
        let controller: AdmissionController<u32> =
            AdmissionController::new(&AdmissionConfig::disabled());
        let base = Instant::now();
        assert_eq!(controller.try_charge(T0, u64::MAX, base), Charge::Admitted);
        assert_eq!(controller.next_release_at(base), None);
    }

    #[test]
    fn bucket_charges_defers_and_refills_over_time() {
        // 1000-cycle burst, 1000 cycles/sec refill = 1 cycle per millisecond.
        let controller: AdmissionController<u32> =
            AdmissionController::new(&config_with_budget(T0, 1000, 1000.0));
        let base = Instant::now();
        assert_eq!(controller.try_charge(T0, 800, at(base, 0)), Charge::Admitted);
        // 200 left: a 500-cycle request must defer.
        assert_eq!(controller.try_charge(T0, 500, at(base, 0)), Charge::Defer);
        controller.defer(T0, 500, 1, at(base, 0)).unwrap();
        // Not yet affordable after 100 ms (level 300)...
        assert!(controller.release_due(at(base, 100)).is_empty());
        // ...and the controller knows exactly when it will be: 300 ms in.
        assert_eq!(controller.next_release_at(at(base, 100)), Some(at(base, 300)));
        // At 300 ms the bucket holds 500 and the deferral releases.
        let released = controller.release_due(at(base, 300));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].0, 1);
        assert_eq!(released[0].1, Duration::from_millis(300));
        assert_eq!(controller.deferred_len(), 0);
    }

    #[test]
    fn deferred_tenants_keep_fifo_order_and_do_not_block_others() {
        // Tenant 0 refills slowly (100 cycles/s), tenant 1 fast (1000/s).
        let config = config_with_budget(T0, 100, 100.0)
            .with_tenant_budget(T1, TenantBudget::new(100, 1000.0));
        let controller: AdmissionController<u32> = AdmissionController::new(&config);
        let base = Instant::now();
        // Drain both buckets.
        assert_eq!(controller.try_charge(T0, 100, at(base, 0)), Charge::Admitted);
        assert_eq!(controller.try_charge(T1, 100, at(base, 0)), Charge::Admitted);
        // Tenant 0's head (60 cycles) cannot be afforded: deferred.
        assert_eq!(controller.try_charge(T0, 60, at(base, 0)), Charge::Defer);
        controller.defer(T0, 60, 1, at(base, 0)).unwrap();
        // A later, *cheaper* request from the same tenant still defers:
        // per-tenant FIFO forbids overtaking the blocked head.
        assert_eq!(controller.try_charge(T0, 1, at(base, 10)), Charge::Defer);
        controller.defer(T0, 1, 2, at(base, 10)).unwrap();
        // Tenant 1 queues *behind* them.
        assert_eq!(controller.try_charge(T1, 100, at(base, 20)), Charge::Defer);
        controller.defer(T1, 100, 3, at(base, 20)).unwrap();

        // At 120 ms tenant 0 holds 12 cycles: its head (60) stays blocked,
        // and so does its affordable second item (FIFO). Tenant 1 holds 120
        // and is not head-of-line blocked by tenant 0 ahead of it.
        let released = controller.release_due(at(base, 120));
        assert_eq!(released.iter().map(|(item, _)| *item).collect::<Vec<_>>(), vec![3]);
        // Tenant 0 needs 48 more cycles: affordable 480 ms later.
        assert_eq!(controller.next_release_at(at(base, 120)), Some(at(base, 600)));
        // At 700 ms tenant 0's bucket holds 70: the head releases (leaving
        // 10), then the 1-cycle item — FIFO order preserved.
        let released = controller.release_due(at(base, 700));
        assert_eq!(released.iter().map(|(item, _)| *item).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(controller.deferred_len(), 0);
    }

    #[test]
    fn oversized_requests_borrow_from_a_full_bucket() {
        let controller: AdmissionController<u32> =
            AdmissionController::new(&config_with_budget(T0, 100, 100.0));
        let base = Instant::now();
        // 250 > burst 100, but the bucket is full: admitted, level goes to
        // -150, and the next 1-cycle request waits for the debt to clear.
        assert_eq!(controller.try_charge(T0, 250, at(base, 0)), Charge::Admitted);
        assert_eq!(controller.try_charge(T0, 1, at(base, 0)), Charge::Defer);
        controller.defer(T0, 1, 7, at(base, 0)).unwrap();
        // level(-150) + 1.51 s × 100/s = 1: affordable.
        assert!(controller.release_due(at(base, 1400)).is_empty());
        assert_eq!(controller.release_due(at(base, 1510)).len(), 1);
    }

    #[test]
    fn deferred_queue_overflows_at_capacity() {
        let config = config_with_budget(T0, 10, 0.0).with_deferred_capacity(2);
        let controller: AdmissionController<u32> = AdmissionController::new(&config);
        let base = Instant::now();
        controller.try_charge(T0, 10, base); // drain the bucket
        controller.defer(T0, 5, 1, base).unwrap();
        controller.defer(T0, 5, 2, base).unwrap();
        match controller.defer(T0, 5, 3, base) {
            Err(DeferError::Overflow(item)) => assert_eq!(item, 3),
            other => panic!("expected Overflow, got {other:?}"),
        }
        assert_eq!(controller.deferred_len(), 2);
    }

    #[test]
    fn zero_rate_tenants_never_schedule_a_release_but_drain_on_shutdown() {
        let controller: AdmissionController<u32> =
            AdmissionController::new(&config_with_budget(T0, 10, 0.0));
        let base = Instant::now();
        controller.try_charge(T0, 10, base);
        controller.defer(T0, 5, 42, at(base, 1)).unwrap();
        assert_eq!(controller.next_release_at(at(base, 2)), None, "no refill, no wakeup");
        controller.close();
        match controller.defer(T0, 5, 43, at(base, 3)) {
            Err(DeferError::Closed(item)) => assert_eq!(item, 43),
            other => panic!("expected Closed, got {other:?}"),
        }
        let drained = controller.drain(at(base, 11));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, 42);
        assert_eq!(drained[0].1, Duration::from_millis(10));
        assert_eq!(controller.deferred_len(), 0);
    }

    #[test]
    fn refunds_restore_tokens_capped_at_burst() {
        let controller: AdmissionController<u32> =
            AdmissionController::new(&config_with_budget(T0, 100, 0.0));
        let base = Instant::now();
        assert_eq!(controller.try_charge(T0, 80, base), Charge::Admitted);
        assert_eq!(controller.try_charge(T0, 80, base), Charge::Defer);
        controller.refund(T0, 80, base);
        assert_eq!(controller.try_charge(T0, 80, base), Charge::Admitted);
        // Refunding beyond the burst does not overfill.
        controller.refund(T0, 10_000, base);
        assert_eq!(controller.try_charge(T0, 100, base), Charge::Admitted);
        assert_eq!(controller.try_charge(T0, 1, base), Charge::Defer);
    }

    #[test]
    fn default_budget_meters_unlisted_tenants() {
        let config = AdmissionConfig::disabled().with_default_budget(TenantBudget::new(50, 0.0));
        let controller: AdmissionController<u32> = AdmissionController::new(&config);
        let base = Instant::now();
        assert_eq!(controller.try_charge(TenantId(9), 50, base), Charge::Admitted);
        assert_eq!(controller.try_charge(TenantId(9), 1, base), Charge::Defer);
        // A different unlisted tenant has its own bucket.
        assert_eq!(controller.try_charge(TenantId(10), 50, base), Charge::Admitted);
    }
}
