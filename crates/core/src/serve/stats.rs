//! Service observability: queue depth, batch formation and latency.
//!
//! The recorder is written from both sides of the service — submitters bump
//! the admission counters, the batcher thread records batches and
//! completions — so the cheap monotone counters are atomics and only the
//! histogram/latency state sits behind a mutex that is touched once per
//! batch, not once per request. [`ServiceStats`] is a consistent-enough
//! snapshot: counters are monotone and independent, so a snapshot taken
//! between two bumps is still a valid state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use super::batcher::FlushReason;

/// Completed-request latencies kept for percentile estimation. A bounded
/// window (the most recent completions) so a long-lived service's stats
/// stay O(1) in memory; mean and max are tracked over the full lifetime.
const LATENCY_WINDOW: usize = 8192;

/// Latency summary over a service's completed requests: percentiles over
/// the most recent [`LATENCY_WINDOW`] completions (nearest-rank), mean and
/// max over the whole lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Completions that contributed a latency sample (lifetime).
    pub samples: u64,
    /// Median enqueue-to-complete latency over the recent window.
    pub p50: Duration,
    /// 99th-percentile enqueue-to-complete latency over the recent window.
    pub p99: Duration,
    /// Mean enqueue-to-complete latency over the lifetime.
    pub mean: Duration,
    /// Maximum enqueue-to-complete latency over the lifetime.
    pub max: Duration,
}

/// A point-in-time snapshot of a service's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests currently sitting in the submission queue (not yet claimed
    /// by the batcher).
    pub queue_depth: usize,
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// Non-blocking submissions rejected with a full queue (backpressure).
    pub rejected: u64,
    /// Submissions rejected at admission because the model priced them
    /// above the per-request cycle ceiling.
    pub over_budget: u64,
    /// Submissions deferred to the side queue by a tenant budget (each is
    /// eventually admitted or drained — deferral is a delay, not a drop).
    pub deferred: u64,
    /// Submissions rejected because the deferred side queue was full.
    pub deferral_overflow: u64,
    /// Requests whose handles have been fulfilled.
    pub completed: u64,
    /// Batches dispatched to the executor.
    pub batches: u64,
    /// Batches flushed by the size trigger (`max_batch` reached).
    pub size_flushes: u64,
    /// Batches flushed by the deadline trigger (`max_wait` elapsed).
    pub deadline_flushes: u64,
    /// Batches flushed by the shutdown drain.
    pub shutdown_flushes: u64,
    /// Batch-size distribution: `batch_size_histogram[s - 1]` counts the
    /// batches that were dispatched with exactly `s` items.
    pub batch_size_histogram: Vec<u64>,
    /// Enqueue-to-complete latency summary.
    pub latency: LatencySummary,
}

impl ServiceStats {
    /// Mean number of items per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        let items: u64 = self
            .batch_size_histogram
            .iter()
            .enumerate()
            .map(|(i, count)| (i as u64 + 1) * count)
            .sum();
        items as f64 / self.batches as f64
    }
}

#[derive(Debug, Default)]
struct HistogramState {
    batches: u64,
    size_flushes: u64,
    deadline_flushes: u64,
    shutdown_flushes: u64,
    batch_sizes: Vec<u64>,
    latency_window: Vec<u64>,
    window_cursor: usize,
    latency_sum_us: u128,
    latency_max_us: u64,
    latency_samples: u64,
}

/// The service-internal mutable side of [`ServiceStats`].
#[derive(Debug, Default)]
pub(crate) struct StatsRecorder {
    submitted: AtomicU64,
    rejected: AtomicU64,
    over_budget: AtomicU64,
    deferred: AtomicU64,
    deferral_overflow: AtomicU64,
    completed: AtomicU64,
    histogram: Mutex<HistogramState>,
}

impl StatsRecorder {
    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_over_budget(&self) {
        self.over_budget.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_deferred(&self) {
        self.deferred.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_deferral_overflow(&self) {
        self.deferral_overflow.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a dispatched batch and its flush reason.
    pub(crate) fn record_batch(&self, size: usize, reason: FlushReason) {
        debug_assert!(size > 0, "empty batches are never dispatched");
        let mut state = self.lock();
        state.batches += 1;
        match reason {
            FlushReason::Size => state.size_flushes += 1,
            FlushReason::Deadline => state.deadline_flushes += 1,
            FlushReason::Shutdown => state.shutdown_flushes += 1,
        }
        if state.batch_sizes.len() < size {
            state.batch_sizes.resize(size, 0);
        }
        state.batch_sizes[size - 1] += 1;
    }

    /// Record one fulfilled request and its enqueue-to-complete latency.
    pub(crate) fn record_completion(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let mut state = self.lock();
        state.latency_samples += 1;
        state.latency_sum_us += u128::from(micros);
        state.latency_max_us = state.latency_max_us.max(micros);
        if state.latency_window.len() < LATENCY_WINDOW {
            state.latency_window.push(micros);
        } else {
            let cursor = state.window_cursor;
            state.latency_window[cursor] = micros;
            state.window_cursor = (cursor + 1) % LATENCY_WINDOW;
        }
    }

    /// Snapshot every counter. `queue_depth` is sampled by the caller (the
    /// recorder does not own the queue).
    pub(crate) fn snapshot(&self, queue_depth: usize) -> ServiceStats {
        let state = self.lock();
        let mut window: Vec<u64> = state.latency_window.clone();
        window.sort_unstable();
        let percentile = |q: f64| -> Duration {
            if window.is_empty() {
                return Duration::ZERO;
            }
            // Nearest-rank on the sorted window.
            let rank = ((q * window.len() as f64).ceil() as usize).clamp(1, window.len());
            Duration::from_micros(window[rank - 1])
        };
        let mean = if state.latency_samples == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros((state.latency_sum_us / u128::from(state.latency_samples)) as u64)
        };
        ServiceStats {
            queue_depth,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            over_budget: self.over_budget.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            deferral_overflow: self.deferral_overflow.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: state.batches,
            size_flushes: state.size_flushes,
            deadline_flushes: state.deadline_flushes,
            shutdown_flushes: state.shutdown_flushes,
            batch_size_histogram: state.batch_sizes.clone(),
            latency: LatencySummary {
                samples: state.latency_samples,
                p50: percentile(0.50),
                p99: percentile(0.99),
                mean,
                max: Duration::from_micros(state.latency_max_us),
            },
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HistogramState> {
        self.histogram.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_histogrammed_by_size_and_reason() {
        let recorder = StatsRecorder::default();
        recorder.record_batch(3, FlushReason::Size);
        recorder.record_batch(1, FlushReason::Deadline);
        recorder.record_batch(3, FlushReason::Size);
        recorder.record_batch(2, FlushReason::Shutdown);
        let stats = recorder.snapshot(5);
        assert_eq!(stats.queue_depth, 5);
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.size_flushes, 2);
        assert_eq!(stats.deadline_flushes, 1);
        assert_eq!(stats.shutdown_flushes, 1);
        assert_eq!(stats.batch_size_histogram, vec![1, 1, 2]);
        assert!((stats.mean_batch_size() - 9.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let recorder = StatsRecorder::default();
        for micros in 1..=100u64 {
            recorder.record_completion(Duration::from_micros(micros));
        }
        let latency = recorder.snapshot(0).latency;
        assert_eq!(latency.samples, 100);
        assert_eq!(latency.p50, Duration::from_micros(50));
        assert_eq!(latency.p99, Duration::from_micros(99));
        assert_eq!(latency.max, Duration::from_micros(100));
        assert_eq!(latency.mean, Duration::from_micros(50)); // 50.5 truncated
    }

    #[test]
    fn admission_counters_are_independent() {
        let recorder = StatsRecorder::default();
        recorder.record_over_budget();
        recorder.record_deferred();
        recorder.record_deferred();
        recorder.record_deferral_overflow();
        let stats = recorder.snapshot(0);
        assert_eq!(stats.over_budget, 1);
        assert_eq!(stats.deferred, 2);
        assert_eq!(stats.deferral_overflow, 1);
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn empty_recorder_snapshots_zeroes() {
        let stats = StatsRecorder::default().snapshot(0);
        assert_eq!(stats, ServiceStats::default());
        assert_eq!(stats.mean_batch_size(), 0.0);
    }

    #[test]
    fn latency_window_is_bounded() {
        let recorder = StatsRecorder::default();
        for i in 0..(LATENCY_WINDOW as u64 + 100) {
            recorder.record_completion(Duration::from_micros(i));
        }
        let state = recorder.lock();
        assert_eq!(state.latency_window.len(), LATENCY_WINDOW);
        assert_eq!(state.latency_samples, LATENCY_WINDOW as u64 + 100);
    }
}
