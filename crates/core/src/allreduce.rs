//! AllReduce plans: Reduce-then-Broadcast (§6.1), the Ring AllReduce (§6.2)
//! and the 2D composition of §7.4.

use wse_fabric::geometry::{Coord, GridDim};
use wse_fabric::program::ReduceOp;
use wse_fabric::wavelet::Color;
use wse_model::Machine;

use crate::broadcast::{append_flood_broadcast, append_flood_broadcast_2d};
use crate::path::LinePath;
use crate::phases::{
    append_allgather_rounds, append_reduce_scatter_rounds, append_ring_routes, RingColors,
};
use crate::plan::CollectivePlan;
use crate::reduce::{Reduce2dPattern, ReducePattern, BROADCAST_COLOR};
use crate::tree_plan::append_tree_reduce;

/// The 1D AllReduce algorithms that can be compiled to a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllReducePattern {
    /// Reduce with the given pattern, then the flooding Broadcast (§6.1).
    ReduceBroadcast(ReducePattern),
    /// The Ring AllReduce (§6.2): reduce-scatter followed by all-gather.
    Ring,
}

impl AllReducePattern {
    /// Name as used in the paper's figures. Returns `&'static str`,
    /// consistent with [`ReducePattern::name`].
    pub fn name(&self) -> &'static str {
        match self {
            Self::ReduceBroadcast(ReducePattern::Star) => "Star+Bcast",
            Self::ReduceBroadcast(ReducePattern::Chain) => "Chain+Bcast",
            Self::ReduceBroadcast(ReducePattern::Tree) => "Tree+Bcast",
            Self::ReduceBroadcast(ReducePattern::TwoPhase) => "Two-Phase+Bcast",
            Self::ReduceBroadcast(ReducePattern::AutoGen) => "Auto-Gen+Bcast",
            Self::Ring => "Ring",
        }
    }

    /// The plan-side pattern corresponding to a model-side algorithm label.
    ///
    /// The Butterfly is analysed by the model only (§6.3); its plan-side
    /// stand-in is the Ring, exactly as in the model's own best-algorithm
    /// regions.
    pub fn from_model(alg: wse_model::AllReduce1dAlgorithm) -> Self {
        use wse_model::AllReduce1dAlgorithm as A;
        match alg {
            A::StarBcast => AllReducePattern::ReduceBroadcast(ReducePattern::Star),
            A::ChainBcast => AllReducePattern::ReduceBroadcast(ReducePattern::Chain),
            A::TreeBcast => AllReducePattern::ReduceBroadcast(ReducePattern::Tree),
            A::TwoPhaseBcast => AllReducePattern::ReduceBroadcast(ReducePattern::TwoPhase),
            A::AutoGenBcast => AllReducePattern::ReduceBroadcast(ReducePattern::AutoGen),
            A::Ring | A::Butterfly => AllReducePattern::Ring,
        }
    }

    /// The corresponding model-side algorithm label.
    ///
    /// `Ring` maps to the model's Ring (never the Butterfly): the plan
    /// actually built is the ring, so that is the honest prediction.
    pub fn model_algorithm(&self) -> wse_model::AllReduce1dAlgorithm {
        use wse_model::AllReduce1dAlgorithm as A;
        match self {
            Self::ReduceBroadcast(ReducePattern::Star) => A::StarBcast,
            Self::ReduceBroadcast(ReducePattern::Chain) => A::ChainBcast,
            Self::ReduceBroadcast(ReducePattern::Tree) => A::TreeBcast,
            Self::ReduceBroadcast(ReducePattern::TwoPhase) => A::TwoPhaseBcast,
            Self::ReduceBroadcast(ReducePattern::AutoGen) => A::AutoGenBcast,
            Self::Ring => A::Ring,
        }
    }
}

/// Build a 1D AllReduce plan for a row of `p` PEs.
pub fn allreduce_1d_plan(
    pattern: AllReducePattern,
    p: u32,
    vector_len: u32,
    op: ReduceOp,
    machine: &Machine,
) -> CollectivePlan {
    match pattern {
        AllReducePattern::ReduceBroadcast(reduce) => {
            let dim = GridDim::row(p);
            let path = LinePath::row(dim, 0);
            let mut plan = CollectivePlan::new(
                format!("allreduce-1d-{}-p{}-b{}", pattern.name(), p, vector_len),
                dim,
                path.root(),
                vector_len,
            );
            let tree = reduce.tree(p as usize, vector_len, machine);
            let colors = [Color::new(0), Color::new(1)];
            append_tree_reduce(&mut plan, &path, &tree, vector_len, op, colors, false);
            append_flood_broadcast(&mut plan, &path, vector_len, 0, Color::new(BROADCAST_COLOR));
            for c in path.coords() {
                plan.add_data_pe(*c);
                plan.add_result_pe(*c);
            }
            plan
        }
        AllReducePattern::Ring => ring_allreduce_plan(p, vector_len, op),
    }
}

/// Build the Ring AllReduce plan on a row of `p` PEs (§6.2, simple mapping
/// of Figure 7a).
///
/// The vector length must be divisible by `p`: the algorithm runs `p - 1`
/// rounds of reduce-scatter followed by `p - 1` rounds of all-gather on
/// chunks of `vector_len / p` elements. Although the paper analyses the ring
/// only with its model (and concludes it is never the best choice on the
/// WSE, §8.6), the implementation is provided so the prediction can be
/// validated on the simulator.
///
/// # Panics
///
/// Panics when `p < 2` or `vector_len` is not divisible by `p`. The
/// request API rejects the same shapes with a typed
/// [`crate::error::CollectiveError::InvalidRequest`] before reaching this
/// builder ([`crate::request::CollectiveRequest::validate`]); the panic
/// here is the contract for callers constructing plans by hand.
pub fn ring_allreduce_plan(p: u32, vector_len: u32, op: ReduceOp) -> CollectivePlan {
    assert!(p >= 2, "the ring needs at least two PEs");
    assert_eq!(
        vector_len % p,
        0,
        "the ring all-reduce requires the vector length to be divisible by the PE count"
    );
    let dim = GridDim::row(p);
    let chunk = vector_len / p;
    let colors = RingColors::default();
    let mut plan = CollectivePlan::new(
        format!("allreduce-1d-Ring-p{p}-b{vector_len}"),
        dim,
        Coord::new(0, 0),
        vector_len,
    );
    // The ring is the composition of the shared phase builders: static ring
    // routes, p - 1 reduce-scatter rounds and p - 1 all-gather rounds that
    // pick up at the chunk the reduce-scatter finished (base 1). The phase
    // module's golden test pins this to the pre-refactor emission byte for
    // byte.
    append_ring_routes(&mut plan, p, &colors);
    append_reduce_scatter_rounds(&mut plan, p, chunk, op, &colors);
    append_allgather_rounds(&mut plan, p, chunk, &colors, 1);
    for x in 0..p {
        let at = Coord::new(x, 0);
        plan.add_data_pe(at);
        plan.add_result_pe(at);
    }
    plan
}

/// Build the X-Y AllReduce of §7.4 (first approach): an AllReduce inside
/// every row (Reduce towards the leftmost PE, then a row broadcast back),
/// followed by an AllReduce inside every column.
///
/// The paper analyses this variant and shows it is bandwidth-inefficient —
/// it effectively broadcasts twice — which is why Reduce-then-2D-Broadcast
/// ([`allreduce_2d_plan`]) is preferred; the implementation is provided so
/// that the comparison can be reproduced on the simulator.
pub fn xy_allreduce_2d_plan(
    pattern: ReducePattern,
    dim: GridDim,
    vector_len: u32,
    op: ReduceOp,
    machine: &Machine,
) -> CollectivePlan {
    let mut plan = CollectivePlan::new(
        format!("allreduce-2d-XY-{}-{}x{}-b{}", pattern.name(), dim.height, dim.width, vector_len),
        dim,
        Coord::new(0, 0),
        vector_len,
    );
    let x_colors = [Color::new(0), Color::new(1)];
    let x_bcast = Color::new(2);
    let y_colors = [Color::new(3), Color::new(4)];
    let y_bcast = Color::new(5);
    // X phase: AllReduce inside every row.
    if dim.width > 1 {
        let row_tree = pattern.tree(dim.width as usize, vector_len, machine);
        for y in 0..dim.height {
            let path = LinePath::row(dim, y);
            append_tree_reduce(&mut plan, &path, &row_tree, vector_len, op, x_colors, false);
            append_flood_broadcast(&mut plan, &path, vector_len, 0, x_bcast);
        }
    }
    // Y phase: AllReduce inside every column (every PE now holds its row's
    // sum, so the column AllReduce completes the global sum everywhere).
    if dim.height > 1 {
        let col_tree = pattern.tree(dim.height as usize, vector_len, machine);
        for x in 0..dim.width {
            let path = LinePath::column(dim, x);
            append_tree_reduce(&mut plan, &path, &col_tree, vector_len, op, y_colors, false);
            append_flood_broadcast(&mut plan, &path, vector_len, 0, y_bcast);
        }
    }
    for c in dim.iter() {
        plan.add_data_pe(c);
        plan.add_result_pe(c);
    }
    plan
}

/// Build a 2D AllReduce plan: the given 2D Reduce followed by the 2D
/// flooding Broadcast (§7.4).
pub fn allreduce_2d_plan(
    pattern: Reduce2dPattern,
    dim: GridDim,
    vector_len: u32,
    op: ReduceOp,
    machine: &Machine,
) -> CollectivePlan {
    let mut plan = crate::reduce::reduce_2d_plan(pattern, dim, vector_len, op, machine);
    append_flood_broadcast_2d(&mut plan, dim, vector_len, 0, Color::new(BROADCAST_COLOR));
    // After the broadcast every PE holds the result.
    plan.clear_result_pes();
    for c in dim.iter() {
        plan.add_result_pe(c);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{assert_outputs_close, expected_reduce, run_plan, RunConfig};

    fn machine() -> Machine {
        Machine::wse2()
    }

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| ((i * b + j) % 17) as f32 * 0.5 - 2.0).collect()).collect()
    }

    #[test]
    fn reduce_then_broadcast_allreduce_is_correct_for_every_pattern() {
        let p = 10u32;
        let b = 12u32;
        let data = inputs(p as usize, b as usize);
        let expected = expected_reduce(&data, ReduceOp::Sum);
        for pattern in ReducePattern::all() {
            let plan = allreduce_1d_plan(
                AllReducePattern::ReduceBroadcast(pattern),
                p,
                b,
                ReduceOp::Sum,
                &machine(),
            );
            let outcome = run_plan(&plan, &data, &RunConfig::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", pattern.name()));
            assert_eq!(outcome.outputs.len(), p as usize);
            assert_outputs_close(&outcome, &expected, 1e-4);
            assert!(plan.colors_used().len() <= 3);
        }
    }

    #[test]
    fn ring_allreduce_is_correct() {
        for (p, b) in [(4u32, 16u32), (6, 12), (8, 32)] {
            let data = inputs(p as usize, b as usize);
            let expected = expected_reduce(&data, ReduceOp::Sum);
            let plan = ring_allreduce_plan(p, b, ReduceOp::Sum);
            let outcome = run_plan(&plan, &data, &RunConfig::default())
                .unwrap_or_else(|e| panic!("ring p={p} b={b} failed: {e}"));
            assert_eq!(outcome.outputs.len(), p as usize);
            assert_outputs_close(&outcome, &expected, 1e-4);
            assert!(plan.colors_used().len() <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn ring_rejects_indivisible_vectors() {
        let _ = ring_allreduce_plan(4, 13, ReduceOp::Sum);
    }

    #[test]
    fn allreduce_2d_is_correct() {
        let dim = GridDim::new(4, 4);
        let b = 8u32;
        let data = inputs(16, b as usize);
        let expected = expected_reduce(&data, ReduceOp::Sum);
        for pattern in [
            Reduce2dPattern::Xy(ReducePattern::Chain),
            Reduce2dPattern::Xy(ReducePattern::TwoPhase),
            Reduce2dPattern::Xy(ReducePattern::AutoGen),
            Reduce2dPattern::Snake,
        ] {
            let plan = allreduce_2d_plan(pattern, dim, b, ReduceOp::Sum, &machine());
            let outcome = run_plan(&plan, &data, &RunConfig::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", pattern.name()));
            assert_eq!(outcome.outputs.len(), 16);
            assert_outputs_close(&outcome, &expected, 1e-4);
            assert!(plan.colors_used().len() <= 5, "{}", pattern.name());
        }
    }

    #[test]
    fn xy_allreduce_is_correct_but_slower_than_reduce_then_2d_broadcast() {
        // §7.4: all-reducing each axis broadcasts twice, which is bandwidth
        // inefficient compared to Reduce + 2D Broadcast for larger vectors.
        let dim = GridDim::new(6, 4);
        let b = 64u32;
        let data = inputs(24, b as usize);
        let expected = expected_reduce(&data, ReduceOp::Sum);
        let m = machine();

        let xy = xy_allreduce_2d_plan(ReducePattern::TwoPhase, dim, b, ReduceOp::Sum, &m);
        assert!(xy.colors_used().len() <= 6);
        let xy_outcome = run_plan(&xy, &data, &RunConfig::default()).unwrap();
        assert_eq!(xy_outcome.outputs.len(), 24);
        assert_outputs_close(&xy_outcome, &expected, 1e-4);

        let rb = allreduce_2d_plan(
            Reduce2dPattern::Xy(ReducePattern::TwoPhase),
            dim,
            b,
            ReduceOp::Sum,
            &m,
        );
        let rb_outcome = run_plan(&rb, &data, &RunConfig::default()).unwrap();
        assert_outputs_close(&rb_outcome, &expected, 1e-4);
        assert!(
            rb_outcome.runtime_cycles() <= xy_outcome.runtime_cycles(),
            "reduce+2D-broadcast ({}) should not lose to the X-Y AllReduce ({})",
            rb_outcome.runtime_cycles(),
            xy_outcome.runtime_cycles()
        );
    }

    #[test]
    fn ring_beats_chain_broadcast_for_few_pes_and_huge_vectors() {
        // Figure 8's ring region: few PEs, bandwidth-bound vectors.
        let p = 4u32;
        let b = 1024u32;
        let data = inputs(p as usize, b as usize);
        let ring =
            run_plan(&ring_allreduce_plan(p, b, ReduceOp::Sum), &data, &RunConfig::default())
                .unwrap()
                .runtime_cycles();
        let chain = run_plan(
            &allreduce_1d_plan(
                AllReducePattern::ReduceBroadcast(ReducePattern::Chain),
                p,
                b,
                ReduceOp::Sum,
                &machine(),
            ),
            &data,
            &RunConfig::default(),
        )
        .unwrap()
        .runtime_cycles();
        assert!(ring < chain, "ring {ring} vs chain+bcast {chain}");
    }

    #[test]
    fn allreduce_runtime_exceeds_reduce_runtime() {
        let p = 16u32;
        let b = 64u32;
        let data = inputs(p as usize, b as usize);
        let m = machine();
        let reduce = run_plan(
            &crate::reduce::reduce_1d_plan(ReducePattern::TwoPhase, p, b, ReduceOp::Sum, &m),
            &data,
            &RunConfig::default(),
        )
        .unwrap()
        .runtime_cycles();
        let allreduce = run_plan(
            &allreduce_1d_plan(
                AllReducePattern::ReduceBroadcast(ReducePattern::TwoPhase),
                p,
                b,
                ReduceOp::Sum,
                &m,
            ),
            &data,
            &RunConfig::default(),
        )
        .unwrap()
        .runtime_cycles();
        assert!(allreduce > reduce);
        // ... by roughly the cost of a broadcast (B + P), not by another full
        // reduce.
        assert!((allreduce - reduce) as f64 <= 2.0 * (b + p + 10) as f64);
    }
}
