//! Reduce plans: the fixed 1D patterns of §5, the Auto-Gen schedule of §5.5,
//! and the 2D compositions of §7.

use wse_fabric::geometry::{Coord, GridDim};
use wse_fabric::program::ReduceOp;
use wse_fabric::wavelet::Color;
use wse_model::autogen::{AutogenSolver, ReductionTree};
use wse_model::Machine;

use crate::path::LinePath;
use crate::plan::CollectivePlan;
use crate::tree_plan::append_tree_reduce;

/// The 1D Reduce patterns that can be compiled to a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReducePattern {
    /// Star Reduce (§5.1): every PE sends directly to the root.
    Star,
    /// Chain Reduce (§5.2): fully pipelined nearest-neighbour chain (the
    /// vendor library's pattern).
    Chain,
    /// Binary Tree Reduce (§5.3).
    Tree,
    /// Two-Phase Reduce (§5.4) with group size `≈ sqrt(P)`.
    TwoPhase,
    /// Auto-Gen Reduce (§5.5): the tree is chosen by the performance model
    /// for the given vector length.
    AutoGen,
}

impl ReducePattern {
    /// All patterns, in the paper's order.
    pub fn all() -> [ReducePattern; 5] {
        [Self::Star, Self::Chain, Self::Tree, Self::TwoPhase, Self::AutoGen]
    }

    /// Name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Star => "Star",
            Self::Chain => "Chain",
            Self::Tree => "Tree",
            Self::TwoPhase => "Two-Phase",
            Self::AutoGen => "Auto-Gen",
        }
    }

    /// The reduction tree this pattern uses on `p` PEs for vectors of
    /// `vector_len` wavelets.
    pub fn tree(&self, p: usize, vector_len: u32, machine: &Machine) -> ReductionTree {
        match self {
            Self::Star => ReductionTree::star(p),
            Self::Chain => ReductionTree::chain(p),
            Self::Tree => ReductionTree::binary_tree(p),
            Self::TwoPhase => {
                let s = wse_model::costs_1d::two_phase_default_group(p as u64) as usize;
                ReductionTree::two_phase(p, s)
            }
            Self::AutoGen => AutogenSolver::new(p as u64).best_tree(vector_len as u64, machine),
        }
    }

    /// The plan-side pattern corresponding to a model-side algorithm label.
    pub fn from_model(alg: wse_model::Reduce1dAlgorithm) -> Self {
        match alg {
            wse_model::Reduce1dAlgorithm::Star => ReducePattern::Star,
            wse_model::Reduce1dAlgorithm::Chain => ReducePattern::Chain,
            wse_model::Reduce1dAlgorithm::Tree => ReducePattern::Tree,
            wse_model::Reduce1dAlgorithm::TwoPhase => ReducePattern::TwoPhase,
            wse_model::Reduce1dAlgorithm::AutoGen => ReducePattern::AutoGen,
        }
    }

    /// The corresponding model-side algorithm label.
    pub fn model_algorithm(&self) -> wse_model::Reduce1dAlgorithm {
        match self {
            Self::Star => wse_model::Reduce1dAlgorithm::Star,
            Self::Chain => wse_model::Reduce1dAlgorithm::Chain,
            Self::Tree => wse_model::Reduce1dAlgorithm::Tree,
            Self::TwoPhase => wse_model::Reduce1dAlgorithm::TwoPhase,
            Self::AutoGen => wse_model::Reduce1dAlgorithm::AutoGen,
        }
    }
}

/// The two colors used by 1D Reduce plans (X-axis phases).
pub const REDUCE_X_COLORS: [u8; 2] = [0, 1];
/// The two colors used by the Y-axis phase of 2D Reduce plans.
pub const REDUCE_Y_COLORS: [u8; 2] = [2, 3];
/// The color used by broadcast phases (AllReduce).
pub const BROADCAST_COLOR: u8 = 4;

fn x_colors() -> [Color; 2] {
    [Color::new(REDUCE_X_COLORS[0]), Color::new(REDUCE_X_COLORS[1])]
}

fn y_colors() -> [Color; 2] {
    [Color::new(REDUCE_Y_COLORS[0]), Color::new(REDUCE_Y_COLORS[1])]
}

/// Build a Reduce plan along a path using an explicit reduction tree.
pub fn tree_reduce_plan(
    name: impl Into<String>,
    path: &LinePath,
    tree: &ReductionTree,
    vector_len: u32,
    op: ReduceOp,
) -> CollectivePlan {
    let mut plan = CollectivePlan::new(name, path.dim(), path.root(), vector_len);
    append_tree_reduce(&mut plan, path, tree, vector_len, op, x_colors(), false);
    for c in path.coords() {
        plan.add_data_pe(*c);
    }
    plan.add_result_pe(path.root());
    plan
}

/// Build a 1D Reduce plan for a row of `p` PEs with the given pattern.
///
/// The root is the leftmost PE of the row. For the Auto-Gen pattern the
/// machine model decides the tree shape based on the vector length.
pub fn reduce_1d_plan(
    pattern: ReducePattern,
    p: u32,
    vector_len: u32,
    op: ReduceOp,
    machine: &Machine,
) -> CollectivePlan {
    let dim = GridDim::row(p);
    let path = LinePath::row(dim, 0);
    let tree = pattern.tree(p as usize, vector_len, machine);
    tree_reduce_plan(
        format!("reduce-1d-{}-p{}-b{}", pattern.name(), p, vector_len),
        &path,
        &tree,
        vector_len,
        op,
    )
}

/// The 2D Reduce patterns of §7 that can be compiled to a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduce2dPattern {
    /// X-Y Reduce (§7.2) with the given 1D pattern on both axes.
    Xy(ReducePattern),
    /// Snake Reduce (§7.3): the chain mapped boustrophedon over the grid.
    Snake,
}

impl Reduce2dPattern {
    /// Name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Self::Xy(p) => format!("X-Y {}", p.name()),
            Self::Snake => "Snake".to_string(),
        }
    }

    /// The plan-side pattern corresponding to a model-side algorithm label.
    pub fn from_model(alg: wse_model::Reduce2dAlgorithm) -> Self {
        match alg {
            wse_model::Reduce2dAlgorithm::XyStar => Reduce2dPattern::Xy(ReducePattern::Star),
            wse_model::Reduce2dAlgorithm::XyChain => Reduce2dPattern::Xy(ReducePattern::Chain),
            wse_model::Reduce2dAlgorithm::XyTree => Reduce2dPattern::Xy(ReducePattern::Tree),
            wse_model::Reduce2dAlgorithm::XyTwoPhase => {
                Reduce2dPattern::Xy(ReducePattern::TwoPhase)
            }
            wse_model::Reduce2dAlgorithm::XyAutoGen => Reduce2dPattern::Xy(ReducePattern::AutoGen),
            wse_model::Reduce2dAlgorithm::Snake => Reduce2dPattern::Snake,
        }
    }

    /// The corresponding model-side algorithm label.
    pub fn model_algorithm(&self) -> wse_model::Reduce2dAlgorithm {
        match self {
            Self::Xy(ReducePattern::Star) => wse_model::Reduce2dAlgorithm::XyStar,
            Self::Xy(ReducePattern::Chain) => wse_model::Reduce2dAlgorithm::XyChain,
            Self::Xy(ReducePattern::Tree) => wse_model::Reduce2dAlgorithm::XyTree,
            Self::Xy(ReducePattern::TwoPhase) => wse_model::Reduce2dAlgorithm::XyTwoPhase,
            Self::Xy(ReducePattern::AutoGen) => wse_model::Reduce2dAlgorithm::XyAutoGen,
            Self::Snake => wse_model::Reduce2dAlgorithm::Snake,
        }
    }
}

/// Build a 2D Reduce plan over an `height × width` grid, rooted at `(0, 0)`.
///
/// The X-Y variant first reduces every row to its leftmost PE (colors 0/1),
/// then reduces the first column to the root (colors 2/3), exactly like the
/// paper's implementation; the Snake variant maps a single chain over the
/// whole grid.
pub fn reduce_2d_plan(
    pattern: Reduce2dPattern,
    dim: GridDim,
    vector_len: u32,
    op: ReduceOp,
    machine: &Machine,
) -> CollectivePlan {
    let mut plan = CollectivePlan::new(
        format!("reduce-2d-{}-{}x{}-b{}", pattern.name(), dim.height, dim.width, vector_len),
        dim,
        Coord::new(0, 0),
        vector_len,
    );
    match pattern {
        Reduce2dPattern::Snake => {
            let path = LinePath::snake(dim);
            let tree = ReductionTree::chain(path.len());
            append_tree_reduce(&mut plan, &path, &tree, vector_len, op, x_colors(), false);
        }
        Reduce2dPattern::Xy(p1d) => {
            // X phase: reduce every row towards its leftmost PE. Rows are
            // disjoint, so they share the same pair of colors.
            if dim.width > 1 {
                let row_tree = p1d.tree(dim.width as usize, vector_len, machine);
                for y in 0..dim.height {
                    let path = LinePath::row(dim, y);
                    append_tree_reduce(
                        &mut plan,
                        &path,
                        &row_tree,
                        vector_len,
                        op,
                        x_colors(),
                        false,
                    );
                }
            }
            // Y phase: reduce the first column towards the root.
            if dim.height > 1 {
                let col_tree = p1d.tree(dim.height as usize, vector_len, machine);
                let path = LinePath::column(dim, 0);
                append_tree_reduce(&mut plan, &path, &col_tree, vector_len, op, y_colors(), false);
            }
        }
    }
    for c in dim.iter() {
        plan.add_data_pe(c);
    }
    plan.add_result_pe(Coord::new(0, 0));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{assert_outputs_close, expected_reduce, run_plan, RunConfig};

    fn machine() -> Machine {
        Machine::wse2()
    }

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| (i + 1) as f32 * 0.25 + j as f32 * 0.125).collect()).collect()
    }

    #[test]
    fn every_1d_pattern_reduces_correctly() {
        let p = 12u32;
        let b = 16u32;
        let data = inputs(p as usize, b as usize);
        let expected = expected_reduce(&data, ReduceOp::Sum);
        for pattern in ReducePattern::all() {
            let plan = reduce_1d_plan(pattern, p, b, ReduceOp::Sum, &machine());
            let outcome = run_plan(&plan, &data, &RunConfig::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", pattern.name()));
            assert_outputs_close(&outcome, &expected, 1e-4);
            assert!(plan.colors_used().len() <= 2);
        }
    }

    #[test]
    fn pattern_runtimes_are_ordered_as_the_model_predicts() {
        // For a long vector the chain beats the star; for a short vector on
        // many PEs the tree beats the chain (§5.7).
        let m = machine();
        let run = |pattern, p, b| {
            let plan = reduce_1d_plan(pattern, p, b, ReduceOp::Sum, &m);
            let data = inputs(p as usize, b as usize);
            run_plan(&plan, &data, &RunConfig::default()).unwrap().runtime_cycles()
        };
        let chain_long = run(ReducePattern::Chain, 8, 512);
        let star_long = run(ReducePattern::Star, 8, 512);
        assert!(chain_long < star_long, "chain {chain_long} vs star {star_long}");

        let tree_short = run(ReducePattern::Tree, 32, 4);
        let chain_short = run(ReducePattern::Chain, 32, 4);
        assert!(tree_short < chain_short, "tree {tree_short} vs chain {chain_short}");
    }

    #[test]
    fn autogen_is_never_slower_than_the_vendor_chain() {
        let m = machine();
        for (p, b) in [(16u32, 4u32), (16, 64), (32, 16), (24, 256)] {
            let data = inputs(p as usize, b as usize);
            let auto = run_plan(
                &reduce_1d_plan(ReducePattern::AutoGen, p, b, ReduceOp::Sum, &m),
                &data,
                &RunConfig::default(),
            )
            .unwrap()
            .runtime_cycles();
            let chain = run_plan(
                &reduce_1d_plan(ReducePattern::Chain, p, b, ReduceOp::Sum, &m),
                &data,
                &RunConfig::default(),
            )
            .unwrap()
            .runtime_cycles();
            // Allow a small constant slack for start-up effects.
            assert!(
                auto as f64 <= chain as f64 * 1.05 + 16.0,
                "p={p} b={b}: auto-gen {auto} vs chain {chain}"
            );
        }
    }

    #[test]
    fn xy_reduce_2d_is_correct_for_every_pattern() {
        let dim = GridDim::new(4, 3);
        let b = 8u32;
        let data = inputs(12, b as usize);
        let expected = expected_reduce(&data, ReduceOp::Sum);
        for p1d in [
            ReducePattern::Star,
            ReducePattern::Chain,
            ReducePattern::Tree,
            ReducePattern::TwoPhase,
            ReducePattern::AutoGen,
        ] {
            let plan = reduce_2d_plan(Reduce2dPattern::Xy(p1d), dim, b, ReduceOp::Sum, &machine());
            let outcome = run_plan(&plan, &data, &RunConfig::default())
                .unwrap_or_else(|e| panic!("X-Y {} failed: {e}", p1d.name()));
            assert_outputs_close(&outcome, &expected, 1e-4);
            assert!(plan.colors_used().len() <= 4);
        }
    }

    #[test]
    fn snake_reduce_2d_is_correct() {
        let dim = GridDim::new(5, 4);
        let b = 6u32;
        let data = inputs(20, b as usize);
        let expected = expected_reduce(&data, ReduceOp::Sum);
        let plan = reduce_2d_plan(Reduce2dPattern::Snake, dim, b, ReduceOp::Sum, &machine());
        let outcome = run_plan(&plan, &data, &RunConfig::default()).unwrap();
        assert_outputs_close(&outcome, &expected, 1e-4);
        assert!(plan.colors_used().len() <= 2);
    }

    #[test]
    fn two_phase_beats_chain_and_star_at_intermediate_sizes_on_the_simulator() {
        // The headline qualitative claim of §5.7 checked end-to-end on the
        // simulator: at P ≈ B the Two-Phase pattern wins against both the
        // vendor chain and the star.
        let m = machine();
        let p = 32u32;
        let b = 64u32;
        let data = inputs(p as usize, b as usize);
        let run = |pattern| {
            run_plan(
                &reduce_1d_plan(pattern, p, b, ReduceOp::Sum, &m),
                &data,
                &RunConfig::default(),
            )
            .unwrap()
            .runtime_cycles()
        };
        let two_phase = run(ReducePattern::TwoPhase);
        let chain = run(ReducePattern::Chain);
        let star = run(ReducePattern::Star);
        assert!(two_phase < chain, "two-phase {two_phase} vs chain {chain}");
        assert!(two_phase < star, "two-phase {two_phase} vs star {star}");
    }

    #[test]
    fn degenerate_grids_reduce_correctly() {
        let m = machine();
        // A single row grid through the 2D entry point.
        let dim = GridDim::new(6, 1);
        let b = 5;
        let data = inputs(6, b as usize);
        let expected = expected_reduce(&data, ReduceOp::Sum);
        let plan =
            reduce_2d_plan(Reduce2dPattern::Xy(ReducePattern::Chain), dim, b, ReduceOp::Sum, &m);
        let outcome = run_plan(&plan, &data, &RunConfig::default()).unwrap();
        assert_outputs_close(&outcome, &expected, 1e-4);
        // A single column.
        let dim = GridDim::new(1, 6);
        let plan =
            reduce_2d_plan(Reduce2dPattern::Xy(ReducePattern::TwoPhase), dim, b, ReduceOp::Sum, &m);
        let outcome = run_plan(&plan, &data, &RunConfig::default()).unwrap();
        assert_outputs_close(&outcome, &expected, 1e-4);
    }
}
