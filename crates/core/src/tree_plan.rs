//! Compiling a pre-order reduction tree into an executable plan.
//!
//! This module is the runtime equivalent of the paper's code generator
//! (§5.5): given a [`ReductionTree`] over the positions of a [`LinePath`],
//! it emits, for every PE, the program and the ordered routing rules that
//! realise the schedule on the mesh. Because the Star, Chain, binary Tree
//! and Two-Phase patterns are all special cases of such trees (§5.5), a
//! single compiler covers every Reduce variant of the paper, including the
//! Auto-Gen schedules produced by `wse-model`.
//!
//! ## How a tree becomes routing rules
//!
//! Every tree edge `child → parent` is one *transfer*: the child streams its
//! `B`-element partial result towards the parent along the path. Transfers
//! are ordered by the post-order position of the child (children in receive
//! order, then the node itself), which is exactly the order in which a
//! sequential execution would complete them. Every router involved in a
//! transfer — the sender, the intermediate hops and the receiver — gets one
//! counted routing rule per transfer, appended in this global order;
//! consecutive identical rules are merged. Because communication edges of a
//! pre-order tree never partially overlap, the streams of two transfers that
//! share a link are always separated by a configuration switch, so they can
//! share a color without racing (§8.2: "we configure the routers such that
//! at a given cycle they accept wavelets only from a single direction").
//!
//! ## Colors and pipelining
//!
//! A node that is itself forwarding to its parent while still receiving from
//! its last child (the pipelined chain step) must receive and send on
//! different colors; alternating colors by tree depth achieves this with two
//! colors, matching the paper's Chain implementation.

use wse_fabric::geometry::{Coord, DirectionSet};
use wse_fabric::program::ReduceOp;
use wse_fabric::router::RouteRule;
use wse_fabric::wavelet::Color;
use wse_model::autogen::ReductionTree;

use crate::path::LinePath;
use crate::plan::CollectivePlan;

/// Append a tree Reduce over `path` to an existing plan.
///
/// * `tree` — a pre-order reduction tree over the path positions (position 0
///   is the root); every parent must lie closer to the root than its child.
/// * `vector_len` — number of 32-bit elements per PE.
/// * `op` — the associative reduction operation.
/// * `colors` — two routing colors used alternately by tree depth.
/// * `keep_partial` — whether interior PEs keep their partial sums in local
///   memory (not needed for a plain Reduce).
///
/// The caller is responsible for registering data/result PEs on the plan.
pub fn append_tree_reduce(
    plan: &mut CollectivePlan,
    path: &LinePath,
    tree: &ReductionTree,
    vector_len: u32,
    op: ReduceOp,
    colors: [Color; 2],
    keep_partial: bool,
) {
    assert_eq!(
        tree.num_pes(),
        path.len(),
        "the reduction tree must cover exactly the PEs of the path"
    );
    assert!(colors[0] != colors[1], "the two tree colors must differ");
    tree.validate().expect("invalid reduction tree");
    let n = path.len();
    if n <= 1 {
        return;
    }
    for (child, parent) in tree.parent.iter().enumerate() {
        if let Some(p) = parent {
            assert!(
                *p < child,
                "tree edges must point towards the root of the path ({child} -> {p})"
            );
        }
    }
    let b = vector_len as u64;

    // Depth of every node (root = 0); the send color of a node at depth d is
    // colors[d % 2], so a node always receives its last child's stream on the
    // other color than the one it forwards on.
    let mut depth = vec![0u32; n];
    for &node in &tree.preorder() {
        if let Some(p) = tree.parent[node] {
            depth[node] = depth[p] + 1;
        }
    }
    let send_color = |node: usize| colors[(depth[node] % 2) as usize];

    // Transfers in global order: post-order position of the sending child.
    let mut transfers: Vec<usize> = Vec::with_capacity(n - 1);
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    while let Some((node, child_idx)) = stack.pop() {
        if child_idx < tree.children[node].len() {
            stack.push((node, child_idx + 1));
            stack.push((tree.children[node][child_idx], 0));
        } else if node != 0 {
            transfers.push(node);
        }
    }
    debug_assert_eq!(transfers.len(), n - 1);

    // Routing rules, in transfer order, for every PE the transfer touches.
    for &sender in &transfers {
        let parent = tree.parent[sender].expect("non-root sender has a parent");
        let color = send_color(sender);
        // Sender: own data up the ramp, towards the root.
        push_merged(
            plan,
            path.coord(sender),
            color,
            RouteRule::counted(
                wse_fabric::geometry::Direction::Ramp,
                DirectionSet::single(path.towards_root(sender)),
                b,
            ),
        );
        // Intermediate hops: pass the stream through towards the root.
        for m in (parent + 1..sender).rev() {
            push_merged(
                plan,
                path.coord(m),
                color,
                RouteRule::counted(
                    path.away_from_root(m),
                    DirectionSet::single(path.towards_root(m)),
                    b,
                ),
            );
        }
        // Receiver: deliver the stream to the processor.
        push_merged(
            plan,
            path.coord(parent),
            color,
            RouteRule::counted(
                path.away_from_root(parent),
                DirectionSet::single(wse_fabric::geometry::Direction::Ramp),
                b,
            ),
        );
    }

    // Programs: receive children in order, then forward to the parent. The
    // last child of a non-root node is combined and forwarded element by
    // element (the pipelined chain step).
    for node in 0..n {
        let at = path.coord(node);
        let children = &tree.children[node];
        let is_root = node == 0;
        let program = plan.program_mut(at);
        if children.is_empty() {
            if !is_root {
                program.send(send_color(node), 0, vector_len);
            }
            continue;
        }
        let (last, earlier) = children.split_last().expect("non-empty children");
        for &child in earlier {
            program.recv_reduce(send_color(child), 0, vector_len, op);
        }
        if is_root {
            program.recv_reduce(send_color(*last), 0, vector_len, op);
        } else {
            program.recv_forward(
                send_color(*last),
                send_color(node),
                0,
                vector_len,
                op,
                keep_partial,
            );
        }
    }
}

/// Append a rule, merging it with the previous rule of the same color at the
/// same PE when both are counted rules with identical ports (this collapses
/// e.g. the long pass-through sequences of the Star pattern into one rule).
fn push_merged(plan: &mut CollectivePlan, at: Coord, color: Color, rule: RouteRule) {
    if let Some((_, script)) = plan.scripts(at).iter().find(|(c, _)| *c == color) {
        if let Some(last) = script.rules().last() {
            if let (Some(last_count), Some(rule_count)) = (last.advance_after, rule.advance_after) {
                if last.accept_from == rule.accept_from
                    && last.forward_to == rule.forward_to
                    && !last.advance_on_control
                    && !rule.advance_on_control
                {
                    let merged = RouteRule::counted(
                        rule.accept_from,
                        rule.forward_to,
                        last_count + rule_count,
                    );
                    plan.replace_last_rule(at, color, merged);
                    return;
                }
            }
        }
    }
    plan.push_rule(at, color, rule);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::LinePath;
    use crate::runner::{expected_reduce, run_plan, RunConfig};
    use wse_fabric::geometry::GridDim;
    use wse_model::autogen::ReductionTree;

    fn colors() -> [Color; 2] {
        [Color::new(0), Color::new(1)]
    }

    fn build_plan(name: &str, path: &LinePath, tree: &ReductionTree, b: u32) -> CollectivePlan {
        let mut plan = CollectivePlan::new(name, path.dim(), path.root(), b);
        append_tree_reduce(&mut plan, path, tree, b, ReduceOp::Sum, colors(), false);
        for c in path.coords() {
            plan.add_data_pe(*c);
        }
        plan.add_result_pe(path.root());
        plan
    }

    fn inputs_for(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| (i * 37 + j) as f32 * 0.5 + 1.0).collect()).collect()
    }

    fn check_tree(p: u32, b: u32, tree: ReductionTree) -> u64 {
        let dim = GridDim::row(p);
        let path = LinePath::row(dim, 0);
        let plan = build_plan("tree", &path, &tree, b);
        let inputs = inputs_for(p as usize, b as usize);
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).expect("plan runs");
        let expected = expected_reduce(&inputs, ReduceOp::Sum);
        let root_output = &outcome.outputs[0].1;
        for (a, e) in root_output.iter().zip(&expected) {
            assert!((a - e).abs() <= e.abs() * 1e-5 + 1e-4, "got {a}, expected {e}");
        }
        outcome.report.max_finish()
    }

    #[test]
    fn chain_tree_reduces_correctly() {
        check_tree(6, 9, ReductionTree::chain(6));
    }

    #[test]
    fn star_tree_reduces_correctly() {
        check_tree(7, 5, ReductionTree::star(7));
    }

    #[test]
    fn binary_tree_reduces_correctly() {
        check_tree(8, 16, ReductionTree::binary_tree(8));
        check_tree(13, 7, ReductionTree::binary_tree(13));
    }

    #[test]
    fn two_phase_tree_reduces_correctly() {
        check_tree(16, 12, ReductionTree::two_phase(16, 4));
        check_tree(14, 6, ReductionTree::two_phase(14, 5));
    }

    #[test]
    fn tree_reduce_works_on_columns_and_snakes() {
        let b = 8u32;
        // Column.
        let dim = GridDim::new(1, 9);
        let path = LinePath::column(dim, 0);
        let tree = ReductionTree::two_phase(9, 3);
        let plan = build_plan("column", &path, &tree, b);
        let inputs = inputs_for(9, b as usize);
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
        let expected = expected_reduce(&inputs, ReduceOp::Sum);
        assert!(outcome.outputs[0]
            .1
            .iter()
            .zip(&expected)
            .all(|(a, e)| (a - e).abs() <= e.abs() * 1e-5 + 1e-4));

        // Snake over a small grid: the chain pattern mapped onto the
        // boustrophedon path (§7.3).
        let dim = GridDim::new(4, 3);
        let path = LinePath::snake(dim);
        let tree = ReductionTree::chain(12);
        let plan = build_plan("snake", &path, &tree, b);
        let inputs = inputs_for(12, b as usize);
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
        let expected = expected_reduce(&inputs, ReduceOp::Sum);
        assert!(outcome.outputs[0]
            .1
            .iter()
            .zip(&expected)
            .all(|(a, e)| (a - e).abs() <= e.abs() * 1e-5 + 1e-4));
    }

    #[test]
    fn chain_is_pipelined_star_is_contention_bound() {
        // The chain's runtime grows like B + c·P while the star's grows like
        // B·(P-1): check the qualitative separation on the simulator.
        let b = 64;
        let p = 8;
        let chain = check_tree(p, b, ReductionTree::chain(p as usize));
        let star = check_tree(p, b, ReductionTree::star(p as usize));
        assert!(
            (star as f64) > 0.8 * (b as f64 * (p as f64 - 1.0)),
            "star should be contention bound, got {star}"
        );
        assert!(
            (chain as f64) < star as f64 / 2.0,
            "chain ({chain}) should be well below star ({star}) for long vectors"
        );
    }

    #[test]
    fn different_ops_are_supported() {
        let p = 5u32;
        let b = 4u32;
        let dim = GridDim::row(p);
        let path = LinePath::row(dim, 0);
        for op in [ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod] {
            let tree = ReductionTree::two_phase(p as usize, 2);
            let mut plan = CollectivePlan::new("op", dim, path.root(), b);
            append_tree_reduce(&mut plan, &path, &tree, b, op, colors(), false);
            for c in path.coords() {
                plan.add_data_pe(*c);
            }
            plan.add_result_pe(path.root());
            let inputs = inputs_for(p as usize, b as usize);
            let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
            let expected = expected_reduce(&inputs, op);
            for (a, e) in outcome.outputs[0].1.iter().zip(&expected) {
                assert!((a - e).abs() <= e.abs() * 1e-5 + 1e-4, "{op:?}: got {a}, expected {e}");
            }
        }
    }

    #[test]
    fn single_pe_tree_is_a_no_op() {
        let dim = GridDim::row(1);
        let path = LinePath::row(dim, 0);
        let tree = ReductionTree::chain(1);
        let plan = build_plan("single", &path, &tree, 4);
        let inputs = inputs_for(1, 4);
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).unwrap();
        assert_eq!(outcome.outputs[0].1, inputs[0]);
        assert_eq!(outcome.report.energy_hops, 0);
    }

    #[test]
    fn plans_use_at_most_two_colors_for_1d_reduce() {
        let path = LinePath::row(GridDim::row(16), 0);
        let tree = ReductionTree::two_phase(16, 4);
        let plan = build_plan("colors", &path, &tree, 8);
        assert!(plan.colors_used().len() <= 2);
    }

    #[test]
    #[should_panic(expected = "must cover exactly")]
    fn tree_and_path_size_mismatch_panics() {
        let path = LinePath::row(GridDim::row(4), 0);
        let tree = ReductionTree::chain(5);
        let mut plan = CollectivePlan::new("bad", path.dim(), path.root(), 4);
        append_tree_reduce(&mut plan, &path, &tree, 4, ReduceOp::Sum, colors(), false);
    }
}
